"""Cloud object store vs block volumes: a miniature of the paper's Tables 2-4.

Loads TPC-H at a small scale factor onto three different user dbspaces —
simulated S3, EBS gp2 and EFS — using hardware whose rates are slowed by
the same factor the data was shrunk by, then runs a few benchmark queries
and prints load/query times plus the monthly storage bill.

Run with:  python examples/cloud_vs_block_storage.py
"""

from repro.bench.configs import load_engine
from repro.bench.report import format_table, geomean
from repro.costs.pricing import DEFAULT_PRICES
from repro.tpch import power_run

SCALE_FACTOR = 0.005
QUERIES = [1, 3, 6, 12, 14]
VOLUME_PRICE_KEY = {"s3": "s3", "ebs": "ebs-gp2", "efs": "efs"}


def main() -> None:
    rows = []
    for volume in ("s3", "ebs", "efs"):
        db, store, load_seconds = load_engine(
            "m5ad.24xlarge", volume, scale_factor=SCALE_FACTOR
        )
        db.buffer.invalidate_all()
        if db.ocm is not None:
            db.ocm.drain_all()
            db.ocm.invalidate_all()
        times = power_run(db, SCALE_FACTOR, query_numbers=QUERIES)
        scaled_bytes = db.user_data_bytes() * (1000 / SCALE_FACTOR)
        monthly = DEFAULT_PRICES.storage_price(
            VOLUME_PRICE_KEY[volume]
        ).monthly_cost(int(scaled_bytes))
        row = [volume.upper(), load_seconds]
        row.extend(times[q] for q in QUERIES)
        row.append(geomean(times.values()))
        row.append(monthly)
        rows.append(row)

    headers = (["volume", "load (s)"] + [f"Q{q} (s)" for q in QUERIES]
               + ["geomean (s)", "$/month at SF1000"])
    print(format_table(headers, rows))
    print(
        "\nThe shape to look for (paper, Tables 2-4): S3 loads and queries"
        "\nfastest thanks to parallel throughput, EFS is slowest, and S3's"
        "\ndata-at-rest bill is an order of magnitude below EFS's."
    )


if __name__ == "__main__":
    main()
