"""Quickstart: a cloud-native columnar database in a few lines.

Creates an engine whose user dbspace lives on a simulated, eventually
consistent object store (with a local-SSD Object Cache Manager in front),
loads a small table, runs a query, and prints what the storage layer did.

Run with:  python examples/quickstart.py
"""

from repro.columnar import ColumnSchema, ColumnStore, QueryContext, TableSchema
from repro.columnar.exec import group_by, order_by, rows
from repro.engine import Database, DatabaseConfig
from repro.sim.rng import DeterministicRng

MIB = 1024 * 1024


def main() -> None:
    # An engine with S3-style user storage and an OCM on local NVMe.
    db = Database(
        DatabaseConfig(
            user_volume="s3",
            buffer_capacity_bytes=8 * MIB,
            ocm_capacity_bytes=32 * MIB,
            page_size=16 * 1024,
        )
    )
    store = ColumnStore(db)

    # A range-partitioned table with an HG index on the key.
    store.create_table(
        TableSchema(
            "sales",
            (
                ColumnSchema("sale_id", "int", hg_index=True),
                ColumnSchema("region", "str"),
                ColumnSchema("amount", "float"),
            ),
            partition_column="sale_id",
            partition_count=4,
            rows_per_page=512,
        )
    )

    rng = DeterministicRng(2024, "sales")
    data = [
        (i, rng.choice(["NORTH", "SOUTH", "EAST", "WEST"]),
         round(rng.uniform(5.0, 500.0), 2))
        for i in range(1, 20_001)
    ]
    state = store.load("sales", data)
    print(f"loaded {state.total_rows} rows "
          f"across {state.schema.partition_count} partitions "
          f"in {db.clock.now():.2f} virtual seconds")
    print(f"data at rest: {db.user_data_bytes() / 1024:.0f} KiB compressed, "
          f"{db.object_store.object_count()} objects "
          f"(every page wrote a fresh key: never-write-twice)")

    # Revenue by region — a scan with zone-map pruning plus aggregation.
    with QueryContext(db) as ctx:
        sales = ctx.read("sales", ["region", "amount"])
        by_region = group_by(ctx, sales, ["region"],
                             {"revenue": ("sum", "amount"),
                              "n": ("count", None)})
        result = order_by(ctx, by_region, [("revenue", True)])
    print("\nrevenue by region:")
    for region, revenue, count in rows(result, ["region", "revenue", "n"]):
        print(f"  {region:<6} {revenue:>12.2f}  ({count} sales)")

    # Point lookups use the High-Group index instead of scanning.
    with QueryContext(db) as ctx:
        hg = ctx.hg("sales", "sale_id")
        row = ctx.read_rows("sales", ["sale_id", "region", "amount"],
                            hg.lookup(12345))
    print(f"\nHG index lookup sale_id=12345 -> {rows(row)[0]}")

    stats = db.stats()
    print(f"\nbuffer manager: {stats['buffer']}")
    print(f"object cache manager: {stats['ocm']}")
    print(f"monthly storage bill for this data: "
          f"${db.monthly_storage_cost():.6f}")


if __name__ == "__main__":
    main()
