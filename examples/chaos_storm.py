"""A scripted object-store storm, survived with zero committed-data loss.

Attaches the canonical fault schedule — a 10 s full outage at t=5 followed
by 30 s of 20% request errors, quarter-rate per-prefix throttling and 4x
latency — to an engine wired with the resilient client (decorrelated-jitter
retries, hedged GETs, circuit breaker) and a degraded-mode OCM.  A writer
keeps committing through the storm while readers touch recently committed
pages; afterwards every cache is dropped and all committed data is read
back from the store byte-for-byte.

Everything runs on the virtual clock, so the whole storm replays
bit-identically for a given seed (try `--seed`).

Run with:  python examples/chaos_storm.py
"""

import argparse

from repro.bench.report import format_table
from repro.cli import run_chaos_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schedule", default="storm",
                        choices=["storm", "outage", "latency", "throttle"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    result = run_chaos_scenario(args.schedule, seed=args.seed)

    client = result["client_metrics"]
    store = result["store_metrics"]
    ocm = result["ocm_metrics"]
    rows = [
        ["commits ok / failed",
         f'{result["commits_ok"]} / {result["commits_failed"]}'],
        ["committed pages", result["committed_pages"]],
        ["reads failed fast (breaker open)", result["reads_failed_fast"]],
        ["outage / storm failures",
         f'{store.get("fault_outage_failures", 0):.0f} / '
         f'{store.get("fault_storm_failures", 0):.0f}'],
        ["throttled requests", f'{store.get("fault_throttled_requests", 0):.0f}'],
        ["breaker opened / closed",
         f'{client.get("breaker_opened", 0):.0f} / '
         f'{client.get("breaker_closed", 0):.0f}'],
        ["hedged GETs / hedge wins",
         f'{client.get("hedged_gets", 0):.0f} / '
         f'{client.get("hedge_wins", 0):.0f}'],
        ["degraded cache reads", f'{ocm.get("degraded_reads", 0):.0f}'],
        ["degraded queued writes", f'{ocm.get("degraded_queued_writes", 0):.0f}'],
        ["p99 GET latency (s)", f'{result["p99_get_latency"]:.3f}'],
        ["durability mismatches", result["mismatches"]],
    ]
    print(format_table(["metric", "value"], rows))

    if result["mismatches"] == 0:
        print(
            "\nZero committed-data loss: every page of every committed"
            "\ntransaction read back byte-identical after the storm."
        )
    else:
        raise SystemExit(f'{result["mismatches"]} pages mismatched!')


if __name__ == "__main__":
    main()
