"""A tour of the implemented extensions and future-work features.

1. read-only views over past snapshots (paper future work #1),
2. multiple cloud dbspaces with custom page sizes (future work #3) and an
   Azure-Blob-style provider, plus moving a table between providers,
3. page encryption end to end (Section 4),
4. conventional full + incremental backups and disaster restore.

Run with:  python examples/extensions_tour.py
"""

from repro.columnar import ColumnSchema, ColumnStore, QueryContext, TableSchema
from repro.core.backup import BackupManager
from repro.engine import Database, DatabaseConfig
from repro.objectstore import InMemoryObjectStore
from repro.objectstore.s3sim import AZURE_BLOB_PROFILE

MIB = 1024 * 1024


def main() -> None:
    db = Database(
        DatabaseConfig(
            buffer_capacity_bytes=8 * MIB,
            page_size=16 * 1024,
            retention_seconds=24 * 3600.0,
            encryption_key=b"an-example-32-byte-database-key!",
        )
    )
    store = ColumnStore(db)
    store.create_table(TableSchema(
        "accounts",
        (ColumnSchema("id", "int"), ColumnSchema("balance", "float")),
        rows_per_page=256,
    ))
    store.load("accounts", [(i, 100.0) for i in range(1, 1001)])
    print("loaded 1000 accounts (encrypted at rest: no plaintext on S3)")

    # --- 1. time travel via a snapshot view -------------------------- #
    snapshot = db.create_snapshot()
    txn = db.begin()
    store.load("accounts", [(i, 250.0) for i in range(1, 501)], txn=txn)
    db.commit(txn)
    with QueryContext(db) as ctx:
        live_total = sum(ctx.read("accounts", ["balance"])["balance"])
    view = db.open_snapshot_view(snapshot.snapshot_id)
    with QueryContext(view) as ctx:
        past_total = sum(ctx.read("accounts", ["balance"])["balance"])
    print(f"live total balance: {live_total:.0f}; "
          f"as of snapshot #{snapshot.snapshot_id}: {past_total:.0f} "
          "(no restore needed)")

    # --- 2. multi-provider dbspaces + moving a table ------------------ #
    db.create_cloud_dbspace("azure-archive", profile=AZURE_BLOB_PROFILE,
                            page_size=64 * 1024)
    pages = store.move_table("accounts", "azure-archive")
    db.txn_manager.collect_garbage()
    print(f"moved 'accounts' to the Azure-style dbspace ({pages} pages "
          f"rewritten; 64 KiB pages there vs 16 KiB default)")
    with QueryContext(db) as ctx:
        moved_total = sum(ctx.read("accounts", ["balance"])["balance"])
    assert moved_total == live_total
    print("query results identical after the move")

    # --- 3. conventional backups -------------------------------------- #
    vault = InMemoryObjectStore()
    backups = BackupManager(db, vault)
    full = backups.full_backup()
    txn = db.begin()
    store.load("accounts", [(i, 999.0) for i in range(1, 11)], txn=txn)
    db.commit(txn)
    incremental = backups.incremental_backup(full)
    print(f"full backup: {len(full.objects)} objects; incremental since: "
          f"{len(incremental.objects)} objects")

    # Disaster: the archive bucket is lost entirely.
    archive = db.node.dbspace("azure-archive")
    for name in list(archive.io.client.store.list_keys()):
        archive.io.client.store.delete(name)
    restored = backups.restore(incremental.backup_id)
    with QueryContext(db) as ctx:
        rel = ctx.read("accounts", ["balance"])
    print(f"bucket wiped; restore copied {restored} objects back; "
          f"{len(rel['balance'])} rows intact, balances "
          f"{sorted(set(rel['balance']))}")


if __name__ == "__main__":
    main()
