"""The Table 1 story, live: key ranges, crashes and garbage collection.

Walks a coordinator + writer multiplex through the paper's recovery
walkthrough — allocation, a commit, a coordinator crash and recovery, a
rollback that deliberately skips telling the coordinator, and a writer
restart whose GC polls the node's whole outstanding key range.

Run with:  python examples/multiplex_recovery.py
"""

from repro.core.multiplex import Multiplex, MultiplexConfig
from repro.engine import DatabaseConfig

MIB = 1024 * 1024
KEY_BASE = 1 << 63


def show_active(cluster, note: str) -> None:
    spans = cluster.coordinator.keygen.active_set("writer-1").intervals()
    rendered = (
        ", ".join(f"{lo - KEY_BASE}..{hi - KEY_BASE}" for lo, hi in spans)
        or "(empty)"
    )
    objects = cluster.coordinator.object_store.object_count()
    print(f"{note:<52} active set: {rendered:<18} objects: {objects}")


def main() -> None:
    cluster = Multiplex(
        DatabaseConfig(buffer_capacity_bytes=8 * MIB, page_size=16 * 1024),
        MultiplexConfig(writers=1, secondary_buffer_bytes=8 * MIB,
                        ocm_enabled=False),
    )
    coordinator = cluster.coordinator
    writer = cluster.node("writer-1")
    for table in ("ta", "tb", "tc"):
        coordinator.create_object(table)
    coordinator.checkpoint()
    show_active(cluster, "checkpoint")

    t1 = writer.begin()
    for page in range(3):
        writer.write_page(t1, "ta", page, b"T1 page %d" % page)
    writer.buffer.flush_txn(t1.txn_id, commit_mode=False)
    show_active(cluster, "T1 flushed pages (range allocated to W1)")

    t2 = writer.begin()
    for page in range(3):
        writer.write_page(t2, "tb", page, b"T2 page %d" % page)
    writer.buffer.flush_txn(t2.txn_id, commit_mode=False)

    writer.commit(t1)
    show_active(cluster, "T1 commits (its keys leave the active set)")

    t3 = writer.begin()
    writer.write_page(t3, "tc", 0, b"T3 page 0")
    writer.buffer.flush_txn(t3.txn_id, commit_mode=False)

    cluster.coordinator_crash_and_recover()
    show_active(cluster, "coordinator crashed and recovered from the log")

    writer.rollback(t2)
    show_active(cluster,
                "T2 rolled back (objects deleted, coordinator NOT told)")

    writer.crash()
    reclaimed = writer.restart()
    show_active(cluster,
                f"W1 restarted; range polled, {reclaimed} orphan(s) GCed")

    check = writer.begin()
    payload = writer.read_page(check, "ta", 0)
    writer.rollback(check)
    print(f"\ncommitted data survived everything: ta page 0 = {payload!r}")


if __name__ == "__main__":
    main()
