"""Sizing the Object Cache Manager: hit rates vs query time.

Sweeps the OCM's capacity for a fixed TPC-H workload and shows the
trade-off the paper's Table 5 and Figure 6 describe: a larger local SSD
cache converts S3 GETs into local reads, improving both query time and
the request bill.

Run with:  python examples/ocm_tuning.py
"""

from repro.bench.configs import load_engine
from repro.bench.report import format_table, geomean
from repro.tpch import power_run

SCALE_FACTOR = 0.005
QUERIES = [1, 3, 6, 9, 14, 19]


def main() -> None:
    rows = []
    for capacity_kib in (256, 512, 1024, 2048, 8192):
        db, store, __ = load_engine(
            "m5ad.24xlarge", "s3", scale_factor=SCALE_FACTOR,
            ocm_capacity_bytes=capacity_kib * 1024,
        )
        db.buffer.invalidate_all()
        db.ocm.drain_all()
        db.ocm.invalidate_all()
        times = power_run(db, SCALE_FACTOR, query_numbers=QUERIES)
        stats = db.ocm.stats()
        lookups = stats["hits"] + stats["misses"]
        hit_rate = stats["hits"] / lookups if lookups else 0.0
        averted_gets = int(stats["hits"])
        rows.append([
            f"{capacity_kib} KiB",
            geomean(times.values()),
            f"{hit_rate:.1%}",
            int(stats["evictions"]),
            averted_gets,
        ])
    print(format_table(
        ["OCM capacity", "query geomean (s)", "hit rate", "evictions",
         "S3 GETs averted"],
        rows,
    ))
    print(
        "\nPaper reference points (Table 5, m5ad.24xlarge): 74.5% hits,"
        "\n~25% geomean improvement, and 2.8M averted GETs worth $1.12."
    )


if __name__ == "__main__":
    main()
