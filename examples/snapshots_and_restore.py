"""Near-instantaneous snapshots and point-in-time restore (Section 5).

Shows the retention mechanism: superseded pages are handed to the snapshot
manager instead of being deleted, snapshots capture only metadata, and a
point-in-time restore rolls the database back — garbage collecting every
key consumed after the snapshot thanks to monotonic key allocation.

Run with:  python examples/snapshots_and_restore.py
"""

from repro.engine import Database, DatabaseConfig

MIB = 1024 * 1024


def write_generation(db: Database, label: bytes) -> None:
    txn = db.begin()
    for page in range(16):
        db.write_page(txn, "ledger", page,
                      (label + b"-%02d" % page).ljust(2048, b"."))
    db.commit(txn)


def main() -> None:
    db = Database(
        DatabaseConfig(
            buffer_capacity_bytes=8 * MIB,
            page_size=16 * 1024,
            retention_seconds=24 * 3600.0,  # keep superseded pages a day
        )
    )
    db.create_object("ledger")

    write_generation(db, b"monday")
    print(f"monday data committed; {db.object_store.object_count()} objects")

    before = db.clock.now()
    snapshot = db.create_snapshot()
    print(f"snapshot #{snapshot.snapshot_id} taken in "
          f"{db.clock.now() - before:.4f} virtual seconds "
          f"({len(snapshot.catalog_bytes)} bytes of metadata — "
          f"no user data copied)")

    write_generation(db, b"tuesday")
    retained = db.snapshot_manager.retained_count()
    print(f"tuesday overwrote monday; {retained} superseded pages are "
          f"retained (not deleted) for the retention window")

    txn = db.begin()
    print("page 0 now reads:",
          db.read_page(txn, "ledger", 0).split(b".")[0].decode())
    db.commit(txn)

    db.restore_snapshot(snapshot.snapshot_id)
    txn = db.begin()
    print("after point-in-time restore, page 0 reads:",
          db.read_page(txn, "ledger", 0).split(b".")[0].decode())
    db.commit(txn)
    print(f"objects on the store after restore GC: "
          f"{db.object_store.object_count()}")

    # Keep working after the restore; superseded pages go back to the
    # retention FIFO and the background reaper deletes them on expiry.
    write_generation(db, b"wednesday")
    print(f"wednesday committed; {db.snapshot_manager.retained_count()} "
          f"pages retained, {db.object_store.object_count()} objects")
    db.clock.advance(24 * 3600.0 + 1)
    reaped = db.snapshot_manager.reap()
    print(f"retention expired: background reaper deleted {reaped} pages; "
          f"{db.object_store.object_count()} objects remain")


if __name__ == "__main__":
    main()
