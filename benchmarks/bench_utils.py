"""Shared helpers for the benchmark suite (kept out of conftest so the
ablations subdirectory can import them without conftest name clashes)."""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload: object) -> pathlib.Path:
    """Persist a machine-readable result under benchmarks/results/.

    Written alongside the text tables so downstream tooling (CI trend
    tracking, cost dashboards) can consume runs without parsing tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
