"""Shared helpers for the benchmark suite (kept out of conftest so the
ablations subdirectory can import them without conftest name clashes)."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
