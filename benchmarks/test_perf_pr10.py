"""PR 10 target workload: what elasticity buys, and what pre-warming saves.

One staged-ramp serving workload (80% point lookups against a hot bank,
20% ingest churn), four provisioning strategies, one emitted result:

- **static-2** — a right-sized fixed multiplex: cheap, but it has no
  headroom story and exists here as the human-tuned reference point.
- **static-max** — fixed provisioning at the autoscaler's ``max_nodes``
  clamp: the "just buy the peak" strategy the paper's elasticity pitch
  argues against.  Every node is cold at t=0 and round-robin routing
  dilutes cache locality across all of them for the whole run.
- **autoscaled** — starts at one node; the feedback controller grows
  the multiplex from live signals (admission queue, runnable backlog,
  windowed SLO attainment), pre-warming each new node's OCM from the
  coordinator's hot set before it takes traffic.
- **cold control** — the identical controller with ``prewarm=False``:
  new nodes join with empty caches and pay their compulsory misses
  against the shared store pipe while serving SLO-bound traffic.

Costs use the paper's price model: instance-seconds actually held
(the step integral of the live-node count for autoscaled runs) plus
per-request object-store charges.  Everything runs on the virtual
clock, so every number below is byte-stable across reruns.

Two readings the table forces honestly:

- Right-sizing still wins.  static-2 tops every strategy on $/attained
  op: in this dilution-dominated regime each extra node spreads the
  round-robin working set colder, so the elasticity claim is strictly
  against *peak* provisioning (static-max), per the paper — not
  against a human who already knows the right size.
- The warm/cold *overall* rows are not a controlled comparison.  The
  controller closes the loop through its own latencies, so a cold
  fleet's worse early p99 trips the SLO floor sooner and the two runs
  diverge into different scale schedules entirely.  The controlled
  read is the post-scale-out settling window, where only the cache
  temperature of the arriving node differs — that is what the final
  gate pins.

Emits ``results/BENCH_pr10.json``.
"""

import math

from bench_utils import emit, emit_json

from repro.bench.load import LoadConfig, LoadHarness, TenantSpec
from repro.bench.report import format_table
from repro.core.autoscale import AutoscaleConfig
from repro.costs.pricing import DEFAULT_PRICES

INSTANCE = "m5ad.4xlarge"
MAX_NODES = 4
STATIC_BASELINE = 2
#: Ops finishing within this many virtual seconds after a scale-out
#: completes are attributed to that event's "settling window".
POST_EVENT_WINDOW_SECONDS = 10.0

# A serving mix, not an analyst mix: sub-second SLOs and short ops are
# the regime where adding a node changes queueing within the SLO bound.
SERVING_MIX = (
    TenantSpec("lookup", 0.8, "lookup", think_mean=0.05,
               ops_per_session=40, slo_seconds=0.25),
    TenantSpec("churn", 0.2, "churn", think_mean=0.1,
               ops_per_session=20, slo_seconds=1.5),
)

# Arrivals spread over minutes (stage windows ~77s/39s/26s), so offered
# concurrency — not a thundering-herd backlog — is what ramps.
SHAPE = dict(
    sessions=150, seed=0, arrival_rate=2.0, stages=3,
    scale_factor=0.002, admission_limit=0, tenants=SERVING_MIX,
)


def _p99(values):
    if not values:
        return None
    ordered = sorted(values)
    rank = max(0, math.ceil(0.99 * len(ordered)) - 1)
    return ordered[min(rank, len(ordered) - 1)]


def _post_event_p99(harness, summary):
    """Pooled lookup p99 over the settling window after each scale-out."""
    scale = summary["autoscale"]
    if scale is None:
        return None, 0
    epoch = harness._workload_started
    pooled = []
    for event in scale["events"]:
        if event["action"] != "scale_out":
            continue
        start = epoch + event["completed"]
        end = start + POST_EVENT_WINDOW_SECONDS
        pooled.extend(
            response
            for finished, tenant, response, __ in harness._op_log
            if tenant == "lookup" and start <= finished <= end
        )
    return _p99(pooled), len(pooled)


def _attainment(summary):
    attained = total = 0
    for tenant in summary["tenants"].values():
        if tenant["ops"] and tenant["slo_attainment"] is not None:
            total += tenant["ops"]
            attained += round(tenant["slo_attainment"] * tenant["ops"])
    return attained, total


def _run_variant(name, nodes, autoscale):
    harness = LoadHarness(LoadConfig(**SHAPE, nodes=nodes,
                                     autoscale=autoscale))
    summary = harness.run()
    store = harness.db.object_store.metrics.snapshot()
    request_usd = DEFAULT_PRICES.request_price("s3").cost(
        puts=int(store.get("put_requests", 0)),
        gets=int(store.get("get_requests", 0)),
    )
    scale = summary["autoscale"]
    if scale is not None:
        node_seconds = scale["node_seconds"]
    else:
        node_seconds = nodes * summary["clock_seconds"]
    instance_usd = (
        node_seconds / 3600.0 * DEFAULT_PRICES.instance_rate(INSTANCE)
    )
    attained, total = _attainment(summary)
    usd = instance_usd + request_usd
    post_p99, post_ops = _post_event_p99(harness, summary)
    return {
        "variant": name,
        "nodes": nodes,
        "clock_seconds": summary["clock_seconds"],
        "node_seconds": node_seconds,
        "instance_usd": instance_usd,
        "request_usd": request_usd,
        "usd": usd,
        "ops_total": total,
        "ops_within_slo": attained,
        "slo_attainment": attained / total if total else None,
        "usd_per_1k_attained": (usd / attained * 1000.0) if attained
        else None,
        "tenants": {
            tenant: {
                "ops": data["ops"],
                "slo_attainment": data["slo_attainment"],
                "p99_seconds": data["latency_seconds"]["p99"],
            }
            for tenant, data in summary["tenants"].items()
        },
        "routing": summary["routing"],
        "autoscale": scale,
        "post_scale_out": {
            "window_seconds": POST_EVENT_WINDOW_SECONDS,
            "lookup_p99_seconds": post_p99,
            "ops_observed": post_ops,
        } if scale is not None else None,
    }


def _run_all():
    return {
        "static_baseline": _run_variant(
            f"static-{STATIC_BASELINE}", STATIC_BASELINE, None
        ),
        "static_max": _run_variant(f"static-{MAX_NODES}", MAX_NODES, None),
        "autoscaled": _run_variant(
            "autoscaled", 1,
            AutoscaleConfig(min_nodes=1, max_nodes=MAX_NODES),
        ),
        "cold_control": _run_variant(
            "cold-control", 1,
            AutoscaleConfig(min_nodes=1, max_nodes=MAX_NODES,
                            prewarm=False),
        ),
    }


def test_elasticity_beats_static_peak_provisioning(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    static2 = results["static_baseline"]
    static_max = results["static_max"]
    auto = results["autoscaled"]
    cold = results["cold_control"]

    payload = {
        "workload": "staged_ramp_serving_mix",
        "shape": {k: v for k, v in SHAPE.items() if k != "tenants"},
        "instance": INSTANCE,
        "max_nodes": MAX_NODES,
        "variants": results,
    }
    emit_json("BENCH_pr10", payload)

    def row(res):
        post = res["post_scale_out"]
        return [
            res["variant"],
            f"{res['slo_attainment'] * 100:.1f}%",
            f"{res['node_seconds']:.0f}",
            f"${res['usd']:.4f}",
            f"${res['usd_per_1k_attained']:.3f}",
            f"{post['lookup_p99_seconds']:.2f}s" if post else "-",
        ]

    emit("BENCH_pr10", format_table(
        ["variant", "SLO attained", "node-s", "USD",
         "USD/1k attained", "post-scale-out p99"],
        [row(static2), row(static_max), row(auto), row(cold)],
    ))

    # Identical offered load everywhere: the tenant draw and session
    # schedule depend only on the seed, never on the node count.
    totals = {res["ops_total"] for res in results.values()}
    assert len(totals) == 1, f"variants saw different workloads: {totals}"

    # The controller actually acted, and only the warm run pre-warmed.
    assert auto["autoscale"]["scale_outs"] >= 1
    outs = [e for e in auto["autoscale"]["events"]
            if e["action"] == "scale_out"]
    assert all(e["prewarmed_entries"] > 0 for e in outs), \
        "every warm scale-out must copy a non-empty hot set"
    cold_outs = [e for e in cold["autoscale"]["events"]
                 if e["action"] == "scale_out"]
    assert cold_outs and all(
        e["prewarmed_entries"] == 0 for e in cold_outs
    )

    # PR 10 acceptance #1: growing to the same ceiling on demand matches
    # or beats buying the ceiling up front — on attainment AND on USD.
    assert auto["slo_attainment"] >= static_max["slo_attainment"], (
        f"autoscaled attained {auto['slo_attainment']:.4f} < "
        f"static-max {static_max['slo_attainment']:.4f}"
    )
    assert auto["usd"] < static_max["usd"], (
        f"autoscaled cost ${auto['usd']:.4f} >= "
        f"static-max ${static_max['usd']:.4f}"
    )

    # PR 10 acceptance #2: pre-warming pays off where it claims to —
    # in the settling window right after a node starts taking traffic.
    warm_p99 = auto["post_scale_out"]["lookup_p99_seconds"]
    cold_p99 = cold["post_scale_out"]["lookup_p99_seconds"]
    assert warm_p99 is not None and cold_p99 is not None
    assert warm_p99 < cold_p99, (
        f"pre-warmed post-scale-out p99 {warm_p99:.3f}s must beat "
        f"cold {cold_p99:.3f}s"
    )
