"""Table 4: monthly cost of data at rest.

Paper: 12.05 / 51.80 / 155.40 USD per month on S3 / EBS / EFS — the
order-of-magnitude storage saving that motivates the whole project.
"""

from bench_utils import emit

from repro.bench.experiments import table4_rows
from repro.bench.report import format_table


def test_table4_storage_cost(benchmark, suite):
    runs = benchmark.pedantic(suite.volume_runs, rounds=1, iterations=1)
    rows = table4_rows(runs)
    emit(
        "table4_storage_cost",
        format_table(["Volume", "Monthly Storage Cost (USD)"],
                     [[r[0], round(r[1], 2)] for r in rows]),
    )
    costs = {r[0]: r[1] for r in rows}
    assert costs["AWS S3"] < costs["AWS EBS"] < costs["AWS EFS"]
    # The order-of-magnitude claim: EFS/S3 ratio is ~13x in the paper.
    assert costs["AWS EFS"] / costs["AWS S3"] > 10.0
    # EBS/EFS ratios are fixed by AWS list prices (0.10 vs 0.30 per GiB).
    assert abs(costs["AWS EFS"] / costs["AWS EBS"] - 3.0) < 0.2
    benchmark.extra_info.update(
        {name: round(cost, 2) for name, cost in costs.items()}
    )
