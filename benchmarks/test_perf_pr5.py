"""PR 5 target workload: the TPC-H bulk load through the write pipeline.

Two environments, both loading the same data with the same seed:

- **clean store** — the sim's scaled-up per-prefix rates never bind, so
  the virtual-time column barely moves; the billed-PUT column is the
  story (adjacent-key coalescing packs runs of fresh pages into ranged
  multi-puts).
- **throttled store** — a ThrottleStorm clamps the per-prefix PUT rate
  for the whole load, the regime real S3 enforces at full scale.  Here
  the request reduction shows up as virtual load time too: every billed
  PUT costs inflated tokens, so five-fold fewer PUTs is a shorter
  critical path through the token buckets.

The optimized configuration is ``WRITE_PATH_OPTIMIZED`` (AIMD upload
window + PUT coalescing + group commit flush) and must cut billed PUTs
by >=20% (it achieves ~80%) and measurably cut throttled load virtual
time.  Emits ``results/BENCH_pr5.json`` with load vtime, billed PUTs and
USD/load for all four runs, next to the PR 3 baseline.
"""

from bench_utils import emit, emit_json

from repro.bench.experiments import run_bulk_load_workload
from repro.bench.report import format_table

THROTTLE = 0.05


def _run_all():
    return {
        "clean_seed": run_bulk_load_workload(optimized=False),
        "clean_optimized": run_bulk_load_workload(optimized=True),
        "throttled_seed": run_bulk_load_workload(
            optimized=False, throttle_rate_factor=THROTTLE
        ),
        "throttled_optimized": run_bulk_load_workload(
            optimized=True, throttle_rate_factor=THROTTLE
        ),
    }


def test_bulk_load_write_pipeline_improvement(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    clean_seed = results["clean_seed"]
    clean_opt = results["clean_optimized"]
    thr_seed = results["throttled_seed"]
    thr_opt = results["throttled_optimized"]

    put_ratio = clean_opt["put_requests"] / clean_seed["put_requests"]
    vtime_ratio = (thr_opt["load_virtual_seconds"]
                   / thr_seed["load_virtual_seconds"])
    usd_ratio = thr_opt["load_usd"] / thr_seed["load_usd"]
    payload = {
        "workload": "bulk_load_write_pipeline",
        "throttle_rate_factor": THROTTLE,
        **results,
        "put_request_ratio": put_ratio,
        "put_request_reduction": 1 - put_ratio,
        "throttled_load_vtime_ratio": vtime_ratio,
        "throttled_load_vtime_reduction": 1 - vtime_ratio,
        "throttled_load_usd_reduction": 1 - usd_ratio,
    }
    emit_json("BENCH_pr5", payload)

    rows = []
    for metric in ("load_virtual_seconds", "put_requests",
                   "ranged_put_requests", "ranged_put_keys",
                   "throttled_requests", "batched_flush_uploads",
                   "aimd_backoffs", "load_usd", "wall_seconds"):
        rows.append([
            metric, clean_seed[metric], clean_opt[metric],
            thr_seed[metric], thr_opt[metric],
        ])
    emit("BENCH_pr5", format_table(
        ["metric", "clean seed", "clean optimized",
         "throttled seed", "throttled optimized"], rows,
    ))

    # PR 5 acceptance: >=20% fewer billed PUT requests on the bulk load.
    assert put_ratio <= 0.80, (
        f"billed PUT ratio {put_ratio:.3f} exceeds 0.80 "
        f"({clean_seed['put_requests']:.0f} -> "
        f"{clean_opt['put_requests']:.0f})"
    )
    # ... and measurably lower load virtual time where the store's
    # per-prefix request rates bind (>=5% guards against noise; the
    # observed reduction is ~20%).
    assert vtime_ratio <= 0.95, (
        f"throttled load vtime ratio {vtime_ratio:.3f} exceeds 0.95 "
        f"({thr_seed['load_virtual_seconds']:.1f}s -> "
        f"{thr_opt['load_virtual_seconds']:.1f}s)"
    )
    # The clean-store load must not regress: same bytes through the same
    # pipes, so virtual time stays within 0.1% of the fixed-window drain.
    assert (clean_opt["load_virtual_seconds"]
            <= clean_seed["load_virtual_seconds"] * 1.001)
    # Cheaper at the paper's scale: request savings dominate USD/load.
    assert thr_opt["load_usd"] < thr_seed["load_usd"]
    assert clean_opt["load_usd"] < clean_seed["load_usd"]
    # Coalescing actually engaged, and only in the optimized runs.
    assert clean_opt["ranged_put_requests"] > 0
    assert clean_seed["ranged_put_requests"] == 0
    # The same pages reached the store either way (never-write-twice
    # holds and nothing was dropped).  Byte volume agrees to within a
    # sliver: GC timing shifts by a few virtual seconds between the
    # configurations, so each run may recycle a different freed key for
    # one small metadata object.
    assert abs(clean_opt["put_bytes"] - clean_seed["put_bytes"]) <= (
        clean_seed["put_bytes"] * 1e-4
    )
    benchmark.extra_info.update({
        "put_request_reduction": f"{1 - put_ratio:.1%}",
        "throttled_vtime_reduction": f"{1 - vtime_ratio:.1%}",
        "seed_usd": round(thr_seed["load_usd"], 2),
        "optimized_usd": round(thr_opt["load_usd"], 2),
    })
