"""Exhaustive crash-exploration sweep (CI crash-smoke job).

Every registered crash point is armed once against the seeded churn
workload; each episode must recover with zero invariant violations:
no committed data lost, nothing MISSING, and every leak drained by
restart GC + retention reaping.  Random seeded schedules then vary the
arm-skip counts to hit later traversals of the same points.

Marked ``crash`` and kept out of tier-1 (``testpaths`` excludes
``benchmarks/``): the sweep is cheap (~seconds) but belongs with the
other workload-scale suites.
"""

import pytest

from repro.bench.crash_explorer import (
    explore_all_points,
    explore_random,
    registered_points,
    run_churn_episode,
)

pytestmark = pytest.mark.crash


def test_every_registered_point_recovers_cleanly():
    results = explore_all_points(seed=0)
    assert len(results) == len(registered_points())
    failures = [
        (result.crash_point, result.violations)
        for result in results if not result.ok
    ]
    assert failures == []
    never_fired = [r.crash_point for r in results if r.fired == 0]
    assert never_fired == [], f"episodes never traversed: {never_fired}"


def test_random_schedules_recover_cleanly():
    results = explore_random(count=25, seed=1)
    failures = [
        (result.crash_point, result.seed, result.violations)
        for result in results if not result.ok
    ]
    assert failures == []


def test_broken_gc_detected_under_crash():
    result = run_churn_episode("txn.gc.after_log", seed=0, broken_gc=True)
    assert result.ok, result.violations
    assert result.report is not None and result.report.leaked
