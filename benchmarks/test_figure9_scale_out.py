"""Figure 9: scale-out behaviour (8 query streams, 2/4/8 secondaries).

Paper: doubling the number of secondary nodes almost halves the total
time to execute the 8 concurrent query streams, because the combined S3
throughput grows with the node count.
"""

from bench_utils import emit

from repro.bench.report import format_table


def test_figure9_scale_out(benchmark, suite):
    points = benchmark.pedantic(suite.scale_out, rounds=1, iterations=1)
    rows = [
        [p["nodes"], p["total"],
         ", ".join(f"{t:.0f}" for t in p["per_node"])]
        for p in points
    ]
    emit(
        "figure9_scale_out",
        format_table(["secondaries", "total seconds", "per-node seconds"],
                     rows),
    )
    by_nodes = {p["nodes"]: p["total"] for p in points}
    assert by_nodes[2] > by_nodes[4] > by_nodes[8]
    # Doubling nodes almost halves the time (paper: near-perfect).
    assert by_nodes[2] / by_nodes[4] > 1.6
    assert by_nodes[4] / by_nodes[8] > 1.5
    benchmark.extra_info.update(
        {
            "speedup_2_to_4": round(by_nodes[2] / by_nodes[4], 2),
            "speedup_4_to_8": round(by_nodes[4] / by_nodes[8], 2),
        }
    )
