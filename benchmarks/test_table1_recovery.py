"""Table 1: the recovery & garbage collection walkthrough as a benchmark.

Replays the paper's scripted multiplex scenario (allocation, commits,
coordinator crash+recovery, rollback, writer crash+restart GC) and prints
the event table with the active set after each step; asserts the same
outcomes the paper narrates.  (The exact-assertion version of this
scenario lives in tests/integration/test_table1_walkthrough.py.)
"""

from bench_utils import emit

from repro.bench.report import format_table
from repro.core.multiplex import Multiplex, MultiplexConfig
from repro.engine import DatabaseConfig

MIB = 1024 * 1024


def run_table1_scenario():
    events = []
    cluster = Multiplex(
        DatabaseConfig(buffer_capacity_bytes=8 * MIB, page_size=16 * 1024),
        MultiplexConfig(writers=1, secondary_buffer_bytes=8 * MIB,
                        ocm_enabled=False),
    )
    coordinator = cluster.coordinator
    w1 = cluster.node("writer-1")
    for table in ("ta", "tb", "tc"):
        coordinator.create_object(table)

    def active():
        spans = coordinator.keygen.active_set("writer-1").intervals()
        if not spans:
            return "(empty)"
        base = 1 << 63
        return ", ".join(f"{lo - base}-{hi - base}" for lo, hi in spans)

    def note(clock, event, description):
        events.append([clock, event, description, active()])

    coordinator.checkpoint()
    note(50, "Checkpoint", "active sets flushed")

    t1 = w1.begin()
    for page in range(3):
        w1.write_page(t1, "ta", page, b"t1-%d" % page)
    w1.buffer.flush_txn(t1.txn_id, commit_mode=False)
    note(60, "W1 allocation", "key range allocated to W1")
    note(70, "T1 begins on W1", "objects flushed; recorded in T1's RB")

    t2 = w1.begin()
    for page in range(3):
        w1.write_page(t2, "tb", page, b"t2-%d" % page)
    w1.buffer.flush_txn(t2.txn_id, commit_mode=False)
    note(80, "T2 begins on W1", "objects flushed; recorded in T2's RB")

    w1.commit(t1)
    note(90, "T1 commits", "RF/RB flushed; active set updated")

    t3 = w1.begin()
    for page in range(2):
        w1.write_page(t3, "tc", page, b"t3-%d" % page)
    w1.buffer.flush_txn(t3.txn_id, commit_mode=False)
    t3_keys = len(t3.rb_for("user").cloud_keys())
    note(100, "T3 begins on W1", "objects flushed; recorded in T3's RB")

    before = coordinator.keygen.active_set("writer-1").intervals()
    cluster.coordinator_crash_and_recover()
    coordinator = cluster.coordinator
    recovered = coordinator.keygen.active_set("writer-1").intervals()
    note(110, "Coordinator crashes", "")
    note(120, "Coordinator recovers", "active set recovered from the log")
    assert before == recovered

    w1.rollback(t2)
    note(130, "T2 rolls back",
         "objects garbage collected; active set NOT updated")

    w1.crash()
    note(140, "W1 crashes", "")
    reclaimed = w1.restart()
    note(150, "W1 restarts",
         f"outstanding allocations GCed ({reclaimed} objects)")
    assert reclaimed == t3_keys
    return events


def test_table1_recovery_walkthrough(benchmark):
    events = benchmark.pedantic(run_table1_scenario, rounds=1, iterations=1)
    emit(
        "table1_recovery_walkthrough",
        format_table(["Clock", "Event", "Description", "Active Set (W1)"],
                     events),
    )
    assert events[-1][3] == "(empty)"
