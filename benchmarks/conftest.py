"""Shared fixtures for the benchmark suite.

Expensive simulated runs are memoized per session so several table/figure
benchmarks can share them.  Rendered tables are printed and also written
to ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import experiments


class _Suite:
    """Lazily computed, memoized experiment results."""

    def __init__(self) -> None:
        self._volume_runs = None
        self._ocm_runs = None
        self._scale_up = None
        self._scale_out = None
        self._policy_ablation = None

    def volume_runs(self):
        if self._volume_runs is None:
            self._volume_runs = experiments.run_volume_comparison()
        return self._volume_runs

    def ocm_runs(self):
        if self._ocm_runs is None:
            self._ocm_runs = experiments.run_ocm_experiment()
        return self._ocm_runs

    def scale_up(self):
        if self._scale_up is None:
            self._scale_up = experiments.run_scale_up()
        return self._scale_up

    def scale_out(self):
        if self._scale_out is None:
            self._scale_out = experiments.run_scale_out()
        return self._scale_out

    def policy_ablation(self):
        if self._policy_ablation is None:
            self._policy_ablation = experiments.run_policy_ablation()
        return self._policy_ablation


@pytest.fixture(scope="session")
def suite() -> _Suite:
    return _Suite()
