"""Ablation: never-write-twice vs update-in-place under eventual consistency.

The paper's central design rule.  Updating objects in place on an
eventually consistent store serves *stale* page images to readers —
silent corruption for a database.  With fresh keys per write, the worst
case is "not found", which retries absorb.
"""

from bench_utils import emit

from repro.bench.report import format_table
from repro.objectstore import (
    ConsistencyModel,
    RetryingObjectClient,
    RetryPolicy,
    SimulatedObjectStore,
)
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng

UPDATES = 400
LAGGY = ConsistencyModel(invisible_probability=0.3, mean_lag_seconds=0.5)


def make_client():
    profile = ObjectStoreProfile(
        name="s3", consistency=LAGGY,
        transient_failure_probability=0.0, latency_jitter=0.0,
    )
    store = SimulatedObjectStore(profile, clock=VirtualClock(),
                                 rng=DeterministicRng(11))
    client = RetryingObjectClient(
        store, policy=RetryPolicy(max_attempts=40, initial_backoff=0.05),
        enforce_unique_keys=False,
    )
    return store, client


def run_update_in_place():
    """One logical page updated in place; read back after every update."""
    store, client = make_client()
    stale = 0
    for version in range(UPDATES):
        payload = b"version-%05d" % version
        client.put("page/0", payload)
        observed = client.get("page/0")
        if observed != payload:
            stale += 1
    return stale, store.metrics.snapshot().get("stale_reads", 0)


def run_never_write_twice():
    """Each update writes a fresh key (the blockmap tracks the mapping)."""
    store, client = make_client()
    wrong = 0
    retries = 0
    for version in range(UPDATES):
        payload = b"version-%05d" % version
        key = f"page/{version}"  # fresh key per write
        client.put(key, payload)
        if client.get(key) != payload:
            wrong += 1
    retries = client.metrics.snapshot().get("not_found_retries", 0)
    return wrong, store.metrics.snapshot().get("stale_reads", 0), retries


def test_never_write_twice_prevents_stale_reads(benchmark):
    def run():
        in_place_wrong, in_place_stale = run_update_in_place()
        nwt_wrong, nwt_stale, nwt_retries = run_never_write_twice()
        return in_place_wrong, in_place_stale, nwt_wrong, nwt_stale, nwt_retries

    (in_place_wrong, in_place_stale, nwt_wrong, nwt_stale,
     nwt_retries) = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_never_write_twice",
        format_table(
            ["policy", "wrong data served", "stale reads", "NoSuchKey retries"],
            [
                ["update-in-place", in_place_wrong, in_place_stale, 0],
                ["never-write-twice", nwt_wrong, nwt_stale, nwt_retries],
            ],
        ),
    )
    # In-place updates serve stale page images; fresh keys never do.
    assert in_place_wrong > 0
    assert nwt_wrong == 0
    assert nwt_stale == 0
    # The price of the policy: bounded retries on not-yet-visible objects.
    assert nwt_retries > 0
