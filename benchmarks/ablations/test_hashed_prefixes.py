"""Ablation: hashed randomized key prefixes vs a single shared prefix.

AWS throttles request rates per key prefix; the paper prepends a hash of
the 64-bit key so sequential keys spread across prefixes (Section 3.1).
With one shared prefix, the same TPC-H load gets throttled.
"""

from bench_utils import emit

from repro.bench.configs import load_engine
from repro.bench.report import format_table

SCALE_FACTOR = 0.005


def run_with_prefix_bits(prefix_bits: int):
    db, store, load_seconds = load_engine(
        "m5ad.24xlarge", "s3", scale_factor=SCALE_FACTOR,
        prefix_bits=prefix_bits,
    )
    return {
        "load_seconds": load_seconds,
        "prefixes": db.object_store.prefix_count(),
        "throttled": db.object_store.throttled_requests(),
    }


def test_hashed_prefixes_avoid_throttling(benchmark):
    def run():
        return run_with_prefix_bits(16), run_with_prefix_bits(0)

    hashed, shared = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_hashed_prefixes",
        format_table(
            ["prefix scheme", "distinct prefixes", "throttled requests",
             "load (s)"],
            [
                ["hashed (16 bits)", hashed["prefixes"],
                 hashed["throttled"], hashed["load_seconds"]],
                ["single shared", shared["prefixes"],
                 shared["throttled"], shared["load_seconds"]],
            ],
        ),
    )
    assert hashed["prefixes"] > 100
    assert shared["prefixes"] == 1
    # The shared prefix hits the per-prefix limit; hashing avoids it.
    assert shared["throttled"] > hashed["throttled"]
    assert shared["load_seconds"] > hashed["load_seconds"]
