"""Ablation: adaptive OCM read re-routing (the paper's proposed fix).

The Figure 6 analysis proposes monitoring SSD vs object-store read latency
and re-routing cache hits while asynchronous fills saturate the SSD.  This
ablation saturates the SSD and measures the hit latency with and without
the fix.
"""

from bench_utils import emit

from repro.bench.report import format_table
from repro.blockstore.profiles import nvme_ssd
from repro.core.ocm import ObjectCacheManager, OcmConfig
from repro.objectstore import RetryingObjectClient, SimulatedObjectStore
from repro.objectstore.consistency import STRONG
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock
from repro.sim.devices import DeviceProfile


def run(adaptive: bool):
    profile = ObjectStoreProfile(name="s3", consistency=STRONG,
                                 transient_failure_probability=0.0,
                                 latency_jitter=0.0)
    store = SimulatedObjectStore(profile, clock=VirtualClock())
    client = RetryingObjectClient(store)
    slow_ssd = DeviceProfile(
        name="ssd", read_latency=0.0001, write_latency=0.0002,
        bandwidth=50_000.0, write_cost_multiplier=4.0,
    )
    ocm = ObjectCacheManager(
        client, slow_ssd,
        OcmConfig(capacity_bytes=1 << 26, adaptive_read_routing=adaptive),
    )
    hot = [f"hot/{i}" for i in range(8)]
    for name in hot:
        store.put(name, b"h" * 10_000)
        ocm.get(name)
    # Saturate the SSD with asynchronous cache fills (a cold burst).
    for i in range(20):
        store.put(f"cold/{i}", b"c" * 200_000)
    ocm.get_many([f"cold/{i}" for i in range(20)])
    # Measure hot-set hit latency under the fill backlog.
    started = ocm.clock.now()
    for name in hot:
        ocm.get(name)
    elapsed = ocm.clock.now() - started
    return elapsed / len(hot), ocm.stats().get("rerouted_reads", 0)


def test_adaptive_routing_restores_hit_latency(benchmark):
    def runs():
        return run(False), run(True)

    (plain_latency, __), (adaptive_latency, reroutes) = benchmark.pedantic(
        runs, rounds=1, iterations=1
    )
    emit(
        "ablation_adaptive_routing",
        format_table(
            ["policy", "hit latency under saturation (s)", "rerouted reads"],
            [
                ["fixed SSD routing (paper's system)",
                 f"{plain_latency:.4f}", 0],
                ["adaptive re-routing (paper's proposal)",
                 f"{adaptive_latency:.4f}", reroutes],
            ],
        ),
    )
    assert reroutes > 0
    assert adaptive_latency < plain_latency / 2
