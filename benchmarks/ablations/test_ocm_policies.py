"""Ablations on the OCM's write policies (Section 4).

1. insert-after-upload: write-back pages join the LRU only once uploaded,
   so rolled-back transactions never pollute the cache.  The ablation
   flips the rule and measures the pollution.
2. write-back vs write-through during churn: write-back completes at local
   SSD latency, write-through at object-store latency — the reason the
   churn phase uses write-back and only the commit phase pays for
   write-through.
"""

from bench_utils import emit

from repro.bench.report import format_table
from repro.blockstore.profiles import nvme_ssd
from repro.core.ocm import ObjectCacheManager, OcmConfig
from repro.objectstore import (
    RetryingObjectClient,
    SimulatedObjectStore,
)
from repro.objectstore.consistency import STRONG
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock

PAGE = b"p" * 4096


def make_ocm(capacity: int, lru_insert_before_upload: bool = False):
    profile = ObjectStoreProfile(name="s3", consistency=STRONG,
                                 transient_failure_probability=0.0,
                                 latency_jitter=0.0)
    store = SimulatedObjectStore(profile, clock=VirtualClock())
    client = RetryingObjectClient(store)
    return ObjectCacheManager(
        client, nvme_ssd(),
        OcmConfig(capacity_bytes=capacity,
                  lru_insert_before_upload=lru_insert_before_upload),
    )


def run_pollution(insert_before_upload: bool):
    """Hot reads interleaved with doomed writers.

    Returns (wasted uploads of doomed pages, virtual seconds).  Under the
    paper's rule, a doomed transaction's write-back pages are never
    uploaded: they are discarded at rollback.  Under the ablation they sit
    in the LRU and evictions force synchronous uploads of garbage.
    """
    ocm = make_ocm(capacity=20 * 4096,
                   lru_insert_before_upload=insert_before_upload)
    started = ocm.clock.now()
    # A hot working set that fits the cache on its own.
    for i in range(16):
        ocm.client.put(f"hot/{i}", PAGE)
        ocm.get(f"hot/{i}")
    for round_no in range(30):
        txn_id = 1000 + round_no
        # A doomed transaction floods the cache with write-back pages...
        for j in range(12):
            ocm.put(f"doomed/{round_no}/{j}", PAGE, txn_id=txn_id,
                    commit_mode=False)
        for i in range(16):
            ocm.get(f"hot/{i}")
        ocm.discard_txn(txn_id)  # ...then rolls back.
    stats = ocm.stats()
    wasted = int(stats.get("forced_uploads", 0))
    return wasted, ocm.clock.now() - started


def run_write_latency(commit_mode: bool) -> float:
    """Average virtual seconds per page write in the given mode."""
    ocm = make_ocm(capacity=1 << 24)
    started = ocm.clock.now()
    for i in range(64):
        ocm.put(f"w/{i}", PAGE, txn_id=1, commit_mode=commit_mode)
    elapsed = ocm.clock.now() - started
    if not commit_mode:
        # Fairness: the commit eventually drains the background uploads,
        # but the *write path* latency is what the churn phase feels.
        ocm.flush_for_commit(1)
    return elapsed / 64


def test_lru_insert_after_upload_prevents_pollution(benchmark):
    def run():
        return run_pollution(False), run_pollution(True)

    paper_rule, flipped = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_ocm_lru_rule",
        format_table(
            ["policy", "wasted uploads", "elapsed (virtual s)"],
            [
                ["insert after upload (paper)", paper_rule[0],
                 round(paper_rule[1], 3)],
                ["insert immediately (ablation)", flipped[0],
                 round(flipped[1], 3)],
            ],
        ),
    )
    # The paper's rule never uploads a doomed transaction's pages; the
    # ablation wastes uploads (and time) on garbage.
    assert paper_rule[0] == 0
    assert flipped[0] > 0
    assert flipped[1] > paper_rule[1]


def test_write_back_latency_advantage(benchmark):
    def run():
        return run_write_latency(False), run_write_latency(True)

    write_back, write_through = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    emit(
        "ablation_ocm_write_modes",
        format_table(
            ["mode", "seconds per page write"],
            [
                ["write-back (churn phase)", f"{write_back:.5f}"],
                ["write-through (commit phase)", f"{write_through:.5f}"],
            ],
        ),
    )
    # Churn-phase writes complete at SSD latency, far below S3 latency.
    assert write_back < write_through / 3
