"""Make the top-level benchmark helpers importable from the ablations dir."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))
