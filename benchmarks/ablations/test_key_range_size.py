"""Ablation: key-range allocation size — RPC round-trips vs GC poll width.

Small ranges mean a coordinator RPC for almost every key; large ranges
amortize RPCs but widen the key span a node-restart GC has to poll
(Section 3.2's trade-off, which the adaptive policy balances).
"""

from bench_utils import emit

from repro.bench.report import format_table
from repro.core.keygen import (
    NodeKeyCache,
    ObjectKeyGenerator,
    RangeSizePolicy,
)
from repro.core.log import TransactionLog
from repro.sim.clock import VirtualClock

KEYS_CONSUMED = 5000


def run_with_range(initial: int, adaptive: bool):
    clock = VirtualClock()
    generator = ObjectKeyGenerator(TransactionLog())
    policy = RangeSizePolicy(
        initial=initial,
        minimum=initial if not adaptive else 16,
        maximum=initial if not adaptive else 65536,
    )
    cache = NodeKeyCache("w1", generator.allocate_range, clock.now,
                         policy=policy)
    for __ in range(KEYS_CONSUMED):
        cache.next_key()
    # If the node crashed now, restart GC polls everything outstanding.
    poll_width = generator.active_set("w1").key_count()
    return {
        "rpcs": cache.refill_count,
        "poll_width": poll_width,
        "final_range": cache.range_size,
    }


def test_range_size_tradeoff(benchmark):
    def run():
        return (
            run_with_range(16, adaptive=False),
            run_with_range(4096, adaptive=False),
            run_with_range(64, adaptive=True),
        )

    small, large, adaptive = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_key_range_size",
        format_table(
            ["policy", "coordinator RPCs", "GC poll width", "final range"],
            [
                ["fixed 16", small["rpcs"], small["poll_width"],
                 small["final_range"]],
                ["fixed 4096", large["rpcs"], large["poll_width"],
                 large["final_range"]],
                ["adaptive (start 64)", adaptive["rpcs"],
                 adaptive["poll_width"], adaptive["final_range"]],
            ],
        ),
    )
    # Small ranges: hundreds of RPCs, tight GC polls.
    assert small["rpcs"] > 50 * large["rpcs"] / 10
    assert small["poll_width"] < large["poll_width"]
    # Large ranges: few RPCs, wide polls.
    assert large["rpcs"] <= 2
    # The adaptive policy lands between the extremes on both axes.
    assert large["rpcs"] <= adaptive["rpcs"] < small["rpcs"]
    assert adaptive["poll_width"] <= large["poll_width"]
