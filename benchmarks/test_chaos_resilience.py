"""Chaos resilience suite: the acceptance storm, asserted end to end.

Runs the canonical storm schedule (10 s full outage at t=5, then a 30 s
period of 20% errors, quarter-rate throttling and 4x latency) against a
full engine and asserts the ISSUE acceptance criteria:

- every committed transaction reads back byte-identical after recovery;
- the circuit breaker opens/closes at the scripted boundaries (asserted
  via the breaker-transition metric series);
- degraded-mode OCM serves cached reads during the outage;
- p99 read latency is measured under the storm;
- re-running with the same seed reproduces identical metric counts.

Marked ``chaos`` so CI can run it as its own smoke job.
"""

import pytest

from repro.cli import run_chaos_scenario

pytestmark = pytest.mark.chaos

OUTAGE_START = 5.0
OUTAGE_END = 15.0   # canonical storm: 10 s blackout...
STORM_END = 45.0    # ...then 30 s of degraded service

OPEN, HALF_OPEN, CLOSED = 2.0, 1.0, 0.0


@pytest.fixture(scope="module")
def storm():
    return run_chaos_scenario("storm", seed=0, start=OUTAGE_START)


def test_workload_made_progress_through_the_storm(storm):
    assert storm["commits_ok"] > 0
    assert storm["committed_pages"] > 0
    # The storm actually disturbed the run (else this suite tests nothing).
    assert storm["store_metrics"]["fault_outage_failures"] > 0
    assert storm["store_metrics"]["fault_storm_failures"] > 0
    assert storm["store_metrics"]["fault_throttled_requests"] > 0
    assert storm["store_metrics"]["fault_latency_spikes"] > 0


def test_committed_data_is_byte_identical_after_recovery(storm):
    assert storm["mismatches"] == 0


def test_breaker_cycles_at_scripted_boundaries(storm):
    transitions = storm["breaker_transitions"]
    opens = [t for t, code in transitions if code == OPEN]
    closes = [t for t, code in transitions if code == CLOSED]
    assert opens and closes
    # The breaker first opens during the blackout window...
    assert OUTAGE_START <= opens[0] < OUTAGE_END
    # ...and cannot close before the blackout lifts (every request in the
    # window fails, including half-open probes).
    assert closes[0] >= OUTAGE_END
    assert closes[0] > opens[0]
    # Transition counters agree with the series.
    snap = storm["client_metrics"]
    assert snap["breaker_opened"] == len(opens)
    assert snap["breaker_closed"] == len(closes)
    assert snap["breaker_fast_failures"] > 0
    # The run ends recovered: the last recorded state is closed.
    assert transitions[-1][1] == CLOSED


def test_degraded_ocm_served_cached_reads_during_outage(storm):
    assert storm["ocm_metrics"]["degraded_reads"] > 0


def test_hedged_gets_fired_under_the_storm(storm):
    assert storm["client_metrics"]["hedged_gets"] > 0


def test_p99_read_latency_is_measured(storm):
    assert 0.0 < storm["p99_get_latency"] < 60.0


def test_same_seed_reproduces_identical_metrics(storm):
    replay = run_chaos_scenario("storm", seed=0, start=OUTAGE_START)
    for section in ("client_metrics", "store_metrics", "ocm_metrics"):
        assert replay[section] == storm[section], section
    assert replay["breaker_transitions"] == storm["breaker_transitions"]
    for scalar in ("commits_ok", "commits_failed", "committed_pages",
                   "reads_failed_fast", "generations", "mismatches"):
        assert replay[scalar] == storm[scalar], scalar


def test_different_seed_diverges():
    a = run_chaos_scenario("storm", seed=0, start=OUTAGE_START, settle=1.0)
    b = run_chaos_scenario("storm", seed=1, start=OUTAGE_START, settle=1.0)
    assert a["store_metrics"] != b["store_metrics"]
