"""Table 5: OCM utilization during the TPC-H query pass.

Paper (m5ad.24xlarge): 962,573 misses (25.5%), 2,807,368 hits (74.5%),
962,589 evictions.  Shape: a clear hit-rate majority (~2/3-4/5) with
eviction counts of the same order as the misses.
"""

from bench_utils import emit

from repro.bench.experiments import policy_ablation_rows, table5_rows
from repro.bench.report import format_table


def test_table5_ocm_utilization(benchmark, suite):
    runs = benchmark.pedantic(suite.ocm_runs, rounds=1, iterations=1)
    run = runs["m5ad.24xlarge/ocm"]
    rows = table5_rows(run)
    emit("table5_ocm_stats",
         format_table(["", "Objects", "Percentage"], rows))
    stats = run.ocm_stats()
    hits, misses = stats["hits"], stats["misses"]
    hit_rate = hits / (hits + misses)
    # Paper: 74.5% hits, 25.5% misses.
    assert 0.55 < hit_rate < 0.95
    # Evictions of the same order of magnitude as misses.
    assert stats["evictions"] > 0
    assert stats["evictions"] < 5 * misses
    benchmark.extra_info.update(
        {"hit_rate": round(hit_rate, 3),
         "hits": int(hits), "misses": int(misses),
         "evictions": int(stats["evictions"])}
    )


def test_table5_policy_ablation_hit_ratios(benchmark, suite):
    """Table 5 companion: OCM utilization per eviction policy.

    At the default (working-set-sized) OCM capacity the three read-path
    variants must all sustain a healthy hit-rate majority — the arc2q
    segmentation and the adaptive re-routing arm may move requests
    around, but neither is allowed to wreck utilization on the plain
    TPC-H pass.
    """
    runs = benchmark.pedantic(suite.policy_ablation, rounds=1, iterations=1)
    rows = policy_ablation_rows(runs)
    emit("table5_policy_ablation",
         format_table(
             ["policy", "hit rate", "evictions", "geomean s", "queries s"],
             rows,
         ))
    hit_rates = {}
    for name, run in runs.items():
        stats = run.ocm_stats()
        hits, misses = stats["hits"], stats["misses"]
        hit_rates[name] = hits / (hits + misses)
        assert 0.55 < hit_rates[name] < 0.95, (
            f"{name}: hit rate {hit_rates[name]:.1%} out of range"
        )
    benchmark.extra_info.update(
        {name: f"{rate:.1%}" for name, rate in hit_rates.items()}
    )
