"""Figure 6: impact of the OCM on query execution times.

Paper: enabling the OCM improves the query geomean by 25.8% on
m5ad.4xlarge and 25.6% on m5ad.24xlarge; the first queries run on a cold
cache and see little or no benefit (warm-up), with later queries improving
steadily.  (The paper also reports a Q3/Q4 *regression* on m5ad.24xlarge
caused by SSD saturation from asynchronous cache fills; our batched
simulation reproduces the saturation mechanism but not the sign flip —
see EXPERIMENTS.md.)
"""

from bench_utils import emit

from repro.bench.report import format_table, geomean


def test_figure6_ocm_query_impact(benchmark, suite):
    runs = benchmark.pedantic(suite.ocm_runs, rounds=1, iterations=1)
    headers = ["query", "4xl OCM", "4xl no-OCM", "24xl OCM", "24xl no-OCM"]
    rows = []
    for q in range(1, 23):
        rows.append(
            [
                f"Q{q}",
                runs["m5ad.4xlarge/ocm"].query_times[q],
                runs["m5ad.4xlarge/noocm"].query_times[q],
                runs["m5ad.24xlarge/ocm"].query_times[q],
                runs["m5ad.24xlarge/noocm"].query_times[q],
            ]
        )
    emit("figure6_ocm_impact", format_table(headers, rows))

    gains = {}
    for instance in ("m5ad.4xlarge", "m5ad.24xlarge"):
        with_ocm = geomean(runs[f"{instance}/ocm"].query_times.values())
        without = geomean(runs[f"{instance}/noocm"].query_times.values())
        gains[instance] = 1 - with_ocm / without
        # Paper: ~25% geomean improvement on both instances.
        assert 0.10 < gains[instance] < 0.45, (
            f"{instance}: OCM gain {gains[instance]:.1%} out of range"
        )
    # Warm-up: the first queries (cold cache) benefit much less than the
    # rest of the run.
    for instance in ("m5ad.4xlarge", "m5ad.24xlarge"):
        ocm = runs[f"{instance}/ocm"].query_times
        no = runs[f"{instance}/noocm"].query_times
        early = geomean([ocm[q] for q in (1, 2)]) / geomean(
            [no[q] for q in (1, 2)]
        )
        late = geomean([ocm[q] for q in range(12, 23)]) / geomean(
            [no[q] for q in range(12, 23)]
        )
        assert early > late, f"{instance}: no warm-up effect"
        assert early > 0.9  # cold first queries: little or no benefit
    benchmark.extra_info.update(
        {instance: f"{gain:.1%}" for instance, gain in gains.items()}
    )


def test_figure6_policy_ablation_scan_latencies(benchmark, suite):
    """Figure 6 companion: per-query scan latencies under each OCM
    read-path variant (lru vs arc2q vs adaptive re-routing).

    On the plain TPC-H pass (no cache-pressure churn) the eviction
    policies see the same physical I/O, so lru and arc2q query times
    must agree closely — the scan-resistance win only appears under
    churn (see test_perf_pr3.py), and a divergence here would mean the
    policy layer itself perturbs the read path.  The adaptive
    re-routing arm *intentionally* moves saturated-SSD hits to the
    object store, so it is only held to a loose envelope.
    """
    runs = benchmark.pedantic(suite.policy_ablation, rounds=1, iterations=1)
    names = list(runs)
    headers = ["query"] + names
    rows = [
        [f"Q{q}"] + [runs[name].query_times[q] for name in names]
        for q in range(1, 23)
    ]
    emit("figure6_policy_ablation", format_table(headers, rows))
    geomeans = {
        name: geomean(run.query_times.values()) for name, run in runs.items()
    }
    baseline = geomeans["lru"]
    for name, value in geomeans.items():
        ratio = value / baseline
        bounds = (0.6, 1.6) if name == "adaptive_read_routing" else (0.95, 1.05)
        assert bounds[0] < ratio < bounds[1], (
            f"{name}: geomean {value:.2f}s diverges from lru "
            f"{baseline:.2f}s (x{ratio:.2f})"
        )
    benchmark.extra_info.update(
        {name: round(value, 2) for name, value in geomeans.items()}
    )
