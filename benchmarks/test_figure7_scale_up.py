"""Figure 7: scale-up behaviour (16 -> 48 -> 96 vCPUs).

Paper: almost-linear scalability on a log-log plot, with the gains from
48 to 96 CPUs slightly smaller than from 16 to 48 — the NIC saturates
around 9 Gbit/s, which is most visible during the load phase.
"""

from bench_utils import emit

from repro.bench.report import format_table


def test_figure7_scale_up(benchmark, suite):
    points = benchmark.pedantic(suite.scale_up, rounds=1, iterations=1)
    rows = [
        [p["instance"], p["cpus"], p["load"], p["queries"], p["total"]]
        for p in points
    ]
    emit(
        "figure7_scale_up",
        format_table(["instance", "cpus", "load", "queries", "total"], rows),
    )
    by_cpus = {p["cpus"]: p for p in points}
    # More CPUs never hurt, and the full benchmark gets faster throughout.
    assert by_cpus[16]["total"] > by_cpus[48]["total"] > by_cpus[96]["total"]
    # Query speedups: meaningful but sublinear (Amdahl + storage).
    q16, q48, q96 = (by_cpus[c]["queries"] for c in (16, 48, 96))
    first_gain = q16 / q48
    second_gain = q48 / q96
    assert first_gain > 1.3
    assert second_gain > 1.05
    # The 48->96 gain is smaller than the 16->48 gain (flattening).
    assert second_gain < first_gain
    # Load flattens even harder: the NIC is the load bottleneck.
    load_second_gain = by_cpus[48]["load"] / by_cpus[96]["load"]
    assert load_second_gain < first_gain
    benchmark.extra_info.update(
        {
            "query_speedup_16_to_48": round(first_gain, 2),
            "query_speedup_48_to_96": round(second_gain, 2),
        }
    )
