"""Table 3: compute cost of the load and of one sequential query pass.

Paper: load 15.18/5.04/15.39 USD, queries 2.35/3.88/8.53 USD for
S3/EBS/EFS.  Shape: S3's load costs more than EBS's (PUT request charges)
but its query pass is the cheapest because it finishes fastest; EFS is the
most expensive for queries.
"""

from bench_utils import emit

from repro.bench.experiments import table3_rows
from repro.bench.report import format_table


def test_table3_compute_costs(benchmark, suite):
    runs = benchmark.pedantic(suite.volume_runs, rounds=1, iterations=1)
    rows = table3_rows(runs)
    emit(
        "table3_compute_cost",
        format_table(["Volume", "Load Cost (USD)", "Query Cost (USD)"],
                     [[r[0], round(r[1], 2), round(r[2], 2)] for r in rows]),
    )
    costs = {r[0]: (r[1], r[2]) for r in rows}
    # S3 loads carry PUT charges: load cost above EBS's despite the faster
    # load (paper: 15.18 vs 5.04).
    assert costs["AWS S3"][0] > costs["AWS EBS"][0]
    # The query pass is cheapest on S3 and most expensive on EFS
    # (paper: 2.35 / 3.88 / 8.53).
    assert costs["AWS S3"][1] < costs["AWS EBS"][1] < costs["AWS EFS"][1]
    benchmark.extra_info.update(
        {name: {"load": round(lc, 2), "query": round(qc, 2)}
         for name, (lc, qc) in costs.items()}
    )
