"""Figure 8: network bandwidth utilization during the load.

Paper: on m5ad.24xlarge (20 Gbit/s NIC) the load saturates at slightly
more than 9 Gbit/s — a limitation the authors attribute to the engine's
512 KB page size, and the reason scale-up flattens in Figure 7.
"""

from bench_utils import emit

from repro.bench.experiments import figure8_series
from repro.bench.report import format_table


def test_figure8_network_saturation(benchmark, suite):
    runs = benchmark.pedantic(suite.volume_runs, rounds=1, iterations=1)
    series = figure8_series(runs["s3"])
    rows = [[f"{when:.0f}s", round(gbits, 2)] for when, gbits in series]
    emit("figure8_network_bandwidth",
         format_table(["time", "Gbit/s"], rows))
    peak = max(gbits for __, gbits in series)
    # Saturation near (and never above) the ~9 Gbit/s effective ceiling,
    # although the instance NIC is 20 Gbit/s.
    assert 5.0 < peak <= 9.5, f"peak bandwidth {peak:.2f} Gbit/s"
    # Sustained saturation: a good share of load-time buckets run close
    # to the peak.
    near_peak = sum(1 for __, g in series if g > 0.6 * peak)
    assert near_peak >= len(series) / 3
    benchmark.extra_info["peak_gbits"] = round(peak, 2)
