"""PR 9 target workload: what end-to-end integrity costs.

Two questions, one emitted result:

- **verified-read overhead** — the SF 0.1 TPC-H power run with
  ``verify_reads=True`` vs the default, same instance, same seed.
  Checksum verification is pure computation on bytes the client already
  holds (no extra simulated request, no RNG draw), so the *virtual*
  time overhead must stay under 5% — in practice it is exactly zero,
  and the assertion guards against anyone accidentally attaching a
  timed charge to the verify path.
- **mean-time-to-repair vs scrub budget** — the ``repro scrub``
  scenario (seeded at-rest rot over a replicated store) swept across
  ``bytes_per_second`` budgets.  The scrubber's pacing is charged
  through the virtual clock, so a tighter budget must stretch the pass
  (>= bytes/budget seconds) while still repairing every damaged copy.

Emits ``results/BENCH_pr9.json``.
"""

from bench_utils import emit, emit_json

from repro.bench.configs import load_engine
from repro.bench.report import format_table
from repro.cli import run_scrub_scenario
from repro.tpch.runner import power_run

SCALE_FACTOR = 0.1
INSTANCE = "m5ad.24xlarge"
MAX_VERIFY_OVERHEAD = 0.05
# 8 KiB/s .. 1 MiB/s, then the 8 MiB/s default (budget=None).
SCRUB_BUDGETS = (8 * 1024, 64 * 1024, 1024 * 1024, None)


def _verified_power_run(verify):
    db, __, load_sim_seconds = load_engine(
        INSTANCE, "s3", scale_factor=SCALE_FACTOR, verify_reads=verify
    )
    sim_times = power_run(db, SCALE_FACTOR)
    client = db.object_client.metrics.snapshot()
    return {
        "load_sim_seconds": load_sim_seconds,
        "query_sim_seconds": sim_times,
        "total_sim_seconds": load_sim_seconds + sum(sim_times.values()),
        "checksum_mismatches": client.get("checksum_mismatches", 0),
    }


def _run_all():
    baseline = _verified_power_run(verify=False)
    verified = _verified_power_run(verify=True)

    mttr = {}
    for budget in SCRUB_BUDGETS:
        result = run_scrub_scenario(seed=0, regions=3, budget=budget)
        mttr[budget] = result
    return {"baseline": baseline, "verified": verified, "mttr": mttr}


def test_integrity_overhead_and_time_to_repair(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    baseline = results["baseline"]
    verified = results["verified"]
    overhead = (
        verified["total_sim_seconds"] / baseline["total_sim_seconds"] - 1.0
    )

    payload = {
        "workload": "tpch_power_run_verified_reads",
        "scale_factor": SCALE_FACTOR,
        "instance": INSTANCE,
        "baseline_sim_seconds": baseline["total_sim_seconds"],
        "verified_sim_seconds": verified["total_sim_seconds"],
        "verify_overhead_fraction": overhead,
        "per_query": {
            f"Q{q}": {
                "baseline_sim_seconds": baseline["query_sim_seconds"][q],
                "verified_sim_seconds": verified["query_sim_seconds"][q],
            }
            for q in sorted(baseline["query_sim_seconds"])
        },
        "clean_run_checksum_mismatches": verified["checksum_mismatches"],
        "time_to_repair": {
            str(budget if budget is not None else "default"): {
                "bytes_per_second": run["bytes_per_second"],
                "scrub_virtual_seconds": run["scrub_virtual_seconds"],
                "bytes_scanned": run["scrub"]["bytes_scanned"],
                "damaged": run["damaged"],
                "repaired": run["scrub"]["repaired"],
                "corrupt_after": run["corrupt_after"],
            }
            for budget, run in results["mttr"].items()
        },
    }
    emit_json("BENCH_pr9", payload)

    rows = [
        ["baseline power run (sim s)",
         f"{baseline['total_sim_seconds']:.2f}"],
        ["verified power run (sim s)",
         f"{verified['total_sim_seconds']:.2f}"],
        ["verify overhead", f"{overhead * 100:.2f}%"],
    ]
    for budget, run in results["mttr"].items():
        label = "default" if budget is None else f"{budget} B/s"
        rows.append([
            f"scrub pass @ {label} (sim s)",
            f"{run['scrub_virtual_seconds']:.2f}",
        ])
    emit("BENCH_pr9", format_table(["metric", "value"], rows))

    # PR 9 acceptance: verification is (nearly) free in virtual time on
    # a clean store, never fires a false mismatch, and the scrub budget
    # is a real pacing knob — tighter budget, longer pass, same repairs.
    assert overhead < MAX_VERIFY_OVERHEAD, (
        f"verified reads cost {overhead * 100:.1f}% virtual time "
        f"({verified['total_sim_seconds']:.1f}s vs "
        f"{baseline['total_sim_seconds']:.1f}s)"
    )
    assert verified["checksum_mismatches"] == 0, \
        "a clean run must not produce false checksum mismatches"

    passes = [results["mttr"][b] for b in SCRUB_BUDGETS]
    for run in passes:
        assert run["corrupt_after"] == 0 and run["audit_ok_after"], \
            "every budget must still repair all seeded rot"
        assert run["scrub_virtual_seconds"] >= (
            run["scrub"]["bytes_scanned"] / run["bytes_per_second"]
        ) - 1e-9
    times = [run["scrub_virtual_seconds"] for run in passes]
    assert times == sorted(times, reverse=True) and times[0] > times[-1], (
        f"time-to-repair must stretch as the budget tightens, got {times}"
    )
