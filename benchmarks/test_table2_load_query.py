"""Table 2: TPC-H load and query times on S3 vs EBS vs EFS.

Paper (SF 1000, m5ad.24xlarge): load 2657/4294/12677 s; query geomean
23.2/52.1/119.3 s.  The reproduction must match the *shape*: S3 fastest
for both load and the query geomean, EFS slowest, with EFS several times
slower than S3.
"""

from bench_utils import emit

from repro.bench.experiments import table2_rows
from repro.bench.report import format_table


def test_table2_load_and_query_times(benchmark, suite):
    runs = benchmark.pedantic(suite.volume_runs, rounds=1, iterations=1)
    headers = (
        ["Storage Volume", "Load"]
        + [f"Q{q}" for q in range(1, 23)]
        + ["geomean"]
    )
    rows = table2_rows(runs)
    emit("table2_load_query_times", format_table(headers, rows))

    s3, ebs, efs = runs["s3"], runs["ebs"], runs["efs"]
    # Load ordering and rough ratios (paper: 2657 / 4294 / 12677).
    assert s3.load_seconds < ebs.load_seconds < efs.load_seconds
    assert efs.load_seconds / s3.load_seconds > 2.0
    # Query geomean ordering (paper: 23.2 / 52.1 / 119.3).
    assert s3.geomean_seconds < ebs.geomean_seconds < efs.geomean_seconds
    assert ebs.geomean_seconds / s3.geomean_seconds > 1.5
    assert efs.geomean_seconds / s3.geomean_seconds > 3.0
    benchmark.extra_info.update(
        {
            "load_s3": round(s3.load_seconds, 1),
            "load_ebs": round(ebs.load_seconds, 1),
            "load_efs": round(efs.load_seconds, 1),
            "geomean_s3": round(s3.geomean_seconds, 2),
            "geomean_ebs": round(ebs.geomean_seconds, 2),
            "geomean_efs": round(efs.geomean_seconds, 2),
        }
    )
