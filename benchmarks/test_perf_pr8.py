"""PR 8 target workload: the vectorized executor on TPC-H at SF 0.1.

One engine, one load, three comparisons:

- **real wall seconds** — the 22-query power run under the scalar
  (row-at-a-time python) executor vs the numpy vectorized executor, both
  steady-state (after one warmup pass that populates the buffer cache
  and the decoded-batch cache).  Acceptance: vectorized is >=5x faster
  in real wall-clock time on the same engine.
- **simulated seconds vs vCPUs** — the morsel scheduler must make
  simulated vectorized query time shrink as the instance grows
  1 -> 8 -> 16 vCPUs (the Figure 7 scale-up mechanism), measured by
  re-pricing the same engine's CPU without reloading.
- **decoded-batch cache** — hit/miss/byte counters after the runs, to
  show repeat scans are served without re-decoding.

Emits ``results/BENCH_pr8.json`` with real and simulated seconds per
query for both executors plus the vCPU curve.
"""

import time

import pytest
from bench_utils import emit, emit_json

from repro.bench.configs import load_engine
from repro.bench.report import format_table
from repro.tpch.runner import power_run

pytest.importorskip("numpy")

SCALE_FACTOR = 0.1
INSTANCE = "m5ad.24xlarge"
MIN_WALL_SPEEDUP = 5.0
# CI sanity budget for the steady-state vectorized power run: locally it
# takes ~5s; anything past this means the batch path regressed to
# row-at-a-time work somewhere.
VECTORIZED_WALL_BUDGET_SECONDS = 60.0
VCPU_CURVE = (1, 8, 16)


def _timed_power_run(db, vectorized):
    started = time.perf_counter()
    sim_times = power_run(db, SCALE_FACTOR, vectorized=vectorized)
    wall = time.perf_counter() - started
    return wall, sim_times


def _run_all():
    db, __, load_sim_seconds = load_engine(
        INSTANCE, "s3", scale_factor=SCALE_FACTOR
    )
    # Warmup: one vectorized pass fills the buffer cache and the
    # decoded-batch cache so both measured runs are steady-state.
    warmup_wall, __ = _timed_power_run(db, vectorized=True)

    scalar_wall, scalar_sim = _timed_power_run(db, vectorized=False)
    vector_wall, vector_sim = _timed_power_run(db, vectorized=True)

    native_vcpus = db.cpu.vcpus
    curve = {}
    for vcpus in VCPU_CURVE:
        db.cpu.vcpus = vcpus
        wall, sim = _timed_power_run(db, vectorized=True)
        curve[vcpus] = {
            "simulated_seconds_total": sum(sim.values()),
            "wall_seconds": wall,
        }
    db.cpu.vcpus = native_vcpus

    cache = db._decoded_batches
    scheduler = db._morsel_scheduler
    return {
        "db": db,
        "load_sim_seconds": load_sim_seconds,
        "warmup_wall_seconds": warmup_wall,
        "scalar_wall_seconds": scalar_wall,
        "vectorized_wall_seconds": vector_wall,
        "scalar_sim": scalar_sim,
        "vectorized_sim": vector_sim,
        "vcpu_curve": curve,
        "cache": {
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "bytes_used": cache.bytes_used,
        },
        "morsels_dispatched": scheduler.morsels_dispatched,
        "morsel_waves": scheduler.waves_run,
    }


def test_vectorized_executor_speedup(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    scalar_wall = results["scalar_wall_seconds"]
    vector_wall = results["vectorized_wall_seconds"]
    speedup = scalar_wall / vector_wall
    curve = results["vcpu_curve"]

    payload = {
        "workload": "tpch_power_run_vectorized",
        "scale_factor": SCALE_FACTOR,
        "instance": INSTANCE,
        "scalar_wall_seconds": scalar_wall,
        "vectorized_wall_seconds": vector_wall,
        "wall_speedup": speedup,
        "warmup_wall_seconds": results["warmup_wall_seconds"],
        "load_sim_seconds": results["load_sim_seconds"],
        "per_query": {
            f"Q{q}": {
                "scalar_sim_seconds": results["scalar_sim"][q],
                "vectorized_sim_seconds": results["vectorized_sim"][q],
            }
            for q in sorted(results["scalar_sim"])
        },
        "vcpu_curve": {str(v): curve[v] for v in sorted(curve)},
        "decoded_cache": results["cache"],
        "morsels_dispatched": results["morsels_dispatched"],
        "morsel_waves": results["morsel_waves"],
    }
    emit_json("BENCH_pr8", payload)

    rows = [
        ["scalar power run (wall s)", f"{scalar_wall:.2f}"],
        ["vectorized power run (wall s)", f"{vector_wall:.2f}"],
        ["wall speedup", f"{speedup:.1f}x"],
    ]
    for vcpus in sorted(curve):
        rows.append([
            f"vectorized sim seconds @ {vcpus} vcpus",
            f"{curve[vcpus]['simulated_seconds_total']:.0f}",
        ])
    rows.append(["decoded cache hits", results["cache"]["hits"]])
    rows.append(["decoded cache misses", results["cache"]["misses"]])
    emit("BENCH_pr8", format_table(["metric", "value"], rows))

    # PR 8 acceptance: >=5x real-time speedup on the same engine, and
    # simulated time strictly shrinking as the instance scales up.
    assert speedup >= MIN_WALL_SPEEDUP, (
        f"vectorized executor only {speedup:.1f}x faster "
        f"({vector_wall:.1f}s vs {scalar_wall:.1f}s scalar)"
    )
    sims = [curve[v]["simulated_seconds_total"] for v in sorted(curve)]
    assert sims[0] > sims[1] > sims[2], (
        f"simulated time must shrink with vCPUs, got {sims}"
    )
    assert vector_wall <= VECTORIZED_WALL_BUDGET_SECONDS
    assert results["cache"]["hits"] > 0
