"""PR 6 target workload: the disaster-recovery drill across lag settings.

One Table-1-style walkthrough per replication-lag setting, all on the
virtual clock: commit, snapshot, lose the primary region, fail over,
heal, fsck every region, restore the pre-outage snapshot on the new
primary.  Two numbers per row (DESIGN.md §12):

- **RTO** — virtual seconds from the start of the outage to the first
  successful cold-cache query on the new primary.  Dominated by the
  failover fence (waiting out the write horizon) plus the promotion
  drain, so it grows with the mean replication lag.
- **RPO** — zero for acknowledged writes (the durable replication queue
  is drained before the primary flips); bounded by the staleness horizon
  for replicated visibility.  The measured worst lag must sit inside the
  bound in every configuration.

Emits ``results/BENCH_pr6.json`` with the full drill measurements and a
rendered table alongside.
"""

from bench_utils import emit, emit_json

from repro.bench.dr import run_dr_matrix
from repro.bench.report import format_table

LAG_SETTINGS = (0.1, 0.5, 2.0)
STALENESS_HORIZON = 30.0


def _run_matrix():
    return run_dr_matrix(LAG_SETTINGS, seed=0,
                         staleness_horizon=STALENESS_HORIZON)


def test_dr_failover_rto_rpo(benchmark):
    results = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)

    payload = {
        "workload": "dr_failover_drill",
        "lag_settings": list(LAG_SETTINGS),
        "staleness_horizon": STALENESS_HORIZON,
        "drills": [result.to_dict() for result in results],
    }
    emit_json("BENCH_pr6", payload)

    rows = []
    for result in results:
        rows.append([
            result.mean_lag_seconds,
            round(result.failover_seconds, 3),
            round(result.rto_seconds, 3),
            result.rpo_acknowledged_seconds,
            result.rpo_bound_seconds,
            round(result.max_observed_lag_seconds, 3),
            result.drained_entries,
            "clean" if result.audit_ok else "DIRTY",
            "ok" if result.restore_ok else "FAILED",
        ])
    emit("BENCH_pr6", format_table(
        ["mean lag (s)", "failover (s)", "RTO (s)", "RPO ack (s)",
         "RPO bound (s)", "worst lag (s)", "drained", "fsck", "restore"],
        rows,
    ))

    # PR 6 acceptance: every drill ends clean — failover loses nothing,
    # the healed region reconciles, and the cross-region restore rewinds.
    for result in results:
        assert result.ok, (result.mean_lag_seconds, result.violations)
        assert result.audit_ok and result.restore_ok
        # RPO: acknowledged writes survive by construction; replicated
        # visibility never exceeds the staleness horizon.
        assert result.rpo_acknowledged_seconds == 0.0
        assert result.max_observed_lag_seconds <= STALENESS_HORIZON
        # RTO is a real, finite number on the virtual clock.
        assert 0.0 < result.rto_seconds < 60.0
    # More replication lag -> more queue to drain at promotion -> slower
    # failover.  The ordering must hold across the matrix.
    rtos = [result.rto_seconds for result in results]
    assert rtos == sorted(rtos)

    benchmark.extra_info.update({
        f"rto_lag_{result.mean_lag_seconds:g}s":
            round(result.rto_seconds, 3)
        for result in results
    })
