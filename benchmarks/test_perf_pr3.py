"""PR 3 target workload: churn + scan-heavy queries (Figure-6 style).

The workload interleaves append churn on a fact table with full-scan
TPC-H queries (Q1/Q6) over ``lineitem``, with the OCM sized below the
scan working set — the regime in which the paper's single-LRU cache
cycles and every round re-misses.  The optimized configuration enables
the PR 3 read-path stack (``arc2q`` scan-resistant eviction, pipelined
prefetch, adjacent-key GET coalescing) and must beat the seed
configuration by >=20% on scan virtual time and >=30% on object-store
GET requests.

Emits ``results/BENCH_pr3.json`` with virtual seconds, wall seconds,
request counts and USD per workload for both configurations.
"""

from bench_utils import emit, emit_json

from repro.bench.experiments import run_churn_query_workload
from repro.bench.report import format_table


def _run_both():
    return {
        "seed": run_churn_query_workload(optimized=False),
        "optimized": run_churn_query_workload(optimized=True),
    }


def test_churn_query_workload_improvement(benchmark):
    results = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    seed, optimized = results["seed"], results["optimized"]

    scan_ratio = (optimized["scan_virtual_seconds"]
                  / seed["scan_virtual_seconds"])
    get_ratio = optimized["get_requests"] / seed["get_requests"]
    payload = {
        "workload": "churn_query_figure6",
        "seed": seed,
        "optimized": optimized,
        "scan_time_ratio": scan_ratio,
        "get_request_ratio": get_ratio,
        "scan_time_reduction": 1 - scan_ratio,
        "get_request_reduction": 1 - get_ratio,
    }
    emit_json("BENCH_pr3", payload)

    rows = []
    for metric in ("load_virtual_seconds", "churn_virtual_seconds",
                   "scan_virtual_seconds", "workload_virtual_seconds",
                   "get_requests", "ranged_get_requests", "put_requests",
                   "workload_usd", "wall_seconds"):
        rows.append([metric, seed[metric], optimized[metric]])
    emit("BENCH_pr3", format_table(["metric", "seed", "optimized"], rows))

    # PR 3 acceptance: >=20% lower scan virtual time, >=30% fewer GETs.
    assert scan_ratio <= 0.80, (
        f"scan virtual time ratio {scan_ratio:.3f} exceeds 0.80 "
        f"({seed['scan_virtual_seconds']:.1f}s -> "
        f"{optimized['scan_virtual_seconds']:.1f}s)"
    )
    assert get_ratio <= 0.70, (
        f"GET request ratio {get_ratio:.3f} exceeds 0.70 "
        f"({seed['get_requests']:.0f} -> {optimized['get_requests']:.0f})"
    )
    # The optimized stack must not cost more: fewer billed requests and
    # less instance time both pull the workload bill down.
    assert optimized["workload_usd"] < seed["workload_usd"]
    # Coalescing actually engaged (ranged multi-gets observed).
    assert optimized["ranged_get_requests"] > 0
    assert seed["ranged_get_requests"] == 0
    benchmark.extra_info.update({
        "scan_time_reduction": f"{1 - scan_ratio:.1%}",
        "get_request_reduction": f"{1 - get_ratio:.1%}",
        "seed_usd": round(seed["workload_usd"], 4),
        "optimized_usd": round(optimized["workload_usd"], 4),
    })
