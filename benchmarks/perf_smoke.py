"""Perf-smoke guard: fail CI when scan virtual time regresses.

Runs a small cold TPC-H scan workload (Q1 + Q6 at SF 0.004, default
engine config — no PR 3 feature flags) on the deterministic virtual
clock and compares the scan virtual time and object-store GET count
against the committed baseline in ``perf_smoke_baseline.json``.

The simulation is deterministic, so the baseline is exact on any host;
the comparison still allows a small tolerance so that intentional,
reviewed timing-model changes only need a baseline refresh when they
actually move the numbers.

Usage:
    PYTHONPATH=src python benchmarks/perf_smoke.py                  # check
    PYTHONPATH=src python benchmarks/perf_smoke.py --write-baseline # refresh

Exit status 1 on regression (or missing baseline), 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.bench.configs import load_engine
from repro.tpch import power_run

BASELINE_PATH = pathlib.Path(__file__).parent / "perf_smoke_baseline.json"

SCALE_FACTOR = 0.004
INSTANCE_TYPE = "m5ad.24xlarge"
QUERY_NUMBERS = (1, 6)
# Virtual-seconds tolerance: fail only on a >2% scan-time regression.
TOLERANCE = 0.02


def run_workload() -> "dict":
    db, __store, load_seconds = load_engine(
        INSTANCE_TYPE, "s3", SCALE_FACTOR, True
    )
    assert db.object_store is not None
    db.node.invalidate_caches()
    if db.ocm is not None:
        db.ocm.invalidate_all()
    before = db.object_store.metrics.snapshot()
    started = db.clock.now()
    times = power_run(db, SCALE_FACTOR, query_numbers=list(QUERY_NUMBERS))
    after = db.object_store.metrics.snapshot()
    return {
        "scale_factor": SCALE_FACTOR,
        "instance_type": INSTANCE_TYPE,
        "query_numbers": list(QUERY_NUMBERS),
        "load_virtual_seconds": round(load_seconds, 6),
        "scan_virtual_seconds": round(db.clock.now() - started, 6),
        "query_virtual_seconds": {
            f"Q{q}": round(seconds, 6) for q, seconds in sorted(times.items())
        },
        "get_requests": after.get("get_requests", 0.0)
        - before.get("get_requests", 0.0),
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-baseline", action="store_true",
        help=f"write the current numbers to {BASELINE_PATH.name} and exit",
    )
    args = parser.parse_args(argv)

    current = run_workload()
    if args.write_baseline:
        BASELINE_PATH.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"ERROR: no baseline at {BASELINE_PATH}; "
              "run with --write-baseline and commit the result.")
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())

    base_scan = baseline["scan_virtual_seconds"]
    cur_scan = current["scan_virtual_seconds"]
    ratio = cur_scan / base_scan if base_scan else float("inf")
    base_gets = baseline["get_requests"]
    cur_gets = current["get_requests"]

    print(f"scan virtual seconds: baseline {base_scan:.3f}  "
          f"current {cur_scan:.3f}  (x{ratio:.4f})")
    print(f"object-store GETs:    baseline {base_gets:.0f}  "
          f"current {cur_gets:.0f}")

    failed = False
    if ratio > 1.0 + TOLERANCE:
        print(f"FAIL: scan virtual time regressed by {ratio - 1:.1%} "
              f"(tolerance {TOLERANCE:.0%})")
        failed = True
    if base_gets and cur_gets > base_gets * (1.0 + TOLERANCE):
        print(f"FAIL: GET request count regressed "
              f"({base_gets:.0f} -> {cur_gets:.0f})")
        failed = True
    if not failed:
        print("OK: no scan-time regression")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
