"""Property tests: the eventual-consistency model and never-write-twice.

The paper's central safety argument: if every object is written at most
once, an eventually consistent store can only ever return *the* version or
"not found" — never wrong data.  These tests drive the simulator with
random workloads and verify exactly that.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objectstore import (
    ConsistencyModel,
    RetryingObjectClient,
    RetryPolicy,
    SimulatedObjectStore,
)
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng


def make_store(seed, lag_probability, mean_lag):
    profile = ObjectStoreProfile(
        name="s3",
        consistency=ConsistencyModel(invisible_probability=lag_probability,
                                     mean_lag_seconds=mean_lag),
        transient_failure_probability=0.0,
        latency_jitter=0.0,
    )
    return SimulatedObjectStore(profile, clock=VirtualClock(),
                                rng=DeterministicRng(seed))


@given(
    seed=st.integers(0, 1000),
    lag_probability=st.floats(0.0, 1.0),
    mean_lag=st.floats(0.001, 1.0),
    writes=st.lists(st.tuples(st.integers(0, 30), st.binary(max_size=40)),
                    min_size=1, max_size=60),
)
@settings(max_examples=60, deadline=None)
def test_unique_keys_never_yield_wrong_data(seed, lag_probability,
                                            mean_lag, writes):
    """With unique keys, reads return the written bytes or nothing."""
    store = make_store(seed, lag_probability, mean_lag)
    written = {}
    for serial, (__, data) in enumerate(writes):
        key = f"k/{serial}"  # never reused
        store.put_at(key, data, float(serial))
        written[key] = data
    for key, data in written.items():
        observed, __ = store.try_get_at(key, 1e9)  # far future: all visible
        assert observed == data
    assert store.metrics.snapshot().get("stale_reads", 0) == 0


@given(
    seed=st.integers(0, 1000),
    overwrites=st.lists(st.binary(min_size=1, max_size=20), min_size=2,
                        max_size=10),
)
@settings(max_examples=60, deadline=None)
def test_overwrites_can_serve_stale_data(seed, overwrites):
    """The ablation scenario: rewriting one key risks stale reads."""
    store = make_store(seed, lag_probability=1.0, mean_lag=10.0)
    for i, data in enumerate(overwrites):
        store.put_at("same/key", data, float(i))
    observed, __ = store.try_get_at("same/key", float(len(overwrites)))
    # Whatever is observed is one of the written versions (or nothing) —
    # but never arbitrary bytes.
    assert observed is None or observed in overwrites


@given(
    seed=st.integers(0, 500),
    lag_probability=st.floats(0.0, 0.9),
    keys=st.lists(st.integers(0, 50), min_size=1, max_size=40, unique=True),
)
@settings(max_examples=40, deadline=None)
def test_retrying_client_always_reads_its_writes(seed, lag_probability, keys):
    """Read-after-write: the retrying client converges on every key."""
    store = make_store(seed, lag_probability, mean_lag=0.05)
    client = RetryingObjectClient(
        store, policy=RetryPolicy(max_attempts=30, initial_backoff=0.05)
    )
    for key in keys:
        payload = b"value-%d" % key
        client.put(f"k/{key}", payload)
        assert client.get(f"k/{key}") == payload
