"""Property tests: blockmap read-your-writes under random flush orders."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockstore.device import BlockDevice
from repro.blockstore.profiles import ram_disk
from repro.sim.clock import VirtualClock
from repro.storage.blockmap import Blockmap
from repro.storage.dbspace import BlockDbspace
from repro.storage.locator import NULL_LOCATOR, OBJECT_KEY_BASE


def make_store():
    device = BlockDevice(ram_disk(), 512, 100_000, clock=VirtualClock())
    return BlockDbspace("test", device)


@st.composite
def mapping_script(draw):
    """Interleaved set/flush operations over a small page space."""
    return draw(st.lists(
        st.one_of(
            st.tuples(st.just("set"), st.integers(0, 300),
                      st.integers(1, 10_000)),
            st.tuples(st.just("flush"), st.just(0), st.just(0)),
        ),
        max_size=80,
    ))


@given(mapping_script(), st.integers(2, 8))
@settings(max_examples=50, deadline=None)
def test_lookup_always_sees_latest_set(script, fanout):
    store = make_store()
    blockmap = Blockmap(store, fanout=fanout)
    model = {}
    for action, page, value in script:
        if action == "set":
            locator = OBJECT_KEY_BASE + value
            blockmap.set(page, locator)
            model[page] = locator
        else:
            blockmap.flush()
    for page, locator in model.items():
        assert blockmap.lookup(page) == locator
    # Unmapped pages stay unmapped.
    for page in range(310):
        if page not in model:
            assert blockmap.lookup(page) == NULL_LOCATOR


@given(mapping_script(), st.integers(2, 8))
@settings(max_examples=40, deadline=None)
def test_flush_reload_preserves_mappings(script, fanout):
    store = make_store()
    blockmap = Blockmap(store, fanout=fanout)
    model = {}
    for action, page, value in script:
        if action == "set":
            locator = OBJECT_KEY_BASE + value
            blockmap.set(page, locator)
            model[page] = locator
        else:
            blockmap.flush()
    root = blockmap.flush()
    if root == NULL_LOCATOR:
        assert not model
        return
    reloaded = Blockmap(store, fanout=fanout, root_locator=root,
                        height=blockmap.height)
    assert dict(reloaded.mapped_pages()) == model


@given(st.dictionaries(st.integers(0, 200), st.integers(1, 10_000),
                       max_size=40),
       st.dictionaries(st.integers(0, 200), st.integers(10_001, 20_000),
                       max_size=20))
@settings(max_examples=40, deadline=None)
def test_fork_isolation(base_mappings, fork_mappings):
    """A fork sees its own writes; the base never changes."""
    store = make_store()
    base = Blockmap(store, fanout=4)
    for page, value in base_mappings.items():
        base.set(page, OBJECT_KEY_BASE + value)
    base.flush()
    base.mark_committed()
    snapshot = dict(base.mapped_pages())

    fork = base.fork()
    for page, value in fork_mappings.items():
        fork.set(page, OBJECT_KEY_BASE + value)
    fork.flush()

    assert dict(base.mapped_pages()) == snapshot
    expected_fork = dict(snapshot)
    expected_fork.update(
        {p: OBJECT_KEY_BASE + v for p, v in fork_mappings.items()}
    )
    assert dict(fork.mapped_pages()) == expected_fork
