"""Property tests: recovery is idempotent and checkpoint-stable.

Replaying the same log twice must reconstruct identical state, and
recovering *from a recovered state's own checkpoint* must be a fixed
point: checkpointing ``recover(log)`` back into the log and recovering
again yields the same catalog, key generator, freelists, commit chain,
and commit sequence.  Together these guarantee a node can crash during
or immediately after recovery and converge to the same state.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recovery import encode_checkpoint, recover
from tests.conftest import make_db

MIB = 1024 * 1024


def fast_db():
    # A small system volume keeps the freelist bitmap decode (one
    # popcount per block on every recover()) out of the test budget.
    return make_db(system_volume_size_bytes=32 * MIB)


def state_fingerprint(recovered):
    """Everything RecoveredState reconstructs, in comparable form."""
    return (
        recovered.catalog.to_bytes(),
        json.dumps(recovered.keygen.checkpoint_state(), sort_keys=True),
        sorted(
            (name, freelist.to_bytes())
            for name, freelist in recovered.freelists.items()
        ),
        [entry.to_payload() for entry in recovered.chain_entries],
        recovered.commit_seq,
    )


@st.composite
def workload(draw):
    """Transactions (writes + outcome), with optional DDL beforehand."""
    txns = draw(st.lists(
        st.tuples(
            st.lists(st.tuples(st.integers(0, 15), st.binary(min_size=1,
                                                             max_size=200)),
                     min_size=1, max_size=5),
            st.sampled_from(["commit", "rollback"]),
        ),
        min_size=1, max_size=6,
    ))
    extra_object = draw(st.booleans())
    mid_crash = draw(st.booleans())
    return txns, extra_object, mid_crash


def run_workload(db, spec):
    txns, extra_object, mid_crash = spec
    db.create_object("t")
    if extra_object:
        db.create_object("u")
    for index, (writes, outcome) in enumerate(txns):
        txn = db.begin()
        for page, data in writes:
            db.write_page(txn, "t", page, data)
        if outcome == "commit":
            db.commit(txn)
        else:
            db.rollback(txn)
        if mid_crash and index == len(txns) // 2:
            db.crash()
            db.restart()


@given(workload())
@settings(max_examples=15, deadline=None)
def test_recover_twice_is_identical(spec):
    db = fast_db()
    run_workload(db, spec)
    first = recover(db.log)
    second = recover(db.log)
    assert state_fingerprint(first) == state_fingerprint(second)


@given(workload())
@settings(max_examples=15, deadline=None)
def test_recover_over_recovered_checkpoint_is_fixed_point(spec):
    db = fast_db()
    run_workload(db, spec)
    first = recover(db.log)
    db.log.checkpoint(encode_checkpoint(
        first.catalog,
        first.keygen,
        first.freelists,
        [entry.to_payload() for entry in first.chain_entries],
        first.commit_seq,
    ))
    second = recover(db.log)
    assert state_fingerprint(first) == state_fingerprint(second)


@given(workload())
@settings(max_examples=10, deadline=None)
def test_recovery_matches_live_engine_state(spec):
    """What recover() reconstructs is what the live engine holds."""
    db = fast_db()
    run_workload(db, spec)
    recovered = recover(db.log)
    assert recovered.catalog.to_bytes() == db.catalog.to_bytes()
    assert recovered.commit_seq == db.txn_manager.commit_seq
    assert recovered.keygen.max_allocated_key == db.keygen.max_allocated_key
