"""Property tests: column encodings are exact round trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar.encoding import decode_values, encode_values

ints = st.lists(
    st.integers(min_value=-(2 ** 47), max_value=2 ** 47 - 1), max_size=300
)
floats = st.lists(
    st.floats(allow_nan=False, allow_infinity=False, width=64), max_size=300
)
texts = st.lists(
    st.text(
        alphabet=st.characters(blacklist_characters="\x00",
                               blacklist_categories=("Cs",)),
        max_size=30,
    ),
    max_size=200,
)


@given(ints)
def test_int_roundtrip(values):
    assert decode_values(encode_values("int", values)) == values


@given(ints)
def test_date_roundtrip(values):
    assert decode_values(encode_values("date", values)) == values


@given(floats)
def test_float_roundtrip(values):
    assert decode_values(encode_values("float", values)) == values


@given(texts)
def test_string_roundtrip(values):
    assert decode_values(encode_values("str", values)) == values


@given(st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                max_size=500))
def test_narrow_ints_encode_compactly(values):
    payload = encode_values("int", values)
    # 2 bits per value plus ~16 bytes of header.
    assert len(payload) <= len(values) // 4 + 20
