"""Property tests: whole-engine invariants under random transaction mixes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.locator import is_object_key
from tests.conftest import make_db


@st.composite
def workload(draw):
    """A list of transactions, each writing some pages then ending."""
    txns = draw(st.lists(
        st.tuples(
            st.lists(st.tuples(st.integers(0, 15), st.binary(min_size=1,
                                                             max_size=200)),
                     min_size=1, max_size=6),
            st.sampled_from(["commit", "rollback"]),
        ),
        min_size=1, max_size=8,
    ))
    return txns


@given(workload())
@settings(max_examples=25, deadline=None)
def test_committed_state_matches_serial_model(txns):
    """The engine's visible state equals a serial dict-model replay."""
    db = make_db()
    db.create_object("t")
    model = {}
    for writes, outcome in txns:
        txn = db.begin()
        local = {}
        for page, data in writes:
            db.write_page(txn, "t", page, data)
            local[page] = data
        if outcome == "commit":
            db.commit(txn)
            model.update(local)
        else:
            db.rollback(txn)
    check = db.begin()
    for page, expected in model.items():
        assert db.read_page(check, "t", page) == expected
    db.commit(check)


@given(workload())
@settings(max_examples=20, deadline=None)
def test_no_reachable_page_is_ever_deleted(txns):
    """GC safety: every locator reachable via the catalog exists."""
    db = make_db()
    db.create_object("t")
    for writes, outcome in txns:
        txn = db.begin()
        for page, data in writes:
            db.write_page(txn, "t", page, data)
        if outcome == "commit":
            db.commit(txn)
        else:
            db.rollback(txn)
        # Invariant check after every transaction boundary.  Ground truth
        # (`latest_data`) rather than `exists`: a reachable object may be
        # momentarily invisible under eventual consistency, which readers
        # absorb with retries — but it must never have been *deleted*.
        for key in db._reachable_cloud_keys():
            name = db.user_dbspace.object_name(key)
            assert db.object_store.latest_data(name) is not None, (
                f"reachable object {name} deleted after {outcome}"
            )


@given(workload())
@settings(max_examples=15, deadline=None)
def test_store_converges_to_reachable_plus_nothing(txns):
    """After quiescence + GC, only reachable objects remain on the store."""
    db = make_db()
    db.create_object("t")
    for writes, outcome in txns:
        txn = db.begin()
        for page, data in writes:
            db.write_page(txn, "t", page, data)
        if outcome == "commit":
            db.commit(txn)
        else:
            db.rollback(txn)
    db.txn_manager.collect_garbage()
    reachable = db._reachable_cloud_keys()
    assert db.object_store.object_count() == len(reachable)
