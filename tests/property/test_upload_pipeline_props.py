"""Interleaving harness for the adaptive write-back pipeline (PR 5).

The pipeline adds three concurrent-looking mechanisms to the OCM's write
path — AIMD-windowed background drain, coalesced ranged PUTs, and group
commit flush — plus backpressure stalls.  Each one re-orders uploads
relative to the paper's serial one-PUT-per-page drain, so each is a new
chance to violate the paper's write-path invariants.  This harness
drives seeded schedules of background write-back vs. ``flush_for_commit``
vs. eviction vs. rollback vs. node crash through a deliberately tiny OCM
(every write evicts) and asserts, after **every** step:

1. **No key is ever PUT twice.**  Checked against ground truth: the
   simulated store's ``overwrites`` counter (incremented whenever a PUT
   lands on a key that already holds data) must stay zero, and the
   client must never raise :class:`OverwriteForbiddenError`.
2. **No page enters the LRU before its upload completes** — every cache
   entry with ``in_lru=True`` must have ``uploaded=True`` (the paper's
   insert-after-upload rule, Section 4).
3. **Committed pages are durable** — after ``flush_for_commit`` (and
   after ``drain_all``) every page the transaction wrote back reads back
   from the store itself, byte-identical, even if the node then crashes
   and loses its SSD.

Schedules run under both eviction policies (``lru`` and ``arc2q``) and
four knob sets: the fixed-window baseline, the full pipeline, the
pipeline with backpressure, and the pipeline against a store that throws
transient PUT failures (exercising range retry and per-key fallback).
The Hypothesis suite explores adversarial orderings; the seeded-loop
suite pins 200+ schedules so CI coverage does not depend on Hypothesis'
example budget.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockstore.profiles import nvme_ssd
from repro.core.ocm import ObjectCacheManager, OcmConfig
from repro.objectstore import RetryingObjectClient, SimulatedObjectStore
from repro.objectstore.consistency import STRONG
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng
from repro.storage.keys import hashed_object_name
from repro.storage.locator import OBJECT_KEY_BASE

POLICIES = ("lru", "arc2q")

KNOB_SETS = {
    "fixed": dict(),
    "pipeline": dict(adaptive_upload_window=True, coalesce_puts=True,
                     group_commit_flush=True),
    "pipeline+backpressure": dict(adaptive_upload_window=True,
                                  coalesce_puts=True,
                                  group_commit_flush=True,
                                  max_pending_uploads=4),
    "pipeline+faults": dict(adaptive_upload_window=True, coalesce_puts=True,
                            group_commit_flush=True, faulty=True),
}

TXNS = (1, 2, 3)
PAGE_BYTES = 256
# Capacity of 8 pages: schedules of ~40 writes overflow it repeatedly,
# so eviction interleaves with everything else.
CAPACITY = 8 * PAGE_BYTES


class PipelineDriver:
    """One OCM + store under test, plus the model that checks it."""

    def __init__(self, policy: str, knobs: str) -> None:
        options = dict(KNOB_SETS[knobs])
        faulty = options.pop("faulty", False)
        profile = ObjectStoreProfile(
            name="s3", consistency=STRONG,
            transient_failure_probability=0.05 if faulty else 0.0,
            latency_jitter=0.0,
        )
        self.store = SimulatedObjectStore(
            profile, clock=VirtualClock(),
            rng=DeterministicRng(7, "store"),
        )
        self.client = RetryingObjectClient(
            self.store,
            rng=DeterministicRng(11, "client"),
            coalesce_puts=bool(options.pop("coalesce_puts", False)),
        )
        self.ocm = ObjectCacheManager(
            self.client, nvme_ssd(),
            OcmConfig(capacity_bytes=CAPACITY, policy=policy,
                      upload_window=4, **options),
            rng=DeterministicRng(13, "ocm"),
        )
        self._next_key = OBJECT_KEY_BASE
        self._serial = 0
        # txn_id (or None) -> {name: bytes} written back, not yet resolved
        self.pending = {txn: {} for txn in (*TXNS, None)}
        self.durable = {}  # name -> bytes the store must serve forever

    def fresh_name(self) -> str:
        # Monotonic keys, exactly like the engine's Object Key Generator:
        # adjacent writes coalesce into ranged PUTs when the knob is on.
        name = hashed_object_name(self._next_key)
        self._next_key += 1
        return name

    def payload(self) -> bytes:
        self._serial += 1
        return bytes((self._serial + i) % 251 for i in range(PAGE_BYTES))

    # ----------------------------- actions ----------------------------- #

    def write_back(self, txn) -> None:
        name, data = self.fresh_name(), self.payload()
        self.ocm.put(name, data, txn_id=txn, commit_mode=False)
        self.pending[txn][name] = data

    def write_through(self) -> None:
        name, data = self.fresh_name(), self.payload()
        self.ocm.put(name, data, txn_id=None, commit_mode=True)
        self.durable[name] = data

    def write_many_through(self, count: int) -> None:
        items = [(self.fresh_name(), self.payload()) for __ in range(count)]
        self.ocm.put_many(items, commit_mode=True)
        self.durable.update(items)

    def flush(self, txn) -> None:
        self.ocm.flush_for_commit(txn)
        self.durable.update(self.pending[txn])
        self.pending[txn] = {}

    def rollback(self, txn) -> None:
        self.ocm.discard_txn(txn)
        # Never flushed, never durable; forget the pages entirely.  (With
        # backpressure some may already have drained — that is the same
        # early-upload semantics as the lru_insert_before_upload
        # ablation's forced uploads, and GC owns the orphans.)
        self.pending[txn] = {}

    def drain(self) -> None:
        self.ocm.drain_all()
        for txn in list(self.pending):
            self.durable.update(self.pending[txn])
            self.pending[txn] = {}

    def crash(self) -> None:
        # Ephemeral instance storage: the SSD cache and every queued
        # upload die with the node.  Durable data must not.
        self.ocm.invalidate_all()
        for txn in list(self.pending):
            self.pending[txn] = {}

    # --------------------------- invariants ---------------------------- #

    def check_step_invariants(self) -> None:
        # 1. Never-write-twice, from the store's point of view.
        assert self.store.metrics.snapshot().get("overwrites", 0.0) == 0.0
        # 2. Insert-after-upload: nothing unuploaded is in the LRU.
        for entry in self.ocm._entries.values():
            if entry.in_lru:
                assert entry.uploaded, (
                    f"{entry.name!r} entered the LRU before its upload"
                )

    def check_durability(self) -> None:
        # 3. Everything ever committed reads back from the store itself.
        for name, data in self.durable.items():
            assert self.store.latest_data(name) == data, (
                f"committed page {name!r} lost or altered on the store"
            )


def run_schedule(driver: "PipelineDriver", schedule) -> None:
    for action, arg in schedule:
        if action == "write_back":
            driver.write_back(TXNS[arg % len(TXNS)])
        elif action == "write_back_anon":
            driver.write_back(None)
        elif action == "write_through":
            driver.write_through()
        elif action == "write_many_through":
            driver.write_many_through(2 + arg % 6)
        elif action == "flush":
            driver.flush(TXNS[arg % len(TXNS)])
        elif action == "rollback":
            driver.rollback(TXNS[arg % len(TXNS)])
        elif action == "drain":
            driver.drain()
        elif action == "crash":
            driver.crash()
        driver.check_step_invariants()
        if action in ("flush", "drain", "write_through",
                      "write_many_through"):
            driver.check_durability()
    driver.drain()
    driver.check_step_invariants()
    driver.check_durability()


ACTIONS = ("write_back", "write_back_anon", "write_through",
           "write_many_through", "flush", "rollback", "drain", "crash")

# Crashes are rarer than writes so schedules accumulate enough state for
# eviction and coalescing to engage before it is wiped.
ACTION_WEIGHTS = (8, 3, 3, 3, 4, 2, 1, 1)


def schedule_strategy():
    return st.lists(
        st.tuples(st.sampled_from(ACTIONS), st.integers(0, 11)),
        min_size=5, max_size=60,
    )


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("knobs", sorted(KNOB_SETS))
@given(schedule=schedule_strategy())
@settings(max_examples=25, deadline=None)
def test_pipeline_invariants_hold_on_any_schedule(policy, knobs, schedule):
    run_schedule(PipelineDriver(policy, knobs), schedule)


def seeded_schedule(seed: int):
    rng = DeterministicRng(seed, "upload-pipeline")
    total = sum(ACTION_WEIGHTS)
    steps = []
    for i in range(40):
        roll = rng.randint(0, total - 1)
        for action, weight in zip(ACTIONS, ACTION_WEIGHTS):
            if roll < weight:
                break
            roll -= weight
        steps.append((action, rng.randint(0, 11)))
    return steps


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("knobs", sorted(KNOB_SETS))
def test_pipeline_invariants_hold_on_seeded_schedules(policy, knobs):
    """200+ pinned schedules: 32 seeds x 2 policies x 4 knob sets."""
    for seed in range(32):
        run_schedule(PipelineDriver(policy, knobs), seeded_schedule(seed))


def test_coalescing_engages_in_pipeline_schedules():
    """The harness is not vacuous: pipeline schedules actually produce
    ranged multi-puts and batched flush uploads."""
    driver = PipelineDriver("lru", "pipeline")
    for txn in TXNS:
        for __ in range(8):
            driver.write_back(txn)
    for txn in TXNS:
        driver.flush(txn)
    driver.check_step_invariants()
    driver.check_durability()
    snap = driver.store.metrics.snapshot()
    assert snap.get("ranged_put_requests", 0.0) > 0
    assert driver.ocm.stats().get("batched_flush_uploads", 0.0) > 0


def test_fallback_engages_under_faults():
    """With a faulty store, range retries and (eventually) per-key
    fallback fire while every invariant still holds."""
    driver = PipelineDriver("lru", "pipeline+faults")
    for seed in range(8):
        run_schedule(driver, seeded_schedule(seed))
    retries = driver.client.metrics.snapshot().get("put_retries", 0.0)
    assert retries > 0, "the faulty store never exercised a retry"
