"""Property tests: the OCM behaves like a correct cache.

Model-based testing: whatever interleaving of reads, write-backs,
write-throughs, commits and rollbacks happens, the OCM must return the
bytes a plain dict-model would, commits must make every written object
durable, and rollbacks must leave nothing behind.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockstore.profiles import nvme_ssd
from repro.core.ocm import ObjectCacheManager, OcmConfig
from repro.objectstore import RetryingObjectClient, SimulatedObjectStore
from repro.objectstore.consistency import STRONG
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock


def make_ocm(capacity):
    profile = ObjectStoreProfile(name="s3", consistency=STRONG,
                                 transient_failure_probability=0.0,
                                 latency_jitter=0.0)
    store = SimulatedObjectStore(profile, clock=VirtualClock())
    return ObjectCacheManager(
        RetryingObjectClient(store), nvme_ssd(),
        OcmConfig(capacity_bytes=capacity),
    ), store


@st.composite
def ocm_script(draw):
    steps = draw(st.lists(
        st.one_of(
            st.tuples(st.just("write"), st.integers(0, 15),
                      st.integers(1, 3), st.booleans()),
            st.tuples(st.just("read"), st.integers(0, 15), st.just(0),
                      st.just(False)),
            st.tuples(st.just("commit"), st.integers(1, 3), st.just(0),
                      st.just(False)),
            st.tuples(st.just("rollback"), st.integers(1, 3), st.just(0),
                      st.just(False)),
        ),
        max_size=50,
    ))
    return steps


@given(ocm_script(), st.sampled_from([4096, 1 << 20]))
@settings(max_examples=50, deadline=None)
def test_ocm_matches_dict_model(script, capacity):
    ocm, store = make_ocm(capacity)
    model = {}          # name -> latest bytes handed to the OCM
    open_txns = {}      # txn -> names written back and not yet resolved
    serial = 0
    for action, arg, txn, through in script:
        if action == "write":
            serial += 1
            # Fresh key per write: never-write-twice discipline.
            name = f"k/{arg}-{serial}"
            data = bytes([serial % 251]) * 64
            ocm.put(name, data, txn_id=txn, commit_mode=through)
            model[name] = data
            if not through:
                open_txns.setdefault(txn, []).append(name)
        elif action == "read":
            for name in [n for n in model if n.startswith(f"k/{arg}-")]:
                assert ocm.get(name) == model[name]
        elif action == "commit":
            ocm.flush_for_commit(txn)
            for name in open_txns.pop(txn, []):
                assert store.latest_data(name) == model[name]
        elif action == "rollback":
            ocm.discard_txn(txn)
            for name in open_txns.pop(txn, []):
                # Never uploaded, never readable again through the store.
                assert store.latest_data(name) is None
                model.pop(name, None)
    # Post-quiescence: everything still in the model reads back correctly.
    ocm.drain_all()
    for name, data in model.items():
        assert ocm.get(name) == data


@given(ocm_script())
@settings(max_examples=30, deadline=None)
def test_ocm_capacity_respected_after_drain(script):
    ocm, __ = make_ocm(capacity=2048)
    serial = 0
    for action, arg, txn, through in script:
        if action == "write":
            serial += 1
            ocm.put(f"k/{arg}-{serial}", b"v" * 64, txn_id=txn,
                    commit_mode=through)
        elif action == "commit":
            ocm.flush_for_commit(txn)
        elif action == "rollback":
            ocm.discard_txn(txn)
    ocm.drain_all()
    # Once nothing is pinned by pending uploads, LRU holds the line.
    assert ocm.used_bytes <= 2048 or ocm.entry_count() <= 1
