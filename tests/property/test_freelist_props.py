"""Property tests: freelist allocate/free invariants under random workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockstore.freelist import Freelist, FreelistError


@st.composite
def alloc_free_script(draw):
    """A random interleaving of allocations and frees."""
    steps = draw(st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(1, 16)),
            st.tuples(st.just("free"), st.integers(0, 50)),
        ),
        max_size=60,
    ))
    return steps


@given(alloc_free_script())
def test_allocations_never_overlap_and_accounting_holds(script):
    freelist = Freelist(512)
    live = []  # (start, count)
    for action, arg in script:
        if action == "alloc":
            try:
                start = freelist.allocate(arg)
            except FreelistError:
                continue
            # No overlap with any live allocation.
            for other_start, other_count in live:
                assert start + arg <= other_start or other_start + other_count <= start
            live.append((start, arg))
        elif live:
            index = arg % len(live)
            start, count = live.pop(index)
            freelist.free(start, count)
    assert freelist.used_blocks == sum(count for __, count in live)
    # Every live block is marked used; everything else is free.
    used = set()
    for start, count in live:
        used.update(range(start, start + count))
    for block in range(512):
        assert freelist.is_used(block) == (block in used)


@given(alloc_free_script())
def test_serialization_preserves_state(script):
    freelist = Freelist(256)
    live = []
    for action, arg in script:
        if action == "alloc":
            try:
                live.append((freelist.allocate(arg), arg))
            except FreelistError:
                pass
        elif live:
            start, count = live.pop(arg % len(live))
            freelist.free(start, count)
    restored = Freelist.from_bytes(freelist.to_bytes())
    assert restored.used_blocks == freelist.used_blocks
    assert list(restored.used_ranges()) == list(freelist.used_ranges())
