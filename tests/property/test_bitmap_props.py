"""Property tests: locator bitmaps and active sets."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitmaps import LocatorBitmap
from repro.core.keygen import ActiveSet
from repro.storage.locator import OBJECT_KEY_BASE

keys = st.integers(min_value=OBJECT_KEY_BASE, max_value=OBJECT_KEY_BASE + 5000)


@given(st.lists(keys, max_size=200))
def test_bitmap_serialization_roundtrip(locators):
    bitmap = LocatorBitmap(locators)
    restored = LocatorBitmap.from_bytes(bitmap.to_bytes())
    assert sorted(restored) == sorted(set(locators))


@given(st.lists(keys, max_size=200))
def test_ranges_cover_exactly_the_members(locators):
    bitmap = LocatorBitmap(locators)
    covered = set()
    for lo, hi in bitmap.cloud_key_ranges():
        assert lo <= hi
        covered.update(range(lo, hi + 1))
    assert covered == set(locators)


@given(st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 100)),
                max_size=30),
       st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 100)),
                max_size=30))
def test_active_set_add_remove_model(adds, removes):
    """The active set behaves like a plain set of integers."""
    active = ActiveSet()
    model = set()
    for lo, width in adds:
        active.add(lo, lo + width)
        model.update(range(lo, lo + width + 1))
    for lo, width in removes:
        active.remove(lo, lo + width)
        model.difference_update(range(lo, lo + width + 1))
    covered = set()
    for lo, hi in active.intervals():
        assert lo <= hi
        covered.update(range(lo, hi + 1))
    assert covered == model
    assert active.key_count() == len(model)


@given(st.lists(st.tuples(st.integers(0, 500), st.integers(0, 50)),
                min_size=1, max_size=20))
def test_active_set_intervals_normalized(adds):
    active = ActiveSet()
    for lo, width in adds:
        active.add(lo, lo + width)
    intervals = active.intervals()
    for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
        assert hi1 + 1 < lo2  # disjoint and non-adjacent (merged)
