"""Property tests: CRC-32C and the sealed-page trailer catch every
single-bit flip (and then some)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checksum import (
    ChecksumError,
    crc32c,
    open_page,
    seal_page,
)

payloads = st.binary(min_size=1, max_size=4096)


@given(payloads)
def test_seal_open_roundtrip(payload):
    assert open_page(seal_page(payload)) == payload


@given(payloads, st.integers(min_value=0))
def test_any_single_bit_flip_in_a_sealed_page_is_caught(payload, position):
    """CRC-32C detects *every* single-bit error, trailer bytes included.

    The flip position ranges over the whole sealed page — magic, stored
    checksum, and payload alike — so a rotted trailer is caught exactly
    like a rotted body.
    """
    sealed = bytearray(seal_page(payload))
    bit = position % (len(sealed) * 8)
    sealed[bit // 8] ^= 1 << (bit % 8)
    with pytest.raises(ChecksumError):
        open_page(bytes(sealed))


@given(payloads, st.integers(min_value=0))
def test_any_single_bit_flip_changes_the_crc(payload, position):
    bit = position % (len(payload) * 8)
    flipped = bytearray(payload)
    flipped[bit // 8] ^= 1 << (bit % 8)
    assert crc32c(bytes(flipped)) != crc32c(payload)


@settings(max_examples=50)
@given(payloads, st.integers(min_value=1, max_value=4096))
def test_truncation_is_caught(payload, cut):
    sealed = seal_page(payload)
    cut = min(cut, len(sealed))
    with pytest.raises(ChecksumError):
        open_page(sealed[:-cut])


@given(st.binary(max_size=1024), st.binary(max_size=1024))
def test_incremental_crc_matches_one_shot(a, b):
    assert crc32c(b, crc32c(a)) == crc32c(a + b)


def test_every_bit_of_a_small_page_exhaustively():
    """Deterministic exhaustive sweep backing up the sampled property."""
    payload = bytes(range(32))
    sealed = seal_page(payload)
    for bit in range(len(sealed) * 8):
        mutated = bytearray(sealed)
        mutated[bit // 8] ^= 1 << (bit % 8)
        with pytest.raises(ChecksumError):
            open_page(bytes(mutated))
