"""Property tests: niche indexes agree with brute-force evaluation."""

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar.niche import CmpIndex, DateIndex, TextIndex

ordinals = st.integers(
    min_value=datetime.date(1992, 1, 1).toordinal(),
    max_value=datetime.date(1998, 12, 31).toordinal(),
)


@given(st.lists(ordinals, max_size=200), st.integers(1992, 1998),
       st.integers(1, 12))
def test_date_index_matches_bruteforce(values, year, month):
    index = DateIndex()
    index.add_rows(values, first_row_id=0)
    expected = [
        i for i, ordinal in enumerate(values)
        if datetime.date.fromordinal(ordinal).year == year
        and datetime.date.fromordinal(ordinal).month == month
    ]
    assert index.lookup_month(year, month) == expected
    expected_year = [
        i for i, ordinal in enumerate(values)
        if datetime.date.fromordinal(ordinal).year == year
    ]
    assert index.lookup_year(year) == expected_year


@given(st.lists(ordinals, max_size=200))
def test_date_index_serialization(values):
    index = DateIndex()
    index.add_rows(values, first_row_id=10)
    restored = DateIndex.from_bytes(index.to_bytes())
    assert restored.month_counts() == index.month_counts()


@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)),
                max_size=200))
def test_cmp_index_partitions_rows(pairs):
    index = CmpIndex()
    index.add_rows([a for a, __ in pairs], [b for __, b in pairs],
                   first_row_id=0)
    lt = set(index.lookup("lt"))
    eq = set(index.lookup("eq"))
    gt = set(index.lookup("gt"))
    # A partition: disjoint and complete.
    assert lt | eq | gt == set(range(len(pairs)))
    assert not (lt & eq or lt & gt or eq & gt)
    for i, (a, b) in enumerate(pairs):
        member = lt if a < b else (eq if a == b else gt)
        assert i in member
    # Composite relations are exact unions.
    assert set(index.lookup("le")) == lt | eq
    assert set(index.lookup("ge")) == gt | eq
    assert set(index.lookup("ne")) == lt | gt


words = st.text(alphabet="abcdef ", min_size=0, max_size=30)


@given(st.lists(words, max_size=100), st.sampled_from("abcdef"))
def test_text_index_matches_bruteforce(texts, letter):
    index = TextIndex()
    index.add_rows(texts, first_row_id=0)
    # Single-letter "words" only count when tokenized as standalone words.
    expected = [
        i for i, text in enumerate(texts)
        if letter in TextIndex.tokenize(text)
    ]
    assert index.lookup(letter) == expected


@given(st.lists(words, max_size=100))
def test_text_index_serialization(texts):
    index = TextIndex()
    index.add_rows(texts, first_row_id=0)
    restored = TextIndex.from_bytes(index.to_bytes())
    assert restored.vocabulary_size == index.vocabulary_size
    for word in ("a", "abc", "f"):
        assert restored.lookup(word) == index.lookup(word)
