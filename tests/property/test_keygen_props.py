"""Property tests: key generator uniqueness/monotonicity across crashes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keygen import NodeKeyCache, ObjectKeyGenerator, RangeSizePolicy
from repro.core.log import TransactionLog
from repro.core.recovery import recover
from repro.sim.clock import VirtualClock


@given(st.lists(st.tuples(st.sampled_from(["w1", "w2", "w3"]),
                          st.integers(1, 200)),
                max_size=50))
def test_ranges_globally_unique_and_monotonic(requests):
    gen = ObjectKeyGenerator(TransactionLog())
    seen_hi = 0
    for node, count in requests:
        kr = gen.allocate_range(node, count)
        assert kr.lo > seen_hi or seen_hi == 0
        assert kr.count == count
        seen_hi = kr.hi


@given(st.lists(st.tuples(st.sampled_from(["w1", "w2"]),
                          st.integers(1, 100)),
                min_size=1, max_size=30),
       st.integers(0, 29))
def test_recovery_preserves_max_key(requests, crash_after):
    """Replaying the log recovers the maximum allocated key exactly."""
    log = TransactionLog()
    gen = ObjectKeyGenerator(log)
    for node, count in requests:
        gen.allocate_range(node, count)
    recovered = recover(log)
    assert recovered.keygen.max_allocated_key == gen.max_allocated_key
    for node in ("w1", "w2"):
        assert recovered.keygen.active_set(node) == gen.active_set(node)


@given(st.lists(st.integers(1, 50), min_size=1, max_size=20))
def test_node_caches_never_collide(draws_per_node):
    """Several nodes drawing concurrently never produce duplicate keys."""
    clock = VirtualClock()
    gen = ObjectKeyGenerator(TransactionLog())
    caches = [
        NodeKeyCache(f"node-{i}", gen.allocate_range, clock.now,
                     policy=RangeSizePolicy(initial=16))
        for i in range(3)
    ]
    keys = []
    for count in draws_per_node:
        for cache in caches:
            for __ in range(count):
                keys.append(cache.next_key())
    assert len(keys) == len(set(keys))


@given(st.lists(st.tuples(st.integers(1, 40), st.booleans()),
                min_size=1, max_size=20))
def test_cache_monotonic_per_node_even_with_drops(script):
    clock = VirtualClock()
    gen = ObjectKeyGenerator(TransactionLog())
    cache = NodeKeyCache("w1", gen.allocate_range, clock.now)
    previous = 0
    for draws, drop in script:
        for __ in range(draws):
            key = cache.next_key()
            assert key > previous
            previous = key
        if drop:
            cache.drop_cached_range()  # crash: cached keys are abandoned
