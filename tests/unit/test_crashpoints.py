"""Unit tests for the crash-point registry (arming, one-shot firing)."""

import pytest

from repro.sim.crashpoints import (
    CrashPointError,
    CrashPointRegistry,
    SimulatedCrash,
)


def test_register_is_idempotent_and_keeps_first_description():
    reg = CrashPointRegistry()
    reg.register("a.b", "first")
    reg.register("a.b", "second")
    assert reg.point("a.b").description == "first"
    assert reg.names() == ["a.b"]


def test_hit_without_arming_only_counts():
    reg = CrashPointRegistry()
    reg.register("step")
    for _ in range(3):
        reg.hit("step")
    assert reg.point("step").hits == 3
    assert reg.point("step").fired == 0


def test_armed_point_fires_once_then_disarms():
    reg = CrashPointRegistry()
    reg.register("step")
    reg.arm("step")
    with pytest.raises(SimulatedCrash) as exc:
        reg.hit("step")
    assert exc.value.point == "step"
    assert not reg.point("step").armed
    reg.hit("step")  # no longer armed: must not raise
    assert reg.point("step").fired == 1
    assert reg.fired_total == 1


def test_arm_skip_counts_traversals():
    reg = CrashPointRegistry()
    reg.register("step")
    reg.arm("step", skip=2)
    reg.hit("step")
    reg.hit("step")
    with pytest.raises(SimulatedCrash):
        reg.hit("step")


def test_arm_unknown_point_raises():
    reg = CrashPointRegistry()
    with pytest.raises(CrashPointError):
        reg.arm("nobody.registered.this")


def test_negative_skip_raises():
    reg = CrashPointRegistry()
    reg.register("step")
    with pytest.raises(CrashPointError):
        reg.arm("step", skip=-1)


def test_unregistered_hit_auto_registers():
    reg = CrashPointRegistry()
    reg.hit("ad.hoc")
    assert reg.point("ad.hoc").hits == 1


def test_disarm_all_clears_every_armed_point():
    reg = CrashPointRegistry()
    reg.register("a")
    reg.register("b")
    reg.arm("a")
    reg.arm("b", skip=5)
    assert reg.armed_points() == ["a", "b"]
    reg.disarm_all()
    assert reg.armed_points() == []
    reg.hit("a")
    reg.hit("b")


def test_armed_context_manager_disarms_on_exit():
    reg = CrashPointRegistry()
    reg.register("step")
    with reg.armed("step", skip=10):
        reg.hit("step")
        assert reg.point("step").armed
    assert not reg.point("step").armed


def test_fired_metrics_and_snapshot():
    reg = CrashPointRegistry()
    reg.register("step")
    reg.arm("step")
    with pytest.raises(SimulatedCrash):
        reg.hit("step")
    counters = reg.metrics.snapshot()
    assert counters["crashpoints_fired"] == 1
    assert counters["crashpoint_fired:step"] == 1
    assert reg.snapshot()["step"] == {"hits": 1, "fired": 1}


def test_reset_counts_preserves_registration_and_arming():
    reg = CrashPointRegistry()
    reg.register("step")
    reg.hit("step")
    reg.arm("step", skip=3)
    reg.reset_counts()
    assert reg.point("step").hits == 0
    assert reg.point("step").armed
    assert reg.names() == ["step"]


def test_engine_registers_a_wide_point_inventory():
    """Importing the engine modules registers the documented points."""
    from repro.bench.crash_explorer import registered_points

    names = registered_points()
    assert len(names) >= 25
    for expected in (
        "txn.commit.before_log",
        "keygen.allocate.before_log",
        "snapshot.reap.after_free",
        "engine.restart_gc.mid_poll",
        "multiplex.restart_gc.mid_poll",
    ):
        assert expected in names
