"""Unit tests for the buffer manager (Section 3.1)."""

import pytest

from repro.core.buffer import BufferError, BufferManager, ObjectHandle
from repro.core.txn import Transaction
from repro.objectstore import RetryingObjectClient, SimulatedObjectStore
from repro.objectstore.consistency import STRONG
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock
from repro.storage.blockmap import Blockmap
from repro.storage.dbspace import CloudDbspace, DirectObjectIO
from repro.storage.locator import NULL_LOCATOR, OBJECT_KEY_BASE
from repro.storage.page import PageConfig


class CounterKeys:
    def __init__(self):
        self.next = OBJECT_KEY_BASE

    def next_key(self):
        self.next += 1
        return self.next


class FakeNode:
    node_id = "test"


def make_env(capacity=1 << 20, page_size=16 * 1024):
    clock = VirtualClock()
    profile = ObjectStoreProfile(name="s3", consistency=STRONG,
                                 transient_failure_probability=0.0)
    store = SimulatedObjectStore(profile, clock=clock)
    dbspace = CloudDbspace("user", DirectObjectIO(RetryingObjectClient(store)),
                           CounterKeys())
    buffer = BufferManager(capacity, PageConfig(page_size))
    return buffer, dbspace, store


def make_txn(txn_id=1):
    return Transaction(txn_id, FakeNode(), begin_seq=0, snapshot={})


def make_handle(dbspace, txn=None, version=0, blockmap=None):
    writable = txn is not None
    return ObjectHandle(
        object_id=1,
        name="t",
        dbspace=dbspace,
        blockmap=blockmap or Blockmap(dbspace, fanout=8),
        version=version,
        page_count=0,
        writable=writable,
        txn=txn,
    )


def test_write_then_read_back():
    buffer, dbspace, __ = make_env()
    txn = make_txn()
    handle = make_handle(dbspace, txn)
    buffer.write_page(handle, 0, b"page zero")
    assert buffer.get_page(handle, 0) == b"page zero"
    assert handle.page_count == 1


def test_read_miss_loads_from_storage():
    buffer, dbspace, __ = make_env()
    txn = make_txn()
    handle = make_handle(dbspace, txn)
    buffer.write_page(handle, 0, b"persisted")
    buffer.flush_txn(txn.txn_id)
    buffer.invalidate_all()
    # A read handle at the (virtual) committed version.
    reader = make_handle(dbspace, None, version=0, blockmap=handle.blockmap)
    assert buffer.get_page(reader, 0) == b"persisted"
    assert buffer.metrics.snapshot()["misses"] == 1


def test_missing_page_raises():
    buffer, dbspace, __ = make_env()
    reader = make_handle(dbspace)
    with pytest.raises(BufferError):
        buffer.get_page(reader, 42)


def test_write_requires_writable_handle():
    buffer, dbspace, __ = make_env()
    reader = make_handle(dbspace)
    with pytest.raises(BufferError):
        buffer.write_page(reader, 0, b"x")


def test_oversized_page_rejected():
    buffer, dbspace, __ = make_env(page_size=16 * 1024)
    txn = make_txn()
    handle = make_handle(dbspace, txn)
    with pytest.raises(BufferError):
        buffer.write_page(handle, 0, b"x" * (16 * 1024 + 1))


def test_flush_uses_fresh_keys_per_flush():
    """Never-write-twice: two flushes of one page use two keys."""
    buffer, dbspace, store = make_env()
    txn = make_txn()
    handle = make_handle(dbspace, txn)
    buffer.write_page(handle, 0, b"v1")
    buffer.flush_txn(txn.txn_id)
    first_key = handle.blockmap.lookup(0)
    buffer.write_page(handle, 0, b"v2")
    buffer.flush_txn(txn.txn_id)
    second_key = handle.blockmap.lookup(0)
    assert first_key != second_key
    assert store.metrics.snapshot().get("overwrites", 0) == 0


def test_flush_records_rb_and_local_garbage():
    buffer, dbspace, __ = make_env()
    txn = make_txn()
    handle = make_handle(dbspace, txn)
    buffer.write_page(handle, 0, b"v1")
    buffer.flush_txn(txn.txn_id)
    assert len(txn.rb_for("user")) == 1
    buffer.write_page(handle, 0, b"v2")
    buffer.flush_txn(txn.txn_id)
    # The first key was superseded by the same transaction: local garbage.
    assert txn.local_garbage["user"]
    assert len(txn.rb_for("user")) == 1


def test_eviction_flushes_dirty_pages():
    buffer, dbspace, __ = make_env(capacity=8 * 1024)
    txn = make_txn()
    handle = make_handle(dbspace, txn)
    for page in range(10):
        buffer.write_page(handle, page, b"x" * 2048)
    assert buffer.metrics.snapshot().get("evictions", 0) > 0
    # Evicted dirty pages were flushed and are re-readable.
    for page in range(10):
        assert buffer.get_page(handle, page) == b"x" * 2048


def test_eviction_respects_capacity():
    buffer, dbspace, __ = make_env(capacity=8 * 1024)
    txn = make_txn()
    handle = make_handle(dbspace, txn)
    for page in range(50):
        buffer.write_page(handle, page, b"y" * 1024)
    assert buffer.used_bytes <= 8 * 1024


def test_promote_txn_frames():
    buffer, dbspace, __ = make_env()
    txn = make_txn()
    handle = make_handle(dbspace, txn)
    buffer.write_page(handle, 0, b"committed soon")
    buffer.flush_txn(txn.txn_id)
    buffer.promote_txn_frames(txn.txn_id, {1: 1})
    reader = make_handle(dbspace, None, version=1, blockmap=handle.blockmap)
    assert buffer.get_page(reader, 0) == b"committed soon"
    assert buffer.metrics.snapshot()["hits"] >= 1


def test_promote_refuses_dirty_frames():
    buffer, dbspace, __ = make_env()
    txn = make_txn()
    handle = make_handle(dbspace, txn)
    buffer.write_page(handle, 0, b"dirty")
    with pytest.raises(BufferError):
        buffer.promote_txn_frames(txn.txn_id, {1: 1})


def test_drop_txn_frames():
    buffer, dbspace, __ = make_env()
    txn = make_txn()
    handle = make_handle(dbspace, txn)
    buffer.write_page(handle, 0, b"doomed")
    dropped = buffer.drop_txn_frames(txn.txn_id)
    assert dropped == 1
    assert buffer.frame_count() == 0


def test_prefetch_brings_pages_in():
    buffer, dbspace, __ = make_env()
    txn = make_txn()
    handle = make_handle(dbspace, txn)
    for page in range(8):
        buffer.write_page(handle, page, b"p%d" % page)
    buffer.flush_txn(txn.txn_id)
    buffer.invalidate_all()
    reader = make_handle(dbspace, None, version=0, blockmap=handle.blockmap)
    assert buffer.prefetch(reader, range(8)) == 8
    hits_before = buffer.metrics.snapshot().get("hits", 0)
    for page in range(8):
        buffer.get_page(reader, page)
    assert buffer.metrics.snapshot()["hits"] == hits_before + 8


def test_prefetch_skips_cached_and_unmapped():
    buffer, dbspace, __ = make_env()
    txn = make_txn()
    handle = make_handle(dbspace, txn)
    buffer.write_page(handle, 0, b"zero")
    buffer.flush_txn(txn.txn_id)
    reader = make_handle(dbspace, None, version=0, blockmap=handle.blockmap)
    # Page 0 is cached (promoted frame lives under the working tag, so
    # read it once), page 99 unmapped.
    buffer.get_page(reader, 0)
    assert buffer.prefetch(reader, [0, 99]) == 0


def test_capacity_validation():
    with pytest.raises(BufferError):
        BufferManager(0)
