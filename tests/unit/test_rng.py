"""Unit tests for deterministic RNG substreams."""

from repro.sim.rng import DeterministicRng


def test_same_seed_same_sequence():
    a = DeterministicRng(42)
    b = DeterministicRng(42)
    assert [a.random() for __ in range(10)] == [b.random() for __ in range(10)]


def test_different_seeds_differ():
    a = DeterministicRng(1)
    b = DeterministicRng(2)
    assert [a.random() for __ in range(5)] != [b.random() for __ in range(5)]


def test_substreams_are_independent():
    root = DeterministicRng(7)
    x = root.substream("x")
    y = root.substream("y")
    assert [x.random() for __ in range(5)] != [y.random() for __ in range(5)]


def test_substream_isolated_from_sibling_consumption():
    """Drawing from one substream must not perturb another."""
    root_a = DeterministicRng(7)
    a1 = root_a.substream("one")
    __ = [a1.random() for __ in range(100)]
    a2 = root_a.substream("two")
    first_after_draws = a2.random()

    root_b = DeterministicRng(7)
    b2 = root_b.substream("two")
    assert b2.random() == first_after_draws


def test_nested_substreams_deterministic():
    a = DeterministicRng(3).substream("x").substream("y")
    b = DeterministicRng(3).substream("x").substream("y")
    assert a.random() == b.random()


def test_randint_bounds():
    rng = DeterministicRng(5)
    values = [rng.randint(3, 9) for __ in range(200)]
    assert min(values) >= 3
    assert max(values) <= 9
    assert set(values) == set(range(3, 10))


def test_uniform_bounds():
    rng = DeterministicRng(5)
    for __ in range(100):
        value = rng.uniform(1.0, 2.0)
        assert 1.0 <= value <= 2.0


def test_choice_and_sample():
    rng = DeterministicRng(6)
    options = ["a", "b", "c"]
    assert rng.choice(options) in options
    sampled = rng.sample(list(range(10)), 4)
    assert len(sampled) == 4
    assert len(set(sampled)) == 4
