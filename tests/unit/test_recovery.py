"""Unit tests for crash recovery: checkpoint + log replay."""

from repro.core.recovery import recover
from tests.conftest import make_db


def write_pages(db, txn, name, pages, payload=b"z" * 256):
    for page in pages:
        db.write_page(txn, name, page, payload + b"-%d" % page)


def test_recover_empty_log_from_initial_checkpoint():
    db = make_db()
    recovered = recover(db.log)
    assert recovered.commit_seq == 0
    assert recovered.replayed_commits == 0


def test_replay_reconstructs_catalog_and_keygen():
    db = make_db()
    db.create_object("t")
    db.checkpoint()
    txn = db.begin()
    write_pages(db, txn, "t", range(3))
    db.commit(txn)
    max_key = db.keygen.max_allocated_key

    recovered = recover(db.log)
    assert recovered.replayed_commits == 1
    assert recovered.keygen.max_allocated_key == max_key
    oid = recovered.catalog.object_id("t")
    assert recovered.catalog.current(oid).version == 1


def test_replay_trims_active_sets():
    db = make_db()
    db.create_object("t")
    db.checkpoint()
    txn = db.begin()
    write_pages(db, txn, "t", range(3))
    db.commit(txn)
    live_active = db.keygen.active_set("coordinator").intervals()
    recovered = recover(db.log)
    assert recovered.keygen.active_set("coordinator").intervals() == live_active


def test_gc_collect_records_remove_chain_entries():
    db = make_db()
    db.create_object("t")
    db.checkpoint()
    for round_no in range(3):
        txn = db.begin()
        write_pages(db, txn, "t", [0])
        db.commit(txn)
    # All GC already ran (no concurrent readers): replayed chain is empty.
    recovered = recover(db.log)
    assert recovered.chain_entries == []


def test_pending_chain_entries_survive_recovery():
    db = make_db()
    db.create_object("t")
    db.checkpoint()
    setup = db.begin()
    write_pages(db, setup, "t", [0])
    db.commit(setup)
    reader = db.begin()
    db.read_page(reader, "t", 0)
    update = db.begin()
    db.write_page(update, "t", 0, b"v2")
    db.commit(update)  # GC deferred: reader pins the old version
    recovered = recover(db.log)
    assert len(recovered.chain_entries) >= 1
    db.rollback(reader)


def test_object_created_after_checkpoint_recovered():
    db = make_db()
    db.checkpoint()
    db.create_object("late")
    txn = db.begin()
    write_pages(db, txn, "late", [0])
    db.commit(txn)
    recovered = recover(db.log)
    assert recovered.catalog.has_object("late")


def test_rollback_replay_is_a_noop():
    db = make_db()
    db.create_object("t")
    db.checkpoint()
    txn = db.begin()
    write_pages(db, txn, "t", [0])
    db.rollback(txn)
    recovered = recover(db.log)
    assert recovered.replayed_commits == 0
    oid = recovered.catalog.object_id("t")
    assert recovered.catalog.current(oid).version == 0
