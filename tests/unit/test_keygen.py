"""Unit tests for the Object Key Generator (Section 3.2)."""

import pytest

from repro.core.keygen import (
    ActiveSet,
    KeyRange,
    KeygenError,
    NodeKeyCache,
    ObjectKeyGenerator,
    RangeSizePolicy,
)
from repro.core.log import ALLOC_RANGE, TransactionLog
from repro.sim.clock import VirtualClock
from repro.storage.locator import OBJECT_KEY_BASE


class TestKeyRange:
    def test_count_and_iteration(self):
        kr = KeyRange(OBJECT_KEY_BASE + 1, OBJECT_KEY_BASE + 5)
        assert kr.count == 5
        assert list(kr)[0] == OBJECT_KEY_BASE + 1

    def test_validation(self):
        with pytest.raises(KeygenError):
            KeyRange(OBJECT_KEY_BASE + 5, OBJECT_KEY_BASE + 1)
        with pytest.raises(KeygenError):
            KeyRange(100, 200)  # below the reserved range


class TestActiveSet:
    def test_add_and_merge(self):
        active = ActiveSet()
        active.add(10, 20)
        active.add(21, 30)
        assert active.intervals() == [(10, 30)]

    def test_remove_middle_splits(self):
        active = ActiveSet([(10, 30)])
        active.remove(15, 20)
        assert active.intervals() == [(10, 14), (21, 30)]

    def test_remove_prefix(self):
        """Table 1 step 90: committed keys 101-130 leave {101-200}."""
        active = ActiveSet([(101, 200)])
        active.remove(101, 130)
        assert active.intervals() == [(131, 200)]

    def test_remove_disjoint_is_noop(self):
        active = ActiveSet([(10, 20)])
        active.remove(30, 40)
        assert active.intervals() == [(10, 20)]

    def test_key_count(self):
        active = ActiveSet([(1, 5), (10, 10)])
        assert active.key_count() == 6


class TestGenerator:
    def test_ranges_are_monotonic_and_disjoint(self):
        gen = ObjectKeyGenerator(TransactionLog())
        first = gen.allocate_range("w1", 100)
        second = gen.allocate_range("w2", 50)
        assert second.lo == first.hi + 1
        assert gen.max_allocated_key == second.hi

    def test_allocation_logged(self):
        log = TransactionLog()
        gen = ObjectKeyGenerator(log)
        kr = gen.allocate_range("w1", 10)
        records = [r for r in log.records() if r.kind == ALLOC_RANGE]
        assert records[0].payload == {"node": "w1", "lo": kr.lo, "hi": kr.hi}

    def test_active_set_tracks_allocations(self):
        gen = ObjectKeyGenerator(TransactionLog())
        kr = gen.allocate_range("w1", 100)
        assert gen.active_set("w1").intervals() == [(kr.lo, kr.hi)]

    def test_commit_trims_active_set(self):
        gen = ObjectKeyGenerator(TransactionLog())
        kr = gen.allocate_range("w1", 100)
        gen.notify_committed("w1", [(kr.lo, kr.lo + 29)])
        assert gen.active_set("w1").intervals() == [(kr.lo + 30, kr.hi)]

    def test_clear_active_set(self):
        gen = ObjectKeyGenerator(TransactionLog())
        gen.allocate_range("w1", 10)
        cleared = gen.clear_active_set("w1")
        assert cleared.key_count() == 10
        assert not gen.active_set("w1")

    def test_checkpoint_roundtrip(self):
        log = TransactionLog()
        gen = ObjectKeyGenerator(log)
        gen.allocate_range("w1", 100)
        gen.notify_committed("w1", [(OBJECT_KEY_BASE, OBJECT_KEY_BASE + 9)])
        state = gen.checkpoint_state()
        restored = ObjectKeyGenerator.from_checkpoint(log, state)
        assert restored.next_key == gen.next_key
        assert restored.active_set("w1") == gen.active_set("w1")

    def test_replay_allocation(self):
        gen = ObjectKeyGenerator(TransactionLog())
        gen.replay_allocation("w1", OBJECT_KEY_BASE + 50, OBJECT_KEY_BASE + 99)
        assert gen.next_key == OBJECT_KEY_BASE + 100
        assert gen.active_set("w1").intervals() == [
            (OBJECT_KEY_BASE + 50, OBJECT_KEY_BASE + 99)
        ]

    def test_invalid_count(self):
        gen = ObjectKeyGenerator(TransactionLog())
        with pytest.raises(KeygenError):
            gen.allocate_range("w1", 0)


class TestNodeKeyCache:
    def make_cache(self, policy=None):
        clock = VirtualClock()
        gen = ObjectKeyGenerator(TransactionLog())
        cache = NodeKeyCache("w1", gen.allocate_range, clock.now,
                             policy=policy)
        return clock, gen, cache

    def test_keys_unique_and_monotonic(self):
        __, __, cache = self.make_cache()
        keys = [cache.next_key() for __ in range(500)]
        assert keys == sorted(keys)
        assert len(set(keys)) == 500

    def test_refill_only_when_exhausted(self):
        __, __, cache = self.make_cache(
            policy=RangeSizePolicy(initial=10, minimum=10, maximum=10)
        )
        for __ in range(10):
            cache.next_key()
        assert cache.refill_count == 1
        cache.next_key()
        assert cache.refill_count == 2

    def test_range_grows_under_load(self):
        clock, __, cache = self.make_cache(
            policy=RangeSizePolicy(initial=8, minimum=8, maximum=1024,
                                   grow_threshold=1.0)
        )
        for __ in range(200):  # burst: all at virtual time 0
            cache.next_key()
        assert cache.range_size > 8

    def test_range_shrinks_when_idle(self):
        clock, __, cache = self.make_cache(
            policy=RangeSizePolicy(initial=64, minimum=8, maximum=1024,
                                   shrink_threshold=10.0)
        )
        for __ in range(65):
            cache.next_key()
        grown = cache.range_size
        clock.advance(1000.0)
        for __ in range(grown + 1):
            cache.next_key()
        assert cache.range_size < grown or cache.range_size == 8

    def test_drop_cached_range(self):
        __, gen, cache = self.make_cache()
        cache.next_key()
        dropped = cache.drop_cached_range()
        assert dropped is not None
        assert cache.remaining() == 0
        # Next key comes from a brand-new range: monotonicity preserved.
        assert cache.next_key() > dropped.hi
