"""Unit tests for the freelist bitmap allocator."""

import pytest

from repro.blockstore.freelist import Freelist, FreelistError


def test_allocate_contiguous_runs():
    freelist = Freelist(100)
    first = freelist.allocate(5)
    second = freelist.allocate(3)
    assert first != second
    assert freelist.used_blocks == 8
    for block in range(first, first + 5):
        assert freelist.is_used(block)


def test_free_returns_blocks():
    freelist = Freelist(10)
    start = freelist.allocate(4)
    freelist.free(start, 4)
    assert freelist.used_blocks == 0


def test_double_free_raises():
    freelist = Freelist(10)
    start = freelist.allocate(2)
    freelist.free(start, 2)
    with pytest.raises(FreelistError):
        freelist.free(start, 2)


def test_mark_free_is_idempotent():
    freelist = Freelist(10)
    start = freelist.allocate(2)
    freelist.mark_free(start, 2)
    freelist.mark_free(start, 2)
    assert freelist.used_blocks == 0


def test_exhaustion_raises():
    freelist = Freelist(10)
    freelist.allocate(10)
    with pytest.raises(FreelistError):
        freelist.allocate(1)


def test_fragmentation_requires_contiguity():
    freelist = Freelist(10)
    first = freelist.allocate(4)
    freelist.allocate(4)
    freelist.free(first, 4)
    # 4 free at the front, 2 at the back: a run of 5 does not fit.
    with pytest.raises(FreelistError):
        freelist.allocate(5)
    # But 4 does (reusing the freed front run).
    assert freelist.allocate(4) == first


def test_wraparound_scan():
    freelist = Freelist(10)
    a = freelist.allocate(5)
    b = freelist.allocate(5)
    freelist.free(a, 5)
    # Cursor is at the end; allocation must wrap to the start.
    assert freelist.allocate(5) == a


def test_used_ranges():
    freelist = Freelist(20)
    freelist.mark_used(2, 3)
    freelist.mark_used(10, 1)
    assert list(freelist.used_ranges()) == [(2, 3), (10, 1)]


def test_serialization_roundtrip():
    freelist = Freelist(64)
    freelist.allocate(7)
    freelist.mark_used(50, 3)
    restored = Freelist.from_bytes(freelist.to_bytes())
    assert restored.total_blocks == 64
    assert restored.used_blocks == freelist.used_blocks
    assert list(restored.used_ranges()) == list(freelist.used_ranges())


def test_copy_is_independent():
    freelist = Freelist(16)
    freelist.allocate(4)
    clone = freelist.copy()
    clone.allocate(4)
    assert freelist.used_blocks == 4
    assert clone.used_blocks == 8


def test_bounds_checking():
    freelist = Freelist(10)
    with pytest.raises(FreelistError):
        freelist.is_used(10)
    with pytest.raises(FreelistError):
        freelist.mark_used(8, 5)
    with pytest.raises(FreelistError):
        freelist.allocate(0)
    with pytest.raises(FreelistError):
        Freelist(0)
