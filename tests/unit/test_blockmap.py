"""Unit tests for the blockmap tree (Figure 2 machinery)."""

import pytest

from repro.blockstore.device import BlockDevice
from repro.blockstore.profiles import ram_disk
from repro.objectstore import RetryingObjectClient, SimulatedObjectStore
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.objectstore.consistency import STRONG
from repro.sim.clock import VirtualClock
from repro.storage.blockmap import Blockmap, BlockmapError
from repro.storage.dbspace import BlockDbspace, CloudDbspace, DirectObjectIO
from repro.storage.locator import NULL_LOCATOR, OBJECT_KEY_BASE, is_object_key


class CounterKeys:
    def __init__(self):
        self.next = OBJECT_KEY_BASE

    def next_key(self):
        self.next += 1
        return self.next


class RecordingSink:
    def __init__(self):
        self.allocated = []
        self.replaced = []

    def on_allocate(self, locator):
        self.allocated.append(locator)

    def on_replace(self, old, fresh):
        self.replaced.append((old, fresh))


@pytest.fixture
def cloud_store():
    clock = VirtualClock()
    profile = ObjectStoreProfile(name="s3", consistency=STRONG,
                                 transient_failure_probability=0.0)
    store = SimulatedObjectStore(profile, clock=clock)
    client = RetryingObjectClient(store)
    return CloudDbspace("user", DirectObjectIO(client), CounterKeys())


@pytest.fixture
def block_store():
    device = BlockDevice(ram_disk(), 4096, 10_000, clock=VirtualClock())
    return BlockDbspace("sys", device)


def test_empty_blockmap_lookup(cloud_store):
    blockmap = Blockmap(cloud_store, fanout=4)
    assert blockmap.lookup(0) == NULL_LOCATOR
    assert blockmap.lookup(1000) == NULL_LOCATOR


def test_set_and_lookup(cloud_store):
    blockmap = Blockmap(cloud_store, fanout=4)
    blockmap.set(3, OBJECT_KEY_BASE + 99)
    assert blockmap.lookup(3) == OBJECT_KEY_BASE + 99


def test_set_returns_previous(cloud_store):
    blockmap = Blockmap(cloud_store, fanout=4)
    assert blockmap.set(1, OBJECT_KEY_BASE + 1) == NULL_LOCATOR
    assert blockmap.set(1, OBJECT_KEY_BASE + 2) == OBJECT_KEY_BASE + 1


def test_tree_grows_with_page_numbers(cloud_store):
    blockmap = Blockmap(cloud_store, fanout=4)
    assert blockmap.height == 1
    blockmap.set(100, OBJECT_KEY_BASE + 1)
    assert blockmap.height >= 4  # 4^4 = 256 >= 101
    assert blockmap.lookup(100) == OBJECT_KEY_BASE + 1


def test_flush_and_reload(cloud_store):
    blockmap = Blockmap(cloud_store, fanout=4)
    mappings = {}
    for page in range(40):
        locator = cloud_store.write_page(b"page-%d" % page)
        blockmap.set(page, locator)
        mappings[page] = locator
    root = blockmap.flush()
    reloaded = Blockmap(cloud_store, fanout=4, root_locator=root,
                        height=blockmap.height)
    for page, locator in mappings.items():
        assert reloaded.lookup(page) == locator


def test_flush_cascade_versions_every_level(cloud_store):
    """Figure 2: flushing a data page versions leaf, parents and root."""
    blockmap = Blockmap(cloud_store, fanout=2)
    for page in range(8):
        blockmap.set(page, OBJECT_KEY_BASE + 100 + page)
    root_v1 = blockmap.flush()
    blockmap.mark_committed()

    sink = RecordingSink()
    blockmap.set(7, OBJECT_KEY_BASE + 999)
    root_v2 = blockmap.flush(sink)
    assert root_v2 != root_v1
    # Height-3 tree of fanout 2 over 8 pages: leaf, inner, root re-versioned.
    assert len(sink.allocated) == blockmap.height
    assert len(sink.replaced) == blockmap.height
    assert all(not fresh for __, fresh in sink.replaced)


def test_flush_within_txn_reports_fresh_garbage(cloud_store):
    blockmap = Blockmap(cloud_store, fanout=2)
    sink = RecordingSink()
    blockmap.set(0, OBJECT_KEY_BASE + 1)
    blockmap.flush(sink)
    blockmap.set(1, OBJECT_KEY_BASE + 2)
    blockmap.flush(sink)
    # The second flush supersedes nodes written by the *same* transaction.
    assert any(fresh for __, fresh in sink.replaced)


def test_fork_copy_on_write(cloud_store):
    base = Blockmap(cloud_store, fanout=4)
    for page in range(10):
        base.set(page, OBJECT_KEY_BASE + page + 1)
    base.flush()
    base.mark_committed()

    fork = base.fork()
    fork.set(5, OBJECT_KEY_BASE + 777)
    assert fork.lookup(5) == OBJECT_KEY_BASE + 777
    assert base.lookup(5) == OBJECT_KEY_BASE + 6  # base untouched
    fork.flush()
    assert base.lookup(5) == OBJECT_KEY_BASE + 6


def test_fork_requires_clean_base(cloud_store):
    blockmap = Blockmap(cloud_store, fanout=4)
    blockmap.set(0, OBJECT_KEY_BASE + 1)
    with pytest.raises(BlockmapError):
        blockmap.fork()


def test_fork_of_empty_blockmap_allowed(cloud_store):
    empty = Blockmap(cloud_store, fanout=4)
    fork = empty.fork()
    fork.set(0, OBJECT_KEY_BASE + 1)
    root = fork.flush()
    assert root != NULL_LOCATOR


def test_live_locators_walk(cloud_store):
    blockmap = Blockmap(cloud_store, fanout=2)
    for page in range(6):
        blockmap.set(page, OBJECT_KEY_BASE + 10 + page)
    blockmap.flush()
    live = set(blockmap.live_locators())
    for page in range(6):
        assert OBJECT_KEY_BASE + 10 + page in live
    # Blockmap pages themselves are live (reachable) too.
    assert len(live) > 6


def test_mapped_pages(cloud_store):
    blockmap = Blockmap(cloud_store, fanout=4)
    blockmap.set(2, OBJECT_KEY_BASE + 5)
    blockmap.set(9, OBJECT_KEY_BASE + 6)
    blockmap.flush()
    assert dict(blockmap.mapped_pages()) == {
        2: OBJECT_KEY_BASE + 5,
        9: OBJECT_KEY_BASE + 6,
    }


def test_block_store_update_in_place(block_store):
    """On conventional dbspaces, same-transaction flushes reuse locators."""
    blockmap = Blockmap(block_store, fanout=4)
    sink = RecordingSink()
    blockmap.set(0, block_store.write_page(b"data"))
    blockmap.flush(sink)
    allocated_first = list(sink.allocated)
    blockmap.set(1, block_store.write_page(b"data2"))
    blockmap.flush(sink)
    # The root node was updated in place: exactly one extra allocation
    # event would indicate re-versioning; in-place reuses the locator.
    assert sink.allocated == allocated_first


def test_negative_page_rejected(cloud_store):
    blockmap = Blockmap(cloud_store, fanout=4)
    with pytest.raises(BlockmapError):
        blockmap.lookup(-1)
    with pytest.raises(BlockmapError):
        blockmap.set(-1, OBJECT_KEY_BASE + 1)


def test_invalid_fanout(cloud_store):
    with pytest.raises(BlockmapError):
        Blockmap(cloud_store, fanout=1)
