"""Unit tests for the store auditor (cloud fsck)."""

import pytest

from repro.core.audit import AuditError, StoreAuditor
from tests.conftest import make_db


def commit_pages(db, name, pages, tag=b"v"):
    txn = db.begin()
    for page in pages:
        db.write_page(txn, name, page, tag + b"-%d" % page)
    db.commit(txn)


def test_clean_database_audits_clean():
    db = make_db()
    db.create_object("t")
    commit_pages(db, "t", range(4))
    report = StoreAuditor(db).audit()
    assert report.ok()
    assert report.leaked == []
    assert report.missing == []
    assert report.objects_scanned == db.object_store.object_count()
    assert report.live == report.objects_scanned


def test_superseded_pages_classified_not_leaked():
    db = make_db()
    db.create_object("t")
    commit_pages(db, "t", range(3), tag=b"old")
    commit_pages(db, "t", range(3), tag=b"new")
    report = StoreAuditor(db).audit()
    # Superseded pages sit in the chain or retention FIFO, never LEAKED.
    assert report.ok()
    assert report.objects_scanned >= report.live


def test_uncommitted_flushed_pages_are_active_covered():
    db = make_db()
    db.create_object("t")
    txn = db.begin()
    db.write_page(txn, "t", 0, b"in flight")
    db.buffer.flush_txn(txn.txn_id, commit_mode=False)
    if db.ocm is not None:
        db.ocm.drain_all()
    report = StoreAuditor(db).audit()
    assert report.ok()
    assert report.active_covered >= 1
    db.rollback(txn)


def test_deleted_live_object_reported_missing():
    db = make_db()
    db.create_object("t")
    commit_pages(db, "t", range(2))
    report = StoreAuditor(db).audit()
    assert report.ok() and report.live >= 1
    # Vaporize one live object straight on the store (simulated bit rot).
    victim = sorted(db._reachable_cloud_keys())[0]
    name = db.user_dbspace.object_name(victim)
    db.object_store.delete_at(name, db.clock.now())
    report = StoreAuditor(db).audit()
    assert not report.ok()
    assert any(key == victim for __, key in report.missing)
    assert db.metrics.snapshot()["fsck_missing"] >= 1


def test_broken_gc_reported_leaked():
    db = make_db()
    db.create_object("t")
    commit_pages(db, "t", range(3), tag=b"old")
    # Regression fixture: GC "collects" entries without freeing RF pages.
    db.txn_manager._apply_rf = lambda entry: 0
    commit_pages(db, "t", range(3), tag=b"new")
    db.txn_manager.collect_garbage()
    report = StoreAuditor(db).audit()
    assert not report.ok()
    assert report.leaked
    assert db.metrics.snapshot()["fsck_leaked"] == len(report.leaked)


def test_snapshot_retained_pages_covered():
    db = make_db(retention_seconds=3600.0)
    db.create_object("t")
    commit_pages(db, "t", range(2), tag=b"snapped")
    db.create_snapshot()
    commit_pages(db, "t", range(2), tag=b"current")
    db.txn_manager.collect_garbage()
    report = StoreAuditor(db).audit()
    assert report.ok()
    assert report.snapshot_retained >= 1


def test_report_to_dict_is_machine_readable():
    db = make_db()
    db.create_object("t")
    commit_pages(db, "t", [0])
    payload = StoreAuditor(db).audit().to_dict()
    assert payload["ok"] is True
    assert isinstance(payload["objects_scanned"], int)
    for list_field in ("leaked", "missing", "snapshot_missing",
                      "unparseable"):
        assert isinstance(payload[list_field], list)


def test_audit_requires_cloud_dbspaces():
    db = make_db(user_volume="ebs")
    with pytest.raises(AuditError):
        StoreAuditor(db).audit()


def test_audit_does_not_advance_clock():
    db = make_db()
    db.create_object("t")
    commit_pages(db, "t", range(2))
    before = db.clock.now()
    StoreAuditor(db).audit()
    assert db.clock.now() == before
