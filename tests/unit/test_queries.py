"""Unit tests for the 22 TPC-H queries (shape + semantic spot checks)."""

import pytest

from repro.columnar.query import QueryContext, n_rows
from repro.tpch.datagen import TpchGenerator
from repro.tpch.dates import CURRENT_DATE, d
from repro.tpch.queries import QUERIES, run_query

SF = 0.002


@pytest.fixture()
def ctx(tiny_tpch):
    database, __, __ = tiny_tpch
    context = QueryContext(database)
    yield context
    context.close()


@pytest.fixture(scope="module")
def raw():
    """The generator's raw rows, for independent recomputation."""
    return TpchGenerator(SF, seed=7).all_tables()


def test_all_queries_run_and_are_deterministic(tiny_tpch):
    database, __, __ = tiny_tpch
    for number in sorted(QUERIES):
        with QueryContext(database) as ctx:
            first = run_query(ctx, number, SF)
        with QueryContext(database) as ctx:
            second = run_query(ctx, number, SF)
        assert first == second, f"Q{number} not deterministic"


def test_q1_matches_direct_computation(ctx, raw):
    result = run_query(ctx, 1, SF)
    cutoff = d(1998, 12, 1) - 90
    expected = {}
    for li in raw["lineitem"]:
        if li[10] > cutoff:  # l_shipdate
            continue
        key = (li[8], li[9])
        acc = expected.setdefault(key, [0.0, 0])
        acc[0] += li[4]  # quantity
        acc[1] += 1
    got = {
        (rf, ls): (qty, cnt)
        for rf, ls, qty, cnt in zip(
            result["l_returnflag"], result["l_linestatus"],
            result["sum_qty"], result["count_order"],
        )
    }
    assert set(got) == set(expected)
    for key, (qty, cnt) in expected.items():
        assert got[key][0] == pytest.approx(qty)
        assert got[key][1] == cnt


def test_q1_sorted_by_flag_status(ctx):
    result = run_query(ctx, 1, SF)
    keys = list(zip(result["l_returnflag"], result["l_linestatus"]))
    assert keys == sorted(keys)


def test_q2_only_europe_suppliers(ctx, raw):
    result = run_query(ctx, 2, SF)
    europe_nations = {
        i for i, (name, region) in enumerate(
            (row[1], row[2]) for row in raw["nation"]
        ) if region == 3
    }
    nation_names = {row[0]: row[1] for row in raw["nation"]}
    europe_names = {nation_names[i] for i in europe_nations}
    assert all(name in europe_names for name in result["n_name"])
    # Sorted by account balance, descending.
    balances = result["s_acctbal"]
    assert balances == sorted(balances, reverse=True)


def test_q3_top10_unshipped_revenue(ctx):
    result = run_query(ctx, 3, SF)
    assert n_rows(result) <= 10
    revenues = result["revenue"]
    assert revenues == sorted(revenues, reverse=True)
    assert all(date < d(1995, 3, 15) for date in result["o_orderdate"])


def test_q4_priorities_complete_and_counted(ctx, raw):
    result = run_query(ctx, 4, SF)
    assert result["o_orderpriority"] == sorted(result["o_orderpriority"])
    total_window_orders = sum(
        1 for o in raw["orders"]
        if d(1993, 7, 1) <= o[4] < d(1993, 10, 1)
    )
    assert sum(result["order_count"]) <= total_window_orders


def test_q5_asia_nations_only(ctx, raw):
    result = run_query(ctx, 5, SF)
    asia = {row[1] for row in raw["nation"] if row[2] == 2}
    assert set(result["n_name"]) <= asia
    assert result["revenue"] == sorted(result["revenue"], reverse=True)


def test_q6_matches_direct_computation(ctx, raw):
    result = run_query(ctx, 6, SF)
    expected = sum(
        li[5] * li[6]
        for li in raw["lineitem"]
        if d(1994, 1, 1) <= li[10] < d(1995, 1, 1)
        and 0.05 <= li[6] <= 0.07
        and li[4] < 24
    )
    assert result["revenue"][0] == pytest.approx(expected)


def test_q7_nation_pairs(ctx):
    result = run_query(ctx, 7, SF)
    pairs = set(zip(result["supp_nation"], result["cust_nation"]))
    assert pairs <= {("FRANCE", "GERMANY"), ("GERMANY", "FRANCE")}
    assert all(year in (1995, 1996) for year in result["l_year"])


def test_q8_market_share_fraction(ctx):
    result = run_query(ctx, 8, SF)
    assert all(0.0 <= share <= 1.0 for share in result["mkt_share"])
    assert all(year in (1995, 1996) for year in result["o_year"])


def test_q9_profit_by_nation_year(ctx):
    result = run_query(ctx, 9, SF)
    assert set(result) >= {"n_name", "o_year", "sum_profit"}
    names = result["n_name"]
    assert names == sorted(names)


def test_q10_top20_returned(ctx):
    result = run_query(ctx, 10, SF)
    assert n_rows(result) <= 20
    assert result["revenue"] == sorted(result["revenue"], reverse=True)


def test_q11_values_above_threshold(ctx):
    result = run_query(ctx, 11, SF)
    values = result["value"]
    assert values == sorted(values, reverse=True)


def test_q12_high_low_partition(ctx, raw):
    result = run_query(ctx, 12, SF)
    assert set(result["l_shipmode"]) <= {"MAIL", "SHIP"}
    for high, low in zip(result["high_line_count"],
                         result["low_line_count"]):
        assert high >= 0 and low >= 0


def test_q13_distribution_matches_direct_computation(ctx, raw):
    result = run_query(ctx, 13, SF)
    assert sum(result["custdist"]) == len(raw["customer"])
    per_customer = {row[0]: 0 for row in raw["customer"]}
    for order in raw["orders"]:
        comment = order[7]
        if "special" in comment and "requests" in comment.split("special", 1)[1]:
            continue
        per_customer[order[1]] += 1
    expected = {}
    for count in per_customer.values():
        expected[count] = expected.get(count, 0) + 1
    got = dict(zip(result["c_count"], result["custdist"]))
    assert got == expected


def test_q14_promo_percentage(ctx):
    result = run_query(ctx, 14, SF)
    assert 0.0 <= result["promo_revenue"][0] <= 100.0


def test_q15_top_supplier_is_argmax(ctx):
    result = run_query(ctx, 15, SF)
    assert n_rows(result) >= 1
    assert len(set(result["total_revenue"])) == 1  # all tie at the max


def test_q16_supplier_counts_positive(ctx):
    result = run_query(ctx, 16, SF)
    assert all(count >= 1 for count in result["supplier_cnt"])
    assert all(brand != "Brand#45" for brand in result["p_brand"])
    counts = result["supplier_cnt"]
    assert counts == sorted(counts, reverse=True)


def test_q17_scalar(ctx):
    result = run_query(ctx, 17, SF)
    assert n_rows(result) == 1
    assert result["avg_yearly"][0] >= 0.0


def test_q18_all_orders_over_300(ctx):
    result = run_query(ctx, 18, SF)
    assert all(qty > 300 for qty in result["sum_qty"])
    assert n_rows(result) <= 100


def test_q19_scalar_revenue(ctx):
    result = run_query(ctx, 19, SF)
    assert n_rows(result) == 1
    assert result["revenue"][0] >= 0.0


def test_q20_supplier_names_sorted(ctx):
    result = run_query(ctx, 20, SF)
    assert result["s_name"] == sorted(result["s_name"])


def test_q21_waits_counted(ctx):
    result = run_query(ctx, 21, SF)
    assert all(count >= 1 for count in result["numwait"])
    assert result["numwait"] == sorted(result["numwait"], reverse=True)


def test_q22_country_codes(ctx):
    result = run_query(ctx, 22, SF)
    allowed = {"13", "31", "23", "29", "30", "18", "17"}
    assert set(result["cntrycode"]) <= allowed
    assert all(count >= 1 for count in result["numcust"])
    assert all(total > 0 for total in result["totacctbal"])


def test_unknown_query_number(ctx):
    with pytest.raises(KeyError):
        run_query(ctx, 23, SF)
