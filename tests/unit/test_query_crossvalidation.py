"""Cross-validation: more TPC-H queries vs brute-force recomputation.

Complements test_queries.py (which covers Q1/Q6/Q13 exactly) with direct
recomputations of Q4, Q12, Q14 and Q18 from the generator's raw rows.
"""

import pytest

from repro.columnar.query import QueryContext
from repro.tpch.datagen import TpchGenerator
from repro.tpch.dates import d
from repro.tpch.queries import run_query

SF = 0.002


@pytest.fixture()
def ctx(tiny_tpch):
    database, __, __ = tiny_tpch
    context = QueryContext(database)
    yield context
    context.close()


@pytest.fixture(scope="module")
def raw():
    return TpchGenerator(SF, seed=7).all_tables()


def test_q4_exact(ctx, raw):
    result = run_query(ctx, 4, SF)
    late_orders = {
        li[0] for li in raw["lineitem"] if li[11] < li[12]  # commit < receipt
    }
    expected = {}
    for order in raw["orders"]:
        if not d(1993, 7, 1) <= order[4] < d(1993, 10, 1):
            continue
        if order[0] not in late_orders:
            continue
        expected[order[5]] = expected.get(order[5], 0) + 1
    got = dict(zip(result["o_orderpriority"], result["order_count"]))
    assert got == expected


def test_q12_exact(ctx, raw):
    result = run_query(ctx, 12, SF)
    priorities = {o[0]: o[5] for o in raw["orders"]}
    expected = {}
    for li in raw["lineitem"]:
        shipmode = li[14]
        if shipmode not in ("MAIL", "SHIP"):
            continue
        if not d(1994, 1, 1) <= li[12] < d(1995, 1, 1):  # receiptdate
            continue
        if not li[10] < li[11] < li[12]:  # ship < commit < receipt
            continue
        high = priorities[li[0]] in ("1-URGENT", "2-HIGH")
        acc = expected.setdefault(shipmode, [0, 0])
        acc[0 if high else 1] += 1
    got = {
        mode: [high, low]
        for mode, high, low in zip(result["l_shipmode"],
                                   result["high_line_count"],
                                   result["low_line_count"])
    }
    assert got == expected


def test_q14_exact(ctx, raw):
    result = run_query(ctx, 14, SF)
    types = {p[0]: p[4] for p in raw["part"]}
    promo = total = 0.0
    for li in raw["lineitem"]:
        if not d(1995, 9, 1) <= li[10] < d(1995, 10, 1):  # shipdate
            continue
        revenue = li[5] * (1 - li[6])
        total += revenue
        if types[li[1]].startswith("PROMO"):
            promo += revenue
    expected = 100.0 * promo / total if total else 0.0
    assert result["promo_revenue"][0] == pytest.approx(expected)


def test_q18_exact(ctx, raw):
    result = run_query(ctx, 18, SF)
    qty_per_order = {}
    for li in raw["lineitem"]:
        qty_per_order[li[0]] = qty_per_order.get(li[0], 0.0) + li[4]
    expected_orders = {
        order for order, qty in qty_per_order.items() if qty > 300.0
    }
    assert set(result["o_orderkey"]) == expected_orders
    for order, qty in zip(result["o_orderkey"], result["sum_qty"]):
        assert qty == pytest.approx(qty_per_order[order])


def test_q22_exact(ctx, raw):
    result = run_query(ctx, 22, SF)
    codes = ("13", "31", "23", "29", "30", "18", "17")
    in_scope = [
        c for c in raw["customer"] if c[4][:2] in codes
    ]
    positive = [c[5] for c in in_scope if c[5] > 0.0]
    threshold = sum(positive) / len(positive) if positive else 0.0
    with_orders = {o[1] for o in raw["orders"]}
    expected = {}
    for customer in in_scope:
        if customer[5] <= threshold or customer[0] in with_orders:
            continue
        acc = expected.setdefault(customer[4][:2], [0, 0.0])
        acc[0] += 1
        acc[1] += customer[5]
    got = {
        code: [count, pytest.approx(total)]
        for code, count, total in zip(result["cntrycode"],
                                      result["numcust"],
                                      result["totacctbal"])
    }
    assert set(got) == set(expected)
    for code, (count, total) in expected.items():
        assert got[code][0] == count
        assert total == got[code][1]
