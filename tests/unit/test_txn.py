"""Unit tests for the transaction manager: MVCC, locks, commit-chain GC."""

import pytest

from repro.core.txn import TransactionError, TxnStatus
from tests.conftest import make_db


def write_pages(db, txn, name, pages, payload=b"x" * 512):
    for page in pages:
        db.write_page(txn, name, page, payload + b"-%d" % page)


def test_commit_publishes_new_version(db):
    db.create_object("t")
    txn = db.begin()
    write_pages(db, txn, "t", range(5))
    db.commit(txn)
    assert txn.status is TxnStatus.COMMITTED
    identity = db.catalog.current(db.catalog.object_id("t"))
    assert identity.version == 1
    assert identity.page_count == 5


def test_snapshot_isolation_readers_see_old_version(db):
    db.create_object("t")
    writer1 = db.begin()
    write_pages(db, writer1, "t", [0])
    db.commit(writer1)

    reader = db.begin()
    assert db.read_page(reader, "t", 0).startswith(b"x")

    writer2 = db.begin()
    db.write_page(writer2, "t", 0, b"NEW")
    db.commit(writer2)

    # The reader still sees its snapshot.
    assert db.read_page(reader, "t", 0).startswith(b"x")
    db.commit(reader)
    late = db.begin()
    assert db.read_page(late, "t", 0) == b"NEW"
    db.commit(late)


def test_writer_reads_own_writes(db):
    db.create_object("t")
    txn = db.begin()
    db.write_page(txn, "t", 0, b"mine")
    assert db.read_page(txn, "t", 0) == b"mine"
    db.commit(txn)


def test_write_write_conflict(db):
    db.create_object("t")
    a = db.begin()
    b = db.begin()
    db.write_page(a, "t", 0, b"a")
    with pytest.raises(TransactionError):
        db.write_page(b, "t", 0, b"b")
    db.rollback(a)
    # After release the second writer can proceed.
    db.write_page(b, "t", 0, b"b")
    db.commit(b)


def test_object_created_later_not_visible(db):
    txn = db.begin()
    db.create_object("late")
    with pytest.raises(TransactionError):
        db.read_page(txn, "late", 0)
    db.rollback(txn)


def test_rollback_deletes_allocations(db):
    db.create_object("t")
    txn = db.begin()
    write_pages(db, txn, "t", range(5))
    db.buffer.flush_txn(txn.txn_id, commit_mode=False)
    if db.ocm is not None:
        db.ocm.drain_all()
    before = db.object_store.object_count()
    assert before > 0
    db.rollback(txn)
    assert db.object_store.object_count() == 0
    assert txn.status is TxnStatus.ROLLED_BACK


def test_rollback_does_not_trim_active_set(db):
    """The Section 3.3 optimization: rollbacks stay local."""
    db.create_object("t")
    txn = db.begin()
    write_pages(db, txn, "t", range(3))
    db.buffer.flush_txn(txn.txn_id, commit_mode=False)
    active_before = db.keygen.active_set(db.config.node_id).key_count()
    db.rollback(txn)
    assert db.keygen.active_set(db.config.node_id).key_count() == active_before


def test_commit_trims_active_set(db):
    db.create_object("t")
    txn = db.begin()
    write_pages(db, txn, "t", range(3))
    db.commit(txn)
    consumed = db.keygen.max_allocated_key - db.keygen.active_set(
        db.config.node_id
    ).key_count()
    # Some keys were consumed and trimmed away.
    assert db.keygen.active_set("coordinator").key_count() < (
        db.keygen.max_allocated_key - (1 << 63) + 1
    )


def test_gc_deferred_while_referenced(db):
    db.create_object("t")
    txn = db.begin()
    write_pages(db, txn, "t", range(4))
    db.commit(txn)

    reader = db.begin()
    db.read_page(reader, "t", 0)

    update = db.begin()
    db.write_page(update, "t", 0, b"v2")
    db.commit(update)

    # The old version is pinned by the reader: nothing deleted yet.
    assert db.txn_manager.chain_length() >= 1
    deleted_before = db.txn_manager.stats["gc_pages_deleted"]
    db.commit(reader)
    assert db.txn_manager.stats["gc_pages_deleted"] > deleted_before


def test_gc_never_deletes_reachable_pages(db):
    db.create_object("t")
    txn = db.begin()
    write_pages(db, txn, "t", range(8))
    db.commit(txn)
    for round_no in range(3):
        update = db.begin()
        db.write_page(update, "t", round_no, b"round-%d" % round_no)
        db.commit(update)
    check = db.begin()
    for page in range(8):
        assert db.read_page(check, "t", page)  # all pages still readable
    db.commit(check)


def test_double_commit_rejected(db):
    db.create_object("t")
    txn = db.begin()
    db.write_page(txn, "t", 0, b"x")
    db.commit(txn)
    with pytest.raises(TransactionError):
        db.commit(txn)
    with pytest.raises(TransactionError):
        db.rollback(txn)


def test_read_only_commit_is_cheap(db):
    db.create_object("t")
    txn = db.begin()
    db.commit(txn)
    assert db.txn_manager.stats["commits"] == 1


def test_adopt_requires_active():
    db = make_db()
    db.create_object("t")
    txn = db.begin()
    db.rollback(txn)
    with pytest.raises(TransactionError):
        db.txn_manager.adopt(txn)
