"""Snapshot/crash interaction: creation, retention, and reap windows.

The dangerous window is between ``create_snapshot`` capturing metadata
and the snapshot becoming registered/durable: a crash there must never
let ``reap()`` delete an object an earlier, still-live snapshot
references.  The reap protocol's own crash windows (free-then-pop) must
likewise stay idempotent across recovery.
"""

import pytest

from repro.core.audit import StoreAuditor
from repro.sim.crashpoints import CRASH_POINTS, SimulatedCrash
from tests.conftest import make_db

RETENTION = 60.0


@pytest.fixture(autouse=True)
def _disarm():
    yield
    CRASH_POINTS.disarm_all()


def snap_db():
    return make_db(retention_seconds=RETENTION,
                   system_volume_size_bytes=32 * 1024 * 1024)


def write_and_commit(db, name, pages, tag):
    txn = db.begin()
    for page in pages:
        db.write_page(txn, name, page, tag + b"-%d" % page)
    db.commit(txn)


def read_snapshot_pages(db, snapshot_id, name, pages):
    view = db.open_snapshot_view(snapshot_id)
    token = view.begin()
    data = [view.read_page(token, name, page) for page in pages]
    view.rollback(token)
    return data


def test_crash_before_register_does_not_endanger_live_snapshot():
    """Satellite: a snapshot-creation crash must not let reap() eat an
    earlier snapshot's pages."""
    db = snap_db()
    db.create_object("t")
    write_and_commit(db, "t", range(3), b"v1")
    snap1 = db.create_snapshot()
    # Supersede v1: its pages move to the retention FIFO via GC.
    write_and_commit(db, "t", range(3), b"v2")
    db.txn_manager.collect_garbage()

    CRASH_POINTS.arm("snapshot.create.before_register")
    with pytest.raises(SimulatedCrash) as exc:
        db.create_snapshot()
    db.crash_from(exc.value)
    db.restart()

    # Right up to snap1's expiry, reap must not touch its pages: every
    # FIFO entry protecting them was retained *after* snap1 was created,
    # so its expiry is strictly later than snap1's.
    target = snap1.expires_at - 1.0
    if target > db.clock.now():
        db.clock.advance_to(target)
    db.snapshot_manager.reap()
    pages = read_snapshot_pages(db, snap1.snapshot_id, "t", range(3))
    for page, data in enumerate(pages):
        assert data == b"v1-%d" % page
    report = StoreAuditor(db).audit()
    assert report.ok(), report.to_dict()


def test_fifo_outlives_every_snapshot_it_protects():
    """Structural invariant behind the test above: retention entries
    always expire no earlier than the snapshots referencing them."""
    db = snap_db()
    db.create_object("t")
    write_and_commit(db, "t", range(2), b"v1")
    snapshot = db.create_snapshot()
    db.clock.advance(5.0)
    write_and_commit(db, "t", range(2), b"v2")
    db.txn_manager.collect_garbage()
    manager = db.snapshot_manager
    snapshot_expiry = snapshot.expires_at
    for __, __, expiry in manager._fifo:
        assert expiry >= snapshot_expiry


def test_reap_crash_after_free_recovers_idempotently():
    db = snap_db()
    db.create_object("t")
    write_and_commit(db, "t", range(2), b"v1")
    write_and_commit(db, "t", range(2), b"v2")
    db.txn_manager.collect_garbage()
    manager = db.snapshot_manager
    assert manager.retained_count() > 0
    db.clock.advance(RETENTION + 1.0)

    CRASH_POINTS.arm("snapshot.reap.after_free")
    with pytest.raises(SimulatedCrash) as exc:
        manager.reap()
    db.crash_from(exc.value)
    db.restart()

    # The crash hit after a delete but before the FIFO pop, so recovery
    # sees the entry again; re-reaping must neither raise nor leak.
    db.snapshot_manager.reap()
    assert db.snapshot_manager.retained_count() == 0
    report = StoreAuditor(db).audit()
    assert report.ok(), report.to_dict()


def test_reap_crash_before_free_leaves_fifo_intact():
    db = snap_db()
    db.create_object("t")
    write_and_commit(db, "t", range(2), b"v1")
    write_and_commit(db, "t", range(2), b"v2")
    db.txn_manager.collect_garbage()
    manager = db.snapshot_manager
    before = manager.retained_count()
    assert before > 0
    db.clock.advance(RETENTION + 1.0)

    CRASH_POINTS.arm("snapshot.reap.before_free")
    with pytest.raises(SimulatedCrash):
        manager.reap()
    # Nothing was deleted, nothing popped: the FIFO still owns the pages.
    assert manager.retained_count() == before
    report = StoreAuditor(db).audit()
    assert report.ok(), report.to_dict()
    manager.reap()
    assert manager.retained_count() == 0


def test_snapshot_crash_then_new_snapshot_still_works():
    db = snap_db()
    db.create_object("t")
    write_and_commit(db, "t", [0], b"v1")
    CRASH_POINTS.arm("snapshot.create.before_register")
    with pytest.raises(SimulatedCrash) as exc:
        db.create_snapshot()
    db.crash_from(exc.value)
    db.restart()
    snapshot = db.create_snapshot()
    write_and_commit(db, "t", [0], b"v2")
    assert read_snapshot_pages(
        db, snapshot.snapshot_id, "t", [0]
    ) == [b"v1-0"]
