"""Degraded-mode OCM tests: serving through an object-store outage.

While the client's circuit breaker is open the OCM serves reads from the
SSD cache, keeps queuing write-backs locally, and drains the backlog when
the breaker closes — but write-through-at-commit stays enforced: commit
uploads bypass the breaker's fail-fast and ride the retry policy.
"""

import pytest

from repro.blockstore.profiles import nvme_ssd
from repro.core.ocm import ObjectCacheManager, OcmConfig
from repro.objectstore import (
    CircuitBreakerConfig,
    CircuitOpenError,
    FaultSchedule,
    OutageWindow,
    RetriesExhaustedError,
    RetryingObjectClient,
    RetryPolicy,
    SimulatedObjectStore,
    STRONG,
)
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng

OUTAGE = OutageWindow(10.0, 20.0)


def make_ocm(reset_timeout=1.0, **config_overrides):
    clock = VirtualClock()
    profile = ObjectStoreProfile(name="s3", consistency=STRONG,
                                 transient_failure_probability=0.0,
                                 latency_jitter=0.0)
    store = SimulatedObjectStore(
        profile, clock=clock, rng=DeterministicRng(5),
        fault_schedule=FaultSchedule([OUTAGE]),
    )
    client = RetryingObjectClient(
        store,
        policy=RetryPolicy(max_attempts=3, initial_backoff=0.01,
                           max_backoff=0.02),
        breaker=CircuitBreakerConfig(failure_threshold=2,
                                     reset_timeout=reset_timeout),
    )
    ocm = ObjectCacheManager(
        client, nvme_ssd(),
        OcmConfig(capacity_bytes=1 << 20, **config_overrides),
    )
    return ocm, client, store, clock


def trip_breaker(client):
    """A non-bypassing probe during the outage opens the circuit."""
    with pytest.raises((RetriesExhaustedError, CircuitOpenError)):
        client.exists("probe/health")
    assert client.breaker_state() == "open"


def test_degraded_reads_served_from_ssd_cache():
    ocm, client, store, clock = make_ocm()
    ocm.put("p/1", b"page-one", commit_mode=True)
    clock.advance_to(10.5)
    trip_breaker(client)
    assert ocm.degraded()

    gets_before = store.metrics.snapshot().get("get_requests", 0)
    assert ocm.get("p/1") == b"page-one"
    assert ocm.metrics.snapshot()["degraded_reads"] == 1
    # The hit never touched the fenced-off store.
    assert store.metrics.snapshot().get("get_requests", 0) == gets_before

    # A cache miss has nowhere to go: it fails fast on the open breaker.
    with pytest.raises(CircuitOpenError):
        ocm.get("p/never-cached")


def test_degraded_get_many_serves_cached_set():
    ocm, client, __, clock = make_ocm()
    items = [(f"p/{i}", bytes([i]) * 10) for i in range(4)]
    ocm.put_many(items, commit_mode=True)
    clock.advance_to(10.5)
    trip_breaker(client)

    results = ocm.get_many([name for name, __ in items])
    assert results == dict(items)
    assert ocm.metrics.snapshot()["degraded_reads"] == 4


def test_degraded_write_backs_queue_then_drain_on_recovery():
    ocm, client, store, clock = make_ocm()
    ocm.put("p/1", b"warm", commit_mode=True)
    clock.advance_to(10.5)
    trip_breaker(client)

    ocm.put("w/1", b"queued-locally")  # anonymous write-back
    snap = ocm.metrics.snapshot()
    assert snap["degraded_queued_writes"] == 1
    assert snap["degraded_queue_depth"] == 1
    assert ocm.pending_upload_count() == 1
    assert store.latest_data("w/1") is None  # nothing reached the store

    # Outage over and the breaker's cool-down elapsed: the next public
    # operation notices recovery and drains the backlog in the background.
    clock.advance_to(21.5)
    assert not ocm.degraded()
    assert ocm.get("p/1") == b"warm"
    assert ocm.pending_upload_count() == 0
    assert store.latest_data("w/1") == b"queued-locally"
    snap = ocm.metrics.snapshot()
    assert snap["degraded_drained_uploads"] == 1
    assert snap["degraded_recoveries"] == 1
    assert snap["degraded_queue_depth"] == 0
    # The drain's bypassing upload succeeded, closing the breaker.
    assert client.breaker_state() == "closed"


def test_commit_write_through_still_enforced_during_outage():
    ocm, client, store, clock = make_ocm()
    clock.advance_to(10.5)
    trip_breaker(client)

    # Commit-mode puts bypass the breaker's fail-fast and genuinely try
    # the store; during the outage the retry budget decides — the commit
    # fails loudly instead of silently queuing.
    puts_before = store.metrics.snapshot().get("put_requests", 0)
    with pytest.raises(RetriesExhaustedError):
        ocm.put("c/1", b"commit-data", commit_mode=True)
    assert store.metrics.snapshot()["put_requests"] > puts_before


def test_commit_write_through_punches_through_open_breaker():
    # Long cool-down: the breaker stays open well past the outage.  A
    # commit write bypasses it, succeeds against the healed store and —
    # being proof of health — closes the breaker.
    ocm, client, store, clock = make_ocm(reset_timeout=100.0)
    clock.advance_to(10.5)
    trip_breaker(client)
    clock.advance_to(25.0)
    assert client.breaker_state() == "open"
    assert ocm.degraded()

    ocm.put("c/2", b"commit-data", commit_mode=True)
    assert store.latest_data("c/2") == b"commit-data"
    assert client.breaker_state() == "closed"
    assert not ocm.degraded()


def test_degraded_recovery_drain_does_not_resurrect_deleted_object():
    """Regression: a write-back queued during an outage, then deleted, must
    not come back when the recovery drain flushes the degraded backlog."""
    ocm, client, store, clock = make_ocm()
    ocm.put("p/keep", b"warm", commit_mode=True)  # cached before the outage

    clock.advance_to(10.5)
    trip_breaker(client)
    ocm.put("p/doomed", b"stale", commit_mode=False)  # queued locally
    assert ocm.pending_upload_count() == 1

    # Outage over, breaker cool-down elapsed: the delete rides the
    # half-open probe, succeeds, and closes the breaker.  delete() itself
    # never drains, so the degraded backlog is still waiting.
    clock.advance_to(21.5)
    ocm.delete("p/doomed")
    assert client.breaker_state() == "closed"
    assert ocm.pending_upload_count() == 0

    # The next public operation notices the recovery and drains the
    # (now-empty) backlog: the deleted object must stay deleted.
    assert ocm.get("p/keep") == b"warm"
    assert store.latest_data("p/doomed") is None
    assert not store.exists("p/doomed")
    snap = ocm.metrics.snapshot()
    assert snap["cancelled_uploads"] == 1
    assert snap["degraded_recoveries"] == 1
    assert snap.get("degraded_drained_uploads", 0) == 0


def test_degraded_cache_miss_raises_wrapped_error():
    ocm, client, __, clock = make_ocm()
    clock.advance_to(10.5)
    trip_breaker(client)
    assert ocm.degraded()

    from repro.objectstore.errors import DegradedCacheMissError
    with pytest.raises(DegradedCacheMissError) as excinfo:
        ocm.get("p/never-cached")
    # Still a CircuitOpenError, so existing fail-fast handling keeps working.
    assert isinstance(excinfo.value, CircuitOpenError)
    message = str(excinfo.value)
    assert "degraded" in message
    assert "p/never-cached" in message
    assert ocm.metrics.snapshot()["degraded_miss_failures"] == 1


def test_degraded_get_many_miss_counts_all_misses():
    ocm, client, __, clock = make_ocm()
    ocm.put("p/cached", b"x", commit_mode=True)
    clock.advance_to(10.5)
    trip_breaker(client)

    from repro.objectstore.errors import DegradedCacheMissError
    with pytest.raises(DegradedCacheMissError):
        ocm.get_many(["p/cached", "p/miss-1", "p/miss-2"])
    assert ocm.metrics.snapshot()["degraded_miss_failures"] == 2
