"""Unit tests for the CPU model (Amdahl-style scale-up)."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.cpu import CpuModel


def test_charge_advances_clock():
    clock = VirtualClock()
    cpu = CpuModel(clock, vcpus=1, ops_per_second=100.0, parallel_fraction=1.0)
    cpu.charge(50.0)
    assert clock.now() == pytest.approx(0.5)


def test_more_cpus_are_faster():
    small = CpuModel(VirtualClock(), vcpus=16, ops_per_second=1e6)
    large = CpuModel(VirtualClock(), vcpus=96, ops_per_second=1e6)
    assert large.seconds_for(1e6) < small.seconds_for(1e6)


def test_amdahl_limits_speedup():
    """With 97% parallel work, 6x the CPUs gives clearly less than 6x."""
    small = CpuModel(VirtualClock(), vcpus=16, ops_per_second=1e6,
                     parallel_fraction=0.97)
    large = CpuModel(VirtualClock(), vcpus=96, ops_per_second=1e6,
                     parallel_fraction=0.97)
    speedup = small.seconds_for(1e6) / large.seconds_for(1e6)
    assert 2.0 < speedup < 6.0


def test_fully_serial_work_ignores_cpus():
    cpu = CpuModel(VirtualClock(), vcpus=64, ops_per_second=100.0,
                   parallel_fraction=0.0)
    assert cpu.seconds_for(100.0) == pytest.approx(1.0)


def test_total_ops_accumulates():
    cpu = CpuModel(VirtualClock(), vcpus=2, ops_per_second=1e6)
    cpu.charge(10)
    cpu.charge(20)
    assert cpu.total_ops == 30


def test_invalid_parameters():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        CpuModel(clock, vcpus=0)
    with pytest.raises(ValueError):
        CpuModel(clock, vcpus=1, ops_per_second=0)
    with pytest.raises(ValueError):
        CpuModel(clock, vcpus=1, parallel_fraction=1.5)
    with pytest.raises(ValueError):
        CpuModel(clock, vcpus=1).charge(-1)
