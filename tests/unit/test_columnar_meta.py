"""Unit tests for schemas, zone maps, HG indexes and blob storage."""

import pytest

from repro.columnar.blob import read_blob, write_blob
from repro.columnar.hgindex import HgIndex
from repro.columnar.schema import (
    ColumnSchema,
    SchemaError,
    TableSchema,
    TableState,
)
from repro.columnar.zonemap import ZoneMaps


class TestSchema:
    def make(self, **overrides):
        defaults = dict(
            name="t",
            columns=(
                ColumnSchema("a", "int", hg_index=True),
                ColumnSchema("b", "str"),
            ),
            partition_column="a",
            partition_count=2,
        )
        defaults.update(overrides)
        return TableSchema(**defaults)

    def test_basic_accessors(self):
        schema = self.make()
        assert schema.column_names() == ["a", "b"]
        assert schema.indexed_columns() == ["a"]
        assert schema.column("b").kind == "str"

    def test_object_names(self):
        schema = self.make()
        assert schema.column_object("a", 1) == "t/a#p1"
        assert schema.zonemap_object() == "t/__zonemaps"
        assert schema.hg_object("a") == "t/a__hg"
        assert schema.meta_object() == "t/__meta"

    def test_validation(self):
        with pytest.raises(SchemaError):
            ColumnSchema("x", "decimal")
        with pytest.raises(SchemaError):
            self.make(columns=())
        with pytest.raises(SchemaError):
            self.make(columns=(ColumnSchema("a", "int"),
                               ColumnSchema("a", "int")))
        with pytest.raises(SchemaError):
            self.make(partition_column=None)  # 2 partitions need a column
        with pytest.raises(SchemaError):
            self.make(partition_column="zzz")
        with pytest.raises(SchemaError):
            self.make().hg_object("b")
        with pytest.raises(SchemaError):
            self.make().column_object("a", 5)

    def test_serialization_roundtrip(self):
        schema = self.make()
        assert TableSchema.from_dict(schema.to_dict()) == schema

    def test_state_pages_and_rows(self):
        schema = self.make(rows_per_page=100)
        state = TableState(schema, partition_rows=[250, 100],
                           partition_bounds=[500])
        assert state.total_rows == 350
        assert state.pages_in_partition(0) == 3
        assert state.pages_in_partition(1) == 1

    def test_state_json_roundtrip(self):
        schema = self.make(rows_per_page=64)
        state = TableState(schema, [10, 20], [5])
        restored = TableState.from_json(state.to_json())
        assert restored.schema == schema
        assert restored.partition_rows == [10, 20]
        assert restored.partition_bounds == [5]


class TestZoneMaps:
    def test_prune_by_range(self):
        maps = ZoneMaps()
        maps.add_page("c", 0, 0, 9, 10)
        maps.add_page("c", 0, 10, 19, 10)
        maps.add_page("c", 0, 20, 29, 10)
        assert maps.prune("c", 0, 12, 15) == [1]
        assert maps.prune("c", 0, 5, 25) == [0, 1, 2]
        assert maps.prune("c", 0, 100, 200) == []

    def test_open_bounds(self):
        maps = ZoneMaps()
        maps.add_page("c", 0, 0, 9, 10)
        maps.add_page("c", 0, 10, 19, 10)
        assert maps.prune("c", 0, None, 9) == [0]
        assert maps.prune("c", 0, 10, None) == [1]
        assert maps.prune("c", 0, None, None) == [0, 1]

    def test_string_zones(self):
        maps = ZoneMaps()
        maps.add_page("s", 0, "apple", "mango", 5)
        maps.add_page("s", 0, "nectarine", "zucchini", 5)
        assert maps.prune("s", 0, "banana", "cherry") == [0]

    def test_partitions_independent(self):
        maps = ZoneMaps()
        maps.add_page("c", 0, 0, 9, 10)
        maps.add_page("c", 1, 100, 109, 10)
        assert maps.prune("c", 1, 105, 106) == [0]

    def test_serialization_roundtrip(self):
        maps = ZoneMaps()
        maps.add_page("c", 0, 1, 2, 3)
        maps.add_page("s", 1, "a", "b", 4)
        restored = ZoneMaps.from_bytes(maps.to_bytes())
        assert restored.pages("c", 0) == [(1, 2, 3)]
        assert restored.pages("s", 1) == [("a", "b", 4)]


class TestHgIndex:
    def test_point_lookup(self):
        index = HgIndex()
        index.add_rows([5, 7, 5, 9, 5], first_row_id=100)
        assert index.lookup(5) == [100, 102, 104]
        assert index.lookup(999) == []

    def test_range_compression_of_consecutive_rows(self):
        index = HgIndex()
        index.add_rows([1] * 100, first_row_id=0)
        assert index.row_ranges(1) == [(0, 99)]

    def test_range_lookup(self):
        index = HgIndex()
        index.add_rows([10, 20, 30, 40], first_row_id=0)
        assert index.lookup_range(15, 35) == [1, 2]
        assert index.lookup_range(None, 10) == [0]
        assert index.lookup_range(40, None) == [3]

    def test_distinct_count(self):
        index = HgIndex()
        index.add_rows([1, 2, 1, 3], first_row_id=0)
        assert index.distinct_count == 3

    def test_serialization_roundtrip(self):
        index = HgIndex()
        index.add_rows(["x", "y", "x"], first_row_id=10)
        restored = HgIndex.from_bytes(index.to_bytes())
        assert restored.lookup("x") == [10, 12]
        assert restored.lookup_range("x", "y") == [10, 11, 12]


class TestBlob:
    def test_roundtrip_small(self, db):
        db.create_object("blob")
        txn = db.begin()
        handle = db.open_for_write(txn, "blob")
        write_blob(db.buffer, handle, b"tiny", db.page_config.page_size)
        db.commit(txn)
        read_txn = db.begin()
        read_handle = db.open_for_read(read_txn, "blob")
        assert read_blob(db.buffer, read_handle) == b"tiny"
        db.commit(read_txn)

    def test_roundtrip_multi_page(self, db):
        payload = bytes(range(256)) * 300  # ~75 KB over 16 KB pages
        db.create_object("blob2")
        txn = db.begin()
        handle = db.open_for_write(txn, "blob2")
        pages = write_blob(db.buffer, handle, payload,
                           db.page_config.page_size)
        assert pages > 1
        db.commit(txn)
        read_txn = db.begin()
        read_handle = db.open_for_read(read_txn, "blob2")
        assert read_blob(db.buffer, read_handle) == payload
        db.commit(read_txn)

    def test_empty_blob(self, db):
        db.create_object("blob3")
        txn = db.begin()
        handle = db.open_for_write(txn, "blob3")
        write_blob(db.buffer, handle, b"", db.page_config.page_size)
        db.commit(txn)
        read_txn = db.begin()
        assert read_blob(db.buffer, db.open_for_read(read_txn, "blob3")) == b""
        db.commit(read_txn)
