"""Unit tests for the snapshot manager (Section 5)."""

import pytest

from repro.core.snapshot import SnapshotError, SnapshotManager
from repro.objectstore import RetryingObjectClient, SimulatedObjectStore
from repro.objectstore.consistency import STRONG
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock
from repro.storage.dbspace import CloudDbspace, DirectObjectIO
from repro.storage.locator import OBJECT_KEY_BASE


class CounterKeys:
    def __init__(self):
        self.next = OBJECT_KEY_BASE

    def next_key(self):
        self.next += 1
        return self.next


def make_env(retention=100.0):
    clock = VirtualClock()
    profile = ObjectStoreProfile(name="s3", consistency=STRONG,
                                 transient_failure_probability=0.0)
    store = SimulatedObjectStore(profile, clock=clock)
    dbspace = CloudDbspace("user", DirectObjectIO(RetryingObjectClient(store)),
                           CounterKeys())
    manager = SnapshotManager(clock, retention, {"user": dbspace})
    return manager, dbspace, store, clock


def test_retained_pages_survive_until_expiry():
    manager, dbspace, store, clock = make_env(retention=50.0)
    locator = dbspace.write_page(b"retained")
    manager.retain("user", [locator])
    clock.advance(10.0)
    assert manager.reap() == 0
    assert store.object_count() == 1
    clock.advance(50.0)
    assert manager.reap() == 1
    assert store.object_count() == 0


def test_fifo_reaps_in_order():
    manager, dbspace, store, clock = make_env(retention=10.0)
    first = dbspace.write_page(b"first")
    manager.retain("user", [first])
    clock.advance(5.0)
    second = dbspace.write_page(b"second")
    manager.retain("user", [second])
    clock.advance(6.0)  # first expired, second not
    assert manager.reap() == 1
    assert not store.exists(dbspace.object_name(first))
    assert store.exists(dbspace.object_name(second))


def test_snapshot_capture_and_lookup():
    manager, __, __, clock = make_env()
    snapshot = manager.create_snapshot(b"catalog", OBJECT_KEY_BASE + 42)
    assert manager.get_snapshot(snapshot.snapshot_id) is snapshot
    assert snapshot.max_allocated_key == OBJECT_KEY_BASE + 42
    assert snapshot.created_at == clock.now()


def test_snapshot_expires_with_retention():
    manager, __, __, clock = make_env(retention=20.0)
    snapshot = manager.create_snapshot(b"c", OBJECT_KEY_BASE)
    clock.advance(21.0)
    manager.reap()
    with pytest.raises(SnapshotError):
        manager.get_snapshot(snapshot.snapshot_id)


def test_metadata_roundtrip():
    manager, dbspace, __, clock = make_env()
    manager.retain("user", [dbspace.write_page(b"x")])
    payload = manager.metadata_bytes()
    other, __, __, __ = make_env()
    other.restore_metadata(payload)
    assert other.retained_count() == 1


def test_unknown_snapshot_raises():
    manager, __, __, __ = make_env()
    with pytest.raises(SnapshotError):
        manager.get_snapshot(99)


def test_negative_retention_rejected():
    with pytest.raises(SnapshotError):
        SnapshotManager(VirtualClock(), -1.0)


def test_snapshots_listing():
    manager, __, __, __ = make_env()
    a = manager.create_snapshot(b"a", OBJECT_KEY_BASE)
    b = manager.create_snapshot(b"b", OBJECT_KEY_BASE + 1)
    assert [s.snapshot_id for s in manager.snapshots()] == [
        a.snapshot_id, b.snapshot_id
    ]
