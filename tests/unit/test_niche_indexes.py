"""Unit tests for the niche indexes (DATE, CMP, TEXT) of Section 1."""

import pytest

from repro.columnar import ColumnSchema, ColumnStore, QueryContext, TableSchema
from repro.columnar.niche import CmpIndex, DateIndex, TextIndex
from repro.columnar.schema import SchemaError
from repro.tpch.dates import d
from tests.conftest import make_db


class TestDateIndex:
    def test_month_buckets(self):
        index = DateIndex()
        index.add_rows([d(1994, 1, 15), d(1994, 2, 1), d(1994, 1, 31)],
                       first_row_id=10)
        assert index.lookup_month(1994, 1) == [10, 12]
        assert index.lookup_month(1994, 2) == [11]
        assert index.lookup_month(1995, 1) == []

    def test_year_lookup(self):
        index = DateIndex()
        index.add_rows([d(1994, 3, 1), d(1995, 3, 1), d(1994, 6, 1)],
                       first_row_id=0)
        assert index.lookup_year(1994) == [0, 2]

    def test_month_counts(self):
        index = DateIndex()
        index.add_rows([d(1994, 1, 1)] * 5 + [d(1994, 2, 1)] * 3,
                       first_row_id=0)
        counts = index.month_counts()
        assert counts[(1994, 1)] == 5
        assert counts[(1994, 2)] == 3

    def test_serialization_roundtrip(self):
        index = DateIndex()
        index.add_rows([d(1997, 12, 31), d(1998, 1, 1)], first_row_id=5)
        restored = DateIndex.from_bytes(index.to_bytes())
        assert restored.lookup_month(1997, 12) == [5]
        assert restored.lookup_month(1998, 1) == [6]


class TestCmpIndex:
    def test_three_way_classification(self):
        index = CmpIndex()
        index.add_rows([1, 5, 3], [2, 5, 1], first_row_id=0)
        assert index.lookup("lt") == [0]
        assert index.lookup("eq") == [1]
        assert index.lookup("gt") == [2]
        assert index.lookup("le") == [0, 1]
        assert index.lookup("ge") == [1, 2]
        assert index.lookup("ne") == [0, 2]

    def test_unknown_relation(self):
        with pytest.raises(ValueError):
            CmpIndex().lookup("approx")

    def test_counts(self):
        index = CmpIndex()
        index.add_rows([1, 1, 2], [2, 1, 1], first_row_id=0)
        assert index.counts() == {"lt": 1, "eq": 1, "gt": 1}

    def test_serialization_roundtrip(self):
        index = CmpIndex()
        index.add_rows([1, 9], [5, 5], first_row_id=100)
        restored = CmpIndex.from_bytes(index.to_bytes())
        assert restored.lookup("lt") == [100]
        assert restored.lookup("gt") == [101]


class TestTextIndex:
    def test_word_lookup_case_insensitive(self):
        index = TextIndex()
        index.add_rows(["Special requests pending", "nothing here",
                        "more SPECIAL things"], first_row_id=0)
        assert index.lookup("special") == [0, 2]
        assert index.lookup("Special") == [0, 2]
        assert index.lookup("absent") == []

    def test_conjunctive_lookup(self):
        index = TextIndex()
        index.add_rows(["special requests", "special offers",
                        "requests only"], first_row_id=0)
        assert index.lookup_all(["special", "requests"]) == [0]

    def test_duplicate_words_once_per_row(self):
        index = TextIndex()
        index.add_rows(["again again again"], first_row_id=7)
        assert index.lookup("again") == [7]

    def test_vocabulary(self):
        index = TextIndex()
        index.add_rows(["a b c", "b c d"], first_row_id=0)
        assert index.vocabulary_size == 4

    def test_serialization_roundtrip(self):
        index = TextIndex()
        index.add_rows(["hello world"], first_row_id=3)
        restored = TextIndex.from_bytes(index.to_bytes())
        assert restored.lookup("world") == [3]


class TestSchemaValidation:
    def test_date_index_needs_date_kind(self):
        with pytest.raises(SchemaError):
            ColumnSchema("x", "int", date_index=True)

    def test_text_index_needs_str_kind(self):
        with pytest.raises(SchemaError):
            ColumnSchema("x", "int", text_index=True)

    def test_cmp_columns_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (ColumnSchema("a", "int"),),
                        cmp_indexes=(("a", "zzz"),))

    def test_schema_roundtrip_with_niche_indexes(self):
        schema = TableSchema(
            "t",
            (
                ColumnSchema("when", "date", date_index=True),
                ColumnSchema("due", "date"),
                ColumnSchema("note", "str", text_index=True),
            ),
            cmp_indexes=(("when", "due"),),
        )
        assert TableSchema.from_dict(schema.to_dict()) == schema


class TestEndToEnd:
    @pytest.fixture
    def loaded(self):
        db = make_db()
        store = ColumnStore(db)
        schema = TableSchema(
            "shipments",
            (
                ColumnSchema("id", "int"),
                ColumnSchema("shipdate", "date", date_index=True),
                ColumnSchema("duedate", "date"),
                ColumnSchema("note", "str", text_index=True),
            ),
            cmp_indexes=(("shipdate", "duedate"),),
            rows_per_page=64,
        )
        store.create_table(schema)
        rows = []
        for i in range(300):
            ship = d(1994, 1 + (i % 12), 1 + (i % 28))
            due = ship + (i % 5) - 2  # some early, some on time, some late
            note = "late delivery complaint" if i % 7 == 0 else "on time"
            rows.append((i, ship, due, note))
        store.load("shipments", rows)
        return db, rows

    def test_date_index_matches_scan(self, loaded):
        db, rows = loaded
        with QueryContext(db) as ctx:
            index = ctx.date_index("shipments", "shipdate")
            via_index = sorted(
                ctx.read_rows("shipments", ["id"],
                              index.lookup_month(1994, 3))["id"]
            )
            lo, hi = d(1994, 3, 1), d(1994, 4, 1) - 1
            via_scan = sorted(
                ctx.read("shipments", ["id"], {"shipdate": (lo, hi)})["id"]
            )
        assert via_index == via_scan
        assert via_index  # non-empty

    def test_cmp_index_matches_row_filter(self, loaded):
        db, rows = loaded
        with QueryContext(db) as ctx:
            cmp_index = ctx.cmp_index("shipments", "shipdate", "duedate")
            late = sorted(
                ctx.read_rows("shipments", ["id"], cmp_index.lookup("gt"))["id"]
            )
        expected = sorted(i for i, ship, due, __ in rows if ship > due)
        assert late == expected

    def test_text_index_matches_substring_scan(self, loaded):
        db, rows = loaded
        with QueryContext(db) as ctx:
            text = ctx.text_index("shipments", "note")
            flagged = sorted(
                ctx.read_rows("shipments", ["id"],
                              text.lookup_all(["complaint"]))["id"]
            )
        expected = sorted(i for i, __, __, note in rows if "complaint" in note)
        assert flagged == expected
