"""Unit tests for page encryption (Section 4)."""

import pytest

from repro.storage.encryption import EncryptionError, PageEncryptor
from tests.conftest import make_db

KEY = b"0123456789abcdef0123456789abcdef"


class TestPageEncryptor:
    def test_roundtrip(self):
        enc = PageEncryptor(KEY)
        for payload in (b"", b"x", b"page data " * 1000):
            assert enc.decrypt(enc.encrypt(payload)) == payload

    def test_ciphertext_hides_plaintext(self):
        enc = PageEncryptor(KEY)
        plaintext = b"SECRET-CUSTOMER-DATA" * 50
        ciphertext = enc.encrypt(plaintext)
        assert b"SECRET" not in ciphertext

    def test_each_encryption_unique(self):
        enc = PageEncryptor(KEY)
        a = enc.encrypt(b"same data")
        b = enc.encrypt(b"same data")
        assert a != b  # fresh nonce per page

    def test_tamper_detected(self):
        enc = PageEncryptor(KEY)
        payload = bytearray(enc.encrypt(b"important"))
        payload[-1] ^= 0xFF
        with pytest.raises(EncryptionError):
            enc.decrypt(bytes(payload))

    def test_wrong_key_rejected(self):
        ciphertext = PageEncryptor(KEY).encrypt(b"data")
        other = PageEncryptor(b"another-key-another-key-another!")
        with pytest.raises(EncryptionError):
            other.decrypt(ciphertext)

    def test_garbage_rejected(self):
        with pytest.raises(EncryptionError):
            PageEncryptor(KEY).decrypt(b"not encrypted at all")

    def test_short_key_rejected(self):
        with pytest.raises(EncryptionError):
            PageEncryptor(b"short")


class TestEncryptedEngine:
    def test_roundtrip_through_engine(self):
        db = make_db(encryption_key=KEY)
        db.create_object("t")
        txn = db.begin()
        db.write_page(txn, "t", 0, b"customer record " * 100)
        db.commit(txn)
        db.buffer.invalidate_all()
        reader = db.begin()
        assert db.read_page(reader, "t", 0) == b"customer record " * 100
        db.commit(reader)

    def test_objects_at_rest_are_ciphertext(self):
        db = make_db(encryption_key=KEY)
        db.create_object("t")
        txn = db.begin()
        db.write_page(txn, "t", 0, b"PLAINTEXT-MARKER" * 64)
        db.commit(txn)
        for name in db.object_store.list_keys():
            assert b"PLAINTEXT-MARKER" not in db.object_store.get(name)

    def test_ocm_cache_holds_ciphertext(self):
        """The buffer hands pages to the OCM already encrypted."""
        db = make_db(encryption_key=KEY)
        db.create_object("t")
        txn = db.begin()
        db.write_page(txn, "t", 0, b"PLAINTEXT-MARKER" * 64)
        db.commit(txn)
        assert db.ocm is not None
        polluted = [
            name for name, entry in db.ocm._entries.items()
            if b"PLAINTEXT-MARKER" in entry.data
        ]
        assert not polluted

    def test_crash_recovery_with_encryption(self):
        db = make_db(encryption_key=KEY)
        db.create_object("t")
        txn = db.begin()
        db.write_page(txn, "t", 0, b"survives" * 10)
        db.commit(txn)
        db.crash()
        db.restart()
        reader = db.begin()
        assert db.read_page(reader, "t", 0) == b"survives" * 10
        db.commit(reader)
