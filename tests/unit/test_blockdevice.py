"""Unit tests for block devices and volume profiles."""

import pytest

from repro.blockstore.device import BlockDevice, BlockDeviceError
from repro.blockstore.profiles import ebs_gp2, efs_standard, nvme_ssd, ram_disk
from repro.sim.clock import VirtualClock

GIB = 1024 ** 3
TIB = 1024 ** 4


def make_device(profile=None, block_size=4096, blocks=1000):
    return BlockDevice(profile or ram_disk(), block_size, blocks,
                       clock=VirtualClock())


class TestBlockDevice:
    def test_write_read_roundtrip(self):
        device = make_device()
        device.write(10, b"hello world")
        assert device.read(10) == b"hello world"

    def test_read_unwritten_raises(self):
        with pytest.raises(BlockDeviceError):
            make_device().read(5)

    def test_blocks_for(self):
        device = make_device(block_size=4096)
        assert device.blocks_for(1) == 1
        assert device.blocks_for(4096) == 1
        assert device.blocks_for(4097) == 2
        assert device.blocks_for(0) == 1

    def test_out_of_range_write(self):
        device = make_device(blocks=10)
        with pytest.raises(BlockDeviceError):
            device.write(9, b"x" * 8192)  # needs blocks 9 and 10

    def test_discard_drops_data(self):
        device = make_device()
        device.write(0, b"x")
        device.discard(0)
        with pytest.raises(BlockDeviceError):
            device.read(0)
        device.discard(0)  # idempotent

    def test_timed_io_advances_clock(self):
        device = make_device(profile=nvme_ssd())
        device.write(0, b"x" * 100_000)
        assert device.clock.now() > 0

    def test_read_many_parallel(self):
        device = make_device(profile=nvme_ssd())
        for i in range(16):
            device.write(i * 4, b"block%02d" % i)
        result = device.read_many([i * 4 for i in range(16)])
        assert result[8] == b"block02"

    def test_write_many(self):
        device = make_device()
        device.write_many([(0, b"a"), (4, b"b")])
        assert device.read(4) == b"b"

    def test_stored_bytes(self):
        device = make_device()
        device.write(0, b"12345")
        device.write(10, b"12")
        assert device.stored_bytes() == 7

    def test_invalid_geometry(self):
        with pytest.raises(BlockDeviceError):
            BlockDevice(ram_disk(), 0, 10)
        with pytest.raises(BlockDeviceError):
            BlockDevice(ram_disk(), 512, 0)


class TestProfiles:
    def test_ebs_iops_scale_with_size(self):
        small = ebs_gp2(100 * GIB)
        large = ebs_gp2(1024 * GIB)
        assert small.iops == pytest.approx(300.0)
        assert large.iops == pytest.approx(3072.0)

    def test_ebs_iops_capped(self):
        huge = ebs_gp2(16 * TIB)
        assert huge.iops == 16000.0

    def test_ebs_iops_floor(self):
        tiny = ebs_gp2(1 * GIB)
        assert tiny.iops == 100.0

    def test_efs_throughput_scales_with_size(self):
        small = efs_standard(100 * GIB)
        large = efs_standard(4 * TIB)
        assert large.bandwidth > small.bandwidth

    def test_efs_slower_than_ebs_latency(self):
        assert efs_standard(TIB).read_latency > ebs_gp2(TIB).read_latency

    def test_nvme_fastest_latency(self):
        assert nvme_ssd().read_latency < ebs_gp2(TIB).read_latency
