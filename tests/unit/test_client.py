"""Unit tests for the retrying object client (read-after-write machinery)."""

import pytest

from repro.objectstore import (
    CircuitBreakerConfig,
    CircuitOpenError,
    ConsistencyModel,
    FaultSchedule,
    HedgePolicy,
    LatencySpike,
    OutageWindow,
    OverwriteForbiddenError,
    RetriesExhaustedError,
    RetryingObjectClient,
    RetryPolicy,
    SimulatedObjectStore,
    STRONG,
)
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng


def make_client(consistency=STRONG, failure_probability=0.0,
                policy=None, enforce=True, schedule=None,
                breaker=None, hedge=None, seed=3):
    profile = ObjectStoreProfile(
        name="s3",
        consistency=consistency,
        transient_failure_probability=failure_probability,
        latency_jitter=0.0,
    )
    store = SimulatedObjectStore(profile, clock=VirtualClock(),
                                 rng=DeterministicRng(seed),
                                 fault_schedule=schedule)
    return RetryingObjectClient(
        store, policy=policy or RetryPolicy(), enforce_unique_keys=enforce,
        breaker=breaker, hedge=hedge,
    )


def test_put_get_roundtrip():
    client = make_client()
    client.put("a/1", b"payload")
    assert client.get("a/1") == b"payload"


def test_never_write_twice_enforced():
    client = make_client()
    client.put("a/1", b"x")
    with pytest.raises(OverwriteForbiddenError):
        client.put("a/1", b"y")
    assert client.was_written("a/1")


def test_overwrite_allowed_when_disabled():
    client = make_client(enforce=False)
    client.put("a/1", b"x")
    client.put("a/1", b"y")  # ablation mode: update in place


def test_read_retries_until_visible():
    """Eventual consistency turns into read-after-write via retries."""
    lagging = ConsistencyModel(invisible_probability=1.0,
                               mean_lag_seconds=0.02)
    client = make_client(consistency=lagging)
    client.put("a/1", b"x")
    assert client.get("a/1") == b"x"
    assert client.metrics.snapshot().get("not_found_retries", 0) >= 1


def test_read_gives_up_after_budget():
    lagging = ConsistencyModel(invisible_probability=1.0,
                               mean_lag_seconds=10_000.0)
    client = make_client(
        consistency=lagging,
        policy=RetryPolicy(max_attempts=3, initial_backoff=0.001,
                           max_backoff=0.001),
    )
    client.put("a/1", b"x")
    with pytest.raises(RetriesExhaustedError):
        client.get("a/1")


def test_missing_key_eventually_raises():
    client = make_client(
        policy=RetryPolicy(max_attempts=2, initial_backoff=0.001)
    )
    with pytest.raises(RetriesExhaustedError):
        client.get("never/written")


def test_transient_put_failures_are_retried():
    client = make_client(failure_probability=0.3)
    for i in range(50):
        client.put(f"a/{i}", b"x")
    assert client.metrics.snapshot().get("put_retries", 0) > 0
    for i in range(50):
        assert client.get(f"a/{i}") == b"x"


def test_get_many_returns_all():
    client = make_client()
    items = [(f"k/{i}", bytes([i])) for i in range(20)]
    client.put_many(items)
    result = client.get_many([key for key, __ in items])
    assert result == dict(items)


def test_get_many_parallelism_beats_serial():
    serial = make_client()
    for i in range(64):
        serial.put(f"k/{i}", b"x" * 100)
    serial_start = serial.clock.now()
    for i in range(64):
        serial.get(f"k/{i}")
    serial_elapsed = serial.clock.now() - serial_start

    parallel = make_client()
    parallel.put_many([(f"k/{i}", b"x" * 100) for i in range(64)])
    parallel_start = parallel.clock.now()
    parallel.get_many([f"k/{i}" for i in range(64)], window=32)
    parallel_elapsed = parallel.clock.now() - parallel_start
    assert parallel_elapsed < serial_elapsed / 4


def test_delete_many():
    client = make_client()
    client.put_many([(f"k/{i}", b"x") for i in range(10)])
    client.delete_many([f"k/{i}" for i in range(10)])
    assert client.store.object_count() == 0


def test_backoff_schedule():
    policy = RetryPolicy(initial_backoff=0.01, backoff_multiplier=2.0,
                         max_backoff=0.05)
    assert policy.backoff(1) == pytest.approx(0.01)
    assert policy.backoff(2) == pytest.approx(0.02)
    assert policy.backoff(10) == pytest.approx(0.05)


def test_invalid_configuration():
    with pytest.raises(ValueError):
        make_client(policy=RetryPolicy(max_attempts=0))


# --------------------------------------------------------------------- #
# never-write-twice ledger vs failed puts (regression)
# --------------------------------------------------------------------- #

def test_failed_put_does_not_poison_write_ledger():
    """A put that exhausted its retries must leave the key unwritten.

    The ledger previously recorded the key *before* attempting the store
    write, so a put that never landed still blocked every later legitimate
    re-put with OverwriteForbiddenError.
    """
    client = make_client(
        schedule=FaultSchedule([OutageWindow(0.0, 1.0)]),
        policy=RetryPolicy(max_attempts=3, initial_backoff=0.001,
                           max_backoff=0.001),
    )
    with pytest.raises(RetriesExhaustedError):
        client.put("a/1", b"x")
    assert not client.was_written("a/1")
    # Past the outage the rollback-and-retry path writes the key cleanly.
    client.clock.advance_to(1.0)
    client.put("a/1", b"x")
    assert client.was_written("a/1")
    assert client.get("a/1") == b"x"


# --------------------------------------------------------------------- #
# delete/HEAD retry loops
# --------------------------------------------------------------------- #

def test_delete_retries_transient_failures():
    client = make_client(failure_probability=0.3)
    client.put_many([(f"k/{i}", b"x") for i in range(30)])
    client.delete_many([f"k/{i}" for i in range(30)])
    assert client.store.object_count() == 0
    assert client.metrics.snapshot().get("delete_retries", 0) > 0


def test_exists_retries_transient_failures():
    client = make_client(failure_probability=0.3)
    client.put("a/1", b"x")
    for __ in range(20):
        assert client.exists("a/1")
    assert not client.exists("a/never")
    assert client.metrics.snapshot().get("head_retries", 0) > 0


def test_delete_gives_up_during_outage():
    client = make_client(
        schedule=FaultSchedule([OutageWindow(0.0, 10.0)]),
        policy=RetryPolicy(max_attempts=3, initial_backoff=0.001,
                           max_backoff=0.001),
    )
    with pytest.raises(RetriesExhaustedError):
        client.delete("a/1")


# --------------------------------------------------------------------- #
# deadline budget
# --------------------------------------------------------------------- #

def test_deadline_budget_bounds_retry_time():
    lagging = ConsistencyModel(invisible_probability=1.0,
                               mean_lag_seconds=10_000.0)
    client = make_client(
        consistency=lagging,
        policy=RetryPolicy(max_attempts=1000, initial_backoff=0.05,
                           max_backoff=0.2, deadline=2.0),
    )
    client.put("a/1", b"x")
    start = client.clock.now()
    with pytest.raises(RetriesExhaustedError) as info:
        client.get("a/1")
    assert info.value.deadline == pytest.approx(2.0)
    assert "deadline" in str(info.value)
    assert client.metrics.snapshot()["deadline_expirations"] == 1
    # Far fewer than max_attempts ran: the budget cut the loop short.
    assert client.metrics.snapshot()["not_found_retries"] < 100
    assert client.clock.now() == start  # timed API never advanced the clock


def test_decorrelated_jitter_stays_within_bounds():
    policy = RetryPolicy(initial_backoff=0.01, max_backoff=0.5,
                         jitter="decorrelated")
    rng = DeterministicRng(7)
    previous = None
    delays = []
    for attempt in range(1, 40):
        previous = policy.backoff(attempt, rng=rng, previous=previous)
        delays.append(previous)
    assert all(0.01 <= d <= 0.5 for d in delays)
    assert len(set(delays)) > 10  # actually jittered, not a fixed ladder
    # Same substream → same schedule (bit-identical replays).
    rng2 = DeterministicRng(7)
    replay = []
    previous = None
    for attempt in range(1, 40):
        previous = policy.backoff(attempt, rng=rng2, previous=previous)
        replay.append(previous)
    assert replay == delays


def test_invalid_jitter_and_deadline_rejected():
    with pytest.raises(ValueError):
        RetryPolicy(jitter="thundering-herd")
    with pytest.raises(ValueError):
        RetryPolicy(deadline=-1.0)


# --------------------------------------------------------------------- #
# circuit breaker
# --------------------------------------------------------------------- #

def breaker_client(**kwargs):
    return make_client(
        schedule=FaultSchedule([OutageWindow(0.0, 10.0)]),
        policy=RetryPolicy(max_attempts=3, initial_backoff=0.01,
                           max_backoff=0.02),
        breaker=CircuitBreakerConfig(failure_threshold=3, reset_timeout=5.0),
        **kwargs,
    )


def test_breaker_opens_after_consecutive_failures_then_fails_fast():
    client = breaker_client()
    # Three failed attempts inside one put trip the breaker.
    with pytest.raises(RetriesExhaustedError):
        client.put_at("a/1", b"x", 0.0)
    assert client.breaker_state(0.5) == "open"
    snap = client.metrics.snapshot()
    assert snap["breaker_opened"] == 1
    assert snap["breaker_state"] == 2.0
    # While open, requests fail fast without touching the store.
    puts_before = client.store.metrics.snapshot()["put_requests"]
    with pytest.raises(CircuitOpenError) as info:
        client.put_at("a/2", b"x", 0.5)
    assert info.value.retry_at > 0.5
    assert client.store.metrics.snapshot()["put_requests"] == puts_before
    assert client.metrics.snapshot()["breaker_fast_failures"] == 1


def test_breaker_half_open_probe_closes_after_recovery():
    client = breaker_client()
    with pytest.raises(RetriesExhaustedError):
        client.put_at("a/1", b"x", 0.0)
    # Past the reset timeout AND the outage: the probe succeeds and closes.
    done = client.put_at("a/2", b"x", 12.0)
    assert done > 12.0
    assert client.breaker_state(done) == "closed"
    snap = client.metrics.snapshot()
    assert snap["breaker_half_open"] == 1
    assert snap["breaker_closed"] == 1
    assert snap["breaker_state"] == 0.0
    # The transition series records (time, state-code) samples in order.
    codes = [code for __, code in client.metrics.series("breaker_transitions").samples]
    assert codes == [2.0, 1.0, 0.0]  # open → half-open → closed


def test_breaker_half_open_probe_failure_reopens():
    client = breaker_client()
    with pytest.raises(RetriesExhaustedError):
        client.put_at("a/1", b"x", 0.0)
    # Reset timeout elapsed but the outage is still on: the half-open probe
    # fails, reopening the breaker; the next attempt then fails fast.
    with pytest.raises(CircuitOpenError):
        client.put_at("a/2", b"x", 6.0)
    snap = client.metrics.snapshot()
    assert snap["breaker_opened"] >= 2
    assert client.breaker_state(6.5) == "open"


def test_breaker_bypass_lets_commit_writes_through():
    client = breaker_client()
    with pytest.raises(RetriesExhaustedError):
        client.put_at("a/1", b"x", 0.0)
    assert client.breaker_state(0.5) == "open"
    # A bypassing (commit-critical) write ignores fail-fast; it still fails
    # during the outage but keeps retrying the real store.
    with pytest.raises(RetriesExhaustedError):
        client.put_at("commit/1", b"x", 0.5, bypass_breaker=True)
    # After the outage a bypassing success closes the breaker outright.
    client.put_at("commit/2", b"x", 20.0, bypass_breaker=True)
    assert client.breaker_state(20.5) == "closed"


# --------------------------------------------------------------------- #
# hedged GETs
# --------------------------------------------------------------------- #

def test_hedged_get_fires_and_wins_on_slow_primary():
    # The primary read is issued into a brief spiked outage: its (failed)
    # completion lands past the hedge delay, so the hedge fires after the
    # window lapses and rescues the read without a retry round.
    client = make_client(
        schedule=FaultSchedule([
            OutageWindow(0.0, 0.03, ops="get"),
            LatencySpike(0.0, 0.03, multiplier=100.0, ops="get"),
        ]),
        hedge=HedgePolicy(initial_delay=0.05),
    )
    client.put("a/1", b"payload")
    data, done = client.get_at("a/1", 0.0)
    assert data == b"payload"
    snap = client.metrics.snapshot()
    assert snap["hedged_gets"] == 1
    assert snap["hedge_wins"] == 1
    assert snap.get("get_retries", 0) == 0  # the hedge preempted the retry
    # The winning completion is the hedge's, far below the spiked primary.
    assert done < 1.0


def test_hedge_not_fired_for_fast_reads():
    client = make_client(hedge=HedgePolicy(initial_delay=0.05))
    client.put("a/1", b"x")
    client.get("a/1")
    assert client.metrics.snapshot().get("hedged_gets", 0) == 0
