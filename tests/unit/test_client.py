"""Unit tests for the retrying object client (read-after-write machinery)."""

import pytest

from repro.objectstore import (
    ConsistencyModel,
    OverwriteForbiddenError,
    RetriesExhaustedError,
    RetryingObjectClient,
    RetryPolicy,
    SimulatedObjectStore,
    STRONG,
)
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng


def make_client(consistency=STRONG, failure_probability=0.0,
                policy=None, enforce=True):
    profile = ObjectStoreProfile(
        name="s3",
        consistency=consistency,
        transient_failure_probability=failure_probability,
        latency_jitter=0.0,
    )
    store = SimulatedObjectStore(profile, clock=VirtualClock(),
                                 rng=DeterministicRng(3))
    return RetryingObjectClient(
        store, policy=policy or RetryPolicy(), enforce_unique_keys=enforce
    )


def test_put_get_roundtrip():
    client = make_client()
    client.put("a/1", b"payload")
    assert client.get("a/1") == b"payload"


def test_never_write_twice_enforced():
    client = make_client()
    client.put("a/1", b"x")
    with pytest.raises(OverwriteForbiddenError):
        client.put("a/1", b"y")
    assert client.was_written("a/1")


def test_overwrite_allowed_when_disabled():
    client = make_client(enforce=False)
    client.put("a/1", b"x")
    client.put("a/1", b"y")  # ablation mode: update in place


def test_read_retries_until_visible():
    """Eventual consistency turns into read-after-write via retries."""
    lagging = ConsistencyModel(invisible_probability=1.0,
                               mean_lag_seconds=0.02)
    client = make_client(consistency=lagging)
    client.put("a/1", b"x")
    assert client.get("a/1") == b"x"
    assert client.metrics.snapshot().get("not_found_retries", 0) >= 1


def test_read_gives_up_after_budget():
    lagging = ConsistencyModel(invisible_probability=1.0,
                               mean_lag_seconds=10_000.0)
    client = make_client(
        consistency=lagging,
        policy=RetryPolicy(max_attempts=3, initial_backoff=0.001,
                           max_backoff=0.001),
    )
    client.put("a/1", b"x")
    with pytest.raises(RetriesExhaustedError):
        client.get("a/1")


def test_missing_key_eventually_raises():
    client = make_client(
        policy=RetryPolicy(max_attempts=2, initial_backoff=0.001)
    )
    with pytest.raises(RetriesExhaustedError):
        client.get("never/written")


def test_transient_put_failures_are_retried():
    client = make_client(failure_probability=0.3)
    for i in range(50):
        client.put(f"a/{i}", b"x")
    assert client.metrics.snapshot().get("put_retries", 0) > 0
    for i in range(50):
        assert client.get(f"a/{i}") == b"x"


def test_get_many_returns_all():
    client = make_client()
    items = [(f"k/{i}", bytes([i])) for i in range(20)]
    client.put_many(items)
    result = client.get_many([key for key, __ in items])
    assert result == dict(items)


def test_get_many_parallelism_beats_serial():
    serial = make_client()
    for i in range(64):
        serial.put(f"k/{i}", b"x" * 100)
    serial_start = serial.clock.now()
    for i in range(64):
        serial.get(f"k/{i}")
    serial_elapsed = serial.clock.now() - serial_start

    parallel = make_client()
    parallel.put_many([(f"k/{i}", b"x" * 100) for i in range(64)])
    parallel_start = parallel.clock.now()
    parallel.get_many([f"k/{i}" for i in range(64)], window=32)
    parallel_elapsed = parallel.clock.now() - parallel_start
    assert parallel_elapsed < serial_elapsed / 4


def test_delete_many():
    client = make_client()
    client.put_many([(f"k/{i}", b"x") for i in range(10)])
    client.delete_many([f"k/{i}" for i in range(10)])
    assert client.store.object_count() == 0


def test_backoff_schedule():
    policy = RetryPolicy(initial_backoff=0.01, backoff_multiplier=2.0,
                         max_backoff=0.05)
    assert policy.backoff(1) == pytest.approx(0.01)
    assert policy.backoff(2) == pytest.approx(0.02)
    assert policy.backoff(10) == pytest.approx(0.05)


def test_invalid_configuration():
    with pytest.raises(ValueError):
        make_client(policy=RetryPolicy(max_attempts=0))
