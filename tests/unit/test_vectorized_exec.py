"""Vectorized executor: kernels, operators, scheduler, decode cache.

The contract under test everywhere: the numpy path must reproduce the
scalar path's output *exactly* — same rows, same order, same float bits.
Property tests drive random relations through each operator in both
modes and compare; kernel tests pin the order-sensitive details (group
appearance order, join match order, sequential float accumulation).
"""

from __future__ import annotations

import math

import pytest

from repro.columnar import exec as ex
from repro.columnar import vec
from repro.columnar.encoding import (
    _unpack_nbit,
    decode_values,
    decode_values_np,
    encode_values,
)
from repro.columnar.query import DecodedBatchCache
from repro.sim.clock import VirtualClock
from repro.sim.cpu import CpuModel, MorselScheduler
from repro.sim.metrics import MetricsRegistry

np = pytest.importorskip("numpy")

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


class FakeSession:
    """Just enough session surface for operator-level tests."""

    def __init__(self, vcpus: int = 4) -> None:
        self.cpu = CpuModel(VirtualClock(), vcpus=vcpus)


class FakeCtx:
    """Operator context without a database: cpu + morsels + flag."""

    def __init__(self, vectorized: bool, vcpus: int = 4) -> None:
        self.session = FakeSession(vcpus)
        self.cpu = self.session.cpu
        self.vectorized = vectorized
        self.morsels = MorselScheduler(self.cpu)


def norm(rel):
    """Relation -> plain python lists for comparison."""
    return {k: vec.to_list(v) for k, v in rel.items()}


def both_ways(op):
    """Run ``op(ctx)`` scalar and vectorized; assert identical output."""
    scalar = norm(op(FakeCtx(vectorized=False)))
    vectorized = norm(op(FakeCtx(vectorized=True)))
    assert scalar == vectorized
    return scalar


# --------------------------------------------------------------------- #
# kernels
# --------------------------------------------------------------------- #

def test_asarray_preserves_mixed_columns():
    values = [1, "two", 3.0, None]
    arr = vec.asarray(values)
    assert arr.dtype == object
    assert arr.tolist() == values


def test_asarray_native_dtypes():
    assert vec.asarray([1, 2, 3]).dtype.kind == "i"
    assert vec.asarray([1.5, 2.5]).dtype.kind == "f"
    assert vec.asarray(["a", "b"]).dtype.kind == "U"


def test_group_keys_appearance_order():
    codes, first_rows = vec.group_keys([vec.asarray(["b", "a", "b", "c"])])
    assert codes.tolist() == [0, 1, 0, 2]     # 'b' first, then 'a', 'c'
    assert first_rows.tolist() == [0, 1, 3]


def test_join_matches_probe_major_build_insertion_order():
    build = vec.asarray([7, 9, 7, 7])
    probe = vec.asarray([7, 8, 9, 7])
    build_codes, probe_codes = vec.join_codes([build], [probe])
    probe_rows, build_rows = vec.join_matches(build_codes, probe_codes)
    # Probe rows ascending; build matches in insertion order (0, 2, 3).
    assert probe_rows.tolist() == [0, 0, 0, 2, 3, 3, 3]
    assert build_rows.tolist() == [0, 2, 3, 1, 0, 2, 3]


def test_group_sum_accumulates_in_row_order():
    # Catastrophic-cancellation-ish mix where pairwise summation (np.sum)
    # rounds differently from sequential accumulation.
    values = [1e16, 1.0, -1e16, 1.0, 0.1, 0.2] * 7
    codes = np.zeros(len(values), dtype=np.int64)
    expected = 0.0
    for value in values:
        expected += value
    got = vec.group_sum(codes, vec.asarray(values), 1)
    assert got[0] == expected  # bit-identical, not approx


def test_group_minmax_strings():
    codes = np.array([0, 1, 0, 1], dtype=np.int64)
    values = vec.asarray(["pear", "fig", "apple", "yam"])
    assert vec.group_minmax(codes, values, 2, want_max=False).tolist() == \
        ["apple", "fig"]
    assert vec.group_minmax(codes, values, 2, want_max=True).tolist() == \
        ["pear", "yam"]


def test_apply_rowwise_broadcasts_arithmetic():
    a = vec.asarray([1.0, 2.0, 3.0])
    b = vec.asarray([10.0, 20.0, 30.0])
    out = vec.apply_rowwise(lambda x, y: x * (1 - y), [a, b], 3)
    assert out.tolist() == [1 * (1 - 10.0), 2 * (1 - 20.0), 3 * (1 - 30.0)]


def test_apply_rowwise_rejects_accidental_array_result():
    # Slicing the *array* returns a shape the broadcast probe must reject
    # (the per-row meaning is "first two chars of each string").
    s = vec.asarray(["alpha", "beta"])
    out = vec.apply_rowwise(lambda v: v[:2], [s], 2)
    assert out.tolist() == ["al", "be"]


def test_apply_rowwise_falls_back_on_python_semantics():
    s = vec.asarray(["promo stuff", "plain"])
    out = vec.apply_rowwise(lambda v: v.startswith("promo"), [s], 2)
    assert out.tolist() == [True, False]


@given(
    st.lists(st.integers(0, 2 ** 40), min_size=1, max_size=200),
)
@settings(max_examples=50, deadline=None)
def test_unpack_nbit_matches_scalar(values):
    span = max(values)
    width = max(1, span.bit_length())
    from repro.columnar.encoding import _pack_nbit

    payload = _pack_nbit(values, width)
    assert vec.unpack_nbit(payload, width, len(values)).tolist() == \
        _unpack_nbit(payload, width, len(values))


@given(
    st.one_of(
        st.tuples(st.just("int"),
                  st.lists(st.integers(-2 ** 50, 2 ** 50), max_size=100)),
        st.tuples(st.just("float"),
                  st.lists(st.floats(allow_nan=False, allow_infinity=False),
                           max_size=100)),
        st.tuples(st.just("str"),
                  st.lists(st.text(
                      alphabet=st.characters(blacklist_characters="\x00"),
                      max_size=12), max_size=100)),
    )
)
@settings(max_examples=60, deadline=None)
def test_decode_values_np_matches_scalar_decode(case):
    kind, values = case
    payload = encode_values(kind, values)
    got = decode_values_np(payload)
    assert got.tolist() == decode_values(payload)
    assert not got.flags.writeable


def test_decode_values_np_float_is_zero_copy_view():
    payload = encode_values("float", [1.5, -2.25, 1e300])
    got = decode_values_np(payload)
    assert got.base is not None  # a view over the page bytes, not a copy


# --------------------------------------------------------------------- #
# operators: scalar == vectorized (property tests)
# --------------------------------------------------------------------- #

_COLUMN = st.one_of(
    st.lists(st.integers(-50, 50), min_size=0, max_size=60),
    st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=0, max_size=60),
    st.lists(st.text(alphabet="abcXYZ", max_size=4), min_size=0, max_size=60),
)


@st.composite
def relations(draw, min_columns=2, max_columns=4):
    n_cols = draw(st.integers(min_columns, max_columns))
    count = draw(st.integers(0, 60))
    rel = {}
    for i in range(n_cols):
        column = draw(_COLUMN)
        column = (column * (count // max(1, len(column)) + 1))[:count] \
            if column else [0] * count
        rel[f"c{i}"] = column
    return rel


@given(relations())
@settings(max_examples=40, deadline=None)
def test_filter_rows_equivalence(rel):
    pivot = rel["c0"][0] if rel["c0"] else 0
    both_ways(lambda ctx: ex.filter_rows(
        ctx, rel, lambda v: v >= pivot, ["c0"]
    ))


@given(relations())
@settings(max_examples=40, deadline=None)
def test_extend_equivalence(rel):
    both_ways(lambda ctx: ex.extend(
        ctx, rel, "derived", lambda a, b: (a, b) == (a, b) and str(a) < str(b),
        ["c0", "c1"],
    ))


@given(relations(), relations())
@settings(max_examples=40, deadline=None)
def test_hash_join_equivalence(left, right):
    both_ways(lambda ctx: ex.hash_join(
        ctx,
        {f"l_{k}": [str(v) for v in vs] for k, vs in left.items()},
        {f"r_{k}": [str(v) for v in vs] for k, vs in right.items()},
        ["l_c0"], ["r_c0"],
    ))


@given(relations(), relations())
@settings(max_examples=40, deadline=None)
def test_semi_anti_join_equivalence(left, right):
    left = {f"l_{k}": [str(v) for v in vs] for k, vs in left.items()}
    right = {f"r_{k}": [str(v) for v in vs] for k, vs in right.items()}
    both_ways(lambda ctx: ex.hash_join(
        ctx, left, right, ["l_c0"], ["r_c0"], semi=True
    ))
    both_ways(lambda ctx: ex.hash_join(
        ctx, left, right, ["l_c1"], ["r_c1"], anti=True
    ))


@given(relations(min_columns=3))
@settings(max_examples=40, deadline=None)
def test_group_by_equivalence(rel):
    keyed = {
        "c0": [str(v) for v in rel["c0"]],
        "c1": [float(len(str(v))) + (v if isinstance(v, (int, float)) else 0)
               for v in rel["c1"]],
        "c2": rel["c2"],
    }
    both_ways(lambda ctx: ex.group_by(
        ctx, keyed, ["c0"],
        {
            "n": ("count", None),
            "total": ("sum", "c1"),
            "mean": ("avg", "c1"),
            "lo": ("min", "c2"),
            "hi": ("max", "c2"),
        },
    ))


@given(relations(min_columns=3))
@settings(max_examples=40, deadline=None)
def test_global_group_equivalence(rel):
    numeric = dict(rel)
    numeric["c1"] = [float(len(str(v))) for v in rel["c1"]]
    both_ways(lambda ctx: ex.group_by(
        ctx, numeric, [],
        {"n": ("count", None), "total": ("sum", "c1")},
    ))


@given(relations(min_columns=2))
@settings(max_examples=40, deadline=None)
def test_order_by_equivalence(rel):
    both_ways(lambda ctx: ex.order_by(
        ctx, rel, [("c0", True), ("c1", False)], limit=10
    ))


@given(relations())
@settings(max_examples=40, deadline=None)
def test_distinct_equivalence(rel):
    both_ways(lambda ctx: ex.distinct(ctx, rel, ["c0", "c1"]))


def test_concat_mixed_representations():
    left = {"a": vec.asarray([1, 2])}
    right = {"a": [3, 4]}
    assert vec.to_list(ex.concat(left, right)["a"]) == [1, 2, 3, 4]
    assert ex.concat({"a": [1]}, {"a": [2]})["a"] == [1, 2]


def test_rows_helper_handles_vectors():
    rel = {"a": vec.asarray([1, 2]), "b": vec.asarray(["x", "y"])}
    assert ex.rows(rel) == [(1, "x"), (2, "y")]
    assert ex.rows({"a": vec.asarray([])}) == []


# --------------------------------------------------------------------- #
# morsel scheduler
# --------------------------------------------------------------------- #

def test_morsel_seconds_shrink_with_vcpus():
    rows = 600_000
    ops = 3.0 * rows
    times = []
    for vcpus in (1, 8, 16):
        sched = MorselScheduler(CpuModel(VirtualClock(), vcpus=vcpus))
        times.append(sched.seconds_for(ops, rows))
    assert times[0] > times[1] > times[2]


def test_morsel_dispatch_overhead_binds_eventually():
    # With morsels <= vcpus there is one wave; adding cores changes nothing.
    rows = 4096  # exactly one morsel
    a = MorselScheduler(CpuModel(VirtualClock(), vcpus=8)).seconds_for(100.0, rows)
    b = MorselScheduler(CpuModel(VirtualClock(), vcpus=64)).seconds_for(100.0, rows)
    assert a == b


def test_morsel_charge_advances_clock_and_counters():
    clock = VirtualClock()
    cpu = CpuModel(clock, vcpus=4)
    metrics = MetricsRegistry()
    sched = MorselScheduler(cpu, morsel_rows=100, metrics=metrics)
    seconds = sched.charge(1000.0, rows=450)  # 5 morsels, 2 waves
    assert seconds > 0
    assert clock.now() == seconds
    assert sched.morsels_dispatched == 5
    assert sched.waves_run == 2
    assert metrics.counter("morsels_dispatched").value == 5
    assert cpu.total_ops == 1000.0


def test_morsel_scheduler_reads_vcpus_live():
    cpu = CpuModel(VirtualClock(), vcpus=1)
    sched = MorselScheduler(cpu, morsel_rows=10)
    slow = sched.seconds_for(1000.0, rows=1000)
    cpu.vcpus = 16
    fast = sched.seconds_for(1000.0, rows=1000)
    assert fast < slow


def test_morsel_scheduler_validates_args():
    cpu = CpuModel(VirtualClock(), vcpus=1)
    with pytest.raises(ValueError):
        MorselScheduler(cpu, morsel_rows=0)
    with pytest.raises(ValueError):
        MorselScheduler(cpu, dispatch_ops=-1.0)
    with pytest.raises(ValueError):
        MorselScheduler(cpu).seconds_for(-1.0)


# --------------------------------------------------------------------- #
# decoded-batch cache
# --------------------------------------------------------------------- #

def test_decoded_cache_hit_miss_metrics():
    metrics = MetricsRegistry()
    cache = DecodedBatchCache(1024, metrics=metrics)
    key = ("tbl/c0/p0", 3, 0)
    assert cache.get(key) is None
    cache.put(key, "batch", 100)
    assert cache.get(key) == "batch"
    assert cache.hits == 1 and cache.misses == 1
    assert metrics.counter("decoded_cache_hits").value == 1
    assert metrics.counter("decoded_cache_misses").value == 1
    assert metrics.gauge("decoded_cache_bytes").value == 100


def test_decoded_cache_lru_eviction_by_bytes():
    cache = DecodedBatchCache(250)
    cache.put(("a", 1, 0), "A", 100)
    cache.put(("b", 1, 0), "B", 100)
    cache.get(("a", 1, 0))           # touch: 'a' is now most recent
    cache.put(("c", 1, 0), "C", 100)  # evicts 'b', the LRU entry
    assert ("a", 1, 0) in cache
    assert ("b", 1, 0) not in cache
    assert ("c", 1, 0) in cache
    assert cache.evictions == 1
    assert cache.bytes_used == 200


def test_decoded_cache_rejects_oversized_batches():
    cache = DecodedBatchCache(50)
    cache.put(("a", 1, 0), "A", 100)
    assert ("a", 1, 0) not in cache
    assert cache.bytes_used == 0


def test_decoded_cache_versions_do_not_mix():
    cache = DecodedBatchCache(1024)
    cache.put(("a", 1, 0), "v1", 10)
    cache.put(("a", 2, 0), "v2", 10)
    assert cache.get(("a", 1, 0)) == "v1"
    assert cache.get(("a", 2, 0)) == "v2"


# --------------------------------------------------------------------- #
# numpy-less degradation
# --------------------------------------------------------------------- #

def test_vectorized_executor_requires_numpy(monkeypatch):
    monkeypatch.setattr(vec, "np", None)
    assert not vec.have_numpy()
    with pytest.raises(vec.VectorizedUnavailableError) as err:
        vec.require_numpy("vectorized_executor=True")
    message = str(err.value)
    assert "numpy" in message
    assert "repro[perf]" in message
    assert "vectorized_executor=False" in message


def test_database_fails_fast_without_numpy(monkeypatch):
    from repro.engine import Database, DatabaseConfig

    monkeypatch.setattr(vec, "np", None)
    with pytest.raises(vec.VectorizedUnavailableError):
        Database(DatabaseConfig(vectorized_executor=True))
    # The scalar default stays fully functional.
    db = Database(DatabaseConfig())
    assert db.config.vectorized_executor is False
