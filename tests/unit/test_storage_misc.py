"""Unit tests for page codecs, page config, identity objects, dbspaces."""

import pytest

from repro.blockstore.device import BlockDevice
from repro.blockstore.profiles import ram_disk
from repro.objectstore import RetryingObjectClient, SimulatedObjectStore
from repro.objectstore.consistency import STRONG
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock
from repro.storage.compression import (
    NoCompressionCodec,
    ZlibCodec,
    codec_by_name,
)
from repro.storage.dbspace import (
    BlockDbspace,
    CloudDbspace,
    DbspaceError,
    DirectObjectIO,
)
from repro.storage.identity import Catalog, CatalogError, IdentityObject
from repro.storage.locator import (
    NULL_LOCATOR,
    OBJECT_KEY_BASE,
    is_object_key,
    make_block_locator,
)
from repro.storage.page import PageConfig


class CounterKeys:
    def __init__(self):
        self.next = OBJECT_KEY_BASE

    def next_key(self):
        self.next += 1
        return self.next


class TestCodecs:
    def test_zlib_roundtrip(self):
        codec = ZlibCodec()
        data = b"hello " * 1000
        compressed = codec.compress(data)
        assert len(compressed) < len(data)
        assert codec.decompress(compressed) == data

    def test_none_roundtrip(self):
        codec = NoCompressionCodec()
        assert codec.decompress(codec.compress(b"abc")) == b"abc"

    def test_lookup_by_name(self):
        assert codec_by_name("zlib").name == "zlib"
        assert codec_by_name("none").name == "none"
        with pytest.raises(KeyError):
            codec_by_name("snappy")

    def test_zlib_level_validated(self):
        with pytest.raises(ValueError):
            ZlibCodec(level=10)


class TestPageConfig:
    def test_block_size_is_sixteenth(self):
        config = PageConfig(page_size=64 * 1024)
        assert config.block_size == 4096

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PageConfig(page_size=1000)  # not a multiple of 16
        with pytest.raises(ValueError):
            PageConfig(page_size=0)


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        oid = catalog.register_object("t1", "user")
        assert catalog.object_id("t1") == oid
        assert catalog.current(oid).version == 0
        assert catalog.current(oid).root_locator == NULL_LOCATOR

    def test_duplicate_name_rejected(self):
        catalog = Catalog()
        catalog.register_object("t1", "user")
        with pytest.raises(CatalogError):
            catalog.register_object("t1", "user")

    def test_publish_advances_version(self):
        catalog = Catalog()
        oid = catalog.register_object("t", "user")
        catalog.publish(IdentityObject(oid, "t", 1, 100, 1, 5, "user"))
        assert catalog.current(oid).version == 1
        assert catalog.identity(oid, 0).version == 0

    def test_publish_must_advance(self):
        catalog = Catalog()
        oid = catalog.register_object("t", "user")
        catalog.publish(IdentityObject(oid, "t", 1, 100, 1, 5, "user"))
        with pytest.raises(CatalogError):
            catalog.publish(IdentityObject(oid, "t", 1, 200, 1, 5, "user"))

    def test_drop_version(self):
        catalog = Catalog()
        oid = catalog.register_object("t", "user")
        catalog.publish(IdentityObject(oid, "t", 1, 100, 1, 5, "user"))
        catalog.drop_version(oid, 0)
        assert not catalog.has_version(oid, 0)
        with pytest.raises(CatalogError):
            catalog.drop_version(oid, 1)  # current version protected

    def test_serialization_roundtrip(self):
        catalog = Catalog()
        oid = catalog.register_object("t", "user")
        catalog.publish(IdentityObject(oid, "t", 1, 42, 2, 7, "user"))
        restored = Catalog.from_bytes(catalog.to_bytes())
        assert restored.current(oid).root_locator == 42
        assert restored.object_names() == ["t"]

    def test_drop_object(self):
        catalog = Catalog()
        oid = catalog.register_object("t", "user")
        catalog.drop_object(oid)
        assert not catalog.has_object("t")


def make_cloud():
    profile = ObjectStoreProfile(name="s3", consistency=STRONG,
                                 transient_failure_probability=0.0)
    store = SimulatedObjectStore(profile, clock=VirtualClock())
    return CloudDbspace("user", DirectObjectIO(RetryingObjectClient(store)),
                        CounterKeys())


def make_block():
    device = BlockDevice(ram_disk(), 4096, 1000, clock=VirtualClock())
    return BlockDbspace("sys", device)


class TestCloudDbspace:
    def test_every_write_gets_a_fresh_key(self):
        dbspace = make_cloud()
        first = dbspace.write_page(b"v1")
        # in_place_ok is ignored on cloud dbspaces (never-write-twice).
        second = dbspace.write_page(b"v2", replace_locator=first,
                                    in_place_ok=True)
        assert second != first
        assert is_object_key(first) and is_object_key(second)
        assert dbspace.read_page(first) == b"v1"
        assert dbspace.read_page(second) == b"v2"

    def test_write_pages_batch(self):
        dbspace = make_cloud()
        locators = dbspace.write_pages([b"a", b"b", b"c"])
        assert len(set(locators)) == 3
        assert dbspace.read_pages(locators)[locators[1]] == b"b"

    def test_poll_and_free(self):
        dbspace = make_cloud()
        locator = dbspace.write_page(b"x")
        assert dbspace.poll_and_free(locator) is True
        assert dbspace.poll_and_free(locator) is False  # already gone

    def test_block_locator_rejected(self):
        dbspace = make_cloud()
        with pytest.raises(DbspaceError):
            dbspace.read_page(make_block_locator(0, 1))


class TestBlockDbspace:
    def test_update_in_place_when_fresh(self):
        dbspace = make_block()
        locator = dbspace.write_page(b"v1")
        same = dbspace.write_page(b"v2", replace_locator=locator,
                                  in_place_ok=True)
        assert same == locator
        assert dbspace.read_page(locator) == b"v2"

    def test_no_in_place_without_permission(self):
        dbspace = make_block()
        locator = dbspace.write_page(b"v1")
        other = dbspace.write_page(b"v2", replace_locator=locator,
                                   in_place_ok=False)
        assert other != locator

    def test_in_place_needs_fitting_size(self):
        dbspace = make_block()
        locator = dbspace.write_page(b"x")
        bigger = dbspace.write_page(b"y" * 8192, replace_locator=locator,
                                    in_place_ok=True)
        assert bigger != locator

    def test_free_page_returns_blocks(self):
        dbspace = make_block()
        locator = dbspace.write_page(b"x" * 5000)
        used = dbspace.freelist.used_blocks
        dbspace.free_page(locator)
        assert dbspace.freelist.used_blocks < used

    def test_freelist_device_agreement_checked(self):
        device = BlockDevice(ram_disk(), 4096, 1000, clock=VirtualClock())
        from repro.blockstore.freelist import Freelist

        with pytest.raises(DbspaceError):
            BlockDbspace("sys", device, Freelist(999))
