"""Unit tests for the elastic autoscaler (DESIGN.md §16).

Pure logic only — the decision table, the router's drain-and-retire
state machine, warm-set selection and pre-warm admission run against
tiny hand-built fixtures, never a TPC-H load.
"""

import pytest

from repro.blockstore.profiles import nvme_ssd
from repro.core.autoscale import (
    COORDINATOR_ID,
    AutoscaleConfig,
    AutoscaleController,
    AutoscaleError,
    AutoscaleSignals,
    NodeRouter,
    decide,
    prewarm_secondary,
)
from repro.core.multiplex import Multiplex, MultiplexConfig, MultiplexError
from repro.core.ocm import ObjectCacheManager, OcmConfig
from repro.engine import DatabaseConfig
from repro.objectstore import RetryingObjectClient, SimulatedObjectStore
from repro.objectstore.consistency import STRONG
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock
from repro.sim.metrics import MetricsRegistry
from repro.sim.sessions import SessionScheduler


CFG = AutoscaleConfig()


def signals(queue=0, backlog=0, slo=None, nodes=2):
    return AutoscaleSignals(queue_depth=queue, runnable_backlog=backlog,
                            slo_attainment=slo, nodes=nodes)


# --------------------------------------------------------------------- #
# configuration validation
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("overrides", [
    dict(min_nodes=0),
    dict(max_nodes=0, min_nodes=1),
    dict(interval_seconds=0.0),
    dict(queue_low=9, queue_high=8),
    dict(backlog_low=13, backlog_high=12),
    dict(slo_floor=0.0),
    dict(slo_floor=1.1),
    dict(slo_ceiling=0.5, slo_floor=0.9),
    dict(drain_poll_seconds=0.0),
    dict(node_kind="quorum"),
])
def test_config_rejects_nonsense(overrides):
    with pytest.raises(ValueError):
        AutoscaleConfig(**overrides)


def test_config_defaults_are_valid():
    cfg = AutoscaleConfig()
    assert cfg.min_nodes <= cfg.max_nodes
    assert cfg.queue_low <= cfg.queue_high
    assert cfg.slo_floor <= cfg.slo_ceiling


# --------------------------------------------------------------------- #
# the decision table
# --------------------------------------------------------------------- #

def test_queue_high_watermark_scales_out():
    assert decide(CFG, signals(queue=CFG.queue_high), 10.0) == "out"
    assert decide(CFG, signals(queue=CFG.queue_high - 1), 10.0) == "hold"


def test_backlog_high_watermark_scales_out():
    assert decide(CFG, signals(backlog=CFG.backlog_high), 10.0) == "out"
    assert decide(CFG, signals(backlog=CFG.backlog_high - 1), 10.0) == "hold"


def test_slo_floor_scales_out():
    assert decide(CFG, signals(slo=CFG.slo_floor - 0.01), 10.0) == "out"
    assert decide(CFG, signals(slo=CFG.slo_floor), 10.0) == "hold"


def test_inside_hysteresis_band_holds():
    # Above the low watermarks but below the high ones: neither direction.
    sig = signals(queue=CFG.queue_low + 1, backlog=CFG.backlog_low + 1,
                  slo=(CFG.slo_floor + CFG.slo_ceiling) / 2)
    assert decide(CFG, sig, 10.0) == "hold"


def test_idle_signals_scale_in():
    sig = signals(queue=CFG.queue_low, backlog=CFG.backlog_low,
                  slo=CFG.slo_ceiling)
    assert decide(CFG, sig, 100.0) == "in"


def test_no_slo_data_still_allows_scale_in():
    assert decide(CFG, signals(slo=None), 100.0) == "in"


def test_slo_below_ceiling_blocks_scale_in():
    sig = signals(slo=CFG.slo_ceiling - 0.01)
    assert decide(CFG, sig, 100.0) == "hold"


def test_max_nodes_clamps_scale_out():
    sig = signals(queue=CFG.queue_high, nodes=CFG.max_nodes)
    assert decide(CFG, sig, 10.0) == "hold"


def test_min_nodes_clamps_scale_in():
    assert decide(CFG, signals(nodes=CFG.min_nodes), 100.0) == "hold"


def test_out_cooldown_suppresses_then_expires():
    sig = signals(queue=CFG.queue_high)
    recent = 10.0 - CFG.cooldown_out_seconds / 2
    assert decide(CFG, sig, 10.0, last_out_at=recent) == "hold"
    expired = 10.0 - CFG.cooldown_out_seconds
    assert decide(CFG, sig, 10.0, last_out_at=expired) == "out"


def test_in_cooldown_suppresses_then_expires():
    recent = 100.0 - CFG.cooldown_in_seconds / 2
    assert decide(CFG, signals(), 100.0, last_in_at=recent) == "hold"
    expired = 100.0 - CFG.cooldown_in_seconds
    assert decide(CFG, signals(), 100.0, last_in_at=expired) == "in"


def test_recent_scale_out_suppresses_scale_in():
    # The new node deserves a chance before being judged surplus.
    recent = 100.0 - CFG.cooldown_in_seconds / 2
    assert decide(CFG, signals(), 100.0, last_out_at=recent) == "hold"


def test_simultaneous_pressure_prefers_out():
    # A degenerate band (low == high) can fire both directions at once;
    # an overloaded queue wins over idle-looking companions.
    cfg = AutoscaleConfig(queue_low=5, queue_high=5)
    sig = signals(queue=5, backlog=0, slo=None)
    assert decide(cfg, sig, 100.0) == "out"


# --------------------------------------------------------------------- #
# the router
# --------------------------------------------------------------------- #

def make_router():
    router = NodeRouter()
    router.add(COORDINATOR_ID, "c")
    router.add("writer-1", "w1")
    router.add("writer-2", "w2")
    return router


def test_round_robin_cycles_live_nodes():
    router = make_router()
    picks = [router.acquire()[0] for __ in range(6)]
    assert picks == [COORDINATOR_ID, "writer-1", "writer-2"] * 2


def test_duplicate_add_rejected():
    router = make_router()
    with pytest.raises(AutoscaleError):
        router.add("writer-1", "dup")


def test_drain_stops_new_acquisitions():
    router = make_router()
    router.drain("writer-1")
    assert router.live_count() == 2
    picks = {router.acquire()[0] for __ in range(4)}
    assert "writer-1" not in picks


def test_coordinator_cannot_drain():
    router = make_router()
    with pytest.raises(AutoscaleError):
        router.drain(COORDINATOR_ID)


def test_remove_requires_drain_then_idle():
    router = make_router()
    with pytest.raises(AutoscaleError):
        router.remove("writer-1")          # never drained
    # Pin an op in flight on writer-1, then drain it.
    while True:
        node_id, __ = router.acquire()
        if node_id == "writer-1":
            break
        router.release(node_id)
    router.drain("writer-1")
    with pytest.raises(AutoscaleError):
        router.remove("writer-1")          # still in flight
    router.release("writer-1")
    router.remove("writer-1")
    assert router.live_ids() == [COORDINATOR_ID, "writer-2"]
    assert "writer-1" in router.ever_ids   # reporting remembers it


def test_release_without_acquire_rejected():
    router = make_router()
    with pytest.raises(AutoscaleError):
        router.release("writer-1")


def test_acquire_with_everything_draining_rejected():
    router = NodeRouter()
    router.add("writer-1", "w1")
    router.drain("writer-1")
    with pytest.raises(AutoscaleError):
        router.acquire()


# --------------------------------------------------------------------- #
# warm-set selection and pre-warm admission
# --------------------------------------------------------------------- #

def make_shared_ocms(capacity=1 << 20):
    """Donor and recipient OCMs over one shared object store."""
    clock = VirtualClock()
    profile = ObjectStoreProfile(name="s3", consistency=STRONG,
                                 transient_failure_probability=0.0,
                                 latency_jitter=0.0)
    store = SimulatedObjectStore(profile, clock=clock)
    donor = ObjectCacheManager(RetryingObjectClient(store), nvme_ssd(),
                               OcmConfig(capacity_bytes=capacity))
    recipient = ObjectCacheManager(RetryingObjectClient(store), nvme_ssd(),
                                   OcmConfig(capacity_bytes=capacity))
    return donor, recipient, store, clock


def seed_donor(donor, store, names, size=256):
    for name in names:
        store.put(name, name.encode() * (size // len(name)))
    for name in names:       # read-through: uploaded + LRU-resident
        donor.get(name)


def test_warm_set_is_hottest_first():
    donor, __, store, ___ = make_shared_ocms()
    seed_donor(donor, store, ["a", "b", "c"])
    donor.get("a")           # re-touch: "a" is now the hottest
    assert donor.warm_set() == ["a", "c", "b"]


def test_warm_set_respects_byte_budget():
    donor, __, store, ___ = make_shared_ocms()
    seed_donor(donor, store, ["a", "b", "c"], size=256)
    sizes = {n: len(store.get(n)) for n in ("a", "b", "c")}
    budget = sizes["c"] + sizes["b"]
    names = donor.warm_set(max_bytes=budget)
    assert names == ["c", "b"]
    # A budget smaller than any entry still yields the hottest one.
    assert donor.warm_set(max_bytes=1) == ["c"]


def test_warm_set_respects_entry_budget():
    donor, __, store, ___ = make_shared_ocms()
    seed_donor(donor, store, ["a", "b", "c"])
    assert donor.warm_set(max_entries=2) == ["c", "b"]


def test_bulk_admit_fills_recipient_as_hits():
    donor, recipient, store, __ = make_shared_ocms()
    seed_donor(donor, store, ["a", "b", "c"])
    admitted = recipient.bulk_admit(donor.warm_set())
    assert admitted == 3
    before = recipient.stats()["misses"]
    for name in ("a", "b", "c"):
        assert recipient.get(name) == store.get(name)
    assert recipient.stats()["misses"] == before  # all pre-warmed hits


def test_bulk_admit_skips_already_resident():
    donor, recipient, store, __ = make_shared_ocms()
    seed_donor(donor, store, ["a", "b"])
    recipient.get("a")
    assert recipient.bulk_admit(["a", "b"]) == 1


def test_prewarm_secondary_clamps_to_recipient_capacity():
    donor, __, store, ___ = make_shared_ocms()
    seed_donor(donor, store, ["a", "b", "c"], size=256)

    class FakeNode:
        pass

    node = FakeNode()
    sizes = {n: len(store.get(n)) for n in ("a", "b", "c")}
    small = ObjectCacheManager(
        RetryingObjectClient(store), nvme_ssd(),
        OcmConfig(capacity_bytes=sizes["c"] + sizes["b"]),
    )
    node.ocm = small
    # The donor offers 3 entries; the recipient only has room for 2.
    assert prewarm_secondary(node, donor, max_bytes=1 << 30) == 2


def test_prewarm_secondary_tolerates_missing_caches():
    class FakeNode:
        ocm = None

    assert prewarm_secondary(FakeNode(), None, max_bytes=1 << 20) == 0


# --------------------------------------------------------------------- #
# the controller loop (scripted signals, fake multiplex)
# --------------------------------------------------------------------- #

class FakeNode:
    def __init__(self, node_id):
        self.node_id = node_id
        self.ocm = None


class FakeMultiplex:
    def __init__(self):
        self.seq = 1
        self.retired = []

    def add_secondary(self, kind):
        node = FakeNode(f"{kind}-{self.seq}")
        self.seq += 1
        return node

    def retire_secondary(self, node_id):
        self.retired.append(node_id)
        return 3


def drive_controller(script, cfg=None, ticks=None):
    """Run the controller against a scripted queue-depth sequence."""
    cfg = cfg or AutoscaleConfig(
        interval_seconds=1.0, cooldown_out_seconds=0.0,
        cooldown_in_seconds=0.0, spin_up_seconds=0.5,
        prewarm=False, min_nodes=1, max_nodes=3,
    )
    clock = VirtualClock()
    scheduler = SessionScheduler(clock)
    router = NodeRouter()
    router.add(COORDINATOR_ID, "c")
    mux = FakeMultiplex()
    state = {"tick": 0}

    def next_signals():
        index = min(state["tick"], len(script) - 1)
        state["tick"] += 1
        return signals(queue=script[index], nodes=router.live_count())

    total = ticks if ticks is not None else len(script)
    controller = AutoscaleController(
        cfg, multiplex=mux, router=router, clock=clock, epoch=0.0,
        signals=next_signals, done=lambda: state["tick"] >= total,
        metrics=MetricsRegistry(),
    )
    scheduler.spawn(controller.body, name="autoscale")
    scheduler.run()
    return controller, router, mux


def test_controller_scales_out_then_in():
    # Overload for two ticks, then idle: grow to 3, shrink back.
    controller, router, mux = drive_controller(
        [20, 20, 0, 0, 0, 0], ticks=6)
    actions = [e["action"] for e in controller.events]
    assert actions == ["scale_out", "scale_out", "scale_in", "scale_in"]
    assert router.live_count() == 1
    assert mux.retired == ["writer-2", "writer-1"]  # LIFO victims


def test_controller_respects_max_nodes():
    controller, router, __ = drive_controller([20] * 6, ticks=6)
    outs = [e for e in controller.events if e["action"] == "scale_out"]
    assert len(outs) == 2                 # 1 -> 3, then clamped
    assert router.live_count() == 3


def test_controller_exits_when_done():
    controller, router, __ = drive_controller([0], ticks=1)
    assert controller.events == []        # done before any decision
    assert router.live_count() == 1


def test_controller_events_record_epoch_relative_times():
    controller, __, ___ = drive_controller([20, 0, 0, 0], ticks=4)
    out = controller.events[0]
    assert out["action"] == "scale_out"
    assert out["started"] == 1.0          # first tick fires at t=1
    assert out["completed"] >= out["started"] + 0.5  # spin-up modeled


# --------------------------------------------------------------------- #
# drain-and-retire on a real multiplex
# --------------------------------------------------------------------- #

def make_mux():
    return Multiplex(
        DatabaseConfig(seed=7, page_size=4096,
                       buffer_capacity_bytes=16 * 1024,
                       ocm_capacity_bytes=1 << 20,
                       system_volume_size_bytes=32 * 1024 * 1024),
        MultiplexConfig(writers=1, secondary_buffer_bytes=16 * 1024,
                        secondary_ocm_bytes=1 << 20),
    )


def test_add_secondary_names_are_monotone_never_reused():
    mux = make_mux()
    first = mux.add_secondary("writer")
    assert first.node_id == "writer-2"
    mux.retire_secondary(first.node_id)
    second = mux.add_secondary("writer")
    assert second.node_id == "writer-3"   # ids never recycle


def test_retire_flushes_commits_and_detaches():
    mux = make_mux()
    node = mux.add_secondary("writer")
    mux.coordinator.create_object("t")
    txn = node.begin()
    node.write_page(txn, "t", 0, b"x" * 512)
    node.commit(txn)
    mux.retire_secondary(node.node_id)
    assert node.node_id not in [n.node_id for n in mux.secondaries()]
    assert node.crashed                   # stray handles cannot serve
    # The committed page survives the node, cold, via the coordinator.
    txn = mux.coordinator.begin()
    assert mux.coordinator.read_page(txn, "t", 0) == b"x" * 512
    mux.coordinator.rollback(txn)


def test_retire_rejects_active_transactions():
    mux = make_mux()
    node = mux.add_secondary("writer")
    mux.coordinator.create_object("t")
    txn = node.begin()
    node.write_page(txn, "t", 0, b"y" * 512)
    with pytest.raises(MultiplexError):
        mux.retire_secondary(node.node_id)
    node.commit(txn)
    mux.retire_secondary(node.node_id)


def test_retire_rejects_crashed_and_unknown_nodes():
    mux = make_mux()
    node = mux.add_secondary("writer")
    node.crash()
    with pytest.raises(MultiplexError):
        mux.retire_secondary(node.node_id)
    with pytest.raises(MultiplexError):
        mux.retire_secondary("writer-99")


def test_retire_reclaims_orphan_keys():
    mux = make_mux()
    node = mux.add_secondary("writer")
    mux.coordinator.create_object("t")
    txn = node.begin()
    node.write_page(txn, "t", 0, b"z" * 512)
    node.commit(txn)
    for i in range(3):
        node.user_dbspace.write_page(b"orphan" * 100, commit_mode=True)
    assert mux.retire_secondary(node.node_id) >= 3
