"""Unit tests for the background scrubber and the deep (content) audit."""

import pytest

from repro.core.audit import StoreAuditor
from repro.core.scrub import Scrubber
from repro.objectstore.replicated import ReplicationConfig
from tests.conftest import make_db

MIB = 1024 * 1024
REGIONS = ("scrub-a", "scrub-b")


def make_replicated_db(**overrides):
    return make_db(
        replication=ReplicationConfig(
            regions=REGIONS, mean_lag_seconds=0.1, staleness_horizon=2.0
        ),
        verify_reads=True,
        **overrides,
    )


def write_generations(db, generations=2, pages=4):
    db.create_object("t")
    for gen in range(generations):
        txn = db.begin()
        for page in range(pages):
            db.write_page(txn, "t", page, b"g%d-p%d" % (gen, page))
        db.commit(txn)
        db.clock.advance(0.5)


def converge(db):
    db.clock.advance(3.0)
    db.object_store.pump(db.clock.now())


def damage_some(db, count=3, flips=2):
    store = db.object_store
    primary = store.store_for(REGIONS[0]) if hasattr(store, "store_for") \
        else store
    damaged = 0
    for name in sorted(primary.all_keys()):
        if damaged >= count:
            break
        if primary.latest_data(name) is None:
            continue
        if store.inject_damage(name, flips=flips):
            damaged += 1
    return damaged


class TestScrubber:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Scrubber(make_db(), bytes_per_second=0)

    def test_clean_store_scans_without_repairs(self):
        db = make_db()
        write_generations(db)
        report = Scrubber(db).run()
        assert report.ok()
        assert report.objects_scanned > 0
        assert report.bytes_scanned > 0
        assert report.corrupt_found == 0 and report.repaired == 0
        assert db.metrics.counter("scrub_passes").value == 1

    def test_repairs_at_rest_damage_from_replicas(self):
        db = make_replicated_db()
        write_generations(db)
        converge(db)
        damaged = damage_some(db)
        assert damaged > 0
        report = Scrubber(db).run()
        assert report.ok()
        assert report.corrupt_found == damaged
        assert report.repaired == damaged
        assert sorted(report.regions_scanned) == sorted(REGIONS)
        # A second pass finds nothing left to fix.
        assert Scrubber(db).run().corrupt_found == 0

    def test_quarantines_without_replicas(self):
        db = make_db()
        write_generations(db)
        damaged = damage_some(db)
        assert damaged > 0
        scrubber = Scrubber(db)
        report = scrubber.run()
        assert not report.ok()
        assert len(report.quarantined) == damaged
        assert scrubber.quarantined == set(report.quarantined)
        assert report.to_dict()["ok"] is False

    def test_budget_paces_the_pass_on_the_virtual_clock(self):
        db = make_db()
        write_generations(db)
        before = db.clock.now()
        report = Scrubber(db, bytes_per_second=64.0).run()
        elapsed = db.clock.now() - before
        assert report.bytes_scanned > 0
        assert elapsed >= report.bytes_scanned / 64.0


class TestDeepAudit:
    def test_shallow_audit_never_verifies_content(self):
        db = make_db()
        write_generations(db)
        assert damage_some(db, count=2) == 2
        shallow = StoreAuditor(db).audit()
        # The existence audit can stumble over rotted *metadata* pages
        # (a torn blockmap walk shows up as leaks), but it never hashes
        # content — CORRUPT is exclusively the deep pass's verdict.
        assert not shallow.deep
        assert shallow.content_verified == 0
        assert not shallow.corrupt and not shallow.region_corrupt

    def test_deep_audit_flags_corrupt_objects(self):
        db = make_db()
        write_generations(db)
        damaged = damage_some(db, count=2)
        report = StoreAuditor(db).audit(deep=True)
        assert report.deep
        assert report.content_verified > 0
        assert len(report.corrupt) == damaged
        assert not report.ok()
        assert report.to_dict()["corrupt"]
        assert db.metrics.counter("fsck_deep_runs").value == 1
        assert db.metrics.gauge("fsck_corrupt").value == damaged

    def test_deep_audit_clean_after_scrub(self):
        db = make_replicated_db()
        write_generations(db)
        converge(db)
        assert damage_some(db) > 0
        assert not StoreAuditor(db).audit(deep=True).ok()
        assert Scrubber(db).run().ok()
        after = StoreAuditor(db).audit(deep=True)
        assert after.ok()
        assert not after.corrupt and not after.region_corrupt


class TestEngineKnobs:
    def test_page_checksums_roundtrip(self):
        db = make_db(page_checksums=True, verify_reads=True)
        write_generations(db)
        db.buffer.invalidate_all()
        if db.ocm is not None:
            db.ocm.drain_all()
            db.ocm.invalidate_all()
        txn = db.begin()
        for page in range(4):
            assert db.read_page(txn, "t", page) == b"g1-p%d" % page
        db.commit(txn)

    def test_verified_reads_survive_cold_cache(self):
        db = make_replicated_db()
        write_generations(db)
        converge(db)
        db.buffer.invalidate_all()
        if db.ocm is not None:
            db.ocm.drain_all()
            db.ocm.invalidate_all()
        txn = db.begin()
        for page in range(4):
            assert db.read_page(txn, "t", page) == b"g1-p%d" % page
        db.commit(txn)
