"""Unit tests for relational operators."""

import pytest

from repro.columnar.exec import (
    ExecError,
    concat,
    distinct,
    extend,
    filter_rows,
    group_by,
    hash_join,
    order_by,
    rows,
    select,
)
from repro.columnar.query import QueryContext, n_rows
from tests.conftest import make_db


@pytest.fixture
def ctx():
    db = make_db()
    context = QueryContext(db)
    yield context
    context.close()


LEFT = {
    "id": [1, 2, 3, 4],
    "value": [10.0, 20.0, 30.0, 40.0],
}
RIGHT = {
    "rid": [2, 3, 3, 5],
    "label": ["b", "c1", "c2", "e"],
}


def test_select_projects(ctx):
    assert select(LEFT, ["id"]) == {"id": [1, 2, 3, 4]}
    with pytest.raises(ExecError):
        select(LEFT, ["missing"])


def test_extend_adds_column(ctx):
    rel = extend(ctx, LEFT, "double", lambda v: v * 2, ["value"])
    assert rel["double"] == [20.0, 40.0, 60.0, 80.0]
    assert "double" not in LEFT  # original untouched


def test_filter_rows_keeps_alignment(ctx):
    rel = filter_rows(ctx, LEFT, lambda v: v > 15, ["value"])
    assert rel["id"] == [2, 3, 4]
    assert rel["value"] == [20.0, 30.0, 40.0]


def test_inner_join_duplicates_matches(ctx):
    joined = hash_join(ctx, LEFT, RIGHT, ["id"], ["rid"])
    assert sorted(zip(joined["id"], joined["label"])) == [
        (2, "b"), (3, "c1"), (3, "c2")
    ]
    # The right-side key column is dropped, left's kept.
    assert "rid" not in joined
    assert "value" in joined


def test_semi_join(ctx):
    joined = hash_join(ctx, LEFT, RIGHT, ["id"], ["rid"], semi=True)
    assert joined["id"] == [2, 3]
    assert set(joined) == set(LEFT)


def test_anti_join(ctx):
    joined = hash_join(ctx, LEFT, RIGHT, ["id"], ["rid"], anti=True)
    assert joined["id"] == [1, 4]


def test_join_on_multiple_keys(ctx):
    left = {"a": [1, 1, 2], "b": ["x", "y", "x"], "v": [1, 2, 3]}
    right = {"a2": [1, 2], "b2": ["y", "x"], "w": [10, 20]}
    joined = hash_join(ctx, left, right, ["a", "b"], ["a2", "b2"])
    assert sorted(zip(joined["v"], joined["w"])) == [(2, 10), (3, 20)]


def test_join_swapped_build_side_preserves_keys(ctx):
    """When the left side is larger it becomes the probe side; the left
    key column must still appear in the output."""
    big_left = {"k": list(range(100)), "lv": list(range(100))}
    small_right = {"rk": [5, 50], "rv": ["a", "b"]}
    joined = hash_join(ctx, big_left, small_right, ["k"], ["rk"])
    assert sorted(joined["k"]) == [5, 50]


def test_join_validation(ctx):
    with pytest.raises(ExecError):
        hash_join(ctx, LEFT, RIGHT, ["id"], ["rid", "label"])
    with pytest.raises(ExecError):
        hash_join(ctx, LEFT, RIGHT, ["id"], ["rid"], semi=True, anti=True)


def test_group_by_aggregates(ctx):
    rel = {
        "k": ["a", "b", "a", "a"],
        "v": [1.0, 2.0, 3.0, 5.0],
    }
    agg = group_by(ctx, rel, ["k"], {
        "total": ("sum", "v"),
        "n": ("count", None),
        "lo": ("min", "v"),
        "hi": ("max", "v"),
        "mean": ("avg", "v"),
    })
    by_key = {k: i for i, k in enumerate(agg["k"])}
    a = by_key["a"]
    assert agg["total"][a] == 9.0
    assert agg["n"][a] == 3
    assert agg["lo"][a] == 1.0
    assert agg["hi"][a] == 5.0
    assert agg["mean"][a] == pytest.approx(3.0)


def test_group_by_empty_keys_gives_scalar(ctx):
    agg = group_by(ctx, {"v": [1.0, 2.0]}, [], {"s": ("sum", "v")})
    assert agg["s"] == [3.0]


def test_group_by_scalar_over_empty_input(ctx):
    agg = group_by(ctx, {"v": []}, [], {"n": ("count", None)})
    assert agg["n"] == [0]


def test_group_by_validation(ctx):
    with pytest.raises(ExecError):
        group_by(ctx, LEFT, [], {"x": ("median", "value")})
    with pytest.raises(ExecError):
        group_by(ctx, LEFT, [], {"x": ("sum", None)})
    with pytest.raises(ExecError):
        group_by(ctx, LEFT, [], {"x": ("sum", "missing")})


def test_order_by_multi_key(ctx):
    rel = {"a": [1, 2, 1, 2], "b": [9, 8, 7, 6]}
    out = order_by(ctx, rel, [("a", False), ("b", True)])
    assert list(zip(out["a"], out["b"])) == [(1, 9), (1, 7), (2, 8), (2, 6)]


def test_order_by_limit(ctx):
    out = order_by(ctx, LEFT, [("value", True)], limit=2)
    assert out["id"] == [4, 3]


def test_concat(ctx):
    merged = concat({"a": [1]}, {"a": [2]})
    assert merged["a"] == [1, 2]
    with pytest.raises(ExecError):
        concat({"a": [1]}, {"b": [2]})


def test_distinct(ctx):
    rel = {"a": [1, 1, 2, 2, 2], "b": ["x", "x", "y", "y", "z"]}
    out = distinct(ctx, rel, ["a", "b"])
    assert sorted(zip(out["a"], out["b"])) == [(1, "x"), (2, "y"), (2, "z")]


def test_rows_helper(ctx):
    assert rows({"a": [1, 2], "b": ["x", "y"]}, ["a", "b"]) == [
        (1, "x"), (2, "y")
    ]
    assert rows({"a": []}) == []


def test_n_rows():
    assert n_rows({}) == 0
    assert n_rows({"a": [1, 2]}) == 2


def test_operators_charge_cpu(ctx):
    before = ctx.cpu.total_ops
    group_by(ctx, {"v": list(range(1000))}, [], {"s": ("sum", "v")})
    assert ctx.cpu.total_ops > before
