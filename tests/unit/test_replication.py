"""Unit tests for multi-region replication (ReplicatedObjectStore)."""

import pytest

from repro.objectstore import (
    RetryingObjectClient,
    STRONG,
)
from repro.objectstore.faults import (
    FaultSchedule,
    RegionOutage,
    ThrottleStorm,
)
from repro.objectstore.replicated import (
    ReplicatedObjectStore,
    ReplicationConfig,
    StalenessViolation,
    build_replicated_store,
)
from repro.objectstore.s3sim import ObjectStoreProfile, SimulatedObjectStore
from repro.sim.clock import VirtualClock
from repro.sim.crashpoints import CRASH_POINTS, SimulatedCrash
from repro.sim.rng import DeterministicRng

HORIZON = 10.0


def quiet_profile(**overrides):
    fields = dict(
        name="s3",
        consistency=STRONG,
        transient_failure_probability=0.0,
        latency_jitter=0.0,
    )
    fields.update(overrides)
    return ObjectStoreProfile(**fields)


def make_replicated(mean_lag=0.5, horizon=HORIZON, regions=("a", "b"),
                    schedule=None, seed=7, region_lags=None):
    primary = SimulatedObjectStore(
        quiet_profile(),
        clock=VirtualClock(),
        rng=DeterministicRng(seed),
        fault_schedule=schedule,
    )
    config = ReplicationConfig(
        regions=regions,
        mean_lag_seconds=mean_lag,
        staleness_horizon=horizon,
        region_lags=region_lags,
    )
    return build_replicated_store(
        config, primary, DeterministicRng(seed, "replication-test")
    )


# --------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------- #

def test_config_requires_two_unique_regions():
    with pytest.raises(ValueError):
        ReplicationConfig(regions=("solo",))
    with pytest.raises(ValueError):
        ReplicationConfig(regions=("a", "a"))


def test_config_rejects_bad_lag_and_horizon():
    with pytest.raises(ValueError):
        ReplicationConfig(staleness_horizon=0.0)
    with pytest.raises(ValueError):
        ReplicationConfig(mean_lag_seconds=-1.0)
    with pytest.raises(ValueError):
        ReplicationConfig(region_lags=(("nowhere", 1.0),))
    with pytest.raises(ValueError):
        ReplicationConfig(
            regions=("a", "b"), region_lags=(("b", -2.0),)
        )


def test_per_region_lag_override():
    config = ReplicationConfig(
        regions=("a", "b", "c"),
        mean_lag_seconds=0.5,
        region_lags=(("c", 4.0),),
    )
    assert config.lag_for("b") == 0.5
    assert config.lag_for("c") == 4.0


def test_secondaries_must_match_config_regions():
    store = make_replicated()
    with pytest.raises(ValueError):
        ReplicatedObjectStore(
            store.config, store.primary, {"wrong": store.store_for("b")}
        )


# --------------------------------------------------------------------- #
# asynchronous convergence & last-writer-wins
# --------------------------------------------------------------------- #

def test_put_converges_to_secondary_within_horizon():
    store = make_replicated()
    store.put("user/1", b"payload")
    secondary = store.store_for("b")
    assert store.pending_count() == 1
    # The bound: by op_time + horizon the secondary has converged.
    store.clock.advance(HORIZON)
    store.pump(store.clock.now())
    assert store.pending_count() == 0
    assert secondary.latest_data("user/1") == b"payload"
    assert store.check_staleness(store.clock.now()) == []


def test_newer_put_replaces_queued_put_for_same_key():
    store = make_replicated()
    store.put("user/1", b"old")
    store.put("user/1", b"new")
    # One queue slot per key: last-writer-wins makes the older queued
    # operation irrelevant before it ever ships.
    assert store.pending_count() == 1
    store.clock.advance(HORIZON)
    store.pump(store.clock.now())
    assert store.store_for("b").latest_data("user/1") == b"new"


def test_delete_propagation_cancels_queued_replication():
    store = make_replicated()
    store.put("user/1", b"doomed")
    store.delete("user/1")
    cancelled = store.replication_metrics.counter(
        "replication_cancelled_puts"
    ).value
    assert cancelled == 1
    assert store.pending_count() == 1  # only the tombstone remains
    store.clock.advance(HORIZON)
    store.pump(store.clock.now())
    # The put never reaches the secondary — no cross-region resurrection.
    assert store.pending_count() == 0
    assert store.store_for("b").latest_data("user/1") is None


def test_write_horizon_covers_queued_entries():
    store = make_replicated(mean_lag=2.0)
    store.put("user/1", b"payload")
    entry = store.pending_for("b")[0]
    assert store.write_horizon() >= entry.apply_at
    assert store.write_horizon() >= entry.op_time


# --------------------------------------------------------------------- #
# bounded staleness under faults
# --------------------------------------------------------------------- #

def test_bounded_staleness_survives_throttle_storm():
    schedule = FaultSchedule(
        [ThrottleStorm(0.0, 1000.0, region="b", rate_factor=0.01)],
        name="storm",
    )
    store = make_replicated(mean_lag=2.0, schedule=schedule)
    store.put("user/1", b"payload")
    op_time = store.pending_for("b")[0].op_time
    deadline = op_time + HORIZON
    # Pump mid-storm: the entry's lag stretches, but never past the
    # horizon, and the stretch happens exactly once.
    store.pump(store.clock.now())
    store.clock.advance(HORIZON / 2)
    store.pump(store.clock.now())
    stretched = store.replication_metrics.counter(
        "replication_throttle_stretched"
    ).value
    assert stretched <= 1
    for entry in store.pending_for("b"):
        assert entry.apply_at <= deadline
    # At the deadline the write is applied: the guarantee holds even
    # while the storm is still raging.
    store.clock.advance_to(deadline)
    store.assert_bounded_staleness(store.clock.now())
    assert store.pending_count() == 0
    assert store.store_for("b").latest_data("user/1") == b"payload"


def test_region_outage_defers_as_audited_exception():
    outage_end = 50.0
    schedule = FaultSchedule(
        [RegionOutage(0.0, outage_end, region="b")], name="outage"
    )
    store = make_replicated(schedule=schedule)
    store.put("user/1", b"payload")
    store.clock.advance(HORIZON + 1.0)
    store.pump(store.clock.now())
    entry = store.pending_for("b")[0]
    assert entry.deferred
    assert entry.apply_at == outage_end
    # Deferred entries are exempt from the bound (an unreachable region
    # cannot converge) — check_staleness stays quiet, the assertion
    # passes, and the entry lands once the region heals.
    assert store.check_staleness(store.clock.now()) == []
    store.assert_bounded_staleness(store.clock.now())
    store.clock.advance_to(outage_end + 1.0)
    store.pump(store.clock.now())
    assert store.pending_count() == 0
    assert store.store_for("b").latest_data("user/1") == b"payload"


def test_staleness_violation_raises_when_bound_broken():
    store = make_replicated()
    store.put("user/1", b"payload")
    # Sabotage: push the queued apply past the horizon without an outage.
    entry = store.pending_for("b")[0]
    entry.apply_at = entry.op_time + HORIZON + 100.0
    store.clock.advance(HORIZON + 1.0)
    assert len(store.check_staleness(store.clock.now())) == 1
    with pytest.raises(StalenessViolation):
        store.assert_bounded_staleness(store.clock.now())


# --------------------------------------------------------------------- #
# heal-time reconciliation & promotion
# --------------------------------------------------------------------- #

def test_heal_reconciliation_is_idempotent():
    outage_end = 30.0
    schedule = FaultSchedule(
        [RegionOutage(0.0, outage_end, region="b")], name="outage"
    )
    store = make_replicated(schedule=schedule)
    store.put("user/1", b"payload")
    store.clock.advance_to(outage_end + HORIZON)
    first = store.pump(store.clock.now())
    assert first == 1
    # Pumping again applies nothing and changes nothing: reconciliation
    # after heal is safe to re-run any number of times.
    assert store.pump(store.clock.now()) == 0
    assert store.pump(store.clock.now()) == 0
    applied = store.replication_metrics.counter("replication_applied").value
    assert applied == 1
    assert store.store_for("b").latest_data("user/1") == b"payload"


def test_promote_drains_queue_and_flips_primary():
    store = make_replicated(mean_lag=5.0)
    for i in range(3):
        store.put(f"user/{i}", b"v%d" % i)
    pending = store.pending_count()
    assert pending == 3
    drained = store.promote("b", store.clock.now())
    assert drained == 3
    assert store.primary_region == "b"
    assert store.secondary_regions() == ["a"]
    # Every acknowledged write is readable on the new primary: RPO 0.
    for i in range(3):
        assert store.primary.latest_data(f"user/{i}") == b"v%d" % i
    # Promoting the current primary is a crash-retry-safe no-op.
    assert store.promote("b", store.clock.now()) == 0
    with pytest.raises(ValueError):
        store.promote("nowhere", store.clock.now())


def test_promotion_survives_mid_drain_crash():
    store = make_replicated(mean_lag=5.0)
    for i in range(3):
        store.put(f"user/{i}", b"v%d" % i)
    CRASH_POINTS.disarm_all()
    try:
        CRASH_POINTS.arm("replication.promote.mid_drain")
        with pytest.raises(SimulatedCrash):
            store.promote("b", store.clock.now())
    finally:
        CRASH_POINTS.disarm_all()
    # The crash landed between apply and remove: re-running the failover
    # re-applies at most one entry (same op_time, LWW-idempotent) and
    # completes the flip.
    assert store.primary_region == "a"
    drained = store.promote("b", store.clock.now())
    assert drained >= 2
    assert store.primary_region == "b"
    for i in range(3):
        assert store.primary.latest_data(f"user/{i}") == b"v%d" % i
    assert store.pending_count() == 0


def test_tombstone_beats_healed_regions_stale_put():
    """A restart-GC tombstone must fence a healed region's older put."""
    store = make_replicated(mean_lag=5.0)
    store.put("orphan/1", b"orphan")
    store.delete("orphan/1")
    store.promote("b", store.clock.now())
    # The delete cancelled the queued put, so the drain ships only the
    # tombstone — the newest operation wins on the new primary.
    assert store.primary.latest_data("orphan/1") is None


# --------------------------------------------------------------------- #
# client integration: region-labelled metrics
# --------------------------------------------------------------------- #

def test_client_metrics_carry_region_labels():
    store = make_replicated(mean_lag=0.1)
    client = RetryingObjectClient(store, enforce_unique_keys=False)
    client.put("user/1", b"payload")
    client.get("user/1")
    assert client.metrics.histogram("get_latency:a").count == 1
    # After failover the same client records under the new region label,
    # so the dead region's latency tail never drives the new primary's
    # hedge delays.
    store.promote("b", store.clock.now())
    client.get("user/1")
    assert client.metrics.histogram("get_latency:b").count == 1
    assert client.metrics.histogram("get_latency:a").count == 1
