"""Unit tests for the tracing subsystem (spans, exporters, reports)."""

import json

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.tracing import (
    LAYERS,
    NULL_TRACER,
    Span,
    Tracer,
    TracingError,
    load_chrome_trace,
)


def make_tracer(start=0.0):
    return Tracer(VirtualClock(start))


class TestSpanTree:
    def test_begin_finish_nests_under_open_span(self):
        tracer = make_tracer()
        outer = tracer.begin("commit", "engine")
        tracer.clock.advance(1.0)
        inner = tracer.begin("flush", "buffer")
        tracer.clock.advance(2.0)
        tracer.finish(inner)
        tracer.finish(outer)

        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert inner.children == []
        assert outer.duration == pytest.approx(3.0)
        assert inner.duration == pytest.approx(2.0)

    def test_record_is_leaf_with_explicit_times(self):
        tracer = make_tracer()
        parent = tracer.begin("get", "ocm")
        leaf = tracer.record("get", "store", 5.0, 7.5, key="p/1")
        tracer.finish(parent)

        assert leaf in parent.children
        assert leaf.start == 5.0 and leaf.end == 7.5
        assert leaf.duration == pytest.approx(2.5)
        assert leaf.attrs["key"] == "p/1"
        # record never alters the open-span stack
        assert tracer.current() is None

    def test_span_context_manager_sets_error_attr(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("get", "ocm") as span:
                raise RuntimeError("boom")
        assert span.attrs["error"] == "RuntimeError"
        assert span.end is not None

    def test_finish_unwinds_unclosed_children(self):
        tracer = make_tracer()
        outer = tracer.begin("q", "query")
        child = tracer.begin("get", "ocm")
        grandchild = tracer.begin("get", "client")
        tracer.finish(outer)  # unwinds past child and grandchild

        assert tracer.current() is None
        assert child.end is not None and grandchild.end is not None
        assert child.attrs["error"] == "unwound"
        assert grandchild.attrs["error"] == "unwound"

    def test_finish_unknown_span_raises(self):
        tracer = make_tracer()
        stray = Span("x", "query", 0.0)
        with pytest.raises(TracingError):
            tracer.finish(stray)

    def test_end_before_start_raises(self):
        tracer = make_tracer()
        with pytest.raises(TracingError):
            tracer.record("get", "store", 5.0, 4.0)

    def test_walk_is_depth_first(self):
        tracer = make_tracer()
        a = tracer.begin("a", "query")
        b = tracer.begin("b", "engine")
        tracer.finish(b)
        c = tracer.begin("c", "engine")
        tracer.finish(c)
        tracer.finish(a)
        assert [s.name for s in a.walk()] == ["a", "b", "c"]
        assert tracer.span_count() == 3

    def test_reset_drops_spans_and_histograms(self):
        tracer = make_tracer()
        with tracer.span("q", "query"):
            tracer.clock.advance(1.0)
        tracer.reset()
        assert tracer.roots == []
        assert tracer.span_count() == 0
        assert tracer.metrics.histograms() == {}


class TestNullTracer:
    def test_all_methods_are_noops(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.begin("x", "query") is None
        assert NULL_TRACER.record("x", "query", 0.0, 1.0) is None
        NULL_TRACER.finish(None)
        with NULL_TRACER.span("x", "query") as span:
            assert span is None

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(VirtualClock(), enabled=False)
        assert tracer.begin("x", "query") is None
        assert tracer.record("x", "query", 0.0, 1.0) is None
        with tracer.span("x", "query") as span:
            assert span is None
        assert tracer.roots == []


class TestAggregation:
    def build(self):
        tracer = make_tracer()
        q = tracer.begin("Q1", "query")
        tracer.record("get", "store", 0.0, 2.0, cost_usd=0.001)
        tracer.record("get", "store", 2.0, 3.0, cost_usd=0.002)
        tracer.record("read", "ssd", 3.0, 3.5)
        tracer.clock.advance_to(4.0)
        tracer.finish(q)
        return tracer

    def test_histograms_observe_every_finished_span(self):
        tracer = self.build()
        hists = tracer.metrics.histograms()
        assert hists["store/get"].count == 2
        assert hists["store/get"].total == pytest.approx(3.0)
        assert hists["query/Q1"].count == 1

    def test_layer_totals_match_histogram_totals(self):
        tracer = self.build()
        spans = tracer.layer_totals()
        hists = tracer.histogram_totals()
        assert set(spans) == set(hists)
        for layer in spans:
            assert spans[layer] == pytest.approx(hists[layer])
        assert spans["store"] == pytest.approx(3.0)
        assert spans["ssd"] == pytest.approx(0.5)
        assert spans["query"] == pytest.approx(4.0)

    def test_cost_totals_roll_up_per_layer(self):
        tracer = self.build()
        assert tracer.cost_totals() == {"store": pytest.approx(0.003)}

    def test_latency_rows_shape(self):
        tracer = self.build()
        rows = tracer.latency_rows()
        assert [row[0] for row in rows] == ["query/Q1", "ssd/read", "store/get"]
        for row in rows:
            assert len(row) == len(Tracer.LATENCY_HEADERS)


class TestChromeTrace:
    def test_structure_and_round_trip(self, tmp_path):
        tracer = make_tracer()
        with tracer.span("Q1", "query"):
            tracer.record("get", "store", 0.0, 2.0, key="p/1")
            tracer.clock.advance_to(3.0)
        payload = tracer.to_chrome_trace()

        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 2
        # one process_name plus one thread_name per seen layer
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        assert len([e for e in meta if e["name"] == "thread_name"]) == 2

        store_event = next(e for e in complete if e["cat"] == "store")
        assert store_event["ts"] == pytest.approx(0.0)
        assert store_event["dur"] == pytest.approx(2e6)  # microseconds
        assert store_event["pid"] == 1
        assert store_event["tid"] == LAYERS.index("store") + 1
        assert store_event["args"]["key"] == "p/1"

        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(payload)
        )

    def test_unknown_layer_gets_fresh_tid(self):
        tracer = make_tracer()
        tracer.record("tick", "gc", 0.0, 1.0)
        events = tracer.to_chrome_trace()["traceEvents"]
        gc_event = next(e for e in events if e["ph"] == "X")
        assert gc_event["tid"] > len(LAYERS)

    def test_load_chrome_trace_aggregates(self, tmp_path):
        tracer = make_tracer()
        with tracer.span("Q1", "query"):
            tracer.record("get", "store", 0.0, 2.0, cost_usd=0.001)
            tracer.record("get", "store", 2.0, 3.0, cost_usd=0.002)
            tracer.clock.advance_to(4.0)
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))

        report = load_chrome_trace(str(path))
        assert report["events"] == 3
        assert ["store/get", 2, pytest.approx(3.0)] in [
            [k, c, t] for k, c, t in report["rows"]
        ]
        assert report["layer_totals"]["store"] == pytest.approx(3.0)
        assert report["cost_totals"]["store"] == pytest.approx(0.003)


class TestFlameReport:
    def test_folds_identical_siblings(self):
        tracer = make_tracer()
        q = tracer.begin("Q1", "query")
        for start in (0.0, 1.0, 2.0):
            tracer.record("get", "store", start, start + 1.0)
        tracer.clock.advance_to(4.0)
        tracer.finish(q)

        report = tracer.flame_report()
        assert "Q1 [query]" in report
        assert "x3" in report
        assert "store/get" in report
        assert "75.0%" in report

    def test_min_pct_hides_noise(self):
        tracer = make_tracer()
        q = tracer.begin("Q1", "query")
        tracer.record("get", "store", 0.0, 0.0001)
        tracer.clock.advance_to(100.0)
        tracer.finish(q)
        assert "store/get" not in tracer.flame_report(min_pct=0.5)
        assert "store/get" in tracer.flame_report(min_pct=0.0)
