"""Unit tests for the event-driven session scheduler."""

import pytest

from repro.sim.clock import ClockError, VirtualClock
from repro.sim.sessions import SchedulerError, SessionScheduler


def make_scheduler(start: float = 0.0):
    clock = VirtualClock(start)
    return clock, SessionScheduler(clock)


class TestInterleaving:
    def test_sessions_interleave_on_timed_waits(self):
        clock, scheduler = make_scheduler()
        events = []

        def slow(session):
            for _ in range(2):
                clock.advance(1.0)
                events.append(("slow", clock.now()))

        def fast(session):
            for _ in range(3):
                clock.advance(0.4)
                events.append(("fast", clock.now()))

        scheduler.spawn(slow, name="slow")
        scheduler.spawn(fast, name="fast")
        scheduler.run()
        # fast's 0.4/0.8/1.2 wakeups land inside and between slow's
        # 1.0/2.0 waits: strict global time order, not per-session order.
        assert events == [
            ("fast", 0.4),
            ("fast", 0.8),
            ("slow", 1.0),
            ("fast", 1.2000000000000002),
            ("slow", 2.0),
        ]

    def test_single_session_equals_inline_execution(self):
        """One scheduled session must produce the same clock trajectory
        as running the same code inline (the byte-identical guarantee)."""
        def work(clock):
            clock.advance(0.25)
            clock.advance_to(1.0)
            clock.advance(0.5)
            return clock.now()

        inline_clock = VirtualClock()
        inline_result = work(inline_clock)

        clock, scheduler = make_scheduler()
        session = scheduler.spawn(lambda s: work(clock))
        scheduler.run()
        assert session.result == inline_result
        assert clock.now() == inline_clock.now()

    def test_arrival_times_respected(self):
        clock, scheduler = make_scheduler()
        starts = []
        scheduler.spawn(lambda s: starts.append(clock.now()), at=3.0)
        scheduler.spawn(lambda s: starts.append(clock.now()), at=1.0)
        scheduler.run()
        assert starts == [1.0, 3.0]
        assert clock.now() == 3.0

    def test_spawn_in_the_past_rejected(self):
        clock, scheduler = make_scheduler(start=10.0)
        with pytest.raises(SchedulerError):
            scheduler.spawn(lambda s: None, at=5.0)


class TestDeterminism:
    def test_equal_wakeups_run_in_spawn_order(self):
        clock, scheduler = make_scheduler()
        order = []
        for label in ("a", "b", "c"):
            scheduler.spawn(
                lambda s, label=label: order.append(label), at=1.0
            )
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_two_runs_identical(self):
        def run_once():
            clock, scheduler = make_scheduler()
            trace = []

            def body(session):
                for step in range(3):
                    session.sleep(0.1 * (session.session_id + 1))
                    trace.append((session.session_id, round(clock.now(), 9)))

            for index in range(5):
                scheduler.spawn(body, at=index * 0.05)
            scheduler.run()
            return trace

        assert run_once() == run_once()


class TestSleepAndWaits:
    def test_sleep_advances_only_this_session(self):
        clock, scheduler = make_scheduler()
        seen = []

        def sleeper(session):
            session.sleep(5.0)
            seen.append(("sleeper", clock.now()))

        def worker(session):
            clock.advance(1.0)
            seen.append(("worker", clock.now()))

        scheduler.spawn(sleeper)
        scheduler.spawn(worker)
        scheduler.run()
        assert seen == [("worker", 1.0), ("sleeper", 5.0)]

    def test_negative_sleep_rejected(self):
        clock, scheduler = make_scheduler()

        def bad(session):
            session.sleep(-1.0)

        scheduler.spawn(bad)
        with pytest.raises(SchedulerError):
            scheduler.run()

    def test_in_session_advance_to_past_is_noop(self):
        """Concurrent sessions may push global time past a precomputed
        completion time; applying it afterwards must clamp, not fail."""
        clock, scheduler = make_scheduler()

        def racer(session):
            target = clock.now() + 0.1
            session.sleep(1.0)  # meanwhile other sessions ran past target
            clock.advance_to(target)  # no-op, not a ClockError
            return clock.now()

        session = scheduler.spawn(racer)
        scheduler.spawn(lambda s: clock.advance(0.5))
        scheduler.run()
        assert session.result == 1.0

    def test_driver_advance_to_past_still_raises(self):
        clock = VirtualClock(5.0)
        with pytest.raises(ClockError):
            clock.advance_to(1.0)


class TestSuspendResume:
    def test_admission_style_handoff(self):
        clock, scheduler = make_scheduler()
        waiting = []
        order = []

        def blocked(session):
            waiting.append(session)
            scheduler.suspend(session)
            order.append(("resumed", clock.now()))

        def releaser(session):
            session.sleep(2.0)
            scheduler.resume(waiting.pop(), delay=0.5)
            order.append(("released", clock.now()))

        scheduler.spawn(blocked)
        scheduler.spawn(releaser)
        scheduler.run()
        assert order == [("released", 2.0), ("resumed", 2.5)]

    def test_resume_requires_suspended(self):
        clock, scheduler = make_scheduler()
        target = scheduler.spawn(lambda s: s.sleep(1.0))

        def meddler(session):
            scheduler.resume(target)

        scheduler.spawn(meddler)
        with pytest.raises(SchedulerError):
            scheduler.run()

    def test_deadlock_detected(self):
        clock, scheduler = make_scheduler()
        scheduler.spawn(lambda s: scheduler.suspend(s))
        with pytest.raises(SchedulerError, match="deadlock"):
            scheduler.run()


class TestErrorsAndLifecycle:
    def test_session_error_propagates_to_run(self):
        clock, scheduler = make_scheduler()

        def boom(session):
            clock.advance(1.0)
            raise RuntimeError("session exploded")

        scheduler.spawn(boom)
        with pytest.raises(RuntimeError, match="session exploded"):
            scheduler.run()

    def test_survivors_are_unwound_after_error(self):
        clock, scheduler = make_scheduler()

        def boom(session):
            raise ValueError("first")

        survivor = scheduler.spawn(lambda s: s.sleep(100.0))
        scheduler.spawn(boom, at=1.0)
        with pytest.raises(ValueError):
            scheduler.run()
        # The sleeper was parked at t=100; the shutdown killed it without
        # running its remaining body and without surfacing a second error.
        assert not survivor.finished or survivor.error is None

    def test_results_and_timestamps_recorded(self):
        clock, scheduler = make_scheduler()

        def body(session):
            session.sleep(2.0)
            return session.session_id * 10

        sessions = [scheduler.spawn(body, at=float(i)) for i in range(3)]
        scheduler.run()
        for index, session in enumerate(sessions):
            assert session.finished
            assert session.result == index * 10
            assert session.started_at == float(index)
            assert session.finished_at == float(index) + 2.0

    def test_run_until_stops_early(self):
        clock, scheduler = make_scheduler()
        done = []
        scheduler.spawn(lambda s: done.append("early"), at=1.0)
        scheduler.spawn(lambda s: done.append("late"), at=10.0)
        scheduler.run(until=5.0)
        assert done == ["early"]
        assert clock.now() == 1.0

    def test_run_not_reentrant(self):
        clock, scheduler = make_scheduler()

        def nested(session):
            scheduler.run()

        scheduler.spawn(nested)
        with pytest.raises(SchedulerError, match="reentrant"):
            scheduler.run()

    def test_clock_detached_after_run(self):
        clock, scheduler = make_scheduler()
        scheduler.spawn(lambda s: clock.advance(1.0))
        scheduler.run()
        # Plain clock semantics restored: a second scheduler may attach.
        other = SessionScheduler(clock)
        clock.attach_scheduler(other)
        clock.detach_scheduler(other)

    def test_handoffs_counted(self):
        clock, scheduler = make_scheduler()
        scheduler.spawn(lambda s: s.sleep(1.0))
        scheduler.run()
        # One activation at spawn time plus one at the sleep wakeup.
        assert scheduler.handoffs == 2
