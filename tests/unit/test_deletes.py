"""Unit tests for row deletion (tombstones) and refresh-style workloads."""

import pytest

from repro.columnar import ColumnSchema, ColumnStore, QueryContext, TableSchema
from repro.columnar.deletes import RowIdSet
from repro.columnar.query import ROWID
from tests.conftest import make_db


class TestRowIdSet:
    def test_membership_and_count(self):
        ids = RowIdSet()
        assert ids.add_many([5, 6, 7, 100]) == 4
        assert 6 in ids and 100 in ids and 8 not in ids
        assert len(ids) == 4

    def test_ranges_merge(self):
        ids = RowIdSet()
        ids.add_many([1, 2, 3])
        ids.add_many([4, 5])
        assert ids.to_bytes() == RowIdSet([(1, 5)]).to_bytes()

    def test_duplicates_not_recounted(self):
        ids = RowIdSet()
        ids.add_many([1, 2])
        assert ids.add_many([2, 3]) == 1

    def test_serialization_roundtrip(self):
        ids = RowIdSet()
        ids.add_many([10, 11, 50])
        restored = RowIdSet.from_bytes(ids.to_bytes())
        assert 11 in restored and 50 in restored and 12 not in restored

    def test_empty_truthiness(self):
        assert not RowIdSet()
        full = RowIdSet()
        full.add_many([1])
        assert full


@pytest.fixture
def loaded():
    db = make_db()
    store = ColumnStore(db)
    store.create_table(TableSchema(
        "orders",
        (ColumnSchema("id", "int", hg_index=True),
         ColumnSchema("total", "float")),
        partition_column="id",
        partition_count=2,
        rows_per_page=64,
    ))
    store.load("orders", [(i, float(i)) for i in range(1, 401)])
    return db, store


def test_deleted_rows_disappear_from_scans(loaded):
    db, store = loaded
    with QueryContext(db) as ctx:
        doomed = ctx.read("orders", ["id"], {"id": (100, 149)},
                          with_rowids=True)[ROWID]
    assert store.delete_rows("orders", doomed) == 50
    with QueryContext(db) as ctx:
        rel = ctx.read("orders", ["id"])
    assert sorted(rel["id"]) == [
        i for i in range(1, 401) if not 100 <= i <= 149
    ]


def test_deleted_rows_invisible_to_index_lookups(loaded):
    db, store = loaded
    with QueryContext(db) as ctx:
        hg = ctx.hg("orders", "id")
        target = ctx.read("orders", ["id"], {"id": (7, 7)},
                          with_rowids=True)[ROWID]
    store.delete_rows("orders", target)
    with QueryContext(db) as ctx:
        hg = ctx.hg("orders", "id")
        assert ctx.read_rows("orders", ["id"], hg.lookup(7)) == {"id": []}
        assert ctx.read_rows("orders", ["id"], hg.lookup(8))["id"] == [8]


def test_delete_is_transactional(loaded):
    db, store = loaded
    with QueryContext(db) as ctx:
        doomed = ctx.read("orders", ["id"], {"id": (1, 10)},
                          with_rowids=True)[ROWID]
    txn = db.begin()
    store.delete_rows("orders", doomed, txn=txn)
    db.rollback(txn)
    with QueryContext(db) as ctx:
        rel = ctx.read("orders", ["id"], {"id": (1, 10)})
    assert len(rel["id"]) == 10  # the delete vanished


def test_refresh_function_style_workload(loaded):
    """RF1/RF2: insert a batch, delete a batch, verify the net state."""
    db, store = loaded
    store.append("orders", [(i, float(i)) for i in range(401, 451)])
    with QueryContext(db) as ctx:
        doomed = ctx.read("orders", ["id"], {"id": (1, 50)},
                          with_rowids=True)[ROWID]
    store.delete_rows("orders", doomed)
    with QueryContext(db) as ctx:
        rel = ctx.read("orders", ["id"])
    assert sorted(rel["id"]) == list(range(51, 451))


def test_repeated_deletes_accumulate(loaded):
    db, store = loaded
    for lo in (1, 51, 101):
        with QueryContext(db) as ctx:
            doomed = ctx.read("orders", ["id"], {"id": (lo, lo + 49)},
                              with_rowids=True)[ROWID]
        store.delete_rows("orders", doomed)
    with QueryContext(db) as ctx:
        rel = ctx.read("orders", ["id"])
    assert sorted(rel["id"]) == list(range(151, 401))


def test_delete_of_deleted_rows_is_noop(loaded):
    db, store = loaded
    with QueryContext(db) as ctx:
        doomed = ctx.read("orders", ["id"], {"id": (1, 5)},
                          with_rowids=True)[ROWID]
    assert store.delete_rows("orders", doomed) == 5
    assert store.delete_rows("orders", doomed) == 0
