"""Unit tests for price tables, instance profiles and the cost meter."""

import pytest

from repro.costs.instances import INSTANCE_CATALOG, GIB
from repro.costs.meter import CostMeter
from repro.costs.pricing import DEFAULT_PRICES, RequestPrice, StoragePrice


class TestPrices:
    def test_s3_cheapest_at_rest(self):
        s3 = DEFAULT_PRICES.storage_price("s3").usd_per_gib_month
        ebs = DEFAULT_PRICES.storage_price("ebs-gp2").usd_per_gib_month
        efs = DEFAULT_PRICES.storage_price("efs").usd_per_gib_month
        assert s3 < ebs < efs
        # The paper's order-of-magnitude claim comes from this ratio.
        assert efs / s3 > 10

    def test_storage_price_per_gib(self):
        price = StoragePrice("x", 0.10)
        assert price.monthly_cost(10 * GIB) == pytest.approx(1.0)

    def test_request_price(self):
        price = RequestPrice("s3", put_usd_per_1000=0.005,
                             get_usd_per_1000=0.0004)
        assert price.cost(puts=1000) == pytest.approx(0.005)
        assert price.cost(gets=10000) == pytest.approx(0.004)

    def test_unknown_volume_raises(self):
        with pytest.raises(KeyError):
            DEFAULT_PRICES.storage_price("floppy")

    def test_instance_rates_present(self):
        for instance in ("m5ad.4xlarge", "m5ad.12xlarge", "m5ad.24xlarge",
                         "r5.large"):
            assert DEFAULT_PRICES.instance_rate(instance) > 0

    def test_bigger_instances_cost_more(self):
        assert (
            DEFAULT_PRICES.instance_rate("m5ad.4xlarge")
            < DEFAULT_PRICES.instance_rate("m5ad.12xlarge")
            < DEFAULT_PRICES.instance_rate("m5ad.24xlarge")
        )


class TestInstances:
    def test_catalog_shapes(self):
        m24 = INSTANCE_CATALOG["m5ad.24xlarge"]
        assert m24.vcpus == 96
        assert m24.ram_bytes == 384 * GIB
        assert m24.nic_gbits == 20.0
        assert m24.ssd_count == 4

    def test_buffer_cache_is_half_ram(self):
        profile = INSTANCE_CATALOG["m5ad.4xlarge"]
        assert profile.buffer_cache_bytes == profile.ram_bytes // 2

    def test_vcpus_scale_with_size(self):
        assert INSTANCE_CATALOG["m5ad.4xlarge"].vcpus == 16
        assert INSTANCE_CATALOG["m5ad.12xlarge"].vcpus == 48


class TestCostMeter:
    def test_compute_charge(self):
        meter = CostMeter()
        usd = meter.charge_compute("m5ad.4xlarge", hours=2.0)
        assert usd == pytest.approx(2 * 0.824)
        assert meter.total("compute") == pytest.approx(usd)

    def test_negative_hours_rejected(self):
        with pytest.raises(ValueError):
            CostMeter().charge_compute("m5ad.4xlarge", hours=-1)

    def test_request_accumulation(self):
        meter = CostMeter()
        meter.record_requests("s3", puts=500, gets=1000)
        meter.record_requests("s3", puts=500)
        assert meter.request_cost("s3") == pytest.approx(
            0.005 + 0.0004
        )

    def test_finalize_moves_requests_to_bill(self):
        meter = CostMeter()
        meter.record_requests("s3", puts=1000)
        meter.finalize_requests()
        assert meter.total("requests") == pytest.approx(0.005)
        # Finalizing again adds nothing.
        meter.finalize_requests()
        assert meter.total("requests") == pytest.approx(0.005)

    def test_storage_month(self):
        meter = CostMeter()
        usd = meter.charge_storage_month("s3", 100 * GIB)
        assert usd == pytest.approx(2.3)

    def test_render_contains_total(self):
        meter = CostMeter()
        meter.charge_compute("r5.large", 1.0)
        assert "TOTAL" in meter.render()
