"""Unit tests for the queueing device model."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.devices import DeviceProfile, QueueingDevice, raid0


def make_device(bandwidth=1000.0, read_latency=0.01, write_latency=0.02,
                iops=None):
    profile = DeviceProfile(
        name="test",
        read_latency=read_latency,
        write_latency=write_latency,
        bandwidth=bandwidth,
        iops=iops,
    )
    return QueueingDevice(profile, VirtualClock())


def test_read_charges_latency_and_transfer():
    device = make_device(bandwidth=1000.0, read_latency=0.01)
    done = device.read(100, now=0.0)
    assert done == pytest.approx(0.1 + 0.01)


def test_write_uses_write_latency():
    device = make_device(bandwidth=1000.0, write_latency=0.05)
    done = device.write(100, now=0.0)
    assert done == pytest.approx(0.1 + 0.05)


def test_reads_queue_behind_writes():
    """The shared bandwidth pipe delays reads behind queued writes —
    the mechanism behind the paper's Figure 6 OCM anomaly."""
    device = make_device(bandwidth=1000.0, read_latency=0.0,
                         write_latency=0.0)
    device.write(1000, now=0.0)  # occupies the pipe until t=1
    done = device.read(100, now=0.0)
    assert done == pytest.approx(1.1)


def test_iops_pipe_throttles_small_ops():
    device = make_device(bandwidth=1e9, iops=10.0)
    last = 0.0
    for __ in range(20):
        last = device.read(1, now=0.0)
    # 20 ops at 10 IOPS: the last one cannot complete before ~2 seconds.
    assert last >= 1.9


def test_backlog():
    device = make_device(bandwidth=100.0)
    device.write(100, now=0.0)
    assert device.backlog(0.0) == pytest.approx(1.0)
    assert device.backlog(2.0) == 0.0


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        make_device().read(-1)


def test_metrics_recorded():
    device = make_device()
    device.read(10)
    device.write(20)
    snapshot = device.metrics.snapshot()
    assert snapshot["read_ops"] == 1
    assert snapshot["read_bytes"] == 10
    assert snapshot["write_ops"] == 1
    assert snapshot["write_bytes"] == 20


def test_raid0_sums_bandwidth():
    profiles = [
        DeviceProfile("ssd", 0.001, 0.002, 500.0, iops=100.0)
        for __ in range(4)
    ]
    combined = raid0(profiles)
    assert combined.bandwidth == 2000.0
    assert combined.iops == 400.0
    assert combined.read_latency == 0.001


def test_raid0_requires_devices():
    with pytest.raises(ValueError):
        raid0([])
