"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import ClockError, Stopwatch, VirtualClock


def test_clock_starts_at_zero():
    assert VirtualClock().now() == 0.0


def test_clock_starts_at_given_time():
    assert VirtualClock(5.0).now() == 5.0


def test_clock_rejects_negative_start():
    with pytest.raises(ClockError):
        VirtualClock(-1.0)


def test_advance_moves_forward():
    clock = VirtualClock()
    assert clock.advance(2.5) == 2.5
    assert clock.now() == 2.5


def test_advance_rejects_negative():
    with pytest.raises(ClockError):
        VirtualClock().advance(-0.1)


def test_advance_to_absolute_time():
    clock = VirtualClock()
    clock.advance_to(10.0)
    assert clock.now() == 10.0


def test_advance_to_past_raises():
    clock = VirtualClock(10.0)
    with pytest.raises(ClockError):
        clock.advance_to(5.0)


def test_advance_to_same_time_is_noop():
    clock = VirtualClock(3.0)
    clock.advance_to(3.0)
    assert clock.now() == 3.0


def test_stopwatch_measures_elapsed():
    clock = VirtualClock()
    with Stopwatch(clock) as watch:
        clock.advance(4.0)
    assert watch.elapsed == pytest.approx(4.0)


def test_stopwatch_live_reading():
    clock = VirtualClock()
    with Stopwatch(clock) as watch:
        clock.advance(1.0)
        assert watch.elapsed == pytest.approx(1.0)
        clock.advance(1.0)
    assert watch.elapsed == pytest.approx(2.0)
