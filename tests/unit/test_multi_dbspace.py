"""Unit tests for multiple cloud dbspaces, custom page sizes, table moves."""

import pytest

from repro.columnar import ColumnSchema, ColumnStore, QueryContext, TableSchema
from repro.engine import EngineError
from repro.objectstore.s3sim import AZURE_BLOB_PROFILE
from tests.conftest import make_db


def test_create_cloud_dbspace_and_store_pages():
    db = make_db()
    dbspace = db.create_cloud_dbspace("archive")
    db.create_object("t", dbspace="archive")
    txn = db.begin()
    db.write_page(txn, "t", 0, b"archived data")
    db.commit(txn)
    reader = db.begin()
    assert db.read_page(reader, "t", 0) == b"archived data"
    db.commit(reader)
    # The page landed on the new bucket, not the primary user one.
    assert dbspace.stored_bytes() > 0


def test_duplicate_dbspace_rejected():
    db = make_db()
    db.create_cloud_dbspace("x")
    with pytest.raises(EngineError):
        db.create_cloud_dbspace("x")
    with pytest.raises(EngineError):
        db.create_cloud_dbspace("user")


def test_custom_page_size_enforced():
    db = make_db(page_size=16 * 1024)
    db.create_cloud_dbspace("bigpages", page_size=64 * 1024)
    db.create_cloud_dbspace("smallpages", page_size=4 * 1024)
    assert db.page_size_for("bigpages") == 64 * 1024
    assert db.page_size_for("user") == 16 * 1024

    db.create_object("big", dbspace="bigpages")
    db.create_object("small", dbspace="smallpages")
    txn = db.begin()
    # Larger-than-default pages are legal on the big-page dbspace...
    db.write_page(txn, "big", 0, b"x" * (48 * 1024))
    # ...and the small-page dbspace enforces its own limit.
    from repro.core.buffer import BufferError

    with pytest.raises(BufferError):
        db.write_page(txn, "small", 0, b"x" * (8 * 1024))
    db.write_page(txn, "small", 0, b"x" * (4 * 1024))
    db.commit(txn)


def test_invalid_page_size_rejected():
    db = make_db()
    with pytest.raises(EngineError):
        db.create_cloud_dbspace("bad", page_size=1000)


def test_azure_profile_dbspace():
    db = make_db()
    azure = db.create_cloud_dbspace("azure", profile=AZURE_BLOB_PROFILE)
    db.create_object("t", dbspace="azure")
    txn = db.begin()
    db.write_page(txn, "t", 0, b"on azure")
    db.commit(txn)
    # Requests were billed against the Azure price book.
    assert db.meter.request_cost("azure-blob") > 0


def test_keys_unique_across_dbspaces():
    """The key generator is global: dbspaces never collide on keys."""
    db = make_db()
    db.create_cloud_dbspace("second")
    db.create_object("a", dbspace="user")
    db.create_object("b", dbspace="second")
    txn = db.begin()
    for page in range(5):
        db.write_page(txn, "a", page, b"A%d" % page)
        db.write_page(txn, "b", page, b"B%d" % page)
    db.commit(txn)
    keys_a = set(txn.all_allocated_for("user").cloud_keys())
    keys_b = set(txn.all_allocated_for("second").cloud_keys())
    assert keys_a and keys_b
    assert keys_a.isdisjoint(keys_b)


def test_restart_gc_covers_extra_dbspaces():
    db = make_db()
    db.create_cloud_dbspace("second")
    db.create_object("t", dbspace="second")
    txn = db.begin()
    db.write_page(txn, "t", 0, b"orphan")
    db.buffer.flush_txn(txn.txn_id, commit_mode=False)
    second = db.node.dbspace("second")
    assert second.stored_bytes() > 0
    db.crash()
    db.restart()
    assert second.stored_bytes() == 0


def test_gc_after_recovery_reaches_extra_dbspaces():
    db = make_db()
    db.create_cloud_dbspace("second")
    db.create_object("t", dbspace="second")
    txn = db.begin()
    db.write_page(txn, "t", 0, b"v1" * 100)
    db.commit(txn)
    db.crash()
    db.restart()
    update = db.begin()
    db.write_page(update, "t", 0, b"v2" * 100)
    db.commit(update)
    # Old v1 pages on the extra dbspace were garbage collected.
    reader = db.begin()
    assert db.read_page(reader, "t", 0) == b"v2" * 100
    db.commit(reader)


class TestMoveTable:
    def make_loaded(self):
        db = make_db()
        db.create_cloud_dbspace("cold", profile=AZURE_BLOB_PROFILE)
        store = ColumnStore(db)
        store.create_table(TableSchema(
            "facts",
            (ColumnSchema("k", "int", hg_index=True),
             ColumnSchema("v", "float")),
            partition_column="k",
            partition_count=2,
            rows_per_page=128,
        ))
        store.load("facts", [(i, float(i) * 1.5) for i in range(600)])
        return db, store

    def test_move_preserves_data(self):
        db, store = self.make_loaded()
        moved_pages = store.move_table("facts", "cold")
        assert moved_pages > 0
        with QueryContext(db) as ctx:
            rel = ctx.read("facts", ["k", "v"], {"k": (10, 12)})
        assert sorted(rel["k"]) == [10, 11, 12]
        assert rel["v"] == [k * 1.5 for k in rel["k"]]

    def test_move_rehomes_storage(self):
        db, store = self.make_loaded()
        cold = db.node.dbspace("cold")
        before_cold = cold.stored_bytes()
        user_before = db.node.dbspace("user").stored_bytes()
        store.move_table("facts", "cold")
        db.txn_manager.collect_garbage()
        assert cold.stored_bytes() > before_cold
        # The old copies were garbage collected off the source dbspace.
        assert db.node.dbspace("user").stored_bytes() < user_before / 2

    def test_move_updates_catalog(self):
        db, store = self.make_loaded()
        store.move_table("facts", "cold")
        oid = db.catalog.object_id("facts/k#p0")
        assert db.catalog.current(oid).dbspace == "cold"

    def test_queries_identical_after_move(self):
        db, store = self.make_loaded()
        with QueryContext(db) as ctx:
            before = ctx.read("facts", ["k", "v"])
        store.move_table("facts", "cold")
        db.node.invalidate_caches()
        if hasattr(db, "_query_meta_cache"):
            db._query_meta_cache.clear()
        with QueryContext(db) as ctx:
            after = ctx.read("facts", ["k", "v"])
        assert before == after
