"""Unit tests for incremental appends (trickle loads)."""

import pytest

from repro.columnar import ColumnSchema, ColumnStore, QueryContext, TableSchema
from repro.tpch.dates import d
from tests.conftest import make_db


@pytest.fixture
def loaded():
    db = make_db()
    store = ColumnStore(db)
    store.create_table(TableSchema(
        "events",
        (
            ColumnSchema("id", "int", hg_index=True),
            ColumnSchema("when", "date", date_index=True),
            ColumnSchema("note", "str", text_index=True),
            ColumnSchema("value", "float"),
        ),
        partition_column="id",
        partition_count=2,
        rows_per_page=64,
    ))
    base_rows = [
        (i, d(1994, 1 + (i % 6), 1), f"base note {i}", float(i))
        for i in range(1, 501)
    ]
    store.load("events", base_rows)
    return db, store, base_rows


def make_new_rows(start, count):
    return [
        (i, d(1995, 1 + (i % 6), 1), f"fresh insert {i}", float(i) * 2)
        for i in range(start, start + count)
    ]


def test_append_extends_row_count(loaded):
    db, store, base_rows = loaded
    new_rows = make_new_rows(501, 100)
    state = store.append("events", new_rows)
    assert state.total_rows == 600
    with QueryContext(db) as ctx:
        rel = ctx.read("events", ["id"])
    assert sorted(rel["id"]) == list(range(1, 601))


def test_append_fills_partial_pages(loaded):
    """The last partial page is merged, not left ragged."""
    db, store, __ = loaded
    store.append("events", make_new_rows(501, 10))
    with QueryContext(db) as ctx:
        state = ctx.table("events")
        for partition in range(state.schema.partition_count):
            pages = state.pages_in_partition(partition)
            rows = state.partition_rows[partition]
            assert pages == (rows + 63) // 64


def test_appended_values_correct(loaded):
    db, store, __ = loaded
    new_rows = make_new_rows(501, 50)
    store.append("events", new_rows)
    with QueryContext(db) as ctx:
        rel = ctx.read("events", ["id", "value"], {"id": (501, 550)})
    assert sorted(rel["id"]) == [row[0] for row in new_rows]
    got = dict(zip(rel["id"], rel["value"]))
    for row in new_rows:
        assert got[row[0]] == row[3]


def test_append_routes_by_original_bounds(loaded):
    """New low keys land in the low partition, not appended at the end."""
    db, store, __ = loaded
    with QueryContext(db) as ctx:
        before = ctx.table("events").partition_rows[:]
    store.append("events", [(0, d(1995, 1, 1), "low key", 0.0)])
    with QueryContext(db) as ctx:
        after = ctx.table("events").partition_rows[:]
    assert after[0] == before[0] + 1
    assert after[1] == before[1]


def test_hg_index_extended(loaded):
    db, store, __ = loaded
    store.append("events", make_new_rows(501, 20))
    with QueryContext(db) as ctx:
        hg = ctx.hg("events", "id")
        rows = ctx.read_rows("events", ["id"], hg.lookup(510))
        assert rows["id"] == [510]
        # Old entries still resolve.
        rows = ctx.read_rows("events", ["id"], hg.lookup(42))
        assert rows["id"] == [42]


def test_date_and_text_indexes_extended(loaded):
    db, store, __ = loaded
    store.append("events", make_new_rows(501, 30))
    with QueryContext(db) as ctx:
        date_index = ctx.date_index("events", "when")
        in_1995 = ctx.read_rows("events", ["id"],
                                date_index.lookup_year(1995))
        assert set(in_1995["id"]) == set(range(501, 531))
        text = ctx.text_index("events", "note")
        fresh = ctx.read_rows("events", ["id"], text.lookup("fresh"))
        assert set(fresh["id"]) == set(range(501, 531))


def test_zone_maps_cover_appended_pages(loaded):
    db, store, __ = loaded
    store.append("events", make_new_rows(501, 100))
    with QueryContext(db) as ctx:
        rel = ctx.read("events", ["id"], {"id": (590, 600)})
    assert sorted(rel["id"]) == list(range(590, 601))


def test_append_is_transactional(loaded):
    db, store, __ = loaded
    txn = db.begin()
    store.append("events", make_new_rows(501, 10), txn=txn)
    db.rollback(txn)
    with QueryContext(db) as ctx:
        rel = ctx.read("events", ["id"])
    assert len(rel["id"]) == 500  # the append vanished


def test_multiple_appends_accumulate(loaded):
    db, store, __ = loaded
    for start in (501, 601, 701):
        store.append("events", make_new_rows(start, 100))
    with QueryContext(db) as ctx:
        rel = ctx.read("events", ["id"])
    assert sorted(rel["id"]) == list(range(1, 801))


def test_append_empty_is_noop(loaded):
    db, store, __ = loaded
    state = store.append("events", [])
    assert state.total_rows == 500
