"""Unit tests for the TPC-H generator, schemas and runners."""

import pytest

from repro.tpch.datagen import NATIONS, REGIONS, TpchGenerator
from repro.tpch.dates import CURRENT_DATE, d, iso, year_of
from repro.tpch.runner import make_streams
from repro.tpch.schema import TPCH_SCHEMAS, tpch_schema


class TestDates:
    def test_roundtrip(self):
        ordinal = d(1995, 6, 17)
        assert year_of(ordinal) == 1995
        assert iso(ordinal) == "1995-06-17"
        assert ordinal == CURRENT_DATE

    def test_day_arithmetic(self):
        assert d(1998, 12, 1) - 90 == d(1998, 9, 2)


class TestSchemas:
    def test_all_eight_tables(self):
        assert sorted(TPCH_SCHEMAS) == [
            "customer", "lineitem", "nation", "orders", "part", "partsupp",
            "region", "supplier",
        ]

    def test_paper_hg_indexes(self):
        """HG indexes exactly on the columns the paper lists."""
        indexed = {
            name: schema.indexed_columns()
            for name, schema in TPCH_SCHEMAS.items()
        }
        assert indexed["orders"] == ["o_custkey"]
        assert indexed["nation"] == ["n_regionkey"]
        assert indexed["supplier"] == ["s_nationkey"]
        assert indexed["customer"] == ["c_nationkey"]
        assert sorted(indexed["partsupp"]) == ["ps_partkey", "ps_suppkey"]
        assert indexed["lineitem"] == ["l_orderkey"]
        assert indexed["region"] == []
        assert indexed["part"] == []

    def test_large_tables_partitioned(self):
        assert TPCH_SCHEMAS["lineitem"].partition_count > 1
        assert TPCH_SCHEMAS["orders"].partition_count > 1
        assert TPCH_SCHEMAS["region"].partition_count == 1

    def test_custom_partitioning(self):
        schemas = tpch_schema(partitions=8, rows_per_page=100)
        assert schemas["orders"].partition_count == 8
        assert schemas["orders"].rows_per_page == 100


class TestGenerator:
    @pytest.fixture(scope="class")
    def gen(self):
        return TpchGenerator(0.002, seed=11)

    def test_row_counts_scale(self, gen):
        assert gen.supplier_count == max(10, int(10_000 * 0.002))
        assert gen.customer_count == int(150_000 * 0.002)
        assert gen.order_count == int(1_500_000 * 0.002)

    def test_fixed_tables(self, gen):
        assert len(gen.region()) == 5
        nations = gen.nation()
        assert len(nations) == 25
        assert [name for __, (name, __) in zip(nations, NATIONS)]
        region_keys = {row[2] for row in nations}
        assert region_keys <= set(range(len(REGIONS)))

    def test_deterministic(self):
        a = TpchGenerator(0.001, seed=3).customer()
        b = TpchGenerator(0.001, seed=3).customer()
        assert a == b

    def test_seed_changes_data(self):
        a = TpchGenerator(0.001, seed=3).customer()
        b = TpchGenerator(0.001, seed=4).customer()
        assert a != b

    def test_orders_lineitems_consistency(self, gen):
        orders, lineitems = gen.orders_and_lineitems()
        order_keys = {row[0] for row in orders}
        assert all(li[0] in order_keys for li in lineitems)
        per_order = {}
        for li in lineitems:
            per_order.setdefault(li[0], []).append(li[3])
        assert all(1 <= len(lines) <= 7 for lines in per_order.values())

    def test_lineitem_date_invariants(self, gen):
        __, lineitems = gen.orders_and_lineitems()
        for li in lineitems[:2000]:
            shipdate, commitdate, receiptdate = li[10], li[11], li[12]
            assert receiptdate > shipdate
            status = li[9]
            assert status == ("F" if shipdate <= CURRENT_DATE else "O")
            flag = li[8]
            if receiptdate > CURRENT_DATE:
                assert flag == "N"
            else:
                assert flag in ("R", "A")

    def test_discount_and_tax_ranges(self, gen):
        __, lineitems = gen.orders_and_lineitems()
        for li in lineitems[:2000]:
            assert 0.0 <= li[6] <= 0.10  # discount
            assert 0.0 <= li[7] <= 0.08  # tax
            assert 1 <= li[4] <= 50      # quantity

    def test_order_status_derived_from_lines(self, gen):
        orders, lineitems = gen.orders_and_lineitems()
        lines_by_order = {}
        for li in lineitems:
            lines_by_order.setdefault(li[0], []).append(li[9])
        for order in orders[:500]:
            statuses = set(lines_by_order[order[0]])
            if statuses == {"F"}:
                assert order[2] == "F"
            elif statuses == {"O"}:
                assert order[2] == "O"
            else:
                assert order[2] == "P"

    def test_partsupp_four_suppliers_per_part(self, gen):
        ps = gen.partsupp()
        assert len(ps) == gen.part_count * 4
        per_part = {}
        for row in ps:
            per_part.setdefault(row[0], set()).add(row[1])
        assert all(len(supps) == 4 for supps in per_part.values())

    def test_comment_phrases_present(self):
        gen = TpchGenerator(0.02, seed=1)
        orders, __ = gen.orders_and_lineitems()
        assert any(
            "special" in o[7] and "requests" in o[7] for o in orders
        )

    def test_invalid_scale_factor(self):
        with pytest.raises(ValueError):
            TpchGenerator(0)


class TestStreams:
    def test_streams_are_permutations(self):
        streams = make_streams(8)
        for stream in streams:
            assert sorted(stream) == list(range(1, 23))

    def test_streams_differ(self):
        streams = make_streams(8)
        assert len({tuple(s) for s in streams}) > 1

    def test_streams_deterministic(self):
        assert make_streams(4, seed=9) == make_streams(4, seed=9)
