"""Unit tests for the Object Cache Manager (Section 4)."""

import pytest

from repro.blockstore.profiles import nvme_ssd
from repro.core.ocm import ObjectCacheManager, OcmConfig
from repro.objectstore import RetryingObjectClient, SimulatedObjectStore
from repro.objectstore.consistency import STRONG
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock


def make_ocm(capacity=1 << 20, **config_overrides):
    clock = VirtualClock()
    profile = ObjectStoreProfile(name="s3", consistency=STRONG,
                                 transient_failure_probability=0.0,
                                 latency_jitter=0.0)
    store = SimulatedObjectStore(profile, clock=clock)
    client = RetryingObjectClient(store)
    ocm = ObjectCacheManager(
        client, nvme_ssd(),
        OcmConfig(capacity_bytes=capacity, **config_overrides),
    )
    return ocm, store, clock


def test_read_through_caches_for_next_read():
    ocm, store, __ = make_ocm()
    store.put("a/1", b"payload")
    assert ocm.get("a/1") == b"payload"
    assert ocm.stats()["misses"] == 1
    assert ocm.get("a/1") == b"payload"
    assert ocm.stats()["hits"] == 1


def test_cache_hit_is_faster_than_miss():
    ocm, store, clock = make_ocm()
    store.put("a/1", b"x" * 10_000)
    t0 = clock.now()
    ocm.get("a/1")
    miss_time = clock.now() - t0
    t1 = clock.now()
    ocm.get("a/1")
    hit_time = clock.now() - t1
    assert hit_time < miss_time


def test_write_through_uploads_synchronously():
    ocm, store, __ = make_ocm()
    ocm.put("a/1", b"data", txn_id=1, commit_mode=True)
    assert store.exists("a/1")
    assert ocm.cached("a/1")


def test_write_back_defers_upload():
    ocm, store, __ = make_ocm()
    ocm.put("a/1", b"data", txn_id=1, commit_mode=False)
    assert not store.exists("a/1")  # upload still pending
    assert ocm.pending_upload_count() == 1
    assert ocm.get("a/1") == b"data"  # served from the local cache


def test_write_back_is_faster_than_write_through():
    back, __, back_clock = make_ocm()
    t0 = back_clock.now()
    back.put("a/1", b"x" * 10_000, txn_id=1, commit_mode=False)
    back_time = back_clock.now() - t0

    through, __, through_clock = make_ocm()
    t1 = through_clock.now()
    through.put("a/1", b"x" * 10_000, txn_id=1, commit_mode=True)
    through_time = through_clock.now() - t1
    assert back_time < through_time


def test_flush_for_commit_uploads_pending():
    ocm, store, __ = make_ocm()
    for i in range(5):
        ocm.put(f"a/{i}", b"x", txn_id=7, commit_mode=False)
    ocm.flush_for_commit(7)
    assert ocm.pending_upload_count() == 0
    for i in range(5):
        assert store.exists(f"a/{i}")


def test_flush_for_commit_only_touches_own_txn():
    ocm, store, __ = make_ocm()
    ocm.put("a/1", b"x", txn_id=1, commit_mode=False)
    ocm.put("b/2", b"y", txn_id=2, commit_mode=False)
    ocm.flush_for_commit(1)
    assert store.exists("a/1")
    assert not store.exists("b/2")


def test_discard_txn_drops_pending_and_entries():
    """Rolled-back transactions never pollute the cache."""
    ocm, store, __ = make_ocm()
    ocm.put("a/1", b"x", txn_id=3, commit_mode=False)
    dropped = ocm.discard_txn(3)
    assert dropped == 1
    assert not ocm.cached("a/1")
    assert not store.exists("a/1")


def test_lru_insert_after_upload_rule():
    """Write-back entries are not evictable until uploaded."""
    ocm, __, __ = make_ocm(capacity=4096)
    ocm.put("a/1", b"x" * 3000, txn_id=1, commit_mode=False)
    # A read-through fill that overflows capacity cannot evict the
    # pending (not yet uploaded) entry — the fill itself is the victim.
    ocm.client.put("b/2", b"y" * 3000)
    ocm.get("b/2")
    assert ocm.cached("a/1")
    assert not ocm.cached("b/2")
    assert ocm.stats()["evictions"] >= 1
    ocm.flush_for_commit(1)
    # Now the entry is in the LRU; the next insert evicts it instead.
    ocm.client.put("c/3", b"z" * 3000)
    ocm.get("c/3")
    assert not ocm.cached("a/1")
    assert ocm.cached("c/3")


def test_eviction_counts(db=None):
    ocm, store, __ = make_ocm(capacity=10_000)
    for i in range(20):
        store.put(f"k/{i}", b"v" * 1000)
    for i in range(20):
        ocm.get(f"k/{i}")
    assert ocm.used_bytes <= 10_000
    assert ocm.stats()["evictions"] > 0


def test_get_many_mixes_hits_and_misses():
    ocm, store, __ = make_ocm()
    for i in range(10):
        store.put(f"k/{i}", b"%d" % i)
    for i in range(5):
        ocm.get(f"k/{i}")
    result = ocm.get_many([f"k/{i}" for i in range(10)])
    assert len(result) == 10
    stats = ocm.stats()
    assert stats["hits"] == 5       # the pre-warmed half
    assert stats["misses"] == 5 + 5  # initial fills plus the cold half


def test_async_fill_delays_subsequent_hits():
    """Figure 6 mechanism: big async fill burst inflates hit latency."""
    ocm, store, clock = make_ocm(capacity=1 << 30)
    store.put("hot/1", b"h" * 1000)
    ocm.get("hot/1")  # cached
    t0 = clock.now()
    ocm.get("hot/1")
    quiet_hit = clock.now() - t0
    # Saturate the SSD with asynchronous fills.
    big = [(f"cold/{i}", b"c" * 2_000_000) for i in range(20)]
    for name, data in big:
        store.put(name, data)
    ocm.get_many([name for name, __ in big])
    t1 = clock.now()
    ocm.get("hot/1")
    busy_hit = clock.now() - t1
    assert busy_hit > quiet_hit * 5


def test_delete_removes_cache_entry():
    ocm, store, __ = make_ocm()
    ocm.put("a/1", b"x", txn_id=1, commit_mode=True)
    ocm.delete("a/1")
    assert not ocm.cached("a/1")
    assert not store.exists("a/1")


def test_invalidate_all():
    ocm, __, __ = make_ocm()
    ocm.put("a/1", b"x", txn_id=1, commit_mode=True)
    ocm.invalidate_all()
    assert ocm.entry_count() == 0
    assert ocm.used_bytes == 0


def test_hit_rate():
    ocm, store, __ = make_ocm()
    store.put("a/1", b"x")
    ocm.get("a/1")
    ocm.get("a/1")
    ocm.get("a/1")
    assert ocm.hit_rate() == pytest.approx(2 / 3)


def test_capacity_validation():
    with pytest.raises(ValueError):
        make_ocm(capacity=0)


class TestDeleteCancelsPendingUploads:
    """Regression: delete must cancel queued write-backs, or a later drain
    re-uploads the object — resurrecting a key the caller already deleted."""

    def test_commit_flush_does_not_resurrect_deleted_object(self):
        ocm, store, __ = make_ocm()
        ocm.put("a/doomed", b"stale", txn_id=7, commit_mode=False)
        ocm.put("a/kept", b"fresh", txn_id=7, commit_mode=False)
        ocm.delete("a/doomed")

        ocm.flush_for_commit(7)
        assert store.latest_data("a/doomed") is None
        assert not store.exists("a/doomed")
        assert store.latest_data("a/kept") == b"fresh"
        assert ocm.metrics.snapshot()["cancelled_uploads"] == 1

    def test_shutdown_drain_does_not_resurrect_deleted_object(self):
        ocm, store, __ = make_ocm()
        ocm.put("a/doomed", b"stale", commit_mode=False)  # anonymous queue
        ocm.delete("a/doomed")
        assert ocm.pending_upload_count() == 0

        ocm.drain_all()
        assert store.latest_data("a/doomed") is None
        assert not store.exists("a/doomed")

    def test_delete_many_cancels_across_transactions(self):
        ocm, store, __ = make_ocm()
        ocm.put("a/1", b"x", txn_id=1, commit_mode=False)
        ocm.put("a/2", b"y", txn_id=2, commit_mode=False)
        ocm.put("a/3", b"z", commit_mode=False)
        ocm.delete_many(["a/1", "a/2", "a/3"])
        assert ocm.pending_upload_count() == 0
        assert ocm.metrics.snapshot()["cancelled_uploads"] == 3

        ocm.drain_all()
        for name in ("a/1", "a/2", "a/3"):
            assert store.latest_data(name) is None

    def test_cancellation_holds_even_if_store_delete_fails(self):
        clock = VirtualClock()
        profile = ObjectStoreProfile(name="s3", consistency=STRONG,
                                     transient_failure_probability=1.0,
                                     latency_jitter=0.0)
        from repro.sim.rng import DeterministicRng
        store = SimulatedObjectStore(profile, clock=clock,
                                     rng=DeterministicRng(3))
        from repro.objectstore import RetryPolicy
        client = RetryingObjectClient(
            store, policy=RetryPolicy(max_attempts=2, initial_backoff=0.01,
                                      max_backoff=0.02))
        ocm = ObjectCacheManager(client, nvme_ssd(),
                                 OcmConfig(capacity_bytes=1 << 20))
        ocm.put("a/doomed", b"stale", commit_mode=False)
        with pytest.raises(Exception):
            ocm.delete("a/doomed")
        # The queued upload is gone regardless of the delete RPC's fate.
        assert ocm.pending_upload_count() == 0


class TestInvalidateAllResetsUploadWindow:
    """Regression: invalidate_all left stale completion times in the
    upload-window heap, throttling the restarted node's first uploads."""

    def test_inflight_heap_cleared(self):
        ocm, store, clock = make_ocm(upload_window=1)
        for i in range(4):
            ocm.put(f"a/{i}", b"x" * 1000, txn_id=1, commit_mode=False)
        ocm.flush_for_commit(1)
        assert ocm._upload_inflight  # completions from the drained uploads

        ocm.invalidate_all()
        assert ocm._upload_inflight == []

    def test_post_crash_upload_not_throttled_by_stale_window(self):
        ocm, store, clock = make_ocm(upload_window=1)
        for i in range(6):
            ocm.put(f"a/{i}", b"x" * 4096, txn_id=1, commit_mode=False)
        ocm.flush_for_commit(1)
        ocm.invalidate_all()

        # A fresh write-through upload must start now, not after the last
        # pre-crash completion time.
        t0 = clock.now()
        ocm.put("b/0", b"y" * 4096, commit_mode=True)
        first_after_crash = clock.now() - t0

        fresh, fresh_store, fresh_clock = make_ocm(upload_window=1)
        t1 = fresh_clock.now()
        fresh.put("b/0", b"y" * 4096, commit_mode=True)
        baseline = fresh_clock.now() - t1
        assert first_after_crash == pytest.approx(baseline)

    def test_degradation_bookkeeping_reset(self):
        ocm, __, __ = make_ocm()
        ocm._was_degraded = True
        ocm.metrics.gauge("degraded_queue_depth").set(5.0)
        ocm.invalidate_all()
        assert ocm._was_degraded is False
        assert ocm.metrics.snapshot()["degraded_queue_depth"] == 0.0
