"""Unit tests for RF/RB locator bitmaps."""

import pytest

from repro.core.bitmaps import LocatorBitmap
from repro.storage.locator import OBJECT_KEY_BASE, make_block_locator


def test_add_and_membership():
    bitmap = LocatorBitmap()
    bitmap.add(OBJECT_KEY_BASE + 5)
    assert OBJECT_KEY_BASE + 5 in bitmap
    assert len(bitmap) == 1


def test_mixed_kinds_separated():
    bitmap = LocatorBitmap()
    block = make_block_locator(10, 2)
    bitmap.add(block)
    bitmap.add(OBJECT_KEY_BASE + 1)
    assert bitmap.cloud_keys() == [OBJECT_KEY_BASE + 1]
    assert bitmap.block_locators() == [block]


def test_range_compression_of_monotonic_keys():
    """Monotonic allocation makes RF/RB ranges long (Section 3.2's point)."""
    bitmap = LocatorBitmap()
    for key in range(OBJECT_KEY_BASE + 10, OBJECT_KEY_BASE + 110):
        bitmap.add(key)
    bitmap.add(OBJECT_KEY_BASE + 500)
    assert bitmap.cloud_key_ranges() == [
        (OBJECT_KEY_BASE + 10, OBJECT_KEY_BASE + 109),
        (OBJECT_KEY_BASE + 500, OBJECT_KEY_BASE + 500),
    ]


def test_add_range():
    bitmap = LocatorBitmap()
    bitmap.add_range(OBJECT_KEY_BASE + 1, OBJECT_KEY_BASE + 5)
    assert len(bitmap) == 5
    with pytest.raises(ValueError):
        bitmap.add_range(OBJECT_KEY_BASE + 5, OBJECT_KEY_BASE + 1)


def test_serialization_roundtrip():
    bitmap = LocatorBitmap()
    bitmap.add(make_block_locator(3, 4))
    bitmap.add_range(OBJECT_KEY_BASE + 7, OBJECT_KEY_BASE + 20)
    restored = LocatorBitmap.from_bytes(bitmap.to_bytes())
    assert sorted(restored) == sorted(bitmap)


def test_union_and_discard():
    a = LocatorBitmap([OBJECT_KEY_BASE + 1])
    b = LocatorBitmap([OBJECT_KEY_BASE + 2])
    merged = a.union(b)
    assert len(merged) == 2
    merged.discard(OBJECT_KEY_BASE + 1)
    merged.discard(OBJECT_KEY_BASE + 99)  # absent: no error
    assert len(merged) == 1


def test_iteration_sorted():
    bitmap = LocatorBitmap([OBJECT_KEY_BASE + 3, OBJECT_KEY_BASE + 1])
    assert list(bitmap) == [OBJECT_KEY_BASE + 1, OBJECT_KEY_BASE + 3]


def test_truthiness():
    assert not LocatorBitmap()
    assert LocatorBitmap([OBJECT_KEY_BASE + 1])
