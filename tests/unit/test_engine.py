"""Unit tests for the Database engine facade."""

import pytest

from repro.engine import Database, DatabaseConfig, EngineError
from tests.conftest import make_db

MIB = 1024 * 1024


def test_default_configuration_builds():
    db = make_db()
    assert db.object_store is not None
    assert db.ocm is not None
    assert db.clock.now() >= 0


def test_ebs_configuration_builds():
    db = make_db(user_volume="ebs")
    assert db.object_store is None
    assert db.user_device is not None
    assert not db.user_dbspace.is_cloud


def test_efs_configuration_builds():
    db = make_db(user_volume="efs")
    assert db.user_device.profile.name == "user-efs"


def test_unknown_volume_rejected():
    with pytest.raises(EngineError):
        make_db(user_volume="tape")


def test_ocm_disabled():
    db = make_db(ocm_enabled=False)
    assert db.ocm is None
    db.create_object("t")
    txn = db.begin()
    db.write_page(txn, "t", 0, b"direct")
    db.commit(txn)
    reader = db.begin()
    assert db.read_page(reader, "t", 0) == b"direct"
    db.commit(reader)


def test_page_roundtrip_on_block_volume():
    db = make_db(user_volume="ebs")
    db.create_object("t")
    txn = db.begin()
    db.write_page(txn, "t", 0, b"block data")
    db.commit(txn)
    reader = db.begin()
    assert db.read_page(reader, "t", 0) == b"block data"
    db.commit(reader)


def test_crashed_database_rejects_work():
    db = make_db()
    db.create_object("t")
    db.crash()
    with pytest.raises(EngineError):
        db.begin()
    with pytest.raises(EngineError):
        db.create_object("t2")


def test_restart_requires_crash():
    db = make_db()
    with pytest.raises(EngineError):
        db.restart()


def test_crash_restart_preserves_committed_data():
    db = make_db()
    db.create_object("t")
    txn = db.begin()
    for page in range(10):
        db.write_page(txn, "t", page, b"page-%02d" % page)
    db.commit(txn)
    db.crash()
    db.restart()
    reader = db.begin()
    for page in range(10):
        assert db.read_page(reader, "t", page) == b"page-%02d" % page
    db.commit(reader)


def test_crash_discards_uncommitted_data():
    db = make_db()
    db.create_object("t")
    committed = db.begin()
    db.write_page(committed, "t", 0, b"durable")
    db.commit(committed)
    doomed = db.begin()
    db.write_page(doomed, "t", 0, b"volatile")
    db.crash()
    db.restart()
    reader = db.begin()
    assert db.read_page(reader, "t", 0) == b"durable"
    db.commit(reader)


def test_restart_gc_reclaims_orphans():
    db = make_db()
    db.create_object("t")
    txn = db.begin()
    db.write_page(txn, "t", 0, b"orphan to be")
    db.buffer.flush_txn(txn.txn_id, commit_mode=False)
    if db.ocm is not None:
        db.ocm.drain_all()
    orphans = db.object_store.object_count()
    assert orphans > 0
    db.crash()
    db.restart()
    assert db.object_store.object_count() == 0


def test_monthly_storage_cost_reflects_volume():
    cloud = make_db()
    cloud.create_object("t")
    txn = cloud.begin()
    txn_pages = [(i, bytes([i % 251]) * 4096) for i in range(32)]
    for page, data in txn_pages:
        cloud.write_page(txn, "t", page, data)
    cloud.commit(txn)
    assert cloud.user_data_bytes() > 0
    assert cloud.monthly_storage_cost() > 0


def test_stats_shape():
    db = make_db()
    stats = db.stats()
    assert "clock_seconds" in stats
    assert "buffer" in stats
    assert "ocm" in stats
    assert "object_store" in stats


def test_snapshot_requires_retention():
    db = make_db()
    with pytest.raises(EngineError):
        db.create_snapshot()


def test_config_with_overrides():
    config = DatabaseConfig().with_overrides(vcpus=4)
    assert config.vcpus == 4
    assert DatabaseConfig().vcpus != 4 or True


def test_deterministic_replay():
    """Two identically-seeded engines produce identical timelines."""

    def run():
        db = make_db(seed=99)
        db.create_object("t")
        txn = db.begin()
        for page in range(20):
            db.write_page(txn, "t", page, bytes([page]) * 1024)
        db.commit(txn)
        reader = db.begin()
        for page in range(20):
            db.read_page(reader, "t", page)
        db.commit(reader)
        return db.clock.now()

    assert run() == run()
