"""Unit tests for column page encodings (n-bit, dictionary)."""

import pytest

from repro.columnar.encoding import (
    EncodingError,
    bits_needed,
    decode_values,
    encode_floats,
    encode_ints,
    encode_strings,
    encode_values,
)


def test_bits_needed():
    assert bits_needed(0) == 1
    assert bits_needed(1) == 1
    assert bits_needed(2) == 2
    assert bits_needed(255) == 8
    assert bits_needed(256) == 9
    with pytest.raises(EncodingError):
        bits_needed(-1)


def test_int_roundtrip():
    values = [5, -3, 1000, 0, 7, 7, -3]
    assert decode_values(encode_ints(values)) == values


def test_int_narrow_range_compresses_well():
    values = [1000000 + (i % 4) for i in range(1000)]
    payload = encode_ints(values)
    # 2 bits/value plus headers: far below 8 bytes/value.
    assert len(payload) < 1000


def test_int_empty():
    assert decode_values(encode_ints([])) == []


def test_int_single_value():
    assert decode_values(encode_ints([42])) == [42]


def test_int_negative_extremes():
    values = [-(2 ** 40), 2 ** 40]
    assert decode_values(encode_ints(values)) == values


def test_float_roundtrip():
    values = [0.0, -1.5, 3.14159, 1e300]
    assert decode_values(encode_floats(values)) == values


def test_string_roundtrip():
    values = ["apple", "banana", "apple", "", "cherry", "apple"]
    assert decode_values(encode_strings(values)) == values


def test_string_dictionary_compresses_repeats():
    values = ["AUTOMOBILE", "BUILDING"] * 500
    payload = encode_strings(values)
    raw = sum(len(v) for v in values)
    assert len(payload) < raw / 5


def test_string_empty_page():
    assert decode_values(encode_strings([])) == []


def test_string_single_distinct():
    values = ["same"] * 100
    assert decode_values(encode_strings(values)) == values


def test_string_unicode():
    values = ["héllo", "wörld", "héllo"]
    assert decode_values(encode_strings(values)) == values


def test_kind_dispatch():
    assert decode_values(encode_values("int", [1, 2])) == [1, 2]
    assert decode_values(encode_values("date", [730000])) == [730000]
    assert decode_values(encode_values("float", [1.5])) == [1.5]
    assert decode_values(encode_values("str", ["x"])) == ["x"]
    with pytest.raises(EncodingError):
        encode_values("blob", [b"x"])


def test_corrupt_payload_rejected():
    with pytest.raises(EncodingError):
        decode_values(b"")
    with pytest.raises(EncodingError):
        decode_values(b"Z" + b"\x00" * 8)
