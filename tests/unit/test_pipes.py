"""Unit tests for rate-limiting pipes and token buckets."""

import pytest

from repro.sim.pipes import Pipe, TokenBucket


class TestPipe:
    def test_idle_pipe_serves_immediately(self):
        pipe = Pipe(rate=100.0)
        start, end = pipe.request(0.0, 50.0)
        assert start == 0.0
        assert end == pytest.approx(0.5)

    def test_requests_queue_fcfs(self):
        pipe = Pipe(rate=10.0)
        __, first_end = pipe.request(0.0, 10.0)  # busy until t=1
        start, end = pipe.request(0.0, 10.0)
        assert start == pytest.approx(first_end)
        assert end == pytest.approx(2.0)

    def test_idle_gap_not_backdated(self):
        pipe = Pipe(rate=10.0)
        pipe.request(0.0, 10.0)  # done at 1.0
        start, __ = pipe.request(5.0, 10.0)
        assert start == 5.0

    def test_backlog_reflects_queued_work(self):
        pipe = Pipe(rate=10.0)
        pipe.request(0.0, 30.0)
        assert pipe.backlog(0.0) == pytest.approx(3.0)
        assert pipe.backlog(2.0) == pytest.approx(1.0)
        assert pipe.backlog(10.0) == 0.0

    def test_zero_amount_allowed(self):
        pipe = Pipe(rate=10.0)
        start, end = pipe.request(1.0, 0.0)
        assert start == end == 1.0

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            Pipe(rate=10.0).request(0.0, -1.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Pipe(rate=0.0)

    def test_accounting(self):
        pipe = Pipe(rate=10.0)
        pipe.request(0.0, 5.0)
        pipe.request(0.0, 15.0)
        assert pipe.total_units == pytest.approx(20.0)
        assert pipe.busy_seconds == pytest.approx(2.0)


class TestTokenBucket:
    def test_burst_within_capacity_is_free(self):
        bucket = TokenBucket(rate=10.0, capacity=100.0)
        assert bucket.request(0.0, 100.0) == 0.0

    def test_exhausted_bucket_delays(self):
        bucket = TokenBucket(rate=10.0, capacity=10.0)
        bucket.request(0.0, 10.0)
        ready = bucket.request(0.0, 5.0)
        assert ready == pytest.approx(0.5)
        assert bucket.throttled_requests == 1

    def test_refill_over_time(self):
        bucket = TokenBucket(rate=10.0, capacity=10.0)
        bucket.request(0.0, 10.0)
        # After 1 second, 10 tokens refilled.
        assert bucket.request(1.0, 10.0) == pytest.approx(1.0)

    def test_refill_capped_at_capacity(self):
        bucket = TokenBucket(rate=10.0, capacity=10.0)
        assert bucket.available(100.0) == pytest.approx(10.0)

    def test_oversized_request_takes_multiple_periods(self):
        bucket = TokenBucket(rate=10.0, capacity=10.0)
        bucket.request(0.0, 10.0)
        ready = bucket.request(0.0, 30.0)
        assert ready == pytest.approx(3.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, capacity=10)
        with pytest.raises(ValueError):
            TokenBucket(rate=10, capacity=0)
        with pytest.raises(ValueError):
            TokenBucket(rate=10, capacity=10).request(0.0, -1)
