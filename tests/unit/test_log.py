"""Unit tests for the transaction log and checkpoints."""

from repro.blockstore.device import BlockDevice
from repro.blockstore.profiles import nvme_ssd
from repro.core.log import ALLOC_RANGE, LogRecord, TXN_COMMIT, TransactionLog
from repro.sim.clock import VirtualClock


def test_append_assigns_lsns():
    log = TransactionLog()
    first = log.append(ALLOC_RANGE, {"lo": 1})
    second = log.append(TXN_COMMIT, {"txn_id": 2})
    assert second.lsn == first.lsn + 1


def test_record_json_roundtrip():
    record = LogRecord(7, TXN_COMMIT, {"txn_id": 3, "node": "w1"})
    assert LogRecord.from_json(record.to_json()) == record


def test_records_since_checkpoint():
    log = TransactionLog()
    log.append(ALLOC_RANGE, {"a": 1})
    log.checkpoint({"state": True})
    log.append(TXN_COMMIT, {"b": 2})
    since = list(log.records_since_checkpoint())
    assert [r.kind for r in since] == [TXN_COMMIT]


def test_last_checkpoint_state():
    log = TransactionLog()
    assert log.last_checkpoint_state() is None
    log.checkpoint({"x": 1})
    log.checkpoint({"x": 2})
    assert log.last_checkpoint_state() == {"x": 2}


def test_appends_charge_device_time():
    device = BlockDevice(nvme_ssd(), 4096, 100, clock=VirtualClock())
    log = TransactionLog(device)
    log.append(TXN_COMMIT, {"txn_id": 1})
    assert device.clock.now() > 0


def test_truncate_before_checkpoint():
    log = TransactionLog()
    log.append(ALLOC_RANGE, {})
    log.append(ALLOC_RANGE, {})
    log.checkpoint({})
    log.append(TXN_COMMIT, {})
    dropped = log.truncate_before_checkpoint()
    assert dropped == 2
    assert len(log) == 2  # checkpoint record + commit
    # Replay still works after truncation.
    assert [r.kind for r in log.records_since_checkpoint()] == [TXN_COMMIT]


def test_truncate_without_checkpoint_is_noop():
    log = TransactionLog()
    log.append(ALLOC_RANGE, {})
    assert log.truncate_before_checkpoint() == 0
    assert len(log) == 1
