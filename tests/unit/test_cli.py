"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_quickstart(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "loaded 5000 rows" in out
    assert "sum(v) = 22500" in out


def test_tpch_subset(capsys):
    assert main(["tpch", "--scale-factor", "0.002", "--queries", "6"]) == 0
    out = capsys.readouterr().out
    assert "Q6" in out
    assert "geomean" in out


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Coordinator recovers" in out
    assert "(empty)" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_trace_quickstart_writes_chrome_trace(tmp_path, capsys):
    import json

    output = tmp_path / "trace.json"
    assert main(["trace", "quickstart", "--output", str(output)]) == 0
    out = capsys.readouterr().out
    assert "flamegraph" in out
    assert "layer/op" in out
    payload = json.loads(output.read_text())
    assert payload["displayTimeUnit"] == "ms"
    assert any(e.get("ph") == "X" for e in payload["traceEvents"])


def test_trace_tpch_and_report_round_trip(tmp_path, capsys):
    output = tmp_path / "trace.json"
    assert main([
        "trace", "tpch", "--scale-factor", "0.002", "--queries", "6",
        "--output", str(output),
    ]) == 0
    trace_out = capsys.readouterr().out
    assert "Q6" in trace_out
    assert "spans" in trace_out

    assert main(["report", "--input", str(output)]) == 0
    report_out = capsys.readouterr().out
    assert "query/Q6" in report_out
    assert "store/get" in report_out


def test_parser_accepts_trace_and_report():
    args = build_parser().parse_args(["trace", "tpch", "--queries", "1,6"])
    assert args.command == "trace"
    assert args.workload == "tpch"
    args = build_parser().parse_args(["report"])
    assert args.input == "trace.json"
