"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_quickstart(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "loaded 5000 rows" in out
    assert "sum(v) = 22500" in out


def test_tpch_subset(capsys):
    assert main(["tpch", "--scale-factor", "0.002", "--queries", "6"]) == 0
    out = capsys.readouterr().out
    assert "Q6" in out
    assert "geomean" in out


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Coordinator recovers" in out
    assert "(empty)" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
