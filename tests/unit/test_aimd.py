"""Unit tests for the AIMD upload-window controller."""

import pytest

from repro.core.aimd import AimdConfig, AimdUploadController


def clean_completions(ctrl, count, latency=0.1, start=0.0):
    now = start
    for __ in range(count):
        ctrl.on_completion(now, now + latency)
        now += latency
    return now


def test_additive_increase_earns_one_slot_per_sixteen_completions():
    ctrl = AimdUploadController(AimdConfig(initial_window=16))
    assert ctrl.window == 16
    clean_completions(ctrl, 15)
    assert ctrl.window == 16  # sub-slot progress is invisible
    clean_completions(ctrl, 1, start=2.0)
    assert ctrl.window == 17


def test_window_clamps_at_max():
    ctrl = AimdUploadController(AimdConfig(initial_window=16, max_window=20))
    clean_completions(ctrl, 16 * 10)
    assert ctrl.window == 20


def test_retry_triggers_multiplicative_decrease():
    ctrl = AimdUploadController(AimdConfig(initial_window=16))
    ctrl.on_completion(0.0, 0.1, retries=1)
    assert ctrl.window == 8
    assert ctrl.metrics.counter("aimd_backoffs").value == 1


def test_latency_spike_triggers_decrease_without_retries():
    ctrl = AimdUploadController(AimdConfig(initial_window=16))
    # Establish a baseline EWMA around 0.1s...
    clean_completions(ctrl, 16)
    baseline = ctrl.window
    # ...then one completion 10x slower than the norm, zero retries.
    ctrl.on_completion(100.0, 101.0)
    assert ctrl.window == baseline // 2


def test_first_completion_never_counts_as_spike():
    # No EWMA yet: even an enormous latency is just the new baseline.
    ctrl = AimdUploadController(AimdConfig(initial_window=16))
    ctrl.on_completion(0.0, 1000.0)
    assert ctrl.window == 16
    assert ctrl.metrics.counter("aimd_backoffs").value == 0


def test_spike_judged_against_ewma_before_update():
    # A spike must not poison its own baseline: two identical spikes in
    # a row, outside the cooldown, both count as spikes against the
    # pre-storm EWMA rather than the first spike legitimising the second.
    ctrl = AimdUploadController(
        AimdConfig(initial_window=64, max_window=64, cooldown_seconds=0.0)
    )
    clean_completions(ctrl, 4, latency=0.1)
    ctrl.on_completion(10.0, 11.0)
    ctrl.on_completion(11.0, 12.0)
    assert ctrl.metrics.counter("aimd_backoffs").value == 2


def test_cooldown_makes_one_storm_one_cut():
    ctrl = AimdUploadController(AimdConfig(initial_window=64, max_window=64,
                                           cooldown_seconds=1.0))
    # Sixteen in-flight uploads all fail inside the same virtual second.
    for i in range(16):
        ctrl.on_completion(0.0, 0.5 + i * 0.01, retries=1)
    assert ctrl.window == 32  # halved once, not collapsed to the floor
    assert ctrl.metrics.counter("aimd_backoffs").value == 1
    # The next storm, past the cooldown, cuts again.
    ctrl.on_completion(2.0, 2.5, retries=1)
    assert ctrl.window == 16


def test_window_never_falls_below_min():
    ctrl = AimdUploadController(AimdConfig(initial_window=16, min_window=2,
                                           cooldown_seconds=0.0))
    for i in range(10):
        ctrl.on_completion(float(i * 10), float(i * 10) + 0.1, retries=1)
    assert ctrl.window == 2


def test_recovery_after_backoff():
    ctrl = AimdUploadController(AimdConfig(initial_window=16))
    ctrl.on_completion(0.0, 0.1, retries=1)
    assert ctrl.window == 8
    # 128 clean completions at 1/16 per completion earn back 8 slots.
    clean_completions(ctrl, 128, start=10.0)
    assert ctrl.window == 16


def test_window_gauge_published():
    ctrl = AimdUploadController(AimdConfig(initial_window=16))
    assert ctrl.metrics.gauge("upload_window").value == 16.0
    ctrl.on_completion(0.0, 0.1, retries=1)
    assert ctrl.metrics.gauge("upload_window").value == 8.0


@pytest.mark.parametrize("bad", [
    dict(min_window=0),
    dict(min_window=8, max_window=4),
    dict(initial_window=100, max_window=64),
    dict(initial_window=1, min_window=2),
    dict(increase_per_completion=0.0),
    dict(decrease_factor=1.0),
    dict(decrease_factor=0.0),
    dict(latency_spike_factor=1.0),
    dict(ewma_alpha=0.0),
    dict(ewma_alpha=1.5),
    dict(cooldown_seconds=-1.0),
])
def test_config_validation_rejects(bad):
    with pytest.raises(ValueError):
        AimdUploadController(AimdConfig(**bad))
