"""Unit tests for the benchmark infrastructure itself."""

import pytest

from repro.bench.configs import bench_config, make_engine
from repro.bench.report import format_table, geomean
from repro.costs.instances import INSTANCE_CATALOG


class TestReport:
    def test_geomean(self):
        assert geomean([1.0, 100.0]) == pytest.approx(10.0)
        assert geomean([]) == 0.0
        assert geomean([0.0, 4.0]) == pytest.approx(4.0)

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.5], ["bbb", 22.0]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len({len(line) for line in lines}) == 1  # equal width

    def test_format_table_floats_rounded(self):
        table = format_table(["x"], [[3.14159]])
        assert "3.1" in table and "3.14159" not in table


class TestBenchConfig:
    def test_rate_scale_follows_scale_factor(self):
        config = bench_config(scale_factor=0.01)
        assert config.rate_scale == pytest.approx(1e-5)

    def test_instance_shapes_transfer(self):
        for instance_type, profile in INSTANCE_CATALOG.items():
            if profile.ssd_count == 0:
                continue
            config = bench_config(instance_type=instance_type)
            assert config.vcpus == profile.vcpus
            assert config.nic_gbits == profile.nic_gbits

    def test_bigger_instances_get_bigger_caches(self):
        small = bench_config(instance_type="m5ad.4xlarge")
        large = bench_config(instance_type="m5ad.24xlarge")
        assert large.buffer_capacity_bytes >= small.buffer_capacity_bytes
        assert large.ocm_capacity_bytes >= small.ocm_capacity_bytes

    def test_block_volumes_disable_ocm(self):
        assert bench_config(user_volume="ebs").ocm_enabled is False
        assert bench_config(user_volume="s3").ocm_enabled is True

    def test_overrides_win(self):
        config = bench_config(ocm_capacity_bytes=12345 * 1024)
        assert config.ocm_capacity_bytes == 12345 * 1024

    def test_make_engine_builds(self):
        db = make_engine("m5ad.4xlarge", "s3")
        assert db.config.rate_scale == pytest.approx(1e-5)
        assert db.cpu.parallel_fraction == pytest.approx(0.995)

    def test_efs_volume_kind(self):
        db = make_engine("m5ad.24xlarge", "efs")
        assert db.user_device is not None
        assert db.user_device.profile.name == "user-efs"
