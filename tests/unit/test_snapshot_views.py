"""Unit tests for read-only snapshot views (the paper's future work #1)."""

import pytest

from repro.columnar import ColumnSchema, ColumnStore, QueryContext, TableSchema
from repro.engine import EngineError
from tests.conftest import make_db


@pytest.fixture
def db():
    return make_db(retention_seconds=3600.0)


def write_and_commit(db, name, pages, payload):
    txn = db.begin()
    for page in pages:
        db.write_page(txn, name, page,
                      (payload + b"-%d" % page).ljust(1024, b"."))
    db.commit(txn)


def test_view_reads_snapshot_state(db):
    db.create_object("t")
    write_and_commit(db, "t", range(4), b"v1")
    snapshot = db.create_snapshot()
    write_and_commit(db, "t", range(4), b"v2")

    view = db.open_snapshot_view(snapshot.snapshot_id)
    token = view.begin()
    for page in range(4):
        assert view.read_page(token, "t", page).startswith(b"v1-%d" % page)
    view.commit(token)

    # The live database is unaffected and still serves v2.
    live = db.begin()
    assert db.read_page(live, "t", 0).startswith(b"v2")
    db.commit(live)


def test_view_is_read_only(db):
    db.create_object("t")
    write_and_commit(db, "t", [0], b"v1")
    snapshot = db.create_snapshot()
    view = db.open_snapshot_view(snapshot.snapshot_id)
    token = view.begin()
    with pytest.raises(EngineError):
        view.open_for_write(token, "t")


def test_view_does_not_see_later_objects(db):
    db.create_object("old")
    write_and_commit(db, "old", [0], b"v1")
    snapshot = db.create_snapshot()
    db.create_object("new")
    write_and_commit(db, "new", [0], b"v1")
    view = db.open_snapshot_view(snapshot.snapshot_id)
    token = view.begin()
    from repro.storage.identity import CatalogError

    with pytest.raises(CatalogError):
        view.open_for_read(token, "new")


def test_view_requires_live_snapshot(db):
    db.create_object("t")
    write_and_commit(db, "t", [0], b"v1")
    snapshot = db.create_snapshot()
    db.clock.advance(3601.0)
    db.snapshot_manager.reap()
    from repro.core.snapshot import SnapshotError

    with pytest.raises(SnapshotError):
        db.open_snapshot_view(snapshot.snapshot_id)


def test_view_requires_snapshot_manager():
    db = make_db()  # retention 0: no snapshot manager
    with pytest.raises(EngineError):
        db.open_snapshot_view(1)


def test_columnar_query_over_view(db):
    """Time travel: run a columnar query against a past snapshot."""
    store = ColumnStore(db)
    store.create_table(TableSchema(
        "events",
        (ColumnSchema("id", "int"), ColumnSchema("value", "float")),
        rows_per_page=128,
    ))
    store.load("events", [(i, float(i)) for i in range(500)])
    snapshot = db.create_snapshot()
    # Replace the table contents entirely.
    txn = db.begin()
    store.load("events", [(i, -1.0) for i in range(100)], txn=txn)
    db.commit(txn)

    with QueryContext(db) as ctx:
        live = ctx.read("events", ["value"])
    assert len(live["value"]) == 100 and live["value"][0] == -1.0

    view = db.open_snapshot_view(snapshot.snapshot_id)
    with QueryContext(view) as ctx:
        past = ctx.read("events", ["value"])
    assert len(past["value"]) == 500
    assert sorted(past["value"])[:3] == [0.0, 1.0, 2.0]
