"""Unit tests for pipelined scans and session meta-cache bounding."""

from repro.columnar import ColumnSchema, ColumnStore, QueryContext, TableSchema
from repro.sim.rng import DeterministicRng
from repro.sim.tracing import Tracer, overlap_seconds
from tests.conftest import make_db


def load_table(db, rows=2000, partitions=2, rows_per_page=64):
    store = ColumnStore(db)
    schema = TableSchema(
        "items",
        (
            ColumnSchema("key", "int"),
            ColumnSchema("price", "float"),
        ),
        partition_column="key",
        partition_count=partitions,
        rows_per_page=rows_per_page,
    )
    store.create_table(schema)
    rng = DeterministicRng(5, "items")
    data = [(i, round(rng.uniform(1, 100), 2)) for i in range(1, rows + 1)]
    store.load("items", data)
    return store


def cold_engine(**overrides):
    """A loaded engine with every cache dropped (scan reads hit S3)."""
    db = make_db(**overrides)
    store = load_table(db)
    db.node.invalidate_caches()
    if db.ocm is not None:
        db.ocm.invalidate_all()
    return db, store


def scan(db, prefetch_window=8):
    start = db.clock.now()
    with QueryContext(db, prefetch_window=prefetch_window) as ctx:
        rel = ctx.read("items", ["key", "price"])
    return rel, db.clock.now() - start


def test_pipelined_scan_returns_identical_rows():
    serial_db, __ = cold_engine(pipelined_prefetch=False)
    piped_db, __ = cold_engine(pipelined_prefetch=True)
    serial_rel, __s = scan(serial_db)
    piped_rel, __p = scan(piped_db)
    assert serial_rel == piped_rel


def test_pipelined_scan_is_faster_on_the_virtual_clock():
    serial_db, __ = cold_engine(pipelined_prefetch=False)
    piped_db, __ = cold_engine(pipelined_prefetch=True)
    __, serial_time = scan(serial_db)
    __, piped_time = scan(piped_db)
    assert piped_time < serial_time


def test_pipelined_flag_resolves_from_session_config():
    db, __ = cold_engine(pipelined_prefetch=True)
    with QueryContext(db) as ctx:
        assert ctx.pipelined is True
    with QueryContext(db, pipelined=False) as ctx:
        assert ctx.pipelined is False


def test_pipeline_overlap_accounting():
    """Batch N+1's I/O spans genuinely overlap batch N's decode spans."""
    db, __ = cold_engine(pipelined_prefetch=True)
    tracer = Tracer(db.clock)
    db.attach_tracer(tracer)
    __, elapsed = scan(db)
    spans = [s for root in tracer.all_spans() for s in root.walk()]
    issues = [s for s in spans if s.key == "buffer/prefetch_issue"]
    decodes = [s for s in spans if s.key == "query/decode"]
    assert issues and decodes
    overlap = sum(
        overlap_seconds(issue, decode)
        for issue in issues
        for decode in decodes
    )
    assert overlap > 0.0
    # The overlap is the win: strictly alternating I/O and decode would
    # have taken at least `overlap` longer.
    assert overlap < elapsed


def test_pipelined_counter_increments():
    db, __ = cold_engine(pipelined_prefetch=True)
    scan(db)
    assert db.buffer.stats()["pipelined_prefetches"] > 0
    serial_db, __ = cold_engine(pipelined_prefetch=False)
    scan(serial_db)
    assert serial_db.buffer.stats().get("pipelined_prefetches", 0) == 0


def test_pipelined_scan_works_without_ocm():
    """DirectObjectIO and BlockDbspace also serve the timed read path."""
    for overrides in ({"ocm_enabled": False}, {"user_volume": "ebs"}):
        db, __ = cold_engine(pipelined_prefetch=True, **overrides)
        rel, __t = scan(db)
        assert sorted(rel["key"]) == list(range(1, 2001))


def test_serial_default_unchanged_by_feature_flags():
    """Default config produces bit-identical scan timing with the seed
    path: the pipelined code must not perturb the RNG or clock."""
    baseline_db, __ = cold_engine()
    flagged_db, __ = cold_engine()  # same config: sanity determinism check
    __, t1 = scan(baseline_db)
    __, t2 = scan(flagged_db)
    assert t1 == t2


# --------------------------------------------------------------------- #
# session meta-cache bounding (satellite)
# --------------------------------------------------------------------- #

def test_meta_cache_evicts_superseded_versions():
    db = make_db()
    store = load_table(db, rows=500, partitions=1)
    with QueryContext(db) as ctx:
        ctx.read("items", ["key"])
    cache = db._query_meta_cache
    meta_versions = [k for k in cache if k[0] == "items/__meta"]
    assert len(meta_versions) == 1
    for round_no in range(5):
        store.append("items", [(10_000 + round_no, 1.0)])
        with QueryContext(db) as ctx:
            ctx.read("items", ["key"])
    meta_versions = [k for k in cache if k[0] == "items/__meta"]
    # One commit per append bumped the version; superseded parses are gone.
    assert len(meta_versions) == 1
    zon_versions = [k for k in cache if k[0].endswith("__zonemap")]
    assert all(
        len([k for k in cache if k[0] == name]) == 1
        for name, __v in zon_versions
    )
