"""Unit tests for adaptive OCM read re-routing (proposed future work).

The paper's Figure 6 analysis proposes monitoring SSD vs object-store read
latency and re-routing cache hits to the object store while asynchronous
fills saturate the SSD.
"""

from repro.blockstore.profiles import nvme_ssd
from repro.core.ocm import ObjectCacheManager, OcmConfig
from repro.objectstore import RetryingObjectClient, SimulatedObjectStore
from repro.objectstore.consistency import STRONG
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock
from repro.sim.devices import DeviceProfile


def make_ocm(adaptive: bool, ssd_bandwidth: float = 50_000.0):
    profile = ObjectStoreProfile(name="s3", consistency=STRONG,
                                 transient_failure_probability=0.0,
                                 latency_jitter=0.0)
    store = SimulatedObjectStore(profile, clock=VirtualClock())
    client = RetryingObjectClient(store)
    slow_ssd = DeviceProfile(
        name="ssd", read_latency=0.0001, write_latency=0.0002,
        bandwidth=ssd_bandwidth, write_cost_multiplier=4.0,
    )
    return ObjectCacheManager(
        client, slow_ssd,
        OcmConfig(capacity_bytes=1 << 26, adaptive_read_routing=adaptive),
    )


def saturate_and_read(ocm) -> float:
    """Fill the SSD write queue, then time a cache hit."""
    ocm.client.put("hot/1", b"h" * 10_000)
    ocm.get("hot/1")  # now cached
    # Saturate the SSD with asynchronous cache fills.
    for i in range(20):
        ocm.client.put(f"cold/{i}", b"c" * 200_000)
    ocm.get_many([f"cold/{i}" for i in range(20)])
    start = ocm.clock.now()
    assert ocm.get("hot/1") == b"h" * 10_000
    return ocm.clock.now() - start


def test_adaptive_routing_beats_saturated_ssd():
    plain_latency = saturate_and_read(make_ocm(adaptive=False))
    adaptive_latency = saturate_and_read(make_ocm(adaptive=True))
    assert adaptive_latency < plain_latency / 2


def test_adaptive_routing_counts_reroutes():
    ocm = make_ocm(adaptive=True)
    saturate_and_read(ocm)
    assert ocm.stats().get("rerouted_reads", 0) >= 1


def test_no_reroute_on_idle_ssd():
    """With nothing queued, the SSD wins and routing stays local."""
    ocm = make_ocm(adaptive=True, ssd_bandwidth=2e9)
    ocm.client.put("hot/1", b"h" * 10_000)
    ocm.get("hot/1")
    ocm.get("hot/1")
    assert ocm.stats().get("rerouted_reads", 0) == 0


def test_adaptive_routing_preserves_correctness():
    ocm = make_ocm(adaptive=True)
    payloads = {f"k/{i}": bytes([i]) * 5000 for i in range(10)}
    for name, data in payloads.items():
        ocm.client.put(name, data)
    assert ocm.get_many(list(payloads)) == payloads
    # Saturate, then read everything again through whatever route wins.
    for i in range(20):
        ocm.client.put(f"cold/{i}", b"c" * 200_000)
    ocm.get_many([f"cold/{i}" for i in range(20)])
    assert ocm.get_many(list(payloads)) == payloads
