"""Unit tests for counters, histograms and time series."""

import pytest

from repro.sim.metrics import (
    Counter,
    Histogram,
    MetricNameCollisionError,
    MetricsRegistry,
    TimeSeries,
    labeled_histograms,
    merged_histogram,
)


class TestCounter:
    def test_increment(self):
        counter = Counter("x")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").increment(-1)


class TestHistogram:
    def test_mean(self):
        hist = Histogram("h")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.mean == pytest.approx(2.0)
        assert hist.count == 3
        assert hist.total == pytest.approx(6.0)

    def test_empty_summaries_are_zero(self):
        hist = Histogram("h")
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0
        assert hist.geomean() == 0.0

    def test_percentiles(self):
        hist = Histogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0
        assert hist.percentile(50) == pytest.approx(50.5)

    def test_percentile_bounds_checked(self):
        hist = Histogram("h")
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_geomean(self):
        hist = Histogram("h")
        hist.observe(1.0)
        hist.observe(100.0)
        assert hist.geomean() == pytest.approx(10.0)

    def test_geomean_skips_nonpositive(self):
        hist = Histogram("h")
        hist.observe(0.0)
        hist.observe(4.0)
        assert hist.geomean() == pytest.approx(4.0)

    def test_sorted_cache_invalidated_by_observe(self):
        """Regression: percentile caches the sorted values; interleaving
        observe and percentile must keep answers correct, not stale."""
        hist = Histogram("h")
        hist.observe(10.0)
        hist.observe(30.0)
        assert hist.percentile(100) == 30.0
        hist.observe(50.0)  # arrives after the cache was built
        assert hist.percentile(100) == 50.0
        assert hist.percentile(0) == 10.0
        hist.observe(1.0)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(50) == pytest.approx(20.0)

    def test_sorted_cache_matches_fresh_sort(self):
        hist = Histogram("h")
        for value in (5.0, 1.0, 9.0, 3.0):
            hist.observe(value)
        first = [hist.percentile(q) for q in (0, 25, 50, 75, 100)]
        # A second pass hits the cache; answers must be identical.
        assert [hist.percentile(q) for q in (0, 25, 50, 75, 100)] == first
        assert hist.values == [5.0, 1.0, 9.0, 3.0]  # insertion order kept

    def test_merge_combines_and_invalidates(self):
        left = Histogram("a")
        right = Histogram("b")
        left.observe(1.0)
        assert left.percentile(100) == 1.0  # build the cache
        right.observe(7.0)
        left.merge(right)
        assert left.count == 2
        assert left.percentile(100) == 7.0


class TestLabeledFamilies:
    """Aggregation across `base` / `base:{label}` histogram families
    (the per-region twins the resilient client registers)."""

    def _registry(self):
        registry = MetricsRegistry()
        registry.histogram("get_latency").observe(0.010)
        registry.histogram("get_latency:us-east-1").observe(0.020)
        registry.histogram("get_latency:us-east-1").observe(0.040)
        registry.histogram("get_latency:us-west-2").observe(0.080)
        registry.histogram("get_latency_other").observe(9.0)  # not family
        return registry

    def test_labeled_histograms_keys(self):
        family = labeled_histograms(self._registry(), "get_latency")
        assert sorted(family) == ["", "us-east-1", "us-west-2"]
        assert family["us-east-1"].count == 2

    def test_merged_histogram_is_union(self):
        merged = merged_histogram(self._registry(), "get_latency")
        assert merged.count == 4
        assert merged.percentile(100) == pytest.approx(0.080)
        assert merged.percentile(0) == pytest.approx(0.010)

    def test_merged_histogram_empty_family(self):
        merged = merged_histogram(MetricsRegistry(), "get_latency")
        assert merged.count == 0
        assert merged.percentile(99) == 0.0


class TestTimeSeries:
    def test_bucketed_sum(self):
        series = TimeSeries("s")
        series.record(0.1, 10)
        series.record(0.9, 20)
        series.record(1.5, 5)
        buckets = series.bucketed_sum(1.0)
        assert buckets == [(0.0, 30.0), (1.0, 5.0)]

    def test_out_of_order_samples_allowed(self):
        series = TimeSeries("s")
        series.record(5.0, 1)
        series.record(1.0, 2)
        assert series.samples == [(1.0, 2.0), (5.0, 1.0)]

    def test_bucket_width_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeries("s").bucketed_sum(0)


class TestRegistry:
    def test_same_name_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.series("s") is registry.series("s")

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a").increment(2)
        registry.counter("b").increment(3)
        assert registry.snapshot() == {"a": 2, "b": 3}


class TestMetricNameCollisions:
    """Regression: snapshot() flat-merges counters and gauges, so a name
    registered under two kinds would silently overwrite one of them.
    Collisions now fail loudly at registration time."""

    def test_counter_then_gauge_raises(self):
        registry = MetricsRegistry()
        registry.counter("requests")
        with pytest.raises(MetricNameCollisionError):
            registry.gauge("requests")

    def test_every_cross_kind_pair_raises(self):
        kinds = ["counter", "gauge", "histogram", "series"]
        for first in kinds:
            for second in kinds:
                if first == second:
                    continue
                registry = MetricsRegistry()
                getattr(registry, first)("shared-name")
                with pytest.raises(MetricNameCollisionError):
                    getattr(registry, second)("shared-name")

    def test_same_kind_reregistration_returns_same_object(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        assert registry.counter("requests") is counter
        gauge = registry.gauge("depth")
        assert registry.gauge("depth") is gauge
        hist = registry.histogram("latency")
        assert registry.histogram("latency") is hist
        series = registry.series("throughput")
        assert registry.series("throughput") is series

    def test_collision_error_is_a_value_error(self):
        registry = MetricsRegistry()
        registry.histogram("x")
        with pytest.raises(ValueError):
            registry.counter("x")
