"""Unit tests for end-to-end integrity: CRC-32C, corruption faults,
verified reads, read-repair, and checksum preservation across replicas."""

import pytest

from repro.checksum import (
    PAGE_CHECKSUM_OVERHEAD,
    ChecksumError,
    crc32c,
    is_sealed,
    open_page,
    seal_page,
)
from repro.objectstore import RetryingObjectClient, STRONG
from repro.objectstore.client import HedgePolicy, RetryPolicy
from repro.objectstore.errors import CorruptObjectError
from repro.objectstore.faults import (
    BitRot,
    FaultSchedule,
    StaleRead,
    TruncatedObject,
    bitrot_schedule,
    named_schedule,
    torn_read_schedule,
)
from repro.objectstore.replicated import (
    ReplicationConfig,
    build_replicated_store,
)
from repro.objectstore.s3sim import ObjectStoreProfile, SimulatedObjectStore
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng


def quiet_profile(**overrides):
    fields = dict(
        name="s3",
        consistency=STRONG,
        transient_failure_probability=0.0,
        latency_jitter=0.0,
    )
    fields.update(overrides)
    return ObjectStoreProfile(**fields)


def make_store(schedule=None, seed=11):
    return SimulatedObjectStore(
        quiet_profile(),
        clock=VirtualClock(),
        rng=DeterministicRng(seed),
        fault_schedule=schedule,
    )


def make_replicated(regions=("a", "b"), mean_lag=0.1, horizon=5.0, seed=7,
                    schedule=None):
    primary = SimulatedObjectStore(
        quiet_profile(),
        clock=VirtualClock(),
        rng=DeterministicRng(seed),
        fault_schedule=schedule,
    )
    config = ReplicationConfig(
        regions=regions,
        mean_lag_seconds=mean_lag,
        staleness_horizon=horizon,
    )
    return build_replicated_store(
        config, primary, DeterministicRng(seed, "integrity-test")
    )


# --------------------------------------------------------------------- #
# the CRC-32C primitive and the page trailer
# --------------------------------------------------------------------- #

class TestChecksumPrimitive:
    def test_known_vector(self):
        # The canonical CRC-32C (Castagnoli) check value.
        assert crc32c(b"123456789") == 0xE3069283

    def test_empty_input(self):
        assert crc32c(b"") == 0

    def test_incremental_equals_one_shot(self):
        assert crc32c(b"cloud", crc32c(b"native ")) == crc32c(b"native cloud")

    def test_seal_open_roundtrip(self):
        payload = b"page bytes" * 40
        sealed = seal_page(payload)
        assert len(sealed) == len(payload) + PAGE_CHECKSUM_OVERHEAD
        assert is_sealed(sealed)
        assert not is_sealed(payload)
        assert open_page(sealed) == payload

    def test_open_detects_payload_tamper(self):
        sealed = bytearray(seal_page(b"x" * 64))
        sealed[-1] ^= 0x40
        with pytest.raises(ChecksumError):
            open_page(bytes(sealed))

    def test_open_detects_truncation_and_bad_magic(self):
        sealed = seal_page(b"y" * 64)
        with pytest.raises(ChecksumError):
            open_page(sealed[:-3])
        with pytest.raises(ChecksumError):
            open_page(b"ZZ" + sealed[2:])


# --------------------------------------------------------------------- #
# corruption events and schedules
# --------------------------------------------------------------------- #

class TestCorruptionEvents:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            BitRot(0.0, 1.0, probability=0.0)
        with pytest.raises(ValueError):
            TruncatedObject(0.0, 1.0, probability=1.5)
        with pytest.raises(ValueError):
            BitRot(0.0, 1.0, flips=0)

    def test_decide_composes_to_max_per_kind(self):
        schedule = FaultSchedule([
            BitRot(0.0, 10.0, probability=0.2, flips=1),
            BitRot(0.0, 10.0, probability=0.7, flips=3),
            TruncatedObject(0.0, 10.0, probability=0.4),
            StaleRead(0.0, 10.0, ops="get", probability=0.3),
        ])
        decision = schedule.decide("get", "k", None, 5.0)
        assert decision.bitrot_probability == 0.7
        assert decision.bitrot_flips == 3
        assert decision.truncate_probability == 0.4
        assert decision.stale_probability == 0.3
        assert decision.corrupting and decision.faulty

    def test_horizon_covers_corruption_events(self):
        schedule = FaultSchedule([BitRot(5.0, 42.0, probability=0.5)])
        assert schedule.horizon == 42.0

    def test_residual_damage_only_for_put_windows(self):
        put_rot = FaultSchedule([BitRot(0.0, 1.0, ops="put",
                                        probability=0.5)])
        get_rot = FaultSchedule([BitRot(0.0, 1.0, ops="get",
                                        probability=0.5),
                                 StaleRead(0.0, 1.0, ops="get",
                                           probability=0.5)])
        assert put_rot.leaves_residual_damage
        assert put_rot.corrupting
        assert not get_rot.leaves_residual_damage
        assert get_rot.corrupting

    def test_named_schedules_registered(self):
        bitrot = named_schedule("bitrot")
        torn = named_schedule("torn-read")
        assert bitrot.corrupting and bitrot.leaves_residual_damage
        assert torn.corrupting and not torn.leaves_residual_damage
        assert bitrot_schedule().horizon > 0
        assert torn_read_schedule().horizon > 0


# --------------------------------------------------------------------- #
# the store: checksums, injected corruption, the repair surface
# --------------------------------------------------------------------- #

class TestStoreIntegrity:
    def test_checksum_recorded_at_put(self):
        store = make_store()
        store.put_at("k", b"payload", 0.0)
        assert store.recorded_checksum("k") == crc32c(b"payload")
        assert store.verify_at_rest("k") is True

    def test_put_window_bitrot_is_silent_but_detectable(self):
        schedule = FaultSchedule([BitRot(0.0, 10.0, ops="put",
                                         probability=1.0, flips=2)])
        store = make_store(schedule)
        done = store.put_at("k", b"intended bytes", 0.0)
        # The write "succeeded" — no error — but the stored bytes rotted
        # while the recorded checksum still names the intended payload.
        assert store.verify_at_rest("k") is False
        assert store.recorded_checksum("k") == crc32c(b"intended bytes")
        data, expected, __ = store.try_get_verified_at("k", done + 11.0)
        assert data != b"intended bytes"
        assert crc32c(data) != expected

    def test_get_window_bitrot_is_transient(self):
        schedule = FaultSchedule([BitRot(0.0, 5.0, ops="get",
                                         probability=1.0)])
        store = make_store(schedule)
        done = store.put_at("k", b"clean", 0.0)
        corrupt, expected, __ = store.try_get_verified_at("k", done)
        assert crc32c(corrupt) != expected
        assert store.verify_at_rest("k") is True  # at rest: untouched
        clean, expected, __ = store.try_get_verified_at("k", 6.0)
        assert clean == b"clean" and crc32c(clean) == expected

    def test_truncated_read_detected(self):
        schedule = FaultSchedule([TruncatedObject(0.0, 5.0, ops="get",
                                                  probability=1.0)])
        store = make_store(schedule)
        done = store.put_at("k", b"0123456789" * 10, 0.0)
        data, expected, __ = store.try_get_verified_at("k", done)
        assert len(data) < 100
        assert crc32c(data) != expected

    def test_stale_read_pairs_old_bytes_with_new_checksum(self):
        schedule = FaultSchedule([StaleRead(0.0, 60.0, ops="get",
                                            probability=1.0)])
        store = make_store(schedule)
        t1 = store.put_at("k", b"v1", 0.0)
        t2 = store.put_at("k", b"v2", t1 + 1.0)
        data, expected, __ = store.try_get_verified_at("k", t2 + 1.0)
        assert data == b"v1"
        assert expected == crc32c(b"v2")

    def test_inject_damage_and_overwrite_latest_repair(self):
        store = make_store()
        store.put_at("k", b"clean bytes", 0.0)
        assert store.inject_damage("k", flips=3)
        assert store.verify_at_rest("k") is False
        assert store.overwrite_latest("k", b"clean bytes")
        assert store.verify_at_rest("k") is True
        # The repair kept the version's identity: its recorded checksum
        # still matches without any re-PUT having happened.
        assert store.recorded_checksum("k") == crc32c(b"clean bytes")

    def test_inject_damage_missing_key(self):
        assert not make_store().inject_damage("nope")

    def test_verified_range_get_reports_per_key_checksums(self):
        store = make_store()
        done = 0.0
        for i in range(3):
            done = store.put_at(f"r/{i}", b"x%d" % i, done)
        results, checksums, __ = store.get_range_verified_at(
            ["r/0", "r/1", "r/2", "r/9"], done
        )
        for i in range(3):
            assert checksums[f"r/{i}"] == crc32c(results[f"r/{i}"])
        assert results["r/9"] is None and checksums["r/9"] is None


# --------------------------------------------------------------------- #
# the client: verified reads, the third retry category, read-repair
# --------------------------------------------------------------------- #

class TestClientVerification:
    def test_unverified_client_serves_rot_silently(self):
        store = make_store()
        store.put_at("k", b"data", 0.0)
        store.inject_damage("k")
        client = RetryingObjectClient(store, verify_reads=False)
        data, __ = client.get_at("k", 1.0)
        assert data != b"data"  # the default stays byte-compatible

    def test_unrepairable_corruption_raises_corrupt_object_error(self):
        store = make_store()
        store.put_at("k", b"data", 0.0)
        store.inject_damage("k")
        client = RetryingObjectClient(
            store, policy=RetryPolicy(max_attempts=4), verify_reads=True
        )
        with pytest.raises(CorruptObjectError) as info:
            client.get_at("k", 1.0)
        assert info.value.key == "k"
        assert info.value.attempts == 4
        assert info.value.expected == crc32c(b"data")
        snapshot = client.metrics.snapshot()
        assert snapshot["checksum_mismatches"] == 4.0
        # Mismatches are their own category, not transient retries.
        assert snapshot.get("get_retries", 0.0) == 0.0

    def test_transient_get_corruption_heals_by_retry(self):
        schedule = FaultSchedule([BitRot(0.0, 0.2, ops="get",
                                         probability=1.0)])
        store = make_store(schedule)
        store.put_at("k", b"payload", 0.0)
        client = RetryingObjectClient(
            store,
            policy=RetryPolicy(max_attempts=8, initial_backoff=0.1,
                               backoff_multiplier=2.0),
            verify_reads=True,
        )
        data, __ = client.get_at("k", 0.05)
        assert data == b"payload"
        assert client.metrics.snapshot()["checksum_mismatches"] >= 1.0

    def test_read_repair_through_replicated_store(self):
        store = make_replicated()
        done = store.put_at("k", b"replicated", 0.0)
        store.pump(done + 5.0)  # both regions hold the version
        store.inject_damage("k", flips=2)
        client = RetryingObjectClient(
            store, policy=RetryPolicy(max_attempts=4), verify_reads=True
        )
        data, __ = client.get_at("k", done + 6.0)
        assert data == b"replicated"
        assert client.metrics.snapshot()["read_repairs"] >= 1.0
        assert store.verify_at_rest("k") is True

    def test_hedge_winner_failing_verification_loses_the_race(self):
        class TwoFacedStore:
            """Serves a slow clean primary and a fast corrupt hedge."""

            primary_region = None

            def __init__(self):
                self.calls = 0

            def try_get_verified_at(self, key, now, bandwidth=None,
                                    node=None):
                self.calls += 1
                if self.calls == 1:
                    return b"clean", crc32c(b"clean"), now + 1.0
                return b"rot!!", crc32c(b"clean"), now + 0.01

        store = TwoFacedStore()
        client = RetryingObjectClient(
            store,  # type: ignore[arg-type]
            policy=RetryPolicy(max_attempts=2),
            hedge=HedgePolicy(initial_delay=0.05),
            verify_reads=True,
        )
        data, __ = client.get_at("k", 0.0)
        assert data == b"clean"
        snapshot = client.metrics.snapshot()
        assert snapshot["hedge_mismatch"] == 1.0
        assert snapshot.get("checksum_mismatches", 0.0) == 0.0


# --------------------------------------------------------------------- #
# replication: checksum preservation and same-version repair
# --------------------------------------------------------------------- #

class TestReplicatedIntegrity:
    def test_apply_preserves_primary_checksum(self):
        store = make_replicated()
        done = store.put_at("k", b"bytes", 0.0)
        store.pump(done + 5.0)
        secondary = store.store_for("b")
        assert secondary.recorded_checksum("k") == crc32c(b"bytes")
        assert secondary.verify_at_rest("k") is True

    def test_repair_from_queued_entry_before_apply(self):
        # The secondary has not applied the version yet, but the queue
        # entry holds the clean acknowledged bytes at the same op-time.
        store = make_replicated(mean_lag=3.0)
        done = store.put_at("k", b"queued", 0.0)
        store.inject_damage("k")
        assert store.read_repair("k", done + 0.1) >= 1
        assert store.verify_at_rest("k") is True

    def test_repair_fails_when_every_copy_is_damaged(self):
        store = make_replicated()
        done = store.put_at("k", b"doomed", 0.0)
        store.pump(done + 5.0)
        for region in store.regions:
            store.store_for(region).inject_damage("k")
        assert store.read_repair("k", done + 6.0) == 0
        failed = store.replication_metrics.snapshot()["read_repair_failed"]
        assert failed >= 1
        assert store.verify_at_rest("k") is False

    def test_lagging_secondary_is_not_treated_as_corrupt(self):
        store = make_replicated(mean_lag=3.0)
        t1 = store.put_at("k", b"v1", 0.0)
        store.pump(t1 + 10.0)  # v1 lands everywhere
        t2 = store.put_at("k", b"v2", t1 + 10.5)
        # v2 is queued for "b": the secondary legitimately holds v1.
        # Repair must not "fix" the lagging region with v2's bytes.
        assert store.read_repair("k", t2 + 0.1) == 0
        assert store.store_for("b").verify_at_rest("k") is True
