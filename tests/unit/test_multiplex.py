"""Unit tests for the multiplex: nodes, RPC, key caching."""

import pytest

from repro.core.multiplex import Multiplex, MultiplexConfig, MultiplexError
from repro.engine import DatabaseConfig

MIB = 1024 * 1024


def make_multiplex(writers=1, readers=1, **config_overrides):
    return Multiplex(
        DatabaseConfig(buffer_capacity_bytes=8 * MIB, page_size=16 * 1024,
                       ocm_capacity_bytes=32 * MIB, **config_overrides),
        MultiplexConfig(writers=writers, readers=readers,
                        secondary_buffer_bytes=8 * MIB,
                        secondary_ocm_bytes=32 * MIB),
    )


def test_cluster_shape():
    mx = make_multiplex(writers=2, readers=3)
    assert len(mx.writers()) == 2
    assert len(mx.readers()) == 3
    assert mx.node("writer-1").kind == "writer"
    with pytest.raises(MultiplexError):
        mx.node("writer-9")


def test_requires_cloud_dbspace():
    with pytest.raises(MultiplexError):
        Multiplex(DatabaseConfig(user_volume="ebs"))


def test_writer_commits_reader_sees():
    mx = make_multiplex()
    mx.coordinator.create_object("t")
    writer = mx.node("writer-1")
    txn = writer.begin()
    writer.write_page(txn, "t", 0, b"from writer")
    writer.commit(txn)
    reader = mx.node("reader-1")
    read_txn = reader.begin()
    assert reader.read_page(read_txn, "t", 0) == b"from writer"
    reader.rollback(read_txn)


def test_reader_cannot_write():
    mx = make_multiplex()
    mx.coordinator.create_object("t")
    reader = mx.node("reader-1")
    txn = reader.begin()
    with pytest.raises(MultiplexError):
        reader.write_page(txn, "t", 0, b"illegal")
    reader.rollback(txn)


def test_secondary_key_ranges_via_rpc():
    mx = make_multiplex()
    mx.coordinator.create_object("t")
    writer = mx.node("writer-1")
    txn = writer.begin()
    for page in range(5):
        writer.write_page(txn, "t", page, b"p%d" % page)
    writer.commit(txn)
    assert writer.rpc.metrics.snapshot()["rpc:allocate_range"] >= 1
    assert writer.key_cache.refill_count >= 1


def test_each_node_has_own_caches():
    mx = make_multiplex(writers=2)
    mx.coordinator.create_object("t")
    w1, w2 = mx.node("writer-1"), mx.node("writer-2")
    txn = w1.begin()
    w1.write_page(txn, "t", 0, b"w1 data")
    w1.commit(txn)
    # w2 reads the same data through its own buffer/OCM.
    read = w2.begin()
    assert w2.read_page(read, "t", 0) == b"w1 data"
    w2.rollback(read)
    assert w1.buffer is not w2.buffer
    assert w1.ocm is not w2.ocm


def test_crashed_node_rejects_use():
    mx = make_multiplex()
    writer = mx.node("writer-1")
    writer.crash()
    with pytest.raises(MultiplexError):
        writer.begin()
    writer.restart()
    # Restarting a live node is an error.
    with pytest.raises(MultiplexError):
        writer.restart()


def test_writer_restart_gc_polls_active_set():
    mx = make_multiplex()
    co = mx.coordinator
    co.create_object("t")
    writer = mx.node("writer-1")
    txn = writer.begin()
    for page in range(4):
        writer.write_page(txn, "t", page, b"doomed-%d" % page)
    writer.buffer.flush_txn(txn.txn_id, commit_mode=False)
    if writer.ocm is not None:
        writer.ocm.drain_all()
    orphaned = co.object_store.object_count()
    assert orphaned > 0
    writer.crash()
    reclaimed = writer.restart()
    assert reclaimed == orphaned
    assert not co.keygen.active_set("writer-1")


def test_rollback_then_restart_double_gc_is_safe():
    """Table 1 clocks 130-150: restart re-polls already-deleted keys."""
    mx = make_multiplex()
    co = mx.coordinator
    co.create_object("t")
    writer = mx.node("writer-1")
    txn = writer.begin()
    writer.write_page(txn, "t", 0, b"will roll back")
    writer.buffer.flush_txn(txn.txn_id, commit_mode=False)
    if writer.ocm is not None:
        writer.ocm.drain_all()
    writer.rollback(txn)  # deletes objects, active set untouched
    assert co.keygen.active_set("writer-1")
    writer.crash()
    reclaimed = writer.restart()
    assert reclaimed == 0  # polling found nothing: rollback already cleaned
    assert not co.keygen.active_set("writer-1")


def test_coordinator_crash_preserves_secondary_state():
    mx = make_multiplex(writers=2)
    co = mx.coordinator
    co.create_object("t")
    w1 = mx.node("writer-1")
    txn = w1.begin()
    w1.write_page(txn, "t", 0, b"survives")
    before = co.keygen.active_set("writer-1").intervals()
    mx.coordinator_crash_and_recover()
    after = mx.coordinator.keygen.active_set("writer-1").intervals()
    assert before == after
    w1.commit(txn)
    check = mx.node("writer-2").begin()
    assert mx.node("writer-2").read_page(check, "t", 0) == b"survives"
    mx.node("writer-2").rollback(check)


def test_rpc_charges_latency():
    mx = make_multiplex()
    clock = mx.clock
    before = clock.now()
    txn = mx.node("writer-1").begin()
    assert clock.now() >= before + 2 * mx.config.rpc_latency
    mx.node("writer-1").rollback(txn)


# --------------------------------------------------------------------- #
# crash edge cases: double-crash, healthy restart, coordinator recovery
# --------------------------------------------------------------------- #


def test_double_crash_raises_cleanly():
    from repro.engine import EngineError

    mx = make_multiplex()
    writer = mx.node("writer-1")
    writer.crash()
    with pytest.raises(MultiplexError):
        writer.crash()
    writer.restart()
    co = mx.coordinator
    co.crash()
    with pytest.raises(EngineError):
        co.crash()
    co.restart()


def test_restart_while_healthy_raises_cleanly():
    from repro.engine import EngineError

    mx = make_multiplex()
    with pytest.raises(MultiplexError):
        mx.node("writer-1").restart()
    with pytest.raises(EngineError):
        mx.coordinator.restart()


def test_coordinator_crash_preserves_snapshot_retention():
    """In-flight retention FIFO entries survive a coordinator crash."""
    mx = make_multiplex(retention_seconds=60.0)
    co = mx.coordinator
    co.create_object("t")
    writer = mx.node("writer-1")
    for tag in (b"old", b"new"):
        txn = writer.begin()
        writer.write_page(txn, "t", 0, tag)
        writer.commit(txn)
    co.txn_manager.collect_garbage()
    manager = co.snapshot_manager
    before = sorted(
        (name, locator) for name, locators
        in manager.retained_locators().items() for locator in locators
    )
    assert before  # the superseded "old" page is awaiting retention expiry
    mx.coordinator_crash_and_recover()
    manager = mx.coordinator.snapshot_manager
    after = sorted(
        (name, locator) for name, locators
        in manager.retained_locators().items() for locator in locators
    )
    assert after == before
    # The retained page is eventually reaped, not leaked.
    mx.clock.advance(mx.coordinator.config.retention_seconds + 1.0)
    assert manager.reap() >= 1


def test_coordinator_crash_preserves_multiple_secondary_active_sets():
    mx = make_multiplex(writers=2)
    co = mx.coordinator
    # One object per writer: the table-level write lock is exclusive.
    txns = []
    for node_id in ("writer-1", "writer-2"):
        co.create_object("t-" + node_id)
        node = mx.node(node_id)
        txn = node.begin()
        node.write_page(txn, "t-" + node_id, 0,
                        b"uncommitted-" + node_id.encode())
        # Force the upload so the node actually consumes allocated keys.
        node.buffer.flush_txn(txn.txn_id, commit_mode=False)
        if node.ocm is not None:
            node.ocm.drain_all()
        txns.append((node, txn))
    before = {
        node_id: co.keygen.active_set(node_id).intervals()
        for node_id in ("writer-1", "writer-2")
    }
    assert all(before.values())
    mx.coordinator_crash_and_recover()
    after = {
        node_id: mx.coordinator.keygen.active_set(node_id).intervals()
        for node_id in ("writer-1", "writer-2")
    }
    assert after == before
    for node, txn in txns:
        node.rollback(txn)
