"""Unit tests for adjacent-key GET coalescing in the object client."""

import math

import pytest

from repro.objectstore import RetryingObjectClient, SimulatedObjectStore
from repro.objectstore.consistency import STRONG, ConsistencyModel
from repro.objectstore.faults import FaultSchedule, OutageWindow
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock
from repro.storage.keys import hashed_object_name
from repro.storage.locator import OBJECT_KEY_BASE

BASE = OBJECT_KEY_BASE + 1000


def make_client(coalesce=True, consistency=STRONG, fault_schedule=None,
                **client_kw):
    clock = VirtualClock()
    profile = ObjectStoreProfile(name="s3", consistency=consistency,
                                 transient_failure_probability=0.0,
                                 latency_jitter=0.0)
    store = SimulatedObjectStore(profile, clock=clock,
                                 fault_schedule=fault_schedule)
    client = RetryingObjectClient(store, coalesce_gets=coalesce, **client_kw)
    return client, store, clock


def load_run(store, count, start=BASE, size=64):
    """Store ``count`` objects under consecutive keys; returns their names."""
    names = [hashed_object_name(start + i) for i in range(count)]
    for i, name in enumerate(names):
        store.put(name, bytes([i % 256]) * size)
    return names


def test_adjacent_keys_coalesce_into_ranged_gets():
    client, store, __ = make_client(coalesce=True)
    names = load_run(store, 40)
    results = client.get_many(names)
    assert all(len(results[name]) == 64 for name in names)
    snapshot = store.metrics.snapshot()
    # 40 adjacent keys at a max run of 16 -> ceil(40/16) = 3 requests.
    assert snapshot["get_requests"] == math.ceil(40 / 16)
    assert snapshot["ranged_get_requests"] == 3
    assert snapshot["ranged_get_keys"] == 40


def test_coalescing_honours_max_run():
    client, store, __ = make_client(coalesce=True, coalesce_max_run=4)
    names = load_run(store, 10)
    client.get_many(names)
    assert store.metrics.snapshot()["get_requests"] == math.ceil(10 / 4)


def test_key_gaps_split_runs():
    client, store, __ = make_client(coalesce=True)
    first = load_run(store, 5, start=BASE)
    second = load_run(store, 5, start=BASE + 100)
    results = client.get_many(first + second)
    assert len(results) == 10
    assert store.metrics.snapshot()["ranged_get_requests"] == 2


def test_unordered_input_still_coalesces():
    client, store, __ = make_client(coalesce=True)
    names = load_run(store, 8)
    shuffled = names[::2] + names[1::2]
    results = client.get_many(shuffled)
    assert set(results) == set(names)
    assert store.metrics.snapshot()["get_requests"] == 1


def test_unparseable_names_fall_back_to_single_gets():
    client, store, __ = make_client(coalesce=True)
    store.put("meta/catalog", b"m")
    names = load_run(store, 3)
    results = client.get_many(names + ["meta/catalog"])
    assert results["meta/catalog"] == b"m"
    snapshot = store.metrics.snapshot()
    # One range for the run, one plain get for the unkeyed name.
    assert snapshot["ranged_get_requests"] == 1
    assert snapshot["get_requests"] == 2


def test_singleton_runs_use_plain_gets():
    client, store, __ = make_client(coalesce=True)
    names = [hashed_object_name(BASE), hashed_object_name(BASE + 50)]
    for name in names:
        store.put(name, b"x")
    client.get_many(names)
    snapshot = store.metrics.snapshot()
    assert snapshot["get_requests"] == 2
    assert snapshot.get("ranged_get_requests", 0) == 0


def test_coalescing_returns_same_data_as_plain_path():
    plain_client, plain_store, __ = make_client(coalesce=False)
    ranged_client, ranged_store, __ = make_client(coalesce=True)
    plain = plain_client.get_many(load_run(plain_store, 20))
    ranged = ranged_client.get_many(load_run(ranged_store, 20))
    assert plain == ranged
    assert (ranged_store.metrics.snapshot()["get_requests"]
            < plain_store.metrics.snapshot()["get_requests"])


def test_ranged_get_charges_one_token_per_range():
    client, store, __ = make_client(coalesce=True)
    names = load_run(store, 16)
    client.get_many(names)
    # One billed request for the whole range (the cost win the paper's
    # request-dominated bill makes interesting).
    assert store.metrics.snapshot()["get_requests"] == 1


def test_coalesced_range_retries_whole_range_on_fault():
    client, store, clock = make_client(coalesce=True)
    names = load_run(store, 8)
    outage_end = clock.now() + 0.02
    store.fault_schedule = FaultSchedule(
        [OutageWindow(start=clock.now(), end=outage_end, ops=("get",))]
    )
    results = client.get_many(names)
    assert all(results[name] is not None for name in names)
    assert client.metrics.snapshot()["get_retries"] >= 1
    # The retry re-issued the whole range: both attempts were ranged.
    assert store.metrics.snapshot()["ranged_get_requests"] >= 2
    assert clock.now() > outage_end  # backed off past the outage window


def test_invisible_keys_fall_back_to_single_get():
    eventual = ConsistencyModel(invisible_probability=1.0,
                                mean_lag_seconds=0.2)
    client, store, clock = make_client(coalesce=True, consistency=eventual)
    names = load_run(store, 4)
    # Immediately after the puts the objects are not yet visible; the
    # ranged get returns None per key and the client falls back to the
    # single-get not-found retry machinery until visibility propagates.
    results = client.get_many(names)
    assert all(results[name] is not None for name in names)
    assert store.metrics.snapshot()["ranged_get_requests"] >= 1
    assert client.metrics.snapshot()["not_found_retries"] >= 1


def test_get_many_off_by_default():
    client, __, __ = make_client(coalesce=False)
    assert client.coalesce_gets is False


def test_coalesce_max_run_validation():
    with pytest.raises(ValueError):
        make_client(coalesce=True, coalesce_max_run=1)
