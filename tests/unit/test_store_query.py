"""Unit tests for the column store loader and query context scans."""

import pytest

from repro.columnar import ColumnStore, ColumnSchema, QueryContext, TableSchema
from repro.columnar.query import ROWID, n_rows
from repro.columnar.schema import SchemaError
from repro.sim.rng import DeterministicRng
from tests.conftest import make_db


def make_table(db, partitions=2, rows=1000, rows_per_page=128):
    store = ColumnStore(db)
    schema = TableSchema(
        "items",
        (
            ColumnSchema("key", "int", hg_index=True),
            ColumnSchema("price", "float"),
            ColumnSchema("tag", "str"),
        ),
        partition_column="key",
        partition_count=partitions,
        rows_per_page=rows_per_page,
    )
    store.create_table(schema)
    rng = DeterministicRng(5, "items")
    data = [
        (i, round(rng.uniform(1, 100), 2), rng.choice(["red", "blue", "green"]))
        for i in range(1, rows + 1)
    ]
    state = store.load("items", data)
    return store, state, data


class TestLoad:
    def test_row_counts_and_partitions(self, db):
        store, state, data = make_table(db, partitions=4)
        assert state.total_rows == 1000
        assert len(state.partition_rows) == 4
        assert all(rows > 0 for rows in state.partition_rows)

    def test_partition_routing_by_range(self, db):
        store, state, __ = make_table(db, partitions=2)
        bound = state.partition_bounds[0]
        with QueryContext(db) as ctx:
            rel = ctx.read("items", ["key"])
        assert sorted(rel["key"]) == list(range(1, 1001))
        # Partition 0 holds keys below the bound only.
        loaded = ctx.table("items")
        assert loaded.partition_rows[0] == sum(
            1 for k in range(1, 1001) if k < bound
        )

    def test_duplicate_table_rejected(self, db):
        store, __, __ = make_table(db)
        with pytest.raises(SchemaError):
            store.create_table(store.schema("items"))

    def test_unknown_table_rejected(self, db):
        store = ColumnStore(db)
        with pytest.raises(SchemaError):
            store.schema("ghost")

    def test_rows_per_page_adapts_to_wide_values(self, db):
        store = ColumnStore(db)
        schema = TableSchema(
            "wide",
            (ColumnSchema("body", "str"),),
            rows_per_page=4096,
        )
        store.create_table(schema)
        rng = DeterministicRng(9)
        data = [("x" * rng.randint(50, 60) + str(i),) for i in range(5000)]
        state = store.load("wide", data)
        # The loader shrank the page fill so encoded pages fit.
        assert state.schema.rows_per_page < 4096
        with QueryContext(db) as ctx:
            rel = ctx.read("wide", ["body"])
        assert len(rel["body"]) == 5000

    def test_empty_load(self, db):
        store = ColumnStore(db)
        schema = TableSchema("empty", (ColumnSchema("a", "int"),))
        store.create_table(schema)
        state = store.load("empty", [])
        assert state.total_rows == 0
        with QueryContext(db) as ctx:
            assert ctx.read("empty", ["a"]) == {"a": []}


class TestScan:
    def test_full_scan(self, db):
        __, __, data = make_table(db)
        with QueryContext(db) as ctx:
            rel = ctx.read("items", ["key", "price"])
        assert len(rel["key"]) == 1000
        assert sorted(rel["key"]) == [row[0] for row in data]

    def test_range_predicate_filters_and_prunes(self, db):
        make_table(db)
        with QueryContext(db) as ctx:
            rel = ctx.read("items", ["key"], {"key": (100, 149)})
        assert sorted(rel["key"]) == list(range(100, 150))

    def test_zone_map_pruning_reduces_page_reads(self, db):
        make_table(db, rows=4000, rows_per_page=128)

        def pages_read(run):
            db.buffer.invalidate_all()
            before = db.buffer.metrics.snapshot()
            with QueryContext(db) as ctx:
                run(ctx)
            after = db.buffer.metrics.snapshot()
            return (
                after.get("misses", 0) + after.get("prefetched", 0)
                - before.get("misses", 0) - before.get("prefetched", 0)
            )

        narrow = pages_read(
            lambda ctx: ctx.read("items", ["key"], {"key": (1, 10)})
        )
        full = pages_read(lambda ctx: ctx.read("items", ["key"]))
        assert narrow < full / 4

    def test_callable_predicate(self, db):
        make_table(db)
        with QueryContext(db) as ctx:
            rel = ctx.read("items", ["key", "tag"],
                           {"tag": lambda t: t == "red"})
        assert all(t == "red" for t in rel["tag"])
        assert 0 < len(rel["key"]) < 1000

    def test_predicate_column_not_in_output(self, db):
        make_table(db)
        with QueryContext(db) as ctx:
            rel = ctx.read("items", ["price"], {"key": (1, 5)})
        assert set(rel) == {"price"}
        assert len(rel["price"]) == 5

    def test_rowids(self, db):
        make_table(db, partitions=1)
        with QueryContext(db) as ctx:
            rel = ctx.read("items", ["key"], {"key": (10, 12)},
                           with_rowids=True)
        assert rel[ROWID] == [9, 10, 11]  # keys are 1-based, rows 0-based

    def test_read_rows_by_rowid(self, db):
        make_table(db, partitions=2)
        with QueryContext(db) as ctx:
            full = ctx.read("items", ["key", "tag"], with_rowids=True)
            wanted = full[ROWID][100:110]
            expected_keys = full["key"][100:110]
            fetched = ctx.read_rows("items", ["key"], sorted(wanted))
        assert sorted(fetched["key"]) == sorted(expected_keys)

    def test_hg_index_matches_scan(self, db):
        make_table(db, partitions=2)
        with QueryContext(db) as ctx:
            index = ctx.hg("items", "key")
            via_index = ctx.read_rows("items", ["key", "price"],
                                      index.lookup(777))
            via_scan = ctx.read("items", ["key", "price"],
                                {"key": (777, 777)})
        assert via_index["key"] == via_scan["key"] == [777]
        assert via_index["price"] == via_scan["price"]

    def test_read_rows_empty(self, db):
        make_table(db)
        with QueryContext(db) as ctx:
            assert ctx.read_rows("items", ["key"], []) == {"key": []}

    def test_context_manager_rolls_back_on_error(self, db):
        make_table(db)
        with pytest.raises(RuntimeError):
            with QueryContext(db) as ctx:
                ctx.read("items", ["key"], {"key": (1, 1)})
                raise RuntimeError("boom")
        # The engine is still usable; the context's txn was rolled back.
        assert not db.txn_manager.active_transactions()
