"""Unit tests for 64-bit locators (block runs vs object keys)."""

import pytest

from repro.storage.locator import (
    MAX_BLOCKS_PER_PAGE,
    NULL_LOCATOR,
    OBJECT_KEY_BASE,
    LocatorError,
    block_range,
    describe_locator,
    is_object_key,
    make_block_locator,
)


def test_object_key_range():
    assert is_object_key(OBJECT_KEY_BASE)
    assert is_object_key((1 << 64) - 1)
    assert not is_object_key(OBJECT_KEY_BASE - 1)
    assert not is_object_key(0)


def test_block_locator_roundtrip():
    for start in (0, 1, 12345, (1 << 48) - 1):
        for nblocks in (1, 7, 16):
            locator = make_block_locator(start, nblocks)
            assert not is_object_key(locator)
            assert block_range(locator) == (start, nblocks)


def test_block_zero_does_not_collide_with_null():
    assert make_block_locator(0, 1) != NULL_LOCATOR


def test_block_number_limit():
    with pytest.raises(LocatorError):
        make_block_locator(1 << 48, 1)
    with pytest.raises(LocatorError):
        make_block_locator(-1, 1)


def test_run_length_limits():
    with pytest.raises(LocatorError):
        make_block_locator(0, 0)
    with pytest.raises(LocatorError):
        make_block_locator(0, MAX_BLOCKS_PER_PAGE + 1)


def test_block_range_rejects_object_keys_and_null():
    with pytest.raises(LocatorError):
        block_range(OBJECT_KEY_BASE + 5)
    with pytest.raises(LocatorError):
        block_range(NULL_LOCATOR)


def test_is_object_key_rejects_out_of_range():
    with pytest.raises(LocatorError):
        is_object_key(1 << 64)
    with pytest.raises(LocatorError):
        is_object_key(-1)


def test_describe():
    assert describe_locator(NULL_LOCATOR) == "<null>"
    assert "object-key:5" == describe_locator(OBJECT_KEY_BASE + 5)
    assert "blocks:3+2" == describe_locator(make_block_locator(3, 2))
