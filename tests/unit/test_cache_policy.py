"""Unit tests for the pluggable OCM eviction policies (DESIGN.md §9)."""

import pytest

from repro.core.cache_policy import (
    Arc2QPolicy,
    LruPolicy,
    make_policy,
)

from tests.unit.test_ocm import make_ocm


# --------------------------------------------------------------------- #
# factory
# --------------------------------------------------------------------- #

def test_factory_builds_known_policies():
    assert isinstance(make_policy("lru", 1024), LruPolicy)
    assert isinstance(make_policy("arc2q", 1024), Arc2QPolicy)


def test_factory_rejects_unknown_policy():
    with pytest.raises(ValueError, match="unknown OCM eviction policy"):
        make_policy("clock-pro", 1024)


# --------------------------------------------------------------------- #
# LRU policy: exact OrderedDict semantics
# --------------------------------------------------------------------- #

def test_lru_eviction_order_is_insertion_order():
    policy = LruPolicy()
    for key in ("a", "b", "c"):
        policy.on_insert(key, 10)
    assert list(policy.eviction_order()) == ["a", "b", "c"]


def test_lru_access_moves_to_mru():
    policy = LruPolicy()
    for key in ("a", "b", "c"):
        policy.on_insert(key, 10)
    policy.on_access("a")
    assert list(policy.eviction_order()) == ["b", "c", "a"]


def test_lru_reinsert_moves_to_mru():
    policy = LruPolicy()
    for key in ("a", "b", "c"):
        policy.on_insert(key, 10)
    policy.on_insert("a", 10)
    assert list(policy.eviction_order()) == ["b", "c", "a"]


def test_lru_ignores_scan_hints():
    hinted = LruPolicy()
    plain = LruPolicy()
    for policy, hint in ((hinted, True), (plain, False)):
        for key in ("a", "b", "c"):
            policy.on_insert(key, 10, scan_hint=hint)
        policy.on_access("a", scan_hint=hint)
    assert list(hinted.eviction_order()) == list(plain.eviction_order())


def test_lru_stats_empty_for_snapshot_compatibility():
    """LRU reports no policy counters: stats snapshots match the seed."""
    policy = LruPolicy()
    policy.on_insert("a", 10)
    assert policy.stats() == {}


# --------------------------------------------------------------------- #
# ARC/2Q policy: segments, ghosts, scan admission
# --------------------------------------------------------------------- #

def test_arc2q_insert_lands_in_probation():
    policy = Arc2QPolicy(10_000)
    policy.on_insert("a", 100)
    assert policy.probation_keys() == ["a"]
    assert policy.protected_keys() == []


def test_arc2q_reaccess_promotes_to_protected():
    policy = Arc2QPolicy(10_000)
    policy.on_insert("a", 100)
    policy.on_access("a")
    assert policy.probation_keys() == []
    assert policy.protected_keys() == ["a"]
    assert policy.stats()["promotions"] == 1.0


def test_arc2q_scan_access_never_promotes():
    policy = Arc2QPolicy(10_000)
    policy.on_insert("a", 100, scan_hint=True)
    policy.on_access("a", scan_hint=True)
    assert policy.probation_keys() == ["a"]
    assert policy.protected_keys() == []
    assert policy.stats()["promotions"] == 0.0
    assert policy.stats()["scan_admissions"] == 1.0


def test_arc2q_eviction_order_drains_probation_first():
    policy = Arc2QPolicy(10_000)
    policy.on_insert("hot", 100)
    policy.on_access("hot")  # protected
    policy.on_insert("cold1", 100)
    policy.on_insert("cold2", 100)
    order = list(policy.eviction_order())
    assert order.index("cold1") < order.index("hot")
    assert order.index("cold2") < order.index("hot")


def test_arc2q_ghost_records_probationary_evictions():
    policy = Arc2QPolicy(10_000)
    policy.on_insert("a", 100)
    policy.on_remove("a", evicted=True)
    assert policy.ghost_keys() == ["a"]
    # Non-eviction removals (rollback, invalidation) leave no ghost.
    policy.on_insert("b", 100)
    policy.on_remove("b", evicted=False)
    assert policy.ghost_keys() == ["a"]


def test_arc2q_ghost_hit_readmits_to_protected():
    policy = Arc2QPolicy(10_000)
    policy.on_insert("a", 100)
    policy.on_remove("a", evicted=True)
    policy.on_insert("a", 100)  # was recently evicted: it deserved caching
    assert policy.protected_keys() == ["a"]
    assert policy.stats()["ghost_hits"] == 1.0


def test_arc2q_scan_refetch_of_ghosted_key_stays_probationary():
    """A repeated bulk scan larger than the cache must not cycle through
    the protected segment via ghost readmissions."""
    policy = Arc2QPolicy(10_000)
    policy.on_insert("a", 100, scan_hint=True)
    policy.on_remove("a", evicted=True)
    policy.on_insert("a", 100, scan_hint=True)  # the next scan pass
    assert policy.probation_keys() == ["a"]
    assert policy.protected_keys() == []
    assert policy.stats()["ghost_hits"] == 0.0
    # The ghost entry is consumed either way; a later non-scan fetch
    # starts the two-touch promotion path from scratch.
    assert policy.ghost_keys() == []


def test_arc2q_ghost_is_bounded_by_capacity():
    policy = Arc2QPolicy(1_000)
    for i in range(50):
        key = f"k{i}"
        policy.on_insert(key, 100)
        policy.on_remove(key, evicted=True)
    remembered = policy.ghost_keys()
    # At 100 bytes each and a 1000-byte budget, only the 10 most recent
    # evictions are remembered.
    assert len(remembered) == 10
    assert remembered[-1] == "k49"
    assert "k0" not in remembered


def test_arc2q_protected_overflow_demotes_to_probation():
    policy = Arc2QPolicy(1_000, protected_fraction=0.5)
    for key in ("a", "b"):
        policy.on_insert(key, 300)
        policy.on_access(key)
    # 600 bytes protected > 500-byte target: the LRU protected entry is
    # demoted back to probation (MRU side).
    assert policy.protected_keys() == ["b"]
    assert policy.probation_keys() == ["a"]
    assert policy.stats()["demotions"] == 1.0


def test_arc2q_accounts_bytes_not_entries():
    policy = Arc2QPolicy(10_000, protected_fraction=0.8)
    policy.on_insert("big", 7_000)
    policy.on_access("big")
    policy.on_insert("small", 100)
    policy.on_access("small")
    # 7100 protected bytes < 8000 target: no demotion despite 2 entries.
    assert set(policy.protected_keys()) == {"big", "small"}


# --------------------------------------------------------------------- #
# OCM-level behaviour
# --------------------------------------------------------------------- #

def _warm_hot_set(ocm, store, count, size):
    for i in range(count):
        store.put(f"hot/{i}", b"h" * size)
    for i in range(count):
        ocm.get(f"hot/{i}")
        ocm.get(f"hot/{i}")  # second touch promotes under arc2q


def _run_scan(ocm, store, count, size):
    for i in range(count):
        store.put(f"scan/{i}", b"s" * size)
    for i in range(count):
        ocm.get(f"scan/{i}", scan_hint=True)


def test_scan_resistance_invariant_arc2q():
    """A full table scan leaves the hot working set resident."""
    ocm, store, __ = make_ocm(capacity=10_000, policy="arc2q")
    _warm_hot_set(ocm, store, count=4, size=1_000)
    _run_scan(ocm, store, count=30, size=1_000)
    for i in range(4):
        assert ocm.cached(f"hot/{i}"), f"scan evicted hot/{i}"
    assert ocm.stats()["policy_scan_admissions"] >= 30


def test_lru_is_not_scan_resistant():
    """Contrast: the paper's LRU lets one scan flush the hot set."""
    ocm, store, __ = make_ocm(capacity=10_000, policy="lru")
    _warm_hot_set(ocm, store, count=4, size=1_000)
    _run_scan(ocm, store, count=30, size=1_000)
    assert not any(ocm.cached(f"hot/{i}") for i in range(4))


def test_insert_after_upload_rule_holds_under_arc2q():
    """Pending write-back entries stay ineligible regardless of policy."""
    ocm, __, __ = make_ocm(capacity=4096, policy="arc2q")
    ocm.put("a/1", b"x" * 3000, txn_id=1, commit_mode=False)
    ocm.client.put("b/2", b"y" * 3000)
    ocm.get("b/2")
    assert ocm.cached("a/1")
    assert not ocm.cached("b/2")
    ocm.flush_for_commit(1)
    ocm.client.put("c/3", b"z" * 3000)
    ocm.get("c/3")
    assert not ocm.cached("a/1")
    assert ocm.cached("c/3")


def test_ocm_stats_expose_policy_counters():
    ocm, store, __ = make_ocm(capacity=10_000, policy="arc2q")
    store.put("a/1", b"x" * 100)
    ocm.get("a/1")
    ocm.get("a/1")
    stats = ocm.stats()
    assert stats["policy_promotions"] == 1.0
    assert "policy_ghost_hits" in stats


def test_lru_ocm_stats_unchanged():
    """Default policy adds no stats keys: seed snapshots stay identical."""
    ocm, store, __ = make_ocm(capacity=10_000)
    store.put("a/1", b"x" * 100)
    ocm.get("a/1")
    assert not any(key.startswith("policy_") for key in ocm.stats())


def test_invalidate_all_clears_policy_state():
    ocm, store, __ = make_ocm(capacity=10_000, policy="arc2q")
    store.put("a/1", b"x" * 100)
    ocm.get("a/1")
    ocm.get("a/1")
    ocm.invalidate_all()
    stats = ocm.stats()
    assert stats["policy_probation_entries"] == 0.0
    assert stats["policy_protected_entries"] == 0.0
