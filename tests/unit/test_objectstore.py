"""Unit tests for object stores: memory, consistency model, S3 simulator."""

import pytest

from repro.costs.meter import CostMeter
from repro.objectstore import (
    ConsistencyModel,
    InMemoryObjectStore,
    NoSuchKeyError,
    SimulatedObjectStore,
    STRONG,
)
from repro.objectstore.consistency import VersionedObject
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng


class TestInMemoryStore:
    def test_put_get_roundtrip(self):
        store = InMemoryObjectStore()
        store.put("a/1", b"hello")
        assert store.get("a/1") == b"hello"

    def test_missing_key_raises(self):
        with pytest.raises(NoSuchKeyError):
            InMemoryObjectStore().get("nope")

    def test_delete_is_idempotent(self):
        store = InMemoryObjectStore()
        store.put("k", b"x")
        store.delete("k")
        store.delete("k")  # no error, mirrors S3
        assert not store.exists("k")

    def test_stored_bytes_tracks_overwrites(self):
        store = InMemoryObjectStore()
        store.put("k", b"12345")
        store.put("k", b"12")
        assert store.stored_bytes() == 2

    def test_list_keys_sorted_with_prefix(self):
        store = InMemoryObjectStore()
        for key in ("b/2", "a/1", "a/3"):
            store.put(key, b"x")
        assert list(store.list_keys("a/")) == ["a/1", "a/3"]

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            InMemoryObjectStore().put("k", "not bytes")  # type: ignore


class TestVersionedObject:
    def test_visibility_ordering(self):
        obj = VersionedObject()
        obj.add_version(1.0, b"v1")
        obj.add_version(3.0, b"v2")
        assert obj.visible_data(0.5) is None
        assert obj.visible_data(1.5) == b"v1"
        assert obj.visible_data(3.5) == b"v2"

    def test_stale_read_detection(self):
        obj = VersionedObject()
        obj.add_version(1.0, b"v1")
        obj.add_version(5.0, b"v2")
        assert obj.is_stale_read(2.0)
        assert not obj.is_stale_read(6.0)

    def test_tombstone(self):
        obj = VersionedObject()
        obj.add_version(1.0, b"v1")
        obj.add_version(2.0, None)
        assert obj.visible_data(1.5) == b"v1"
        assert obj.visible_data(2.5) is None


class TestConsistencyModel:
    def test_strong_never_lags(self):
        rng = DeterministicRng(0)
        assert all(STRONG.sample_lag(rng) == 0.0 for __ in range(100))

    def test_eventual_sometimes_lags(self):
        model = ConsistencyModel(invisible_probability=0.5,
                                 mean_lag_seconds=0.1)
        rng = DeterministicRng(0)
        lags = [model.sample_lag(rng) for __ in range(200)]
        assert any(lag > 0 for lag in lags)
        assert any(lag == 0 for lag in lags)


def make_store(consistency=STRONG, meter=None, **profile_overrides):
    profile = ObjectStoreProfile(
        name="test-s3",
        consistency=consistency,
        transient_failure_probability=0.0,
        latency_jitter=0.0,
        **profile_overrides,
    )
    return SimulatedObjectStore(
        profile, clock=VirtualClock(), rng=DeterministicRng(0), meter=meter
    )


class TestSimulatedStore:
    def test_put_get_advances_clock(self):
        store = make_store()
        store.put("ab/1", b"data")
        after_put = store.clock.now()
        assert after_put > 0
        assert store.get("ab/1") == b"data"
        assert store.clock.now() > after_put

    def test_invisible_object_reports_missing(self):
        model = ConsistencyModel(invisible_probability=1.0,
                                 mean_lag_seconds=10.0)
        store = make_store(consistency=model)
        done = store.put_at("k/1", b"x", 0.0)
        data, __ = store.try_get_at("k/1", done)
        assert data is None
        assert store.metrics.snapshot()["get_misses"] == 1

    def test_eventual_visibility_after_lag(self):
        model = ConsistencyModel(invisible_probability=1.0,
                                 mean_lag_seconds=0.01)
        store = make_store(consistency=model)
        store.put_at("k/1", b"x", 0.0)
        data, __ = store.try_get_at("k/1", 1000.0)
        assert data == b"x"

    def test_overwrite_counted(self):
        store = make_store()
        store.put("k/1", b"a")
        store.put("k/1", b"b")
        assert store.metrics.snapshot()["overwrites"] == 1

    def test_prefix_throttling_delays_requests(self):
        store = make_store(per_prefix_put_rate=10.0)
        last = 0.0
        for i in range(50):
            last = store.put_at("same/%d" % i, b"x", 0.0)
        # 50 puts on one prefix at 10/s: several seconds of throttle.
        assert last > 3.0
        assert store.throttled_requests() > 0

    def test_distinct_prefixes_avoid_throttle(self):
        store = make_store(per_prefix_put_rate=10.0)
        last = 0.0
        for i in range(50):
            last = store.put_at("p%d/k" % i, b"x", 0.0)
        assert last < 1.0

    def test_request_costs_metered(self):
        meter = CostMeter()
        store = make_store(meter=meter)
        store.put("a/1", b"x")
        store.get("a/1")
        assert meter.request_cost("s3") == pytest.approx(
            0.005 / 1000 + 0.0004 / 1000
        )

    def test_delete_makes_object_invisible(self):
        store = make_store()
        store.put("a/1", b"x")
        store.delete("a/1")
        assert not store.exists("a/1")
        assert store.stored_bytes() == 0

    def test_stored_bytes_counts_latest_versions(self):
        store = make_store()
        store.put("a/1", b"12345")
        store.put("a/2", b"123")
        assert store.stored_bytes() == 8

    def test_list_keys_visible_only(self):
        store = make_store()
        store.put("a/1", b"x")
        store.put("b/2", b"y")
        store.delete("b/2")
        assert list(store.list_keys()) == ["a/1"]
