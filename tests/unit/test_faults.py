"""Unit tests for the deterministic fault-schedule framework."""

import pytest

from repro.objectstore import (
    ErrorStorm,
    FaultSchedule,
    LatencySpike,
    OutageWindow,
    RetryingObjectClient,
    RetryPolicy,
    STRONG,
    ThrottleStorm,
    named_schedule,
)
from repro.objectstore.faults import NO_FAULT
from repro.objectstore.s3sim import (
    ObjectStoreProfile,
    SimulatedObjectStore,
    TransientRequestError,
)
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng


def quiet_profile(**overrides):
    fields = dict(
        name="s3",
        consistency=STRONG,
        transient_failure_probability=0.0,
        latency_jitter=0.0,
    )
    fields.update(overrides)
    return ObjectStoreProfile(**fields)


def make_store(schedule=None, seed=11, profile=None):
    return SimulatedObjectStore(
        profile or quiet_profile(),
        clock=VirtualClock(),
        rng=DeterministicRng(seed),
        fault_schedule=schedule,
    )


# --------------------------------------------------------------------- #
# event matching & composition
# --------------------------------------------------------------------- #

def test_event_matches_time_window_half_open():
    event = OutageWindow(1.0, 2.0)
    assert not event.matches("get", "k", None, 0.999)
    assert event.matches("get", "k", None, 1.0)
    assert event.matches("put", "k", None, 1.999)
    assert not event.matches("get", "k", None, 2.0)


def test_event_scoping_by_op_prefix_and_node():
    event = OutageWindow(0.0, 10.0, ops="get", prefix="a/", node="writer-1")
    assert event.matches("get", "a/1", "writer-1", 5.0)
    assert not event.matches("put", "a/1", "writer-1", 5.0)
    assert not event.matches("get", "b/1", "writer-1", 5.0)
    assert not event.matches("get", "a/1", "coordinator", 5.0)
    assert not event.matches("get", "a/1", None, 5.0)


def test_event_validation():
    with pytest.raises(ValueError):
        OutageWindow(5.0, 5.0)
    with pytest.raises(ValueError):
        OutageWindow(0.0, 1.0, ops="frobnicate")
    with pytest.raises(ValueError):
        ErrorStorm(0.0, 1.0, probability=1.5)
    with pytest.raises(ValueError):
        LatencySpike(0.0, 1.0, multiplier=0.0)
    with pytest.raises(ValueError):
        ThrottleStorm(0.0, 1.0, rate_factor=0.0)


def test_decide_composes_overlapping_events():
    schedule = FaultSchedule([
        LatencySpike(0.0, 10.0, multiplier=2.0),
        LatencySpike(0.0, 10.0, multiplier=3.0),
        ErrorStorm(0.0, 10.0, probability=0.1),
        ErrorStorm(0.0, 10.0, probability=0.4),
        ThrottleStorm(0.0, 10.0, rate_factor=0.5),
        ThrottleStorm(0.0, 10.0, rate_factor=0.25),
    ])
    decision = schedule.decide("get", "k", None, 5.0)
    assert decision.latency_multiplier == pytest.approx(6.0)
    assert decision.error_probability == pytest.approx(0.4)
    assert decision.throttle_factor == pytest.approx(0.25)
    assert not decision.outage
    # Outside every window the cheap shared NO_FAULT sentinel comes back.
    assert schedule.decide("get", "k", None, 20.0) is NO_FAULT


def test_schedule_horizon_and_named_schedules():
    storm = named_schedule("storm", start=5.0)
    assert storm.horizon == pytest.approx(45.0)
    assert len(storm.active_events(7.0)) == 1
    assert len(storm.active_events(20.0)) == 3
    with pytest.raises(ValueError):
        named_schedule("no-such-schedule")


# --------------------------------------------------------------------- #
# store integration
# --------------------------------------------------------------------- #

def test_outage_fails_every_matching_request():
    store = make_store(FaultSchedule([OutageWindow(0.0, 10.0)]))
    with pytest.raises(TransientRequestError) as info:
        store.put_at("a/1", b"x", 1.0)
    assert info.value.kind == "outage"
    # After the window the same key writes fine.
    done = store.put_at("a/1", b"x", 10.0)
    assert done > 10.0
    assert store.metrics.snapshot()["fault_outage_failures"] == 1


def test_outage_scoped_to_node_spares_other_nodes():
    store = make_store(FaultSchedule([OutageWindow(0.0, 10.0, node="w1")]))
    with pytest.raises(TransientRequestError):
        store.put_at("a/1", b"x", 1.0, node="w1")
    store.put_at("a/2", b"x", 1.0, node="coordinator")
    store.put_at("a/3", b"x", 1.0)  # untagged requests are spared too


def test_error_storm_is_probabilistic_and_deterministic():
    def run(seed):
        store = make_store(
            FaultSchedule([ErrorStorm(0.0, 100.0, probability=0.5)]),
            seed=seed,
        )
        failures = 0
        now = 0.0
        for i in range(200):
            try:
                now = store.put_at("a/%d" % i, b"x", now)
            except TransientRequestError as error:
                assert error.kind == "storm"
                now = error.failed_at
                failures += 1
        return failures, store.metrics.snapshot()["fault_storm_failures"]

    failures, counted = run(seed=3)
    assert 50 < failures < 150  # ~0.5 of 200
    assert counted == failures
    assert run(seed=3) == (failures, counted)  # bit-identical replay
    assert run(seed=4)[0] != failures  # a different seed reshuffles


def test_latency_spike_slows_requests():
    plain = make_store()
    spiked = make_store(FaultSchedule([LatencySpike(0.0, 10.0, multiplier=8.0)]))
    __, base = plain.try_get_at("a/1", 0.0)
    __, slow = spiked.try_get_at("a/1", 0.0)
    assert slow == pytest.approx(base * 8.0)
    assert spiked.metrics.snapshot()["fault_latency_spikes"] == 1


def test_throttle_storm_cuts_per_prefix_rate():
    profile = quiet_profile(per_prefix_get_rate=100.0)
    plain = make_store(profile=profile)
    throttled = make_store(
        FaultSchedule([ThrottleStorm(0.0, 1000.0, rate_factor=0.1)]),
        profile=profile,
    )
    def drain(store):
        done = 0.0
        for i in range(300):
            __, finished = store.try_get_at("hot/%d" % i, 0.0)
            done = max(done, finished)
        return done
    # 300 requests at 100/s burst-100: ~2 s normally, ~10x under the clamp.
    assert drain(throttled) > 5.0 * drain(plain)
    assert throttled.metrics.snapshot()["fault_throttled_requests"] == 300


def test_schedule_attachment_does_not_perturb_unrelated_rng_draws():
    """A schedule that never fires must leave the run bit-identical."""
    def timeline(schedule):
        store = make_store(
            schedule,
            profile=quiet_profile(latency_jitter=0.1),
        )
        times = []
        now = 0.0
        for i in range(20):
            now = store.put_at("a/%d" % i, b"payload", now)
            times.append(now)
        return times

    quiet = FaultSchedule([OutageWindow(1e6, 2e6)])  # far in the future
    assert timeline(None) == timeline(quiet)


def test_retrying_client_rides_out_outage_ending_mid_backoff():
    store = make_store(FaultSchedule([OutageWindow(0.0, 0.5)]))
    client = RetryingObjectClient(
        store,
        policy=RetryPolicy(max_attempts=12, initial_backoff=0.05,
                           backoff_multiplier=2.0, max_backoff=0.4),
    )
    done = client.put_at("a/1", b"x", 0.0)
    assert done > 0.5  # the successful attempt landed after the window
    assert client.metrics.snapshot()["put_retries"] >= 1
    data, __ = client.get_at("a/1", done)
    assert data == b"x"
