"""Unit tests for region failover, the region auditor and the DR drill."""

import pytest

from repro.bench.crash_explorer import (
    FAILOVER_REGIONS,
    base_config,
    failover_overrides,
    run_episode,
    run_failover_episode,
)
from repro.bench.dr import DrillConfig, run_dr_drill
from repro.core.audit import StoreAuditor
from repro.core.multiplex import Multiplex, MultiplexConfig, MultiplexError
from repro.engine import Database


def make_mux(seed=0):
    return Multiplex(base_config(seed, failover_overrides()), MultiplexConfig(
        writers=1,
        secondary_buffer_bytes=16 * 1024,
        secondary_ocm_bytes=4 * 1024 * 1024,
    ))


def commit_pages(node, obj, tag, pages=3):
    staged = {}
    txn = node.begin()
    for p in range(pages):
        data = f"{tag}:{p}".encode().ljust(64, b".")
        node.write_page(txn, obj, p, data)
        staged[p] = data
    node.commit(txn)
    return staged


# --------------------------------------------------------------------- #
# multiplex region operations
# --------------------------------------------------------------------- #

def test_region_operations_require_replication():
    mux = Multiplex(base_config(0), MultiplexConfig(writers=1))
    with pytest.raises(MultiplexError):
        mux.region_failover()
    with pytest.raises(MultiplexError):
        mux.inject_region_outage("region-a", (0.0, 10.0))


def test_inject_region_outage_validates_region():
    mux = make_mux()
    with pytest.raises(MultiplexError):
        mux.inject_region_outage("nowhere", (0.0, 10.0))


def test_failover_auto_picks_live_secondary():
    mux = make_mux()
    store = mux.coordinator.object_store
    now = mux.clock.now()
    mux.inject_region_outage(FAILOVER_REGIONS[0], (now, now + 30.0))
    mux.clock.advance(0.001)
    new_primary = mux.region_failover()
    assert new_primary == FAILOVER_REGIONS[1]
    assert store.primary_region == FAILOVER_REGIONS[1]
    assert mux.coordinator.metrics.counter("region_failovers").value == 1


def test_failover_fails_without_live_secondary():
    mux = make_mux()
    now = mux.clock.now()
    for region in FAILOVER_REGIONS:
        mux.inject_region_outage(region, (now, now + 30.0))
    mux.clock.advance(0.001)
    with pytest.raises(MultiplexError):
        mux.region_failover()


def test_committed_data_survives_failover():
    mux = make_mux()
    coordinator = mux.coordinator
    writer = mux.node("writer-1")
    coordinator.create_object("t0")
    staged = commit_pages(writer, "t0", "gen0")
    now = mux.clock.now()
    mux.inject_region_outage(FAILOVER_REGIONS[0], (now, now + 120.0))
    mux.clock.advance(0.001)
    mux.region_failover()
    # Cold-cache reads on the new primary return every acknowledged page.
    coordinator.node.invalidate_caches()
    if coordinator.ocm is not None:
        coordinator.ocm.invalidate_all()
    txn = coordinator.begin()
    for p, data in staged.items():
        assert coordinator.read_page(txn, "t0", p) == data
    coordinator.rollback(txn)


# --------------------------------------------------------------------- #
# the region auditor
# --------------------------------------------------------------------- #

def test_audit_reports_every_region():
    db = Database(base_config(0, failover_overrides()))
    db.create_object("t0")
    txn = db.begin()
    for p in range(3):
        db.write_page(txn, "t0", p, b"page".ljust(64, b"."))
    db.commit(txn)
    store = db.object_store
    db.clock.advance(store.config.staleness_horizon + 1.0)
    report = StoreAuditor(db).audit()
    assert report.regions_audited == [FAILOVER_REGIONS[1]]
    assert report.region_missing == []
    assert report.region_leaked == []
    assert report.region_divergent == []
    assert report.staleness_violations == []
    assert report.ok()
    payload = report.to_dict()
    for key in ("regions_audited", "region_missing", "region_leaked",
                "region_divergent", "region_pending",
                "staleness_violations"):
        assert key in payload


def test_audit_counts_benign_pending_replication():
    db = Database(base_config(0, failover_overrides()))
    db.create_object("t0")
    txn = db.begin()
    for p in range(3):
        db.write_page(txn, "t0", p, b"page".ljust(64, b"."))
    db.commit(txn)
    store = db.object_store
    if store.pending_count() == 0:
        pytest.skip("replication converged before the audit could run")
    report = StoreAuditor(db).audit()
    # In-flight replication is not data loss: queued writes show up as
    # pending, never as region-MISSING, and the report stays clean.
    assert report.region_pending == store.pending_count()
    assert report.region_missing == []
    assert report.ok()


def test_audit_flags_region_divergence():
    db = Database(base_config(0, failover_overrides()))
    db.create_object("t0")
    txn = db.begin()
    for p in range(3):
        db.write_page(txn, "t0", p, b"page".ljust(64, b"."))
    db.commit(txn)
    store = db.object_store
    db.clock.advance(store.config.staleness_horizon + 1.0)
    store.pump(db.clock.now())
    # Corrupt one replicated object in the secondary region only.
    secondary = store.store_for(FAILOVER_REGIONS[1])
    name = next(
        key for key in secondary.all_keys()
        if secondary.latest_data(key) is not None
    )
    versioned = secondary._objects[name]
    versioned.add_version(
        db.clock.now(), b"corrupted", op_time=db.clock.now()
    )
    report = StoreAuditor(db).audit()
    assert (FAILOVER_REGIONS[1], ) == tuple(
        region for region, _ in report.region_divergent
    )
    assert not report.ok()


# --------------------------------------------------------------------- #
# failover episodes & the DR drill
# --------------------------------------------------------------------- #

def test_failover_episode_clean_without_crashes():
    result = run_failover_episode(None, seed=0)
    assert result.ok, result.violations
    assert result.mode == "failover"
    assert result.report is not None
    assert result.report.regions_audited


def test_failover_episode_survives_mid_promotion_crash():
    result = run_episode("replication.promote.mid_drain", seed=0)
    assert result.mode == "failover"
    assert result.fired >= 1
    assert result.ok, result.violations


def test_dr_drill_measures_rto_and_rpo():
    result = run_dr_drill(DrillConfig(mean_lag_seconds=0.2))
    assert result.ok, result.violations
    assert result.failover_region == "region-b"
    assert result.rto_seconds > 0.0
    assert result.rpo_acknowledged_seconds == 0.0
    assert result.max_observed_lag_seconds <= result.rpo_bound_seconds
    assert result.audit_ok and result.restore_ok
    payload = result.to_dict()
    assert payload["ok"] is True
    assert payload["rto_seconds"] == pytest.approx(result.rto_seconds)
