"""Unit tests for hashed object naming (prefix randomization)."""

import pytest

from repro.storage.keys import hashed_object_name, object_key_from_name
from repro.storage.locator import OBJECT_KEY_BASE


def test_name_roundtrip():
    key = OBJECT_KEY_BASE + 123456
    name = hashed_object_name(key)
    assert object_key_from_name(name) == key


def test_names_have_hashed_prefixes():
    names = [hashed_object_name(OBJECT_KEY_BASE + i) for i in range(1000)]
    prefixes = {name.split("/")[0] for name in names}
    # Sequential keys spread over many prefixes — the S3 request-rate trick.
    assert len(prefixes) > 500


def test_consecutive_keys_get_different_prefixes():
    a = hashed_object_name(OBJECT_KEY_BASE + 1)
    b = hashed_object_name(OBJECT_KEY_BASE + 2)
    assert a.split("/")[0] != b.split("/")[0]


def test_prefix_bits_zero_uses_shared_prefix():
    name = hashed_object_name(OBJECT_KEY_BASE + 9, prefix_bits=0)
    assert name.startswith("pages/")


def test_prefix_bit_count_controls_cardinality():
    names = {
        hashed_object_name(OBJECT_KEY_BASE + i, prefix_bits=4).split("/")[0]
        for i in range(1000)
    }
    assert len(names) <= 16


def test_deterministic():
    key = OBJECT_KEY_BASE + 42
    assert hashed_object_name(key) == hashed_object_name(key)


def test_rejects_non_object_keys():
    with pytest.raises(ValueError):
        hashed_object_name(123)
    with pytest.raises(ValueError):
        hashed_object_name(OBJECT_KEY_BASE, prefix_bits=64)


def test_from_name_validates():
    with pytest.raises(ValueError):
        object_key_from_name("aa/0000000000000001")  # below 2^63
