"""Observability of the crash/recovery/audit paths: spans and metrics."""

import pytest

from repro.core.audit import StoreAuditor
from repro.sim.crashpoints import CRASH_POINTS, SimulatedCrash
from tests.conftest import make_db


@pytest.fixture(autouse=True)
def _disarm():
    yield
    CRASH_POINTS.disarm_all()


def span_keys(db):
    return {(span.name, span.layer) for span in db.tracer.all_spans()}


def test_restart_emits_recovery_spans_and_poll_metric():
    db = make_db(system_volume_size_bytes=32 * 1024 * 1024,
                 tracing_enabled=True)
    db.create_object("t")
    txn = db.begin()
    db.write_page(txn, "t", 0, b"payload")
    db.commit(txn)
    db.crash()
    db.restart()
    keys = span_keys(db)
    assert ("replay", "recovery") in keys
    assert ("restart_gc", "recovery") in keys
    assert "restart_gc_polled_keys" in db.metrics.snapshot()


def test_audit_emits_fsck_span_and_gauges():
    db = make_db(tracing_enabled=True)
    db.create_object("t")
    txn = db.begin()
    db.write_page(txn, "t", 0, b"payload")
    db.commit(txn)
    StoreAuditor(db).audit()
    assert ("fsck", "audit") in span_keys(db)
    counters = db.metrics.snapshot()
    assert counters["fsck_runs"] == 1
    assert counters["fsck_leaked"] == 0
    assert counters["fsck_missing"] == 0


def test_fired_crash_point_counts_in_registry_metrics():
    db = make_db(system_volume_size_bytes=32 * 1024 * 1024)
    db.create_object("t")
    before = CRASH_POINTS.metrics.snapshot().get("crashpoints_fired", 0)
    CRASH_POINTS.arm("txn.commit.before_log")
    txn = db.begin()
    db.write_page(txn, "t", 0, b"payload")
    with pytest.raises(SimulatedCrash) as exc:
        db.commit(txn)
    db.crash_from(exc.value)
    after = CRASH_POINTS.metrics.snapshot()
    assert after["crashpoints_fired"] == before + 1
    assert after["crashpoint_fired:txn.commit.before_log"] >= 1
    assert db.last_crash_point == "txn.commit.before_log"
    db.restart()
