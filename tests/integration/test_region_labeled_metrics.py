"""End-to-end checks for per-region labeled metric families.

Since replication landed, the resilient client records GET latencies under
``get_latency:{region}`` when fronting a :class:`ReplicatedObjectStore`
and under plain ``get_latency`` otherwise.  The chaos report used to read
only the unlabeled name, silently printing p99 = 0.0 for every replicated
run; these tests pin the aggregation fix from both ends — the raw
registry and the rendered report.
"""

import pytest

from repro.cli import run_chaos_scenario
from repro.sim.metrics import labeled_histograms, merged_histogram


@pytest.fixture(scope="module")
def replicated_result():
    return run_chaos_scenario("storm", seed=0, regions=2)


@pytest.fixture(scope="module")
def single_region_result():
    return run_chaos_scenario("storm", seed=0, regions=1)


class TestReplicatedChaosReport:
    def test_p99_is_nonzero(self, replicated_result):
        assert replicated_result["p99_get_latency"] > 0.0

    def test_per_region_tails_reported(self, replicated_result):
        by_region = replicated_result["p99_get_latency_by_region"]
        assert by_region  # at least the primary served GETs
        assert "(unlabeled)" not in by_region
        for region, p99 in by_region.items():
            assert region.startswith(("us-", "eu-", "ap-", "sa-"))
            assert p99 > 0.0

    def test_aggregate_covers_per_region_tails(self, replicated_result):
        by_region = replicated_result["p99_get_latency_by_region"]
        # The union's p99 cannot exceed the largest per-family p99 and
        # must be positive whenever any family has observations.
        assert replicated_result["p99_get_latency"] <= max(
            by_region.values()
        ) + 1e-12

    def test_durability_still_holds_replicated(self, replicated_result):
        assert replicated_result["mismatches"] == 0
        assert replicated_result["commits_ok"] > 0
        assert replicated_result["regions"] == 2


class TestSingleRegionUnchanged:
    def test_p99_matches_unlabeled_histogram(self, single_region_result):
        assert single_region_result["p99_get_latency"] > 0.0
        by_region = single_region_result["p99_get_latency_by_region"]
        assert list(by_region) == ["(unlabeled)"]
        assert by_region["(unlabeled)"] == pytest.approx(
            single_region_result["p99_get_latency"]
        )


class TestAggregationAgainstRawRegistry:
    """The report's aggregate must equal the union of the labeled family
    recomputed straight from a live client registry."""

    def test_merged_equals_union_of_labels(self):
        from repro.engine import Database, DatabaseConfig
        from repro.objectstore.replicated import ReplicationConfig

        db = Database(DatabaseConfig(
            seed=3,
            buffer_capacity_bytes=8 << 20,
            ocm_capacity_bytes=32 << 20,
            page_size=16 * 1024,
            replication=ReplicationConfig(),
        ))
        db.create_object("t")
        txn = db.begin()
        for page in range(8):
            db.write_page(txn, "t", page, b"payload-%d" % page)
        db.commit(txn)
        db.buffer.invalidate_all()
        if db.ocm is not None:
            db.ocm.drain_all()
            db.ocm.invalidate_all()
        reader = db.begin()
        for page in range(8):
            db.read_page(reader, "t", page)
        db.commit(reader)

        registry = db.object_client.metrics
        family = labeled_histograms(registry, "get_latency")
        labeled = {label: h for label, h in family.items() if label}
        assert labeled, "replicated client must label its GET histograms"
        all_values = sorted(
            value
            for histogram in family.values()
            for value in histogram.values
        )
        merged = merged_histogram(registry, "get_latency")
        assert sorted(merged.values) == all_values
        assert merged.count == len(all_values) > 0
        assert merged.percentile(99.0) > 0.0
        # The unlabeled name alone misses every replicated observation —
        # the original bug this PR fixes.
        assert registry.histogram("get_latency").count == 0
