"""Integration tests: the full TPC-H pipeline over the storage stack."""

import pytest

from repro.columnar import ColumnStore, QueryContext
from repro.columnar.query import n_rows
from repro.tpch import load_tpch, power_run, run_query
from repro.tpch.runner import throughput_streams
from tests.conftest import make_db

MIB = 1024 * 1024
SF = 0.002


def test_load_row_counts(tiny_tpch):
    __, __, states = tiny_tpch
    generatorless_expectations = {
        "region": 5,
        "nation": 25,
    }
    for table, expected in generatorless_expectations.items():
        assert states[table].total_rows == expected
    assert states["orders"].total_rows == int(1_500_000 * SF)
    assert states["lineitem"].total_rows >= states["orders"].total_rows


def test_loaded_data_is_compressed(tiny_tpch):
    database, __, states = tiny_tpch
    # Rough raw size: lineitem alone at ~120 bytes/row.
    raw_estimate = states["lineitem"].total_rows * 120
    assert database.user_data_bytes() < raw_estimate


def test_power_run_small_subset():
    db = make_db(buffer_capacity_bytes=4 * MIB, ocm_capacity_bytes=16 * MIB)
    store = ColumnStore(db)
    load_tpch(store, SF, partitions=2, rows_per_page=512)
    times = power_run(db, SF, query_numbers=[1, 6])
    assert times[1] > 0 and times[6] > 0
    # Q1 scans 7 lineitem columns, Q6 four with a tight date range:
    # Q6 must be cheaper.
    assert times[6] < times[1]


def test_queries_survive_cache_pressure():
    """Results identical whether data fits in RAM or constantly evicts."""
    roomy = make_db(buffer_capacity_bytes=64 * MIB,
                    ocm_capacity_bytes=128 * MIB)
    load_tpch(ColumnStore(roomy), SF, partitions=2, rows_per_page=512)
    with QueryContext(roomy) as ctx:
        expected = run_query(ctx, 5, SF)

    tight = make_db(buffer_capacity_bytes=1 * MIB,
                    ocm_capacity_bytes=2 * MIB)
    load_tpch(ColumnStore(tight), SF, partitions=2, rows_per_page=512)
    with QueryContext(tight) as ctx:
        got = run_query(ctx, 5, SF)
    assert got == expected


def test_queries_after_crash_recovery():
    db = make_db(buffer_capacity_bytes=8 * MIB)
    load_tpch(ColumnStore(db), SF, partitions=2, rows_per_page=512)
    with QueryContext(db) as ctx:
        before = run_query(ctx, 6, SF)
    db.crash()
    db.restart()
    with QueryContext(db) as ctx:
        after = run_query(ctx, 6, SF)
    assert before == after


def test_throughput_streams_balance():
    sessions = []
    for __ in range(2):
        db = make_db(buffer_capacity_bytes=8 * MIB)
        load_tpch(ColumnStore(db), 0.001, partitions=2, rows_per_page=512)
        sessions.append(db)
    total, per_node = throughput_streams(sessions, 0.001, n_streams=4)
    assert len(per_node) == 2
    assert total == max(per_node)
    assert all(t > 0 for t in per_node)


def test_tpch_on_block_volume_matches_cloud():
    cloud = make_db(buffer_capacity_bytes=8 * MIB)
    load_tpch(ColumnStore(cloud), 0.001, partitions=2, rows_per_page=512)
    with QueryContext(cloud) as ctx:
        cloud_result = run_query(ctx, 1, 0.001)

    block = make_db(user_volume="ebs", buffer_capacity_bytes=8 * MIB)
    load_tpch(ColumnStore(block), 0.001, partitions=2, rows_per_page=512)
    with QueryContext(block) as ctx:
        block_result = run_query(ctx, 1, 0.001)
    assert cloud_result == block_result
