"""Integration tests: end-to-end crash recovery flows on one node."""

import pytest

from tests.conftest import make_db


def write_and_commit(db, name, pages, payload):
    txn = db.begin()
    for page in pages:
        db.write_page(txn, name, page, payload + b"-%d" % page)
    db.commit(txn)


def test_repeated_crashes_keep_data_intact():
    db = make_db()
    db.create_object("t")
    for generation in range(4):
        write_and_commit(db, "t", range(8), b"gen%d" % generation)
        db.crash()
        db.restart()
        check = db.begin()
        for page in range(8):
            assert db.read_page(check, "t", page).startswith(
                b"gen%d" % generation
            )
        db.commit(check)


def test_recovery_without_intermediate_checkpoint():
    db = make_db()
    db.create_object("t")
    for generation in range(3):
        write_and_commit(db, "t", [0], b"g%d" % generation)
    # No checkpoint since __init__: recovery replays the whole log.
    db.crash()
    db.restart()
    check = db.begin()
    assert db.read_page(check, "t", 0).startswith(b"g2")
    db.commit(check)


def test_recovery_after_checkpoint_and_more_commits():
    db = make_db()
    db.create_object("t")
    write_and_commit(db, "t", [0], b"before-cp")
    db.checkpoint()
    write_and_commit(db, "t", [0], b"after-cp")
    db.crash()
    db.restart()
    check = db.begin()
    assert db.read_page(check, "t", 0).startswith(b"after-cp")
    db.commit(check)


def test_key_monotonicity_across_crash():
    """After recovery, new keys continue above everything allocated."""
    db = make_db()
    db.create_object("t")
    write_and_commit(db, "t", range(3), b"x")
    max_before = db.keygen.max_allocated_key
    db.crash()
    db.restart()
    write_and_commit(db, "t", range(3), b"y")
    assert db.key_cache.last_consumed > max_before


def test_ebs_freelist_recovered():
    db = make_db(user_volume="ebs")
    db.create_object("t")
    write_and_commit(db, "t", range(6), b"block-data")
    used_before = db.user_dbspace.freelist.used_blocks
    db.crash()
    db.restart()
    assert db.user_dbspace.freelist.used_blocks == used_before
    check = db.begin()
    assert db.read_page(check, "t", 3).startswith(b"block-data")
    db.commit(check)
    # Further writes still allocate without clashing.
    write_and_commit(db, "t", range(6), b"more-data")
    check = db.begin()
    assert db.read_page(check, "t", 3).startswith(b"more-data")
    db.commit(check)


def test_crash_during_uncommitted_txn_leaves_no_garbage_after_restart():
    db = make_db()
    db.create_object("t")
    write_and_commit(db, "t", range(4), b"durable")
    committed_objects = db.object_store.object_count()
    doomed = db.begin()
    for page in range(4, 10):
        db.write_page(doomed, "t", page, b"doomed-%d" % page)
    db.buffer.flush_txn(doomed.txn_id, commit_mode=False)
    if db.ocm is not None:
        db.ocm.drain_all()
    assert db.object_store.object_count() > committed_objects
    db.crash()
    db.restart()
    assert db.object_store.object_count() == committed_objects


def test_gc_of_old_versions_completes_after_recovery():
    db = make_db()
    db.create_object("t")
    write_and_commit(db, "t", range(4), b"v1")
    pin = db.begin()
    db.read_page(pin, "t", 0)
    write_and_commit(db, "t", range(4), b"v2")
    # Old version pinned; chain entry pending.
    assert db.txn_manager.chain_length() >= 1
    db.checkpoint()
    db.crash()  # the pinning reader dies with the node
    db.restart()
    # After recovery no reader pins the old version; GC may proceed.
    deleted_before = db.txn_manager.stats["gc_pages_deleted"]
    db.txn_manager.collect_garbage()
    assert db.txn_manager.chain_length() == 0
    check = db.begin()
    for page in range(4):
        assert db.read_page(check, "t", page).startswith(b"v2")
    db.commit(check)
