"""Scalar vs vectorized executor: identical answers on all 22 queries.

The vectorized executor is a performance feature, not a semantics
feature: at SF 0.01 every TPC-H query must produce exactly the same
relation — same columns, same rows, same order, same float bits — in
both modes, on one loaded engine.  Also pins the model-level behaviour
that rides along: decoded-batch cache hits, morsel accounting, and
simulated query time shrinking with vCPUs.
"""

from __future__ import annotations

import pytest

from repro.columnar import vec
from repro.columnar.query import QueryContext
from repro.tpch.queries import QUERIES, run_query
from repro.tpch.runner import power_run

pytest.importorskip("numpy")

SCALE_FACTOR = 0.01


@pytest.fixture(scope="module")
def engine():
    from repro.bench.configs import load_engine

    db, store, __ = load_engine("m5ad.24xlarge", "s3",
                                scale_factor=SCALE_FACTOR)
    return db


def _normalize(rel):
    return {column: vec.to_list(values) for column, values in rel.items()}


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_query_results_identical(engine, number):
    with QueryContext(engine, vectorized=False) as ctx:
        scalar = _normalize(run_query(ctx, number, SCALE_FACTOR))
    with QueryContext(engine, vectorized=True) as ctx:
        vectorized = _normalize(run_query(ctx, number, SCALE_FACTOR))
    assert set(scalar) == set(vectorized)
    for column in scalar:
        assert scalar[column] == vectorized[column], (
            f"Q{number} column {column!r} diverges"
        )


def test_decoded_cache_serves_repeat_scans(engine):
    with QueryContext(engine, vectorized=True) as ctx:
        run_query(ctx, 6, SCALE_FACTOR)
    cache = engine._decoded_batches
    before = cache.hits
    with QueryContext(engine, vectorized=True) as ctx:
        run_query(ctx, 6, SCALE_FACTOR)
    assert cache.hits > before  # second scan reuses decoded batches
    assert engine.metrics.counter("decoded_cache_hits").value == cache.hits


def test_morsel_accounting_is_populated(engine):
    with QueryContext(engine, vectorized=True) as ctx:
        run_query(ctx, 1, SCALE_FACTOR)
    scheduler = engine._morsel_scheduler
    assert scheduler.morsels_dispatched > 0
    assert scheduler.waves_run > 0
    assert engine.metrics.counter("morsels_dispatched").value == \
        scheduler.morsels_dispatched


def test_simulated_time_shrinks_with_vcpus(engine):
    """The Figure 7 scale-up story: more vCPUs, faster vectorized queries."""
    original = engine.cpu.vcpus
    try:
        times = {}
        for vcpus in (1, 8, 16):
            engine.cpu.vcpus = vcpus
            per_query = power_run(engine, SCALE_FACTOR,
                                  query_numbers=[1, 3, 6], vectorized=True)
            times[vcpus] = sum(per_query.values())
        assert times[1] > times[8] > times[16]
    finally:
        engine.cpu.vcpus = original


def test_scalar_path_never_touches_vectorized_state():
    """A scalar-mode engine must not grow morsel or batch-cache state."""
    from repro.bench.configs import load_engine

    db, __, ___ = load_engine("m5ad.24xlarge", "s3", scale_factor=0.002)
    power_run(db, 0.002, query_numbers=[1, 6])
    assert getattr(db, "_morsel_scheduler", None) is None
    assert getattr(db, "_decoded_batches", None) is None
