"""Integration tests for the multi-tenant load harness (DESIGN.md §13)."""

import json

import pytest

from repro.bench.load import (
    DEFAULT_TENANTS,
    LoadConfig,
    LoadHarness,
    SUMMARY_SCHEMA,
    TenantSpec,
    run_load,
)
from repro.core.autoscale import AutoscaleConfig

SMALL = dict(sessions=40, seed=0, scale_factor=0.002, arrival_rate=20.0)
# Multi-node and autoscale runs use a hotter, smaller shape so scale
# events actually fire within a few virtual seconds.
MULTI = dict(sessions=24, seed=0, scale_factor=0.001, arrival_rate=30.0,
             stages=2, admission_limit=4)
SCALED = dict(sessions=60, seed=0, scale_factor=0.001, arrival_rate=60.0,
              stages=3, admission_limit=3)


@pytest.fixture(scope="module")
def small_summary():
    return run_load(LoadConfig(**SMALL))


class TestDeterminism:
    def test_two_runs_byte_identical(self, small_summary):
        again = run_load(LoadConfig(**SMALL))
        assert (
            json.dumps(again, sort_keys=True)
            == json.dumps(small_summary, sort_keys=True)
        )

    def test_seed_changes_the_run(self, small_summary):
        other = run_load(LoadConfig(**dict(SMALL, seed=1)))
        assert (
            json.dumps(other, sort_keys=True)
            != json.dumps(small_summary, sort_keys=True)
        )

    def test_summary_is_json_serializable(self, small_summary):
        assert json.loads(json.dumps(small_summary)) == json.loads(
            json.dumps(small_summary)
        )


class TestSummarySchema:
    def test_schema_and_top_level_keys(self, small_summary):
        assert small_summary["schema"] == SUMMARY_SCHEMA
        for key in ("config", "clock_seconds", "ops", "tenants",
                    "saturation", "admission", "scheduler"):
            assert key in small_summary

    def test_every_tenant_reports_tails_and_slo(self, small_summary):
        for spec in DEFAULT_TENANTS:
            tenant = small_summary["tenants"][spec.name]
            tail = tenant["latency_seconds"]
            for key in ("mean", "p50", "p95", "p99", "max"):
                assert key in tail
            assert tail["p50"] <= tail["p95"] <= tail["p99"] <= tail["max"]
            assert tenant["slo_seconds"] == spec.slo_seconds
            if tenant["ops"]:
                assert 0.0 <= tenant["slo_attainment"] <= 1.0

    def test_saturation_curve_covers_every_stage(self, small_summary):
        stages = small_summary["saturation"]
        assert [point["stage"] for point in stages] == [1, 2, 3]
        for index, point in enumerate(stages):
            assert point["offered_sessions_per_second"] == pytest.approx(
                20.0 * (index + 1)
            )
            window = point["arrival_window_seconds"]
            assert window[0] < window[1]
        # Ramp stages abut: stage s+1 starts where stage s ended.
        for previous, current in zip(stages, stages[1:]):
            assert previous["arrival_window_seconds"][1] == pytest.approx(
                current["arrival_window_seconds"][0]
            )

    def test_all_sessions_finish_and_ops_add_up(self, small_summary):
        assert small_summary["scheduler"]["sessions"] == SMALL["sessions"]
        per_tenant_ops = sum(
            tenant["ops"] for tenant in small_summary["tenants"].values()
        )
        counted = (
            small_summary["ops"]["completed"]
            + small_summary["ops"]["failed"]
        )
        assert per_tenant_ops == counted
        assert small_summary["ops"]["failed"] == 0


class TestProfiles:
    def test_closed_loop_single_stage_all_at_zero(self):
        summary = run_load(LoadConfig(
            sessions=12, seed=0, profile="closed", scale_factor=0.002,
        ))
        assert len(summary["saturation"]) == 1
        point = summary["saturation"][0]
        assert point["sessions"] == 12
        assert point["offered_sessions_per_second"] is None
        assert point["arrival_window_seconds"] == [0.0, 0.0]

    def test_bursty_profile_runs_and_differs_from_poisson(self):
        poisson = run_load(LoadConfig(**SMALL))
        bursty = run_load(LoadConfig(**dict(SMALL, profile="bursty")))
        assert bursty["config"]["profile"] == "bursty"
        assert (
            json.dumps(bursty, sort_keys=True)
            != json.dumps(poisson, sort_keys=True)
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadConfig(sessions=0)
        with pytest.raises(ValueError):
            LoadConfig(profile="warp")
        with pytest.raises(ValueError):
            LoadConfig(arrival_rate=0.0)
        with pytest.raises(ValueError):
            LoadConfig(tenants=(
                TenantSpec("only", 0.5, "lookup", 0.1, 1, 1.0),
            ))
        with pytest.raises(ValueError):
            TenantSpec("bad", 1.0, "teleport", 0.1, 1, 1.0)


class TestAdmissionControl:
    def test_limit_queues_and_stays_fair(self):
        summary = run_load(LoadConfig(
            **dict(SMALL, sessions=30, admission_limit=2)
        ))
        admission = summary["admission"]
        assert admission is not None
        assert admission["limit"] == 2
        assert admission["waits"] > 0
        assert admission["wait_seconds"]["p95"] > 0.0
        # Fairness: with a limit this tight every tenant class queues —
        # round-robin grants keep any one class from absorbing all slots.
        waits_by_tenant = admission["waits_by_tenant"]
        queuing = [name for name, count in waits_by_tenant.items()
                   if count > 0]
        assert len(queuing) >= 2

    def test_admitted_run_completes_same_ops(self):
        free = run_load(LoadConfig(**dict(SMALL, sessions=30)))
        gated = run_load(LoadConfig(
            **dict(SMALL, sessions=30, admission_limit=2)
        ))
        assert (
            gated["ops"]["completed"] + gated["ops"]["failed"]
            == free["ops"]["completed"] + free["ops"]["failed"]
        )

    def test_no_admission_block_reports_null(self, small_summary):
        assert small_summary["admission"] is None


class TestContention:
    def test_more_sessions_do_not_speed_up_tails(self):
        """Shared Pipe/TokenBucket/CPU models are the contention story:
        a heavier arrival wave must not make p99 better than a light one
        by more than noise (it should generally make it worse)."""
        light = run_load(LoadConfig(
            sessions=10, seed=0, profile="closed", scale_factor=0.002,
        ))
        heavy = run_load(LoadConfig(
            sessions=60, seed=0, profile="closed", scale_factor=0.002,
        ))
        light_p99 = light["tenants"]["lookup"]["latency_seconds"]["p99"]
        heavy_p99 = heavy["tenants"]["lookup"]["latency_seconds"]["p99"]
        assert heavy_p99 >= light_p99

    def test_wall_time_stays_bounded(self):
        harness = LoadHarness(LoadConfig(**SMALL))
        harness.run()
        assert harness.wall_seconds < 60.0


class TestMultiNodeRouting:
    @pytest.fixture(scope="class")
    def static_two(self):
        return run_load(LoadConfig(**MULTI, nodes=2))

    def test_single_node_reports_no_routing(self, small_summary):
        assert small_summary["routing"] is None
        assert small_summary["autoscale"] is None

    def test_ops_spread_across_both_nodes(self, static_two):
        routing = static_two["routing"]
        assert set(routing) == {"coordinator", "writer-1"}
        assert all(count > 0 for count in routing.values())
        total = (static_two["ops"]["completed"]
                 + static_two["ops"]["failed"])
        assert sum(routing.values()) == total

    def test_two_runs_byte_identical(self, static_two):
        again = run_load(LoadConfig(**MULTI, nodes=2))
        assert (
            json.dumps(again, sort_keys=True)
            == json.dumps(static_two, sort_keys=True)
        )

    def test_node_count_changes_the_run(self, static_two):
        solo = run_load(LoadConfig(**MULTI))
        assert solo["config"]["nodes"] == 1
        assert static_two["config"]["nodes"] == 2
        assert solo["clock_seconds"] != static_two["clock_seconds"] or (
            json.dumps(solo, sort_keys=True)
            != json.dumps(static_two, sort_keys=True)
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadConfig(nodes=0)
        with pytest.raises(ValueError):
            LoadConfig(nodes=5,
                       autoscale=AutoscaleConfig(min_nodes=1, max_nodes=4))


class TestAutoscaledRuns:
    @pytest.fixture(scope="class")
    def scaled(self):
        return run_load(LoadConfig(
            **SCALED, nodes=1,
            autoscale=AutoscaleConfig(min_nodes=1, max_nodes=3),
        ))

    def test_scale_out_fires_under_the_ramp(self, scaled):
        scale = scaled["autoscale"]
        assert scale["scale_outs"] >= 1
        outs = [e for e in scale["events"] if e["action"] == "scale_out"]
        assert outs and all(e["prewarmed_entries"] >= 0 for e in outs)

    def test_dynamic_nodes_actually_serve(self, scaled):
        routing = scaled["routing"]
        dynamic = {n: c for n, c in routing.items() if n != "coordinator"}
        assert dynamic and any(count > 0 for count in dynamic.values())
        total = scaled["ops"]["completed"] + scaled["ops"]["failed"]
        assert sum(routing.values()) == total

    def test_node_count_stays_inside_clamps(self, scaled):
        scale = scaled["autoscale"]
        counts = [count for __, count in scale["node_count_timeline"]]
        assert counts and all(1 <= count <= 3 for count in counts)
        assert 1 <= scale["final_nodes"] <= 3
        assert scale["node_seconds"] > 0.0

    def test_events_are_ordered_and_annotated(self, scaled):
        events = scaled["autoscale"]["events"]
        starts = [e["started"] for e in events]
        assert starts == sorted(starts)
        for event in events:
            assert event["completed"] >= event["started"]
            assert event["queue_depth"] >= 0
            assert event["runnable_backlog"] >= 0

    def test_two_runs_byte_identical(self, scaled):
        again = run_load(LoadConfig(
            **SCALED, nodes=1,
            autoscale=AutoscaleConfig(min_nodes=1, max_nodes=3),
        ))
        assert (
            json.dumps(again, sort_keys=True)
            == json.dumps(scaled, sort_keys=True)
        )

    def test_cold_scale_out_prewarms_nothing(self):
        cold = run_load(LoadConfig(
            **SCALED, nodes=1,
            autoscale=AutoscaleConfig(min_nodes=1, max_nodes=3,
                                      prewarm=False),
        ))
        outs = [e for e in cold["autoscale"]["events"]
                if e["action"] == "scale_out"]
        assert outs and all(e["prewarmed_entries"] == 0 for e in outs)
