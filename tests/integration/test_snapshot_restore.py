"""Integration tests for snapshots and point-in-time restore (Section 5)."""

import pytest

from repro.engine import EngineError
from tests.conftest import make_db


@pytest.fixture
def db():
    return make_db(retention_seconds=3600.0)


def write_and_commit(db, name, pages, payload):
    txn = db.begin()
    for page in pages:
        db.write_page(txn, name, page,
                      (payload + b"-%d" % page).ljust(2048, b"."))
    db.commit(txn)


def test_snapshot_is_metadata_only_and_fast(db):
    db.create_object("t")
    write_and_commit(db, "t", range(20), b"v1")
    data_bytes = db.user_data_bytes()
    before = db.clock.now()
    snapshot = db.create_snapshot()
    elapsed = db.clock.now() - before
    # Near-instantaneous: metadata only, no user-data copying.
    assert len(snapshot.catalog_bytes) < data_bytes / 2
    assert elapsed < 1.0


def test_restore_returns_to_snapshot_state(db):
    db.create_object("t")
    write_and_commit(db, "t", range(5), b"v1")
    snapshot = db.create_snapshot()
    write_and_commit(db, "t", range(5), b"v2")
    check = db.begin()
    assert db.read_page(check, "t", 0).startswith(b"v2")
    db.commit(check)

    db.restore_snapshot(snapshot.snapshot_id)
    restored = db.begin()
    for page in range(5):
        assert db.read_page(restored, "t", page) == (b"v1-%d" % page).ljust(2048, b".")
    db.commit(restored)


def test_restore_garbage_collects_posterior_keys(db):
    db.create_object("t")
    write_and_commit(db, "t", range(5), b"v1")
    snapshot = db.create_snapshot()
    objects_at_snapshot = db.object_store.object_count()
    write_and_commit(db, "t", range(5), b"v2")
    db.restore_snapshot(snapshot.snapshot_id)
    # Everything written after the snapshot was polled and deleted; the
    # superseded v1 pages are retained (snapshot manager owns them).
    assert db.object_store.object_count() == objects_at_snapshot


def test_writes_after_restore_use_fresh_keys(db):
    db.create_object("t")
    write_and_commit(db, "t", [0], b"v1")
    snapshot = db.create_snapshot()
    write_and_commit(db, "t", [0], b"v2")
    consumed_before_restore = db.key_cache.last_consumed
    db.restore_snapshot(snapshot.snapshot_id)
    write_and_commit(db, "t", [0], b"v3")
    # Key monotonicity holds across the restore: no reuse.
    assert db.key_cache.last_consumed > consumed_before_restore
    check = db.begin()
    assert db.read_page(check, "t", 0).startswith(b"v3")
    db.commit(check)


def test_retention_defers_deletion_until_expiry(db):
    db.create_object("t")
    write_and_commit(db, "t", range(3), b"v1")
    write_and_commit(db, "t", range(3), b"v2")
    # Superseded v1 pages were retained, not deleted.
    assert db.snapshot_manager.retained_count() > 0
    count_before = db.object_store.object_count()
    assert db.snapshot_manager.reap() == 0
    db.clock.advance(3601.0)
    assert db.snapshot_manager.reap() > 0
    assert db.object_store.object_count() < count_before


def test_expired_snapshot_cannot_restore(db):
    db.create_object("t")
    write_and_commit(db, "t", [0], b"v1")
    snapshot = db.create_snapshot()
    db.clock.advance(3601.0)
    db.snapshot_manager.reap()
    from repro.core.snapshot import SnapshotError

    with pytest.raises(SnapshotError):
        db.restore_snapshot(snapshot.snapshot_id)


def test_multiple_snapshots_restore_to_each(db):
    db.create_object("t")
    write_and_commit(db, "t", [0], b"gen1")
    snap1 = db.create_snapshot()
    write_and_commit(db, "t", [0], b"gen2")
    snap2 = db.create_snapshot()
    write_and_commit(db, "t", [0], b"gen3")

    db.restore_snapshot(snap2.snapshot_id)
    check = db.begin()
    assert db.read_page(check, "t", 0).startswith(b"gen2")
    db.commit(check)

    db.restore_snapshot(snap1.snapshot_id)
    check = db.begin()
    assert db.read_page(check, "t", 0).startswith(b"gen1")
    db.commit(check)


def test_restore_aborts_active_transactions(db):
    db.create_object("t")
    write_and_commit(db, "t", [0], b"v1")
    snapshot = db.create_snapshot()
    dangling = db.begin()
    db.write_page(dangling, "t", 0, b"in flight")
    db.restore_snapshot(snapshot.snapshot_id)
    assert not db.txn_manager.active_transactions()


def test_snapshot_disabled_without_retention():
    db = make_db()  # retention 0
    assert db.snapshot_manager is None
    with pytest.raises(EngineError):
        db.create_snapshot()
