"""Fixed-window ablation regression: the default write path must not drift.

The adaptive write pipeline (AIMD upload window, PUT coalescing, group
commit flush, backpressure) is strictly opt-in.  With every knob at its
default the simulator must reproduce the seed's Table 2 / Table 5 bench
outputs **byte-for-byte** — same virtual load time, same per-query times,
same cache counters, same billed request counts.  The digest in
``tests/data/fixed_window_golden.json`` was captured before the pipeline
landed; these tests recompute it and compare exactly (floats survive a
JSON round-trip losslessly, so ``==`` is the right comparison).

If one of these fails, a supposedly-gated change leaked into the default
path.  Regenerate the golden only when a default-path behaviour change is
intended and called out in the PR.
"""

import json
from pathlib import Path

import pytest

from repro.bench.experiments import VolumeRun

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "fixed_window_golden.json"
LOAD_GOLDEN_PATH = (
    Path(__file__).parent.parent / "data" / "load_summary_golden.json"
)

STORE_KEYS = ("put_requests", "get_requests", "put_bytes", "get_bytes")


def _digest(run: VolumeRun) -> dict:
    snap = run.db.object_store.metrics.snapshot()
    return {
        "table2": {
            "load_virtual_seconds": run.load_seconds,
            "query_virtual_seconds": {
                f"Q{q}": v for q, v in sorted(run.query_times.items())
            },
            "geomean_seconds": run.geomean_seconds,
        },
        "table5": {k: v for k, v in sorted(run.ocm_stats().items())},
        "store": {k: snap[k] for k in STORE_KEYS},
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    with GOLDEN_PATH.open() as handle:
        payload = json.load(handle)
    return {key: payload[key] for key in ("table2", "table5", "store")}


def test_default_knobs_reproduce_golden(golden):
    """Out-of-the-box configuration == the seed's bench outputs."""
    run = VolumeRun("s3", instance_type="m5ad.24xlarge")
    assert _digest(run) == golden


def test_explicit_fixed_window_reproduces_golden(golden):
    """Spelling the ablation out (`adaptive_upload_window=False` et al.)
    is the same as not mentioning it — the knobs have no side channel."""
    run = VolumeRun(
        "s3",
        instance_type="m5ad.24xlarge",
        adaptive_upload_window=False,
        coalesce_puts=False,
        group_commit_flush=False,
        ocm_max_pending_uploads=0,
        vectorized_executor=False,
    )
    assert _digest(run) == golden


def test_integrity_knobs_off_reproduce_golden(golden):
    """Checksumming off — implicitly or spelled out — changes no byte.

    Checksums are *recorded* unconditionally at PUT time (pure
    computation, no RNG draw, no timed request), but verification and
    the page trailer are strictly opt-in; with both knobs at their
    explicit-false defaults the run must still match the golden digest
    captured before the integrity machinery existed.
    """
    run = VolumeRun(
        "s3",
        instance_type="m5ad.24xlarge",
        verify_reads=False,
        page_checksums=False,
    )
    assert _digest(run) == golden


def test_single_scheduled_session_matches_inline_run():
    """The session scheduler must be invisible to single-stream work.

    Running the bench workload as ONE scheduled session turns every
    `clock.advance` into a park/wake round-trip through the event heap;
    the resulting virtual times and store request counts must still be
    byte-identical to the plain inline run.  This is the scheduled-mode
    extension of the golden guarantee above: the scheduler adds
    interleaving, never timing.
    """
    from repro.bench.configs import load_engine
    from repro.tpch import power_run

    def workload(db):
        db.buffer.invalidate_all()
        if db.ocm is not None:
            db.ocm.drain_all()
            db.ocm.invalidate_all()
        return power_run(db, 0.002, query_numbers=[1, 6])

    def digest(db, times, load_seconds):
        return {
            "load_seconds": load_seconds,
            "query_times": dict(times),
            "final_clock": db.clock.now(),
            "store": dict(sorted(
                db.object_store.metrics.snapshot().items()
            )),
        }

    inline_db, _, inline_load = load_engine(
        "m5ad.4xlarge", "s3", 0.002
    )
    inline = digest(inline_db, workload(inline_db), inline_load)

    sched_db, _, sched_load = load_engine(
        "m5ad.4xlarge", "s3", 0.002
    )
    scheduler = sched_db.new_session_scheduler()
    session = scheduler.spawn(lambda s: workload(sched_db))
    scheduler.run()
    scheduled = digest(sched_db, session.result, sched_load)

    assert scheduled == inline


@pytest.fixture(scope="module")
def load_golden() -> dict:
    with LOAD_GOLDEN_PATH.open() as handle:
        return json.load(handle)


def test_default_load_run_reproduces_golden(load_golden):
    """The single-node load harness must not drift under autoscaling.

    The elastic multiplex machinery (node routing, the controller
    session, OCM pre-warming) is strictly opt-in: a plain `repro load`
    with `nodes=1` and no autoscale config takes the exact pre-multiplex
    engine path and must reproduce the committed summary byte-for-byte.
    """
    from repro.bench.load import LoadConfig, run_load

    summary = run_load(LoadConfig(
        sessions=40, seed=0, scale_factor=0.002, arrival_rate=20.0,
    ))
    assert json.loads(json.dumps(summary)) == load_golden


def test_explicitly_disabled_autoscale_reproduces_golden(load_golden):
    """Spelling the defaults out (`nodes=1, autoscale=None`) is the same
    as not mentioning them — the knobs have no side channel."""
    from repro.bench.load import LoadConfig, run_load

    summary = run_load(LoadConfig(
        sessions=40, seed=0, scale_factor=0.002, arrival_rate=20.0,
        nodes=1, autoscale=None,
    ))
    assert json.loads(json.dumps(summary)) == load_golden
