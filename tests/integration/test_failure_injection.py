"""Integration: the engine under hostile storage conditions.

Stress the retry and consistency machinery with high transient-failure
rates and aggressive visibility lags — committed data must always read
back correctly, and rollback/GC must keep the store tidy.
"""

import pytest

from repro.objectstore.consistency import ConsistencyModel
from repro.objectstore.client import RetryPolicy
from repro.objectstore.errors import RetriesExhaustedError
from tests.conftest import make_db

HOSTILE = ConsistencyModel(invisible_probability=0.4, mean_lag_seconds=0.5)
PATIENT = RetryPolicy(max_attempts=40, initial_backoff=0.05,
                      backoff_multiplier=1.5, max_backoff=2.0)


def make_hostile_db(failure_probability=0.05):
    from repro.objectstore.s3sim import ObjectStoreProfile

    db = make_db(consistency=HOSTILE, retry=PATIENT)
    # Raise the transient failure rate on the live store.
    object.__setattr__(
        db.object_store, "profile",
        ObjectStoreProfile(
            name="s3",
            consistency=HOSTILE,
            transient_failure_probability=failure_probability,
        ),
    )
    return db


def write_and_commit(db, name, pages, payload):
    txn = db.begin()
    for page in pages:
        db.write_page(txn, name, page, payload + b"-%d" % page)
    db.commit(txn)


def test_commits_survive_flaky_storage():
    db = make_hostile_db()
    db.create_object("t")
    for generation in range(5):
        write_and_commit(db, "t", range(10), b"gen%d" % generation)
    db.buffer.invalidate_all()
    if db.ocm is not None:
        db.ocm.invalidate_all()
    reader = db.begin()
    for page in range(10):
        assert db.read_page(reader, "t", page) == b"gen4-%d" % page
    db.commit(reader)
    # Retries actually happened: the run exercised the failure paths.
    retries = db.object_client.metrics.snapshot()
    assert retries.get("put_retries", 0) + retries.get("get_retries", 0) > 0


def test_visibility_lag_never_serves_wrong_data():
    db = make_hostile_db(failure_probability=0.0)
    db.create_object("t")
    for generation in range(8):
        write_and_commit(db, "t", [0], b"generation-%d" % generation)
        db.buffer.invalidate_all()
        if db.ocm is not None:
            db.ocm.invalidate_all()
        reader = db.begin()
        assert db.read_page(reader, "t", 0) == b"generation-%d-0" % generation
        db.commit(reader)
    assert db.object_store.metrics.snapshot().get("stale_reads", 0) == 0


def test_rollback_under_lag_leaves_no_garbage():
    db = make_hostile_db(failure_probability=0.0)
    db.create_object("t")
    write_and_commit(db, "t", range(3), b"keep")
    committed = db.object_store.object_count()
    for round_no in range(5):
        txn = db.begin()
        for page in range(3, 8):
            db.write_page(txn, "t", page, b"doomed-%d" % round_no)
        db.buffer.flush_txn(txn.txn_id, commit_mode=False)
        if db.ocm is not None:
            db.ocm.drain_all()
        db.rollback(txn)
    # Let all pending visibility lags resolve, then check ground truth.
    assert db.object_store.object_count() == committed


def test_gc_under_lag_keeps_reachability_invariant():
    db = make_hostile_db(failure_probability=0.0)
    db.create_object("t")
    for generation in range(6):
        write_and_commit(db, "t", range(4), b"g%d" % generation)
    db.txn_manager.collect_garbage()
    reachable = db._reachable_cloud_keys()
    assert db.object_store.object_count() == len(reachable)
    for key in reachable:
        name = db.user_dbspace.object_name(key)
        assert db.object_store.latest_data(name) is not None
