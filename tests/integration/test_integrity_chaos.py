"""Integration tests: end-to-end integrity under seeded corruption.

The acceptance story of DESIGN.md §15: with verified reads and
replication on, a seeded BitRot/TruncatedObject storm changes *no query
result* — every corruption is detected before its bytes reach the
executor, damaged at-rest copies are read-repaired from healthy
replicas, and one scrubber pass leaves a deep fsck clean.
"""

import pytest

from repro.columnar import ColumnStore, QueryContext
from repro.core.audit import StoreAuditor
from repro.core.scrub import Scrubber
from repro.objectstore.faults import bitrot_schedule, torn_read_schedule
from repro.objectstore.replicated import ReplicationConfig
from repro.tpch import load_tpch, run_query
from tests.conftest import make_db

MIB = 1024 * 1024
SF = 0.001
REGIONS = ("it-a", "it-b", "it-c")


def _tpch_db(**overrides):
    db = make_db(buffer_capacity_bytes=4 * MIB,
                 ocm_capacity_bytes=16 * MIB,
                 **overrides)
    load_tpch(ColumnStore(db), SF, partitions=2, rows_per_page=512)
    return db


def _cold(db):
    db.buffer.invalidate_all()
    if db.ocm is not None:
        db.ocm.drain_all()
        db.ocm.invalidate_all()


def _results(db):
    _cold(db)
    with QueryContext(db) as ctx:
        return {q: run_query(ctx, q, SF) for q in (1, 6)}


@pytest.fixture(scope="module")
def fault_free_results():
    return _results(_tpch_db())


def test_tpch_under_bitrot_storm_returns_correct_results(
    fault_free_results,
):
    """A BitRot storm spanning the load cannot change a query answer.

    The storm covers both windows: ``get`` rot is transient (caught and
    retried), ``put`` rot persists at rest on the primary (caught,
    read-repaired from a replica holding the acknowledged clean bytes).
    Query results must be *equal* to the fault-free run — zero corrupt
    bytes reach the executor.
    """
    db = _tpch_db(
        fault_schedule=bitrot_schedule(start=2.0, duration=60.0,
                                       probability=0.3, flips=2),
        replication=ReplicationConfig(regions=REGIONS,
                                      mean_lag_seconds=0.1,
                                      staleness_horizon=2.0),
        verify_reads=True,
    )
    assert _results(db) == fault_free_results

    client = db.object_client.metrics.snapshot()
    assert client["checksum_mismatches"] > 0, \
        "the storm never actually corrupted a served payload"
    assert client["read_repairs"] > 0, \
        "at-rest damage was never read-repaired"

    # Residual at-rest damage (written in the storm window, never read
    # again) is the scrubber's job: one pass, then a deep fsck across
    # all three regions comes back clean.
    db.object_store.pump(db.clock.now())
    scrub = Scrubber(db).run()
    assert scrub.ok()
    report = StoreAuditor(db).audit(deep=True)
    assert not report.corrupt and not report.region_corrupt


def test_tpch_under_torn_reads_returns_correct_results(fault_free_results):
    """Truncated GETs are transient: retries alone must heal them, even
    without replication — nothing is ever damaged at rest."""
    db = _tpch_db(
        fault_schedule=torn_read_schedule(start=2.0, duration=30.0,
                                          probability=0.3),
        verify_reads=True,
    )
    assert _results(db) == fault_free_results
    assert db.object_client.metrics.snapshot()["checksum_mismatches"] > 0
    report = StoreAuditor(db).audit(deep=True)
    assert not report.corrupt


def test_chaos_bitrot_scenario_detects_everything():
    """The CLI-level acceptance gate: a seeded bitrot run over a
    3-region store finishes with zero silent mismatches and zero
    unrepairable corrupt reads."""
    from repro.cli import run_chaos_scenario

    result = run_chaos_scenario("bitrot", seed=0, regions=3)
    assert result["verify_reads"] is True
    assert result["mismatches"] == 0
    assert result["corrupt_detected"] == 0
    assert result["client_metrics"]["checksum_mismatches"] > 0


def test_scrub_scenario_repairs_and_deep_fsck_is_clean():
    from repro.cli import run_scrub_scenario

    result = run_scrub_scenario(seed=3, regions=3, damage=5, flips=2)
    assert result["damaged"] == 5
    assert result["scrub"]["corrupt_found"] == 5
    assert result["scrub"]["repaired"] == 5
    assert result["scrub"]["ok"] is True
    assert result["corrupt_before"] == 5
    assert result["corrupt_after"] == 0
    assert result["audit_ok_after"] is True


def test_scrub_crash_points_recover_idempotently():
    """Crashing on either side of a repair and re-running the scrub
    converges on the same clean state (DESIGN.md §15's idempotence
    claim, driven through the crash explorer)."""
    from repro.bench.crash_explorer import run_scrub_episode

    for point in ("scrub.before_repair", "scrub.after_repair"):
        result = run_scrub_episode(point, seed=1)
        assert result.fired >= 1
        assert result.crashes >= 1
        assert result.ok, f"{point}: {result.violations}"
