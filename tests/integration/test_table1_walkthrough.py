"""The Table 1 walkthrough: recovery and garbage collection, step by step.

The paper's Table 1 narrates a multiplex with a coordinator and one writer
(W1), three transactions and two crashes.  This test replays every clock
tick and asserts the active set and garbage collection behaviour the paper
describes at each step.
"""

import pytest

from repro.core.multiplex import Multiplex, MultiplexConfig
from repro.engine import DatabaseConfig

MIB = 1024 * 1024


@pytest.fixture
def cluster():
    return Multiplex(
        DatabaseConfig(buffer_capacity_bytes=8 * MIB, page_size=16 * 1024),
        MultiplexConfig(writers=1, secondary_buffer_bytes=8 * MIB,
                        ocm_enabled=False),
    )


def flushed_writes(node, txn, name, pages, payload=b"d" * 64):
    """Write pages and flush them so objects exist on the store."""
    for page in pages:
        node.write_page(txn, name, page, payload + b"%d" % page)
    node.buffer.flush_txn(txn.txn_id, commit_mode=False)


def test_table1_event_sequence(cluster):
    coordinator = cluster.coordinator
    w1 = cluster.node("writer-1")
    for table in ("ta", "tb", "tc"):
        coordinator.create_object(table)

    # Clock 50: checkpoint — active sets flushed (empty for W1).
    coordinator.checkpoint()
    assert not coordinator.keygen.active_set("writer-1")

    # Clock 60: a key range is allocated to W1.
    t1 = w1.begin()
    flushed_writes(w1, t1, "ta", range(0, 3))
    allocated = coordinator.keygen.active_set("writer-1").intervals()
    assert len(allocated) == 1
    range_lo, range_hi = allocated[0]

    # Clock 70: T1 flushed objects; its keys are in its RB bitmap.
    t1_keys = set(t1.rb_for("user").cloud_keys())
    assert t1_keys
    assert all(range_lo <= key <= range_hi for key in t1_keys)

    # Clock 80: T2 begins on W1 and consumes more keys from the range.
    t2 = w1.begin()
    flushed_writes(w1, t2, "tb", range(10, 13))
    t2_keys = set(t2.rb_for("user").cloud_keys())
    assert t2_keys and t2_keys.isdisjoint(t1_keys)

    # Clock 90: T1 commits; its keys leave the active set.
    w1.commit(t1)
    active_after_commit = coordinator.keygen.active_set("writer-1")
    for key in t1_keys:
        for lo, hi in active_after_commit:
            assert not lo <= key <= hi
    for key in t2_keys:
        assert any(lo <= key <= hi for lo, hi in active_after_commit)

    # Clock 100: T3 begins and flushes more objects.
    t3 = w1.begin()
    flushed_writes(w1, t3, "tc", range(20, 22))
    t3_keys = set(t3.rb_for("user").cloud_keys())

    # Clock 110-120: the coordinator crashes and recovers; the active set
    # is reconstructed from the log (allocation replayed, T1's commit
    # trimmed away).
    expected_active = coordinator.keygen.active_set("writer-1").intervals()
    cluster.coordinator_crash_and_recover()
    recovered = cluster.coordinator.keygen.active_set("writer-1").intervals()
    assert recovered == expected_active

    # Clock 130: T2 rolls back; its objects are deleted immediately but
    # the active set is deliberately NOT updated.
    store = cluster.coordinator.object_store
    w1.rollback(t2)
    for key in t2_keys:
        name = cluster.coordinator.user_dbspace.object_name(key)
        assert not store.exists(name)
    still_active = cluster.coordinator.keygen.active_set("writer-1").intervals()
    assert still_active == expected_active

    # Clock 140-150: W1 crashes and restarts; the coordinator polls the
    # whole outstanding range.  T3's flushed objects are reclaimed, T2's
    # (already deleted) keys are polled again harmlessly, and the active
    # set is finally cleared.
    w1.crash()
    reclaimed = w1.restart()
    assert reclaimed == len(t3_keys)
    assert not cluster.coordinator.keygen.active_set("writer-1")

    # Committed data (T1's) survives everything.
    check = w1.begin()
    for page in range(0, 3):
        assert w1.read_page(check, "ta", page).startswith(b"d")
    w1.rollback(check)
