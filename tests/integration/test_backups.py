"""Integration tests for conventional full/incremental backups."""

import pytest

from repro.core.backup import BackupError, BackupManager
from repro.objectstore import InMemoryObjectStore
from tests.conftest import make_db


@pytest.fixture
def env():
    db = make_db()
    db.create_object("t")
    manager = BackupManager(db, InMemoryObjectStore())
    return db, manager


def write_and_commit(db, name, pages, payload):
    txn = db.begin()
    for page in pages:
        db.write_page(txn, name, page,
                      (payload + b"-%d" % page).ljust(512, b"."))
    db.commit(txn)


def wipe_user_store(db):
    """Simulate total loss of the user bucket."""
    for name in list(db.object_store.list_keys()):
        db.object_store.delete(name)
    db.node.invalidate_caches()
    if db.ocm is not None:
        db.ocm.invalidate_all()


def test_full_backup_captures_reachable_objects(env):
    db, manager = env
    write_and_commit(db, "t", range(5), b"v1")
    record = manager.full_backup()
    assert record.kind == "full"
    # Data pages plus the root blockmap page.
    assert len(record.objects) == db.object_store.object_count()
    assert manager.backup_store.object_count() == len(record.objects)


def test_restore_after_total_data_loss(env):
    db, manager = env
    write_and_commit(db, "t", range(5), b"v1")
    record = manager.full_backup()
    wipe_user_store(db)
    copied = manager.restore(record.backup_id)
    assert copied == len(record.objects)
    reader = db.begin()
    for page in range(5):
        assert db.read_page(reader, "t", page).startswith(b"v1-%d" % page)
    db.commit(reader)


def test_incremental_copies_only_new_pages(env):
    db, manager = env
    write_and_commit(db, "t", range(8), b"v1")
    full = manager.full_backup()
    write_and_commit(db, "t", [0], b"v2")
    incremental = manager.incremental_backup(full)
    assert incremental.kind == "incremental"
    assert incremental.base_backup_id == full.backup_id
    # Only the rewritten page + cascaded blockmap pages, not all 8.
    assert 0 < len(incremental.objects) < len(full.objects)


def test_restore_incremental_chain(env):
    db, manager = env
    write_and_commit(db, "t", range(4), b"v1")
    full = manager.full_backup()
    write_and_commit(db, "t", [1], b"v2")
    inc1 = manager.incremental_backup(full)
    write_and_commit(db, "t", [2], b"v3")
    inc2 = manager.incremental_backup(inc1)
    wipe_user_store(db)
    manager.restore(inc2.backup_id)
    reader = db.begin()
    assert db.read_page(reader, "t", 0).startswith(b"v1-0")
    assert db.read_page(reader, "t", 1).startswith(b"v2-1")
    assert db.read_page(reader, "t", 2).startswith(b"v3-2")
    db.commit(reader)


def test_restore_to_earlier_backup_discards_later_work(env):
    db, manager = env
    write_and_commit(db, "t", [0], b"old")
    record = manager.full_backup()
    write_and_commit(db, "t", [0], b"new")
    manager.restore(record.backup_id)
    reader = db.begin()
    assert db.read_page(reader, "t", 0).startswith(b"old")
    db.commit(reader)
    # Post-backup orphans were polled away; store matches the catalog.
    db.txn_manager.collect_garbage()
    assert db.object_store.object_count() == len(db._reachable_cloud_keys())


def test_restore_skips_objects_still_present(env):
    db, manager = env
    write_and_commit(db, "t", range(3), b"v1")
    record = manager.full_backup()
    # Nothing lost: the restore copies nothing back.
    assert manager.restore(record.backup_id) == 0


def test_chain_validation(env):
    db, manager = env
    write_and_commit(db, "t", [0], b"v1")
    with pytest.raises(BackupError):
        manager.record(42)
    fake = manager.full_backup()
    with pytest.raises(BackupError):
        manager.incremental_backup(
            type(fake)(backup_id=99, kind="full", created_at=0.0,
                       catalog_bytes=b"", objects=(),
                       max_allocated_key=0)
        )


def test_database_usable_after_restore(env):
    db, manager = env
    write_and_commit(db, "t", [0], b"v1")
    record = manager.full_backup()
    wipe_user_store(db)
    manager.restore(record.backup_id)
    # New transactions commit and read back normally.
    write_and_commit(db, "t", [0, 1], b"after-restore")
    reader = db.begin()
    assert db.read_page(reader, "t", 1).startswith(b"after-restore")
    db.commit(reader)
