"""Integration tests for the crash-exploration harness (bounded).

The exhaustive sweep over every registered point lives in
``benchmarks/test_crash_explorer.py`` (the ``crash`` marker / CI
crash-smoke job); here a handful of representative episodes keep the
harness itself honest inside tier-1.
"""

from repro.bench.crash_explorer import (
    registered_points,
    run_churn_episode,
    run_episode,
    run_scale_episode,
    explore_random,
)

# One point per protocol family: commit, GC, snapshot reap, restart GC,
# multiplex restart, restore, autoscale pre-warm, drain-and-retire.
REPRESENTATIVE_POINTS = [
    "txn.commit.before_log",
    "txn.gc.after_apply_rf",
    "snapshot.reap.after_free",
    "engine.restart_gc.mid_poll",
    "multiplex.restart_gc.mid_poll",
    "engine.restore.before_poll",
    "autoscale.prewarm.before_admit",
    "multiplex.retire.before_flush",
    "multiplex.retire.after_detach",
]


def test_representative_points_recover_cleanly():
    names = registered_points()
    for point in REPRESENTATIVE_POINTS:
        assert point in names
        result = run_episode(point, seed=0)
        assert result.ok, (point, result.violations)
        assert result.fired >= 1, point
        assert result.crashes >= 1, point


def test_broken_gc_is_caught_as_leak():
    """The deliberately broken GC regression fixture must be detected."""
    result = run_churn_episode("txn.commit.after_log", seed=0,
                               broken_gc=True)
    assert result.ok, result.violations  # ok == leak was *detected*
    assert result.report is not None and result.report.leaked


def test_clean_episode_without_arming():
    result = run_churn_episode(None, seed=3)
    assert result.ok, result.violations
    assert result.fired == 0  # nothing armed, nothing injected
    assert result.report is not None and result.report.ok()


def test_fencing_regression_in_flight_put_vs_restart_gc():
    """Regression: an in-flight PUT accepted before the crash must not
    outlive restart GC's blind delete (last-writer-wins resurrection)."""
    result = run_episode("client.put.before_request", seed=12, arm_skip=2)
    assert result.ok, result.violations


def test_random_schedules_are_deterministic():
    first = explore_random(count=3, seed=5)
    second = explore_random(count=3, seed=5)
    summary = lambda results: [
        (r.crash_point, r.seed, r.fired, r.ok) for r in results
    ]
    assert summary(first) == summary(second)
    assert all(r.ok for r in first), [r.violations for r in first]


def test_scale_episode_routes_and_recovers():
    """A node dying mid-retire loses no committed data and leaks drain."""
    for point in ("multiplex.retire.before_flush",
                  "multiplex.retire.after_detach"):
        result = run_episode(point, seed=0)
        assert result.mode == "scale", point
        assert result.ok, (point, result.violations)
        assert result.fired >= 1 and result.crashes >= 1, point
        assert result.report is not None and not result.report.leaked


def test_scale_episode_clean_cycle():
    result = run_scale_episode(None, seed=4)
    assert result.ok, result.violations
    assert result.fired == 0 and result.crashes == 0


def test_prewarm_crash_is_benign():
    """Dying after the warm fill but before taking traffic: read-only,
    so recovery needs nothing beyond discarding the node."""
    result = run_episode("autoscale.prewarm.before_admit", seed=0)
    assert result.mode == "scale"
    assert result.ok, result.violations
    assert result.fired >= 1


def test_episode_results_are_machine_readable():
    result = run_episode("txn.commit.before_publish", seed=0)
    payload = result.to_dict()
    assert payload["crash_point"] == "txn.commit.before_publish"
    assert payload["ok"] is True
    assert isinstance(payload["audit"], dict)
