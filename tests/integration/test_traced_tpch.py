"""Integration: a traced TPC-H power run yields a consistent span tree.

The acceptance bar for the tracing subsystem: the span tree of a traced
query shows the engine -> OCM -> client -> store nesting, its per-layer
virtual-time totals reconcile with the tracer's latency histograms, and
the Chrome-trace export is structurally valid.
"""

import json

import pytest

from repro.columnar import ColumnStore
from repro.sim.tracing import NULL_TRACER, Tracer
from repro.tpch import load_tpch, power_run
from tests.conftest import make_db

SF = 0.002

pytestmark = pytest.mark.trace


@pytest.fixture(scope="module")
def traced_run():
    """Load TPC-H cold, attach a tracer, run Q1; share across tests."""
    db = make_db()
    load_tpch(ColumnStore(db), SF, partitions=2, rows_per_page=512)
    db.buffer.invalidate_all()
    db.ocm.invalidate_all()
    tracer = Tracer(db.clock, meter=db.meter)
    db.attach_tracer(tracer)
    times = power_run(db, SF, query_numbers=[1])
    return db, tracer, times


def test_tracing_enabled_config_builds_tracer():
    db = make_db(tracing_enabled=True)
    assert db.tracer is not NULL_TRACER
    assert db.tracer.enabled
    assert db.buffer.tracer is db.tracer
    default = make_db()
    assert default.tracer is NULL_TRACER


def test_query_root_span_matches_measured_time(traced_run):
    __, tracer, times = traced_run
    roots = [s for s in tracer.roots if s.layer == "query"]
    assert [s.name for s in roots] == ["Q1"]
    assert roots[0].duration == pytest.approx(times[1])
    assert tracer.current() is None  # nothing left open


def test_span_tree_shows_full_storage_stack(traced_run):
    __, tracer, __ = traced_run
    q1 = next(s for s in tracer.roots if s.name == "Q1")

    def has_chain(span, chain):
        if not chain:
            return True
        rest = chain[1:] if span.layer == chain[0] else chain
        if not rest:
            return True
        return any(has_chain(child, rest) for child in span.children)

    # A cold read threads the whole stack: query -> buffer -> ocm ->
    # client -> store.
    assert has_chain(q1, ["query", "buffer", "ocm", "client", "store"])
    layers = {s.layer for s in q1.walk()}
    assert {"query", "buffer", "ocm", "ssd", "client", "store"} <= layers


def test_children_start_no_earlier_than_parent(traced_run):
    __, tracer, __ = traced_run
    for span in tracer.all_spans():
        assert span.end is not None
        assert span.end >= span.start
        for child in span.children:
            assert child.start >= span.start - 1e-9


def test_layer_totals_reconcile_with_histograms(traced_run):
    __, tracer, __ = traced_run
    span_totals = tracer.layer_totals()
    hist_totals = tracer.histogram_totals()
    assert set(span_totals) == set(hist_totals)
    for layer, total in span_totals.items():
        assert total == pytest.approx(hist_totals[layer]), layer
    # The run genuinely exercised the stack.
    assert span_totals["store"] > 0
    assert span_totals["query"] > 0


def test_store_spans_carry_request_cost(traced_run):
    db, tracer, __ = traced_run
    costs = tracer.cost_totals()
    store_spans = [s for s in tracer.all_spans() if s.layer == "store"]
    assert store_spans
    assert all("cost_usd" in s.attrs for s in store_spans)
    assert costs.get("store", 0.0) == pytest.approx(
        sum(float(s.attrs["cost_usd"]) for s in store_spans)
    )


def test_chrome_trace_export_is_structurally_valid(traced_run, tmp_path):
    __, tracer, __ = traced_run
    path = tmp_path / "q1.json"
    tracer.write_chrome_trace(str(path))
    payload = json.loads(path.read_text())

    assert payload["displayTimeUnit"] == "ms"
    events = payload["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    assert len(complete) == tracer.span_count()
    for event in complete:
        assert event["pid"] == 1
        assert isinstance(event["tid"], int) and event["tid"] >= 1
        assert event["dur"] >= 0
        assert event["cat"]
    named_threads = {
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert {"query", "buffer", "ocm", "client", "store"} <= named_threads


def test_flame_report_renders_stack(traced_run):
    __, tracer, __ = traced_run
    report = tracer.flame_report()
    assert "Q1 [query]" in report
    assert "100.0%" in report
    assert "ocm/" in report and "store/" in report
