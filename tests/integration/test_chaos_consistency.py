"""Consistency-model edge cases under scheduled faults (chaos satellites).

The retry loop has to cope with *two* sources of "no data": scheduled
request failures (outages, storms) and eventual-consistency invisibility.
These tests pin the interplay — and the per-node partition injection on a
multiplex cluster.
"""

import pytest

from repro.core.multiplex import Multiplex, MultiplexConfig
from repro.engine import DatabaseConfig
from repro.objectstore import (
    ConsistencyModel,
    ErrorStorm,
    FaultSchedule,
    OutageWindow,
    RetriesExhaustedError,
    RetryingObjectClient,
    RetryPolicy,
    SimulatedObjectStore,
)
from repro.objectstore.s3sim import ObjectStoreProfile
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng

MIB = 1024 * 1024


def make_client(consistency, schedule, policy):
    profile = ObjectStoreProfile(
        name="s3",
        consistency=consistency,
        transient_failure_probability=0.0,
        latency_jitter=0.0,
    )
    store = SimulatedObjectStore(profile, clock=VirtualClock(),
                                 rng=DeterministicRng(9),
                                 fault_schedule=schedule)
    return RetryingObjectClient(store, policy=policy)


def test_read_survives_outage_ending_mid_backoff():
    """A lagging write behind a GET outage still becomes readable.

    The first attempts fail inside the outage window; the window lapses
    in the middle of the backoff sequence and a later attempt — by then
    past the visibility lag too — returns the data.
    """
    client = make_client(
        consistency=ConsistencyModel(invisible_probability=1.0,
                                     mean_lag_seconds=0.05),
        schedule=FaultSchedule([OutageWindow(0.0, 0.5, ops="get")]),
        policy=RetryPolicy(max_attempts=20, initial_backoff=0.05,
                           backoff_multiplier=2.0, max_backoff=0.3),
    )
    client.put("a/1", b"laggy")  # puts are unaffected (ops="get")
    data, done = client.get_at("a/1", client.clock.now())
    assert data == b"laggy"
    assert done > 0.5  # the winning attempt ran after the outage
    snap = client.metrics.snapshot()
    assert snap.get("get_retries", 0) >= 1  # failed inside the window


def test_never_visible_key_hits_deadline_budget_during_storm():
    """Invisibility + an error storm: the deadline bounds the total wait.

    The key never becomes visible, and a 30% storm makes a third of the
    probes fail outright; the per-operation deadline cuts the retry loop
    regardless of which path each attempt took, and the error records it.
    """
    client = make_client(
        consistency=ConsistencyModel(invisible_probability=1.0,
                                     mean_lag_seconds=1e6),
        schedule=FaultSchedule([ErrorStorm(0.0, 1e6, probability=0.3)]),
        policy=RetryPolicy(max_attempts=500, initial_backoff=0.05,
                           max_backoff=0.2, deadline=1.5),
    )
    client.put("a/1", b"x")
    start = client.clock.now()
    with pytest.raises(RetriesExhaustedError) as info:
        client.get("a/1")
    assert info.value.deadline == pytest.approx(1.5)
    assert client.metrics.snapshot()["deadline_expirations"] == 1
    # Both failure modes were exercised before the budget ran out.
    mixed = client.metrics.snapshot()
    assert mixed.get("not_found_retries", 0) + mixed.get("get_retries", 0) < 500
    assert client.clock.now() == start  # the failed read consumed no clock


def test_injected_node_outage_partitions_one_node_only():
    """`inject_store_outage` models an asymmetric network partition:
    the named node loses the bucket while everyone else keeps it."""
    mx = Multiplex(
        DatabaseConfig(buffer_capacity_bytes=8 * MIB, page_size=16 * 1024,
                       ocm_capacity_bytes=32 * MIB),
        MultiplexConfig(writers=1, readers=1,
                        secondary_buffer_bytes=4 * MIB,
                        secondary_ocm_bytes=16 * MIB),
    )
    coordinator = mx.coordinator
    coordinator.object_client.put("shared/obj", b"shared-data")

    now = coordinator.clock.now()
    event = mx.inject_store_outage("writer-1", (now, now + 5.0))
    assert event.node == "writer-1"

    writer = mx.node("writer-1")
    with pytest.raises(RetriesExhaustedError):
        writer.client.get_at("shared/obj", now)

    # The coordinator and the reader still see the bucket.
    assert coordinator.object_client.get("shared/obj") == b"shared-data"
    reader_data, __ = mx.node("reader-1").client.get_at("shared/obj", now)
    assert reader_data == b"shared-data"

    # Once the window lapses the partitioned node recovers on its own.
    data, __ = writer.client.get_at("shared/obj", now + 5.0)
    assert data == b"shared-data"

    with pytest.raises(Exception):
        mx.inject_store_outage("no-such-node", (0.0, 1.0))
