"""Integration: columnar queries executed on multiplex secondary nodes.

The coordinator loads TPC-H-style data; reader nodes execute queries with
their own buffer managers and OCMs over the shared object store — the
cluster shape behind the paper's Figure 9.
"""

import pytest

from repro.columnar import ColumnSchema, ColumnStore, QueryContext, TableSchema
from repro.columnar.exec import group_by, order_by
from repro.core.multiplex import Multiplex, MultiplexConfig
from repro.engine import DatabaseConfig
from repro.sim.rng import DeterministicRng

MIB = 1024 * 1024


@pytest.fixture
def cluster():
    mx = Multiplex(
        DatabaseConfig(buffer_capacity_bytes=8 * MIB, page_size=16 * 1024,
                       ocm_capacity_bytes=32 * MIB),
        MultiplexConfig(writers=1, readers=2,
                        secondary_buffer_bytes=4 * MIB,
                        secondary_ocm_bytes=16 * MIB),
    )
    store = ColumnStore(mx.coordinator)
    store.create_table(TableSchema(
        "metrics",
        (
            ColumnSchema("id", "int", hg_index=True),
            ColumnSchema("series", "str"),
            ColumnSchema("value", "float"),
        ),
        partition_column="id",
        partition_count=2,
        rows_per_page=256,
    ))
    rng = DeterministicRng(77, "metrics")
    rows = [
        (i, rng.choice(["cpu", "mem", "net"]), round(rng.uniform(0, 100), 2))
        for i in range(1, 3001)
    ]
    store.load("metrics", rows)
    return mx, store, rows


def test_readers_run_full_queries(cluster):
    mx, __, rows = cluster
    reader = mx.node("reader-1")
    with QueryContext(reader) as ctx:
        rel = ctx.read("metrics", ["series", "value"])
        agg = group_by(ctx, rel, ["series"],
                       {"total": ("sum", "value"), "n": ("count", None)})
        result = order_by(ctx, agg, [("series", False)])
    expected = {}
    for __, series, value in rows:
        acc = expected.setdefault(series, [0.0, 0])
        acc[0] += value
        acc[1] += 1
    assert result["series"] == sorted(expected)
    for series, total, count in zip(result["series"], result["total"],
                                    result["n"]):
        assert total == pytest.approx(expected[series][0])
        assert count == expected[series][1]


def test_two_readers_agree(cluster):
    mx, __, __ = cluster
    results = []
    for node_id in ("reader-1", "reader-2"):
        with QueryContext(mx.node(node_id)) as ctx:
            results.append(ctx.read("metrics", ["id"], {"id": (100, 120)}))
    assert results[0] == results[1]


def test_reader_caches_fill_independently(cluster):
    mx, __, __ = cluster
    reader = mx.node("reader-1")
    with QueryContext(reader) as ctx:
        ctx.read("metrics", ["value"])
    assert reader.ocm is not None
    assert reader.ocm.entry_count() > 0
    other = mx.node("reader-2")
    assert other.ocm.entry_count() == 0  # untouched node stays cold


def test_reader_sees_writer_update_after_commit(cluster):
    mx, store, __ = cluster
    writer = mx.node("writer-1")
    txn = writer.begin()
    handle = writer.open_for_write(txn, "metrics/value#p0")
    # Rewriting raw pages through the writer is engine-level; use a new
    # table instead to keep the columnar metadata coherent.
    writer.rollback(txn)

    coordinator_store = store
    txn = mx.coordinator.begin()
    coordinator_store.load(
        "metrics", [(1, "cpu", 42.0)], txn=txn
    )
    mx.coordinator.commit(txn)
    reader = mx.node("reader-2")
    if hasattr(reader, "_query_meta_cache"):
        reader._query_meta_cache.clear()
    with QueryContext(reader) as ctx:
        rel = ctx.read("metrics", ["id", "value"])
    assert rel["id"] == [1]
    assert rel["value"] == [42.0]
