"""Shared fixtures: clocks, engines, small loaded TPC-H databases."""

from __future__ import annotations

import pytest

from repro.columnar import ColumnStore
from repro.engine import Database, DatabaseConfig
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng

MIB = 1024 * 1024


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def rng() -> DeterministicRng:
    return DeterministicRng(1234, "tests")


def make_db(**overrides) -> Database:
    """A small, fast engine for tests (cloud user dbspace, OCM enabled)."""
    config = DatabaseConfig(
        buffer_capacity_bytes=overrides.pop("buffer_capacity_bytes", 8 * MIB),
        ocm_capacity_bytes=overrides.pop("ocm_capacity_bytes", 32 * MIB),
        page_size=overrides.pop("page_size", 16 * 1024),
        **overrides,
    )
    return Database(config)


@pytest.fixture
def db() -> Database:
    return make_db()


@pytest.fixture
def db_no_ocm() -> Database:
    return make_db(ocm_enabled=False)


@pytest.fixture
def db_ebs() -> Database:
    return make_db(user_volume="ebs")


@pytest.fixture(scope="session")
def tiny_tpch():
    """A session-scoped loaded TPC-H database at a very small scale.

    Read-only: tests must not modify it (use ``db`` for writes).
    """
    from repro.tpch import load_tpch

    database = Database(
        DatabaseConfig(
            buffer_capacity_bytes=16 * MIB,
            ocm_capacity_bytes=64 * MIB,
            page_size=16 * 1024,
        )
    )
    store = ColumnStore(database)
    states = load_tpch(store, 0.002, partitions=2, rows_per_page=512)
    return database, store, states
