"""Setup shim for environments whose setuptools lacks bdist_wheel.

All real metadata lives in pyproject.toml; this file only enables the
legacy ``pip install -e .`` editable path.
"""

from setuptools import setup

setup()
