"""EC2 instance hardware profiles used in the paper's evaluation.

The m5ad family provides the compute (vCPUs), the RAM that backs the buffer
manager, the local NVMe SSDs that back the Object Cache Manager, and the NIC
through which all S3 traffic flows.  The paper assigns half of RAM to the
buffer manager and bundles all SSDs into a RAID 0 volume for the OCM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

GIB = 1024 ** 3
GBIT = 1_000_000_000 / 8  # bytes/second per Gbit/s


@dataclass(frozen=True)
class InstanceProfile:
    """Hardware shape of one EC2 instance type."""

    instance_type: str
    vcpus: int
    ram_bytes: int
    nic_gbits: float
    ssd_count: int
    ssd_bytes: int

    @property
    def nic_bandwidth(self) -> float:
        """NIC bandwidth in bytes/second."""
        return self.nic_gbits * GBIT

    @property
    def buffer_cache_bytes(self) -> int:
        """RAM reserved for the buffer manager (half of RAM, per the paper)."""
        return self.ram_bytes // 2

    @property
    def total_ssd_bytes(self) -> int:
        return self.ssd_count * self.ssd_bytes


INSTANCE_CATALOG: "Dict[str, InstanceProfile]" = {
    "m5ad.4xlarge": InstanceProfile(
        instance_type="m5ad.4xlarge",
        vcpus=16,
        ram_bytes=64 * GIB,
        nic_gbits=5.0,  # "up to 10 Gbps" burst; ~5 sustained
        ssd_count=2,
        ssd_bytes=300 * GIB,
    ),
    "m5ad.12xlarge": InstanceProfile(
        instance_type="m5ad.12xlarge",
        vcpus=48,
        ram_bytes=192 * GIB,
        nic_gbits=10.0,
        ssd_count=2,
        ssd_bytes=900 * GIB,
    ),
    "m5ad.24xlarge": InstanceProfile(
        instance_type="m5ad.24xlarge",
        vcpus=96,
        ram_bytes=384 * GIB,
        nic_gbits=20.0,
        ssd_count=4,
        ssd_bytes=900 * GIB,
    ),
    "r5.large": InstanceProfile(
        instance_type="r5.large",
        vcpus=2,
        ram_bytes=16 * GIB,
        nic_gbits=10.0,
        ssd_count=0,
        ssd_bytes=0,
    ),
}
