"""Cost meter: turns simulated activity into an itemized bill.

Compute cost is EC2 rate x virtual hours; request cost is the S3 PUT/GET
charges; storage cost is compressed bytes at rest x the volume's monthly
rate.  This is the machinery behind Tables 3 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.costs.pricing import DEFAULT_PRICES, PriceTable


@dataclass
class BillLine:
    """A single itemized charge."""

    category: str  # "compute", "requests" or "storage"
    description: str
    usd: float


class CostMeter:
    """Accumulates charges during a simulated run."""

    def __init__(self, prices: PriceTable = DEFAULT_PRICES) -> None:
        self._prices = prices
        self._lines: List[BillLine] = []
        self._request_counts: Dict[str, Dict[str, int]] = {}

    @property
    def prices(self) -> PriceTable:
        return self._prices

    def charge_compute(
        self, instance_type: str, hours: float, count: int = 1
    ) -> float:
        """Charge ``count`` instances of ``instance_type`` for ``hours``."""
        if hours < 0:
            raise ValueError(f"cannot charge negative hours {hours!r}")
        usd = self._prices.instance_rate(instance_type) * hours * count
        self._lines.append(
            BillLine(
                "compute",
                f"{count} x {instance_type} for {hours:.4f}h",
                usd,
            )
        )
        return usd

    def record_requests(
        self, volume: str, puts: int = 0, gets: int = 0, deletes: int = 0
    ) -> None:
        """Count requests; they are priced when the bill is rendered."""
        counts = self._request_counts.setdefault(
            volume, {"puts": 0, "gets": 0, "deletes": 0}
        )
        counts["puts"] += puts
        counts["gets"] += gets
        counts["deletes"] += deletes

    def request_cost(self, volume: str) -> float:
        counts = self._request_counts.get(volume)
        if not counts:
            return 0.0
        return self._prices.request_price(volume).cost(
            puts=counts["puts"], gets=counts["gets"], deletes=counts["deletes"]
        )

    def storage_monthly_cost(self, volume: str, nbytes: int) -> float:
        """Monthly cost of ``nbytes`` at rest on ``volume``."""
        return self._prices.storage_price(volume).monthly_cost(nbytes)

    def charge_storage_month(self, volume: str, nbytes: int) -> float:
        usd = self.storage_monthly_cost(volume, nbytes)
        self._lines.append(
            BillLine("storage", f"{nbytes} bytes on {volume} for 1 month", usd)
        )
        return usd

    def finalize_requests(self) -> None:
        """Convert recorded request counts into bill lines."""
        for volume, counts in self._request_counts.items():
            usd = self.request_cost(volume)
            if usd > 0:
                self._lines.append(
                    BillLine(
                        "requests",
                        f"{volume}: {counts['puts']} PUT, {counts['gets']} GET, "
                        f"{counts['deletes']} DELETE",
                        usd,
                    )
                )
        self._request_counts.clear()

    @property
    def lines(self) -> "List[BillLine]":
        return list(self._lines)

    def total(self, category: "str | None" = None) -> float:
        """Total billed USD, optionally restricted to one category."""
        return sum(
            line.usd
            for line in self._lines
            if category is None or line.category == category
        )

    def render(self) -> str:
        """Human-readable bill."""
        out = ["category    usd        description"]
        for line in self._lines:
            out.append(f"{line.category:<11} {line.usd:<10.4f} {line.description}")
        out.append(f"TOTAL       {self.total():.4f}")
        return "\n".join(out)
