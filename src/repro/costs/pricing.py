"""AWS price tables (us-east-1, public list prices circa 2020).

Prices are the published rates the paper's cost tables are computed from:
S3 standard storage/requests, EBS gp2, EFS standard, and the EC2 on-demand
rates for the instance types used in the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

GIB = 1024 ** 3
HOURS_PER_MONTH = 730.0


@dataclass(frozen=True)
class StoragePrice:
    """Monthly price of data at rest, in USD per GiB-month."""

    volume: str
    usd_per_gib_month: float

    def monthly_cost(self, nbytes: int) -> float:
        return (nbytes / GIB) * self.usd_per_gib_month


@dataclass(frozen=True)
class RequestPrice:
    """Per-request charges, in USD per 1000 requests."""

    volume: str
    put_usd_per_1000: float = 0.0
    get_usd_per_1000: float = 0.0
    delete_usd_per_1000: float = 0.0

    def cost(self, puts: int = 0, gets: int = 0, deletes: int = 0) -> float:
        return (
            puts * self.put_usd_per_1000
            + gets * self.get_usd_per_1000
            + deletes * self.delete_usd_per_1000
        ) / 1000.0


@dataclass(frozen=True)
class PriceTable:
    """All prices the simulation charges against."""

    storage: Dict[str, StoragePrice] = field(default_factory=dict)
    requests: Dict[str, RequestPrice] = field(default_factory=dict)
    ec2_usd_per_hour: Dict[str, float] = field(default_factory=dict)

    def storage_price(self, volume: str) -> StoragePrice:
        if volume not in self.storage:
            raise KeyError(f"no storage price for volume {volume!r}")
        return self.storage[volume]

    def request_price(self, volume: str) -> RequestPrice:
        return self.requests.get(volume, RequestPrice(volume))

    def instance_rate(self, instance_type: str) -> float:
        if instance_type not in self.ec2_usd_per_hour:
            raise KeyError(f"no EC2 rate for instance type {instance_type!r}")
        return self.ec2_usd_per_hour[instance_type]


DEFAULT_PRICES = PriceTable(
    storage={
        "s3": StoragePrice("s3", 0.023),
        "azure-blob": StoragePrice("azure-blob", 0.0184),
        "ebs-gp2": StoragePrice("ebs-gp2", 0.10),
        "efs": StoragePrice("efs", 0.30),
    },
    requests={
        "s3": RequestPrice(
            "s3",
            put_usd_per_1000=0.005,
            get_usd_per_1000=0.0004,
            delete_usd_per_1000=0.0,
        ),
        "azure-blob": RequestPrice(
            "azure-blob",
            put_usd_per_1000=0.0065,
            get_usd_per_1000=0.0005,
            delete_usd_per_1000=0.0,
        ),
    },
    ec2_usd_per_hour={
        "m5ad.4xlarge": 0.824,
        "m5ad.12xlarge": 2.472,
        "m5ad.24xlarge": 4.944,
        "r5.large": 0.126,
    },
)
