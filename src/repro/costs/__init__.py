"""Monetary cost accounting for the simulated cloud.

Price tables mirror the publicly listed AWS prices the paper used (us-east-1,
circa 2020).  The :class:`~repro.costs.meter.CostMeter` accumulates compute
hours, storage-months and per-request charges, and renders the bills behind
Tables 3 and 4.
"""

from repro.costs.pricing import (
    PriceTable,
    StoragePrice,
    RequestPrice,
    DEFAULT_PRICES,
)
from repro.costs.instances import InstanceProfile, INSTANCE_CATALOG
from repro.costs.meter import CostMeter

__all__ = [
    "PriceTable",
    "StoragePrice",
    "RequestPrice",
    "DEFAULT_PRICES",
    "InstanceProfile",
    "INSTANCE_CATALOG",
    "CostMeter",
]
