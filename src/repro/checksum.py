"""Canonical content checksums: pure-python CRC-32C (Castagnoli).

Every object PUT against a simulated store records the CRC-32C of the
*intended* payload; verified reads, the background scrubber and
``repro fsck --deep`` recompute it to detect silent corruption (bit rot,
truncation, torn reads).  CRC-32C is the checksum real object stores
expose (S3 ``x-amz-checksum-crc32c``, GCS ``crc32c``), it catches every
single-bit flip and every burst error up to 32 bits, and the pure-python
table-driven implementation below is deterministic across platforms —
no dependency, no hash randomization.

The module also provides the optional *page trailer* format used by
``DatabaseConfig.page_checksums``: a sealed page is
``b"CK1" | crc32c(payload) | payload`` so the integrity of a page image
survives any storage path (OCM SSD cache, encryption, backups) end to
end.  The trailer changes the bytes at rest, so it is a default-off knob
guarded by the golden byte-identical regression.
"""

from __future__ import annotations

import struct

_POLY = 0x82F63B78  # CRC-32C (Castagnoli), reflected


def _build_table() -> "tuple[int, ...]":
    table = []
    for index in range(256):
        crc = index
        for __ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()


def crc32c(data: bytes, value: int = 0) -> int:
    """CRC-32C of ``data``, optionally continuing from ``value``."""
    crc = value ^ 0xFFFFFFFF
    table = _TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


#: The canonical object checksum used across the storage stack.
checksum = crc32c


class ChecksumError(Exception):
    """A payload failed checksum verification (silent corruption)."""


# --------------------------------------------------------------------- #
# the optional page trailer (DatabaseConfig.page_checksums)
# --------------------------------------------------------------------- #

PAGE_CHECKSUM_MAGIC = b"CK1"
_HEADER = struct.Struct(">3sI")

#: Bytes added to every sealed page image.
PAGE_CHECKSUM_OVERHEAD = _HEADER.size


def seal_page(payload: bytes) -> bytes:
    """Frame ``payload`` with the checksum trailer header."""
    return _HEADER.pack(PAGE_CHECKSUM_MAGIC, crc32c(payload)) + payload


def open_page(sealed: bytes) -> bytes:
    """Verify and strip a sealed page; raise :class:`ChecksumError`."""
    if len(sealed) < _HEADER.size:
        raise ChecksumError(
            f"sealed page too short: {len(sealed)} bytes"
        )
    magic, expected = _HEADER.unpack_from(sealed)
    if magic != PAGE_CHECKSUM_MAGIC:
        raise ChecksumError(f"bad page-checksum magic {magic!r}")
    payload = sealed[_HEADER.size:]
    actual = crc32c(payload)
    if actual != expected:
        raise ChecksumError(
            f"page checksum mismatch: stored {expected:#010x}, "
            f"computed {actual:#010x}"
        )
    return payload


def is_sealed(payload: bytes) -> bool:
    """Whether a page image carries the checksum trailer header."""
    return payload[:3] == PAGE_CHECKSUM_MAGIC and len(payload) >= _HEADER.size
