"""Volume performance profiles for the devices the paper compares against.

Numbers follow AWS's published characteristics (circa 2020):

- **EBS gp2**: 3 IOPS per GiB provisioned (min 100, cap 16,000), up to
  250 MB/s per volume, sub-millisecond latency.  IOPS throttling is what
  caps SAP IQ's throughput on EBS in Table 2.
- **EFS standard**: baseline throughput scales with stored data
  (~50 MB/s per TiB, burstable), several-millisecond latencies, and an
  aggregate IOPS ceiling — by far the slowest volume in Table 2.
- **Local NVMe SSD** (m5ad instance storage): ~100 microsecond latency and
  roughly 500 MB/s of *shared* read/write bandwidth per device.  Because
  reads and writes share the bandwidth pipe, saturating the device with
  asynchronous cache-fill writes inflates read latencies — the Figure 6
  OCM anomaly.
"""

from __future__ import annotations

from repro.sim.devices import DeviceProfile

GIB = 1024 ** 3
TIB = 1024 ** 4
MB = 1_000_000


def ebs_gp2(size_bytes: int, name: str = "ebs-gp2") -> DeviceProfile:
    """EBS gp2 volume: IOPS = 3/GiB in [100, 16000], 250 MB/s ceiling."""
    iops = min(16000.0, max(100.0, 3.0 * (size_bytes / GIB)))
    return DeviceProfile(
        name=name,
        read_latency=0.0008,
        write_latency=0.0010,
        bandwidth=250 * MB,
        iops=iops,
        latency_jitter=0.05,
        description=f"EBS gp2 {size_bytes / GIB:.0f} GiB ({iops:.0f} IOPS)",
    )


def efs_standard(stored_bytes: int, name: str = "efs") -> DeviceProfile:
    """EFS standard: baseline 50 MB/s per TiB stored (min 1 MB/s)."""
    bandwidth = max(1 * MB, 50 * MB * (stored_bytes / TIB))
    return DeviceProfile(
        name=name,
        read_latency=0.003,
        write_latency=0.006,
        bandwidth=bandwidth,
        iops=7000.0,
        latency_jitter=0.10,
        description=f"EFS standard sized for {stored_bytes / GIB:.0f} GiB",
    )


def nvme_ssd(name: str = "nvme") -> DeviceProfile:
    """One local NVMe SSD as found on m5ad instances (~1.5 GB/s)."""
    return DeviceProfile(
        name=name,
        read_latency=0.0001,
        write_latency=0.0002,
        bandwidth=1500 * MB,
        iops=None,
        latency_jitter=0.05,
        # NVMe writes sustain a fraction of read throughput; amplified
        # write bursts crowd out reads on the shared channel (Figure 6).
        write_cost_multiplier=4.0,
        description="local NVMe instance SSD",
    )


def ram_disk(name: str = "ram") -> DeviceProfile:
    """An effectively free device for tests that ignore timing."""
    return DeviceProfile(
        name=name,
        read_latency=0.0,
        write_latency=0.0,
        bandwidth=1e12,
        iops=None,
        latency_jitter=0.0,
        description="zero-cost test device",
    )
