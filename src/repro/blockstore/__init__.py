"""Block storage substrate: block devices, freelist, volume profiles.

Conventional (non-cloud) dbspaces live on simulated shared block devices.
The profiles reproduce the throttling behaviour that shapes the paper's
Tables 2-4: EBS gp2 IOPS scale with volume size (3 IOPS/GiB, capped), EFS
throughput scales with stored bytes, and local NVMe SSDs have very low
latency but finite shared bandwidth (the OCM's Figure 6 anomaly).
"""

from repro.blockstore.freelist import Freelist, FreelistError
from repro.blockstore.device import BlockDevice, BlockDeviceError
from repro.blockstore.profiles import ebs_gp2, efs_standard, nvme_ssd, ram_disk

__all__ = [
    "Freelist",
    "FreelistError",
    "BlockDevice",
    "BlockDeviceError",
    "ebs_gp2",
    "efs_standard",
    "nvme_ssd",
    "ram_disk",
]
