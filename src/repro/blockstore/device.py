"""A simulated shared block device holding real bytes.

Pages on conventional dbspaces are stored as contiguous block runs on a
:class:`BlockDevice`.  The device combines data storage (so reads return the
actual bytes written) with a :class:`~repro.sim.devices.QueueingDevice`
timing model, and exposes the same two-level API as the object store
simulator: a timed API returning virtual completion times plus synchronous
wrappers that advance the shared clock.

Block devices are *strongly consistent*: a read after a completed write
always returns the written bytes — the property SAP IQ historically relied
on, and the one object stores do not give.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.clock import VirtualClock
from repro.sim.devices import DeviceProfile, QueueingDevice
from repro.sim.rng import DeterministicRng


class BlockDeviceError(Exception):
    """Out-of-range or mismatched block access."""


class BlockDevice:
    """A block-addressed volume with a queueing performance model."""

    def __init__(
        self,
        profile: DeviceProfile,
        block_size: int,
        total_blocks: int,
        clock: Optional[VirtualClock] = None,
        rng: Optional[DeterministicRng] = None,
    ) -> None:
        if block_size <= 0:
            raise BlockDeviceError(f"block size must be positive, got {block_size}")
        if total_blocks <= 0:
            raise BlockDeviceError(f"device needs blocks, got {total_blocks}")
        self.block_size = block_size
        self.total_blocks = total_blocks
        self.clock = clock or VirtualClock()
        self._device = QueueingDevice(
            profile,
            self.clock,
            rng or DeterministicRng(0, f"blockdev/{profile.name}"),
        )
        # start block -> payload written there (pages are written and read
        # as whole contiguous runs, so run-granular storage is sufficient).
        self._data: Dict[int, bytes] = {}

    @property
    def profile(self) -> DeviceProfile:
        return self._device.profile

    @property
    def metrics(self):
        return self._device.metrics

    @property
    def capacity_bytes(self) -> int:
        return self.block_size * self.total_blocks

    def blocks_for(self, nbytes: int) -> int:
        """Number of blocks a payload of ``nbytes`` occupies."""
        if nbytes <= 0:
            return 1
        return (nbytes + self.block_size - 1) // self.block_size

    def _check_range(self, start: int, nblocks: int) -> None:
        if start < 0 or nblocks < 1 or start + nblocks > self.total_blocks:
            raise BlockDeviceError(
                f"block range {start}+{nblocks} outside device of "
                f"{self.total_blocks} blocks"
            )

    # ------------------------------------------------------------------ #
    # timed API
    # ------------------------------------------------------------------ #

    def write_at(self, start: int, data: bytes, now: float) -> float:
        """Write ``data`` at block ``start``; return completion time."""
        nblocks = self.blocks_for(len(data))
        self._check_range(start, nblocks)
        self._data[start] = bytes(data)
        return self._device.write(len(data), now)

    def read_at(self, start: int, now: float) -> "Tuple[bytes, float]":
        """Read the run written at ``start``; return (data, completion)."""
        if start not in self._data:
            raise BlockDeviceError(f"no data written at block {start}")
        data = self._data[start]
        return data, self._device.read(len(data), now)

    def discard(self, start: int) -> None:
        """Drop the stored run (blocks freed via the freelist); no timing."""
        self._data.pop(start, None)

    def backlog(self, now: "Optional[float]" = None) -> float:
        """Seconds of queued work on the device (OCM saturation probe)."""
        return self._device.backlog(now)

    def charge_write(self, nbytes: int) -> None:
        """Charge a raw synchronous write without storing data.

        Used for metadata appends (the transaction log) whose contents are
        tracked elsewhere but whose I/O must still cost virtual time.
        """
        self.clock.advance_to(self._device.write(nbytes))

    # ------------------------------------------------------------------ #
    # synchronous wrappers
    # ------------------------------------------------------------------ #

    def write(self, start: int, data: bytes) -> None:
        self.clock.advance_to(self.write_at(start, data, self.clock.now()))

    def read(self, start: int) -> bytes:
        data, done = self.read_at(start, self.clock.now())
        self.clock.advance_to(done)
        return data

    # ------------------------------------------------------------------ #
    # windowed parallel batches
    # ------------------------------------------------------------------ #

    def read_many(
        self, starts: "Iterable[int]", window: int = 32
    ) -> "Dict[int, bytes]":
        """Read several runs with up to ``window`` outstanding requests."""
        if window < 1:
            raise BlockDeviceError("window must be at least 1")
        now = self.clock.now()
        inflight: "List[float]" = []
        results: "Dict[int, bytes]" = {}
        last = now
        for start in starts:
            begin = now
            if len(inflight) >= window:
                begin = max(now, heapq.heappop(inflight))
            data, done = self.read_at(start, begin)
            results[start] = data
            heapq.heappush(inflight, done)
            last = max(last, done)
        self.clock.advance_to(last)
        return results

    def write_many(
        self, items: "Iterable[Tuple[int, bytes]]", window: int = 32
    ) -> None:
        if window < 1:
            raise BlockDeviceError("window must be at least 1")
        now = self.clock.now()
        inflight: "List[float]" = []
        last = now
        for start, data in items:
            begin = now
            if len(inflight) >= window:
                begin = max(now, heapq.heappop(inflight))
            done = self.write_at(start, data, begin)
            heapq.heappush(inflight, done)
            last = max(last, done)
        self.clock.advance_to(last)

    def stored_bytes(self) -> int:
        """Bytes currently stored (sum of live runs)."""
        return sum(len(data) for data in self._data.values())

    def __repr__(self) -> str:
        return (
            f"BlockDevice({self.profile.name!r}, block_size={self.block_size}, "
            f"blocks={self.total_blocks})"
        )
