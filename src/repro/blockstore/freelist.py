"""The freelist: a bitmap tracking allocated blocks on block storage.

A set bit means the block is in use; a clear bit means it is available —
exactly the structure SAP IQ keeps in the main system dbspace.  Cloud
dbspaces do not use a freelist at all (objects are allocated by key), which
is why the paper's system dbspace shrinks and snapshots get cheap.

The allocator is next-fit over contiguous runs: pages occupy 1-16 contiguous
blocks, so allocation asks for a run length.  The bitmap serializes to bytes
for checkpointing and crash recovery.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


class FreelistError(Exception):
    """Raised on invalid freelist operations (double free, overflow...)."""


class Freelist:
    """Bitmap block allocator with contiguous-run allocation."""

    def __init__(self, total_blocks: int) -> None:
        if total_blocks <= 0:
            raise FreelistError(f"freelist needs a positive size, got {total_blocks}")
        self._total = total_blocks
        self._bits = bytearray((total_blocks + 7) // 8)
        self._used = 0
        self._cursor = 0  # next-fit scan position

    @property
    def total_blocks(self) -> int:
        return self._total

    @property
    def used_blocks(self) -> int:
        return self._used

    @property
    def free_blocks(self) -> int:
        return self._total - self._used

    def _get(self, block: int) -> bool:
        return bool(self._bits[block >> 3] & (1 << (block & 7)))

    def _set(self, block: int) -> None:
        self._bits[block >> 3] |= 1 << (block & 7)

    def _clear(self, block: int) -> None:
        self._bits[block >> 3] &= ~(1 << (block & 7))

    def is_used(self, block: int) -> bool:
        """Whether ``block`` is currently allocated."""
        if not 0 <= block < self._total:
            raise FreelistError(f"block {block} out of range 0..{self._total - 1}")
        return self._get(block)

    def _run_free(self, start: int, count: int) -> bool:
        if start + count > self._total:
            return False
        return all(not self._get(start + i) for i in range(count))

    def allocate(self, count: int = 1) -> int:
        """Allocate ``count`` contiguous blocks; return the start block.

        Scans next-fit from the cursor, wrapping once.  Raises
        :class:`FreelistError` when no suitable run exists.
        """
        if count < 1:
            raise FreelistError(f"cannot allocate {count} blocks")
        if count > self.free_blocks:
            raise FreelistError(
                f"not enough free blocks: need {count}, have {self.free_blocks}"
            )
        for origin in (self._cursor, 0):
            position = origin
            limit = self._total if origin == 0 else self._total
            while position + count <= limit:
                if self._run_free(position, count):
                    self.mark_used(position, count)
                    self._cursor = position + count
                    return position
                # Skip past the first used block in the window.
                step = 1
                for i in range(count - 1, -1, -1):
                    if self._get(position + i):
                        step = i + 1
                        break
                position += step
            if origin == 0:
                break
        raise FreelistError(f"no contiguous run of {count} free blocks")

    def mark_used(self, start: int, count: int = 1) -> None:
        """Set bits for ``[start, start+count)``; used by crash recovery."""
        if start < 0 or start + count > self._total:
            raise FreelistError(f"range {start}+{count} out of bounds")
        for block in range(start, start + count):
            if not self._get(block):
                self._set(block)
                self._used += 1

    def free(self, start: int, count: int = 1) -> None:
        """Clear bits for ``[start, start+count)``.

        Freeing an already-free block is an error in normal operation;
        crash-recovery paths use :meth:`mark_free` instead.
        """
        if start < 0 or start + count > self._total:
            raise FreelistError(f"range {start}+{count} out of bounds")
        for block in range(start, start + count):
            if not self._get(block):
                raise FreelistError(f"double free of block {block}")
            self._clear(block)
            self._used -= 1

    def mark_free(self, start: int, count: int = 1) -> None:
        """Idempotently clear bits (crash-recovery replay)."""
        if start < 0 or start + count > self._total:
            raise FreelistError(f"range {start}+{count} out of bounds")
        for block in range(start, start + count):
            if self._get(block):
                self._clear(block)
                self._used -= 1

    def used_ranges(self) -> "Iterator[Tuple[int, int]]":
        """Yield maximal ``(start, count)`` runs of allocated blocks."""
        start = None
        for block in range(self._total):
            if self._get(block):
                if start is None:
                    start = block
            elif start is not None:
                yield start, block - start
                start = None
        if start is not None:
            yield start, self._total - start

    # ------------------------------------------------------------------ #
    # persistence (checkpointing)
    # ------------------------------------------------------------------ #

    def to_bytes(self) -> bytes:
        """Serialize for inclusion in a checkpoint."""
        header = self._total.to_bytes(8, "big")
        return header + bytes(self._bits)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "Freelist":
        if len(payload) < 8:
            raise FreelistError("truncated freelist payload")
        total = int.from_bytes(payload[:8], "big")
        freelist = cls(total)
        bits = payload[8:]
        if len(bits) != len(freelist._bits):
            raise FreelistError("freelist payload size mismatch")
        freelist._bits = bytearray(bits)
        freelist._used = sum(bin(byte).count("1") for byte in bits)
        return freelist

    def copy(self) -> "Freelist":
        return Freelist.from_bytes(self.to_bytes())

    def __repr__(self) -> str:
        return f"Freelist(total={self._total}, used={self._used})"
