"""Reproduction of "Bringing Cloud-Native Storage to SAP IQ" (SIGMOD 2021).

The package implements, from scratch and in pure Python, the storage
architecture that the paper retrofits onto SAP IQ:

- a columnar storage engine with a buffer manager, a blockmap tree, identity
  objects and MVCC with table-level versioning (``repro.storage``,
  ``repro.core``, ``repro.columnar``),
- cloud *dbspaces* over eventually consistent object stores with a
  never-write-an-object-twice policy (``repro.objectstore``),
- the Object Key Generator with range allocation and crash recovery
  (``repro.core.keygen``),
- RF/RB-bitmap based garbage collection (``repro.core.txn``),
- the Object Cache Manager, a local-SSD second-level cache
  (``repro.core.ocm``),
- retention-based snapshots and point-in-time restore
  (``repro.core.snapshot``), and
- a multiplex of coordinator/writer/reader nodes (``repro.core.multiplex``).

Everything the paper ran on AWS (S3, EBS, EFS, EC2 instance SSDs and NICs) is
substituted with deterministic simulators driven by a virtual clock, so every
experiment in the paper's evaluation section can be regenerated on a laptop;
see DESIGN.md for the substitution argument and the per-experiment index.
"""

__version__ = "1.0.0"
