"""The single-node database engine facade.

:class:`Database` wires every subsystem together the way the paper's
deployment does:

- a **system dbspace** on an EBS gp2 block volume (strongly consistent;
  holds the transaction log, checkpoints, freelist and catalog),
- a **user dbspace** either on a simulated object store (``s3``) — with or
  without an Object Cache Manager on local NVMe — or on a block volume
  (``ebs`` / ``efs``) for the paper's comparison runs,
- the Object Key Generator with a node-local key cache,
- the transaction manager, snapshot manager, and crash/restart machinery.

All I/O and CPU advance a single virtual clock; costs accrue to a
:class:`~repro.costs.meter.CostMeter`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.blockstore.device import BlockDevice
from repro.blockstore.profiles import ebs_gp2, efs_standard, nvme_ssd
from repro.core.buffer import BufferManager, ObjectHandle
from repro.core.keygen import NodeKeyCache, ObjectKeyGenerator, RangeSizePolicy
from repro.core.log import OBJECT_CREATED, SNAPSHOT_CREATED, TransactionLog
from repro.core.ocm import ObjectCacheManager, OcmConfig
from repro.core.recovery import encode_checkpoint, recover
from repro.core.snapshot import Snapshot, SnapshotManager
from repro.core.txn import Transaction, TransactionError, TransactionManager
from repro.costs.meter import CostMeter
from repro.objectstore.client import (
    CircuitBreakerConfig,
    HedgePolicy,
    RetryPolicy,
    RetryingObjectClient,
)
from repro.objectstore.consistency import ConsistencyModel, EVENTUAL
from repro.objectstore.faults import FaultSchedule
from repro.objectstore.replicated import ReplicationConfig, build_replicated_store
from repro.objectstore.s3sim import ObjectStoreProfile, S3_PROFILE, SimulatedObjectStore
from repro.sim.clock import VirtualClock
from repro.sim.cpu import CpuModel
from repro.sim.crashpoints import (
    SimulatedCrash,
    crash_point,
    register_crash_point,
)
from repro.sim.devices import raid0, scaled_profile
from repro.sim.metrics import MetricsRegistry
from repro.sim.pipes import Pipe
from repro.sim.rng import DeterministicRng
from repro.sim.tracing import NULL_TRACER, Tracer
from repro.storage.blockmap import Blockmap
from repro.storage.dbspace import (
    BlockDbspace,
    CloudDbspace,
    DirectObjectIO,
    PageStore,
)
from repro.storage.encryption import PageEncryptor
from repro.storage.identity import Catalog, IdentityObject
from repro.storage.locator import NULL_LOCATOR, is_object_key
from repro.storage.page import PageConfig

GIB = 1024 ** 3
MIB = 1024 ** 2
GBIT = 1_000_000_000 / 8

SYSTEM_DBSPACE = "system"
USER_DBSPACE = "user"

CP_CREATE_OBJECT_BEFORE_LOG = register_crash_point(
    "engine.create_object.before_log",
    "object registered in the in-memory catalog, DDL not yet logged",
)
CP_CHECKPOINT_BEFORE_WRITE = register_crash_point(
    "engine.checkpoint.before_write",
    "checkpoint encoded but never written (recovery replays further back)",
)
CP_SNAPSHOT_BEFORE_LOG = register_crash_point(
    "engine.snapshot.before_log",
    "snapshot registered with the snapshot manager, not yet logged",
)
CP_SNAPSHOT_AFTER_LOG = register_crash_point(
    "engine.snapshot.after_log",
    "SNAPSHOT_CREATED logged, metadata backup charge lost",
)
CP_RESTART_BEFORE_GC = register_crash_point(
    "engine.restart.before_gc",
    "log replayed and state reinstalled, restart GC has not run "
    "(the active set must survive for the next attempt)",
)
CP_RESTART_GC_MID_POLL = register_crash_point(
    "engine.restart_gc.mid_poll",
    "restart GC crashed between polling two orphaned keys",
)
CP_RESTORE_BEFORE_POLL = register_crash_point(
    "engine.restore.before_poll",
    "snapshot catalog reinstalled, post-snapshot keys not yet polled",
)


class EngineError(Exception):
    """Engine misconfiguration or use of a crashed instance."""


@dataclass(frozen=True)
class DatabaseConfig:
    """Engine configuration (defaults suit tests; benches override)."""

    node_id: str = "coordinator"
    seed: int = 0
    page_size: int = 64 * 1024
    codec_name: str = "zlib"
    buffer_capacity_bytes: int = 64 * MIB
    vcpus: int = 8
    cpu_ops_per_second: float = 50e6
    nic_gbits: float = 10.0
    instance_type: str = "m5ad.4xlarge"
    # user dbspace placement: "s3", "ebs" or "efs"
    user_volume: str = "s3"
    user_volume_size_bytes: int = 1024 * GIB
    system_volume_size_bytes: int = 64 * GIB
    # OCM (only meaningful for user_volume == "s3")
    ocm_enabled: bool = True
    ocm_capacity_bytes: int = 256 * MIB
    ocm_ssd_count: int = 2
    ocm_upload_window: int = 16
    # OCM eviction policy: "lru" (the paper's cache) or "arc2q"
    # (scan-resistant probation/protected segments with ghost lists)
    ocm_policy: str = "lru"
    # Pipelined scans: QueryContext overlaps batch N's decode with batch
    # N+1's object fetches instead of strictly alternating them
    pipelined_prefetch: bool = False
    # GET coalescing: the object client merges adjacent-key reads into
    # ranged multi-gets (one billed request, one token) before the
    # per-prefix token buckets
    coalesce_gets: bool = False
    # Adaptive write-back pipeline (DESIGN.md §11; all off by default so
    # the stock configuration reproduces the paper's fixed-window drain):
    # - adaptive_upload_window: AIMD-controlled upload window seeded at
    #   ocm_upload_window instead of the fixed constant;
    # - coalesce_puts: the write-side mirror of coalesce_gets — runs of
    #   freshly keyed adjacent pages become one billed ranged multi-put;
    # - group_commit_flush: FlushForCommit drains a transaction's queued
    #   write-backs as coalesced batches instead of one PUT per page;
    # - ocm_max_pending_uploads: bound on the write-back queue; a loader
    #   that outruns the drain stalls while the oldest uploads complete
    #   (0 = unbounded, the paper's behaviour).
    adaptive_upload_window: bool = False
    coalesce_puts: bool = False
    group_commit_flush: bool = False
    ocm_max_pending_uploads: int = 0
    # Vectorized columnar executor (DESIGN.md §14; all off by default so
    # the stock configuration reproduces the scalar row-at-a-time path
    # byte-for-byte):
    # - vectorized_executor: QueryContext scans decode pages into numpy
    #   column vectors and the relational operators run batch kernels,
    #   charging CPU through a MorselScheduler so simulated query time
    #   scales with vcpus (requires numpy — the `perf` extra);
    # - morsel_rows: rows per morsel for the parallel CPU model;
    # - decoded_cache_bytes: budget of the session-level decoded-batch
    #   cache (vectorized scans skip re-decoding pages it holds); sized
    #   to hold the full decoded working set of the bench scale factors
    #   (SF 0.1 decodes to ~185 MB) so repeat scans never thrash.
    vectorized_executor: bool = False
    morsel_rows: int = 4096
    decoded_cache_bytes: int = 256 * MIB
    # End-to-end integrity (DESIGN.md §15; both off by default so the
    # stock configuration stays byte-identical to the seed):
    # - verify_reads: the object client recomputes CRC-32C over every
    #   served payload against the store's recorded checksum; mismatches
    #   retry (and read-repair under replication) instead of reaching the
    #   engine, and the OCM re-verifies SSD cache hits against fill-time
    #   checksums;
    # - page_checksums: every sealed page image carries a CRC-32C trailer
    #   inside the encryption envelope, so corruption is caught even on
    #   paths that bypass the store's checksum records (changes the bytes
    #   at rest — guarded by the golden byte-identical regression).
    verify_reads: bool = False
    page_checksums: bool = False
    # object store behaviour
    consistency: ConsistencyModel = EVENTUAL
    prefix_bits: int = 16
    parallel_window: int = 32
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    # resilience machinery (None = disabled, preserving baseline behaviour)
    breaker: "Optional[CircuitBreakerConfig]" = None
    hedge: "Optional[HedgePolicy]" = None
    # scripted fault injection against the user object store
    fault_schedule: "Optional[FaultSchedule]" = None
    # multi-region replication of the user object store (None = single
    # region, preserving baseline behaviour byte-for-byte; see
    # DESIGN.md §12 for the DR story this enables)
    replication: "Optional[ReplicationConfig]" = None
    # page encryption: with a key, the OCM cache and the objects at rest
    # hold ciphertext only (Section 4)
    encryption_key: "Optional[bytes]" = None
    # adaptive OCM read re-routing (the paper's proposed future work)
    ocm_adaptive_routing: bool = False
    # snapshots: retention 0 disables the snapshot manager entirely
    retention_seconds: float = 0.0
    # End-to-end request tracing: build a Tracer on the engine clock and
    # propagate it through buffer -> OCM -> client -> store so queries and
    # commits yield span trees (DESIGN.md §8).  Off by default: tracing
    # retains every span in memory.
    tracing_enabled: bool = False
    # Effective per-node S3 throughput ceiling in Gbit/s.  The paper
    # observes saturation slightly above 9 Gbit/s even on a 20 Gbit NIC
    # and attributes it to the engine's 512 KB page size (Figure 8).
    s3_effective_gbits: float = 9.0
    # Hardware rate scaling for scaled-down benchmark datasets: every
    # *rate* (bandwidths, IOPS, CPU ops/s, S3 per-prefix request rates) is
    # multiplied by this factor while latencies stay real.  Shrinking the
    # data by N and the rates by N preserves which resource bottlenecks a
    # workload, so virtual seconds stay comparable to the paper's (see
    # DESIGN.md).  IOPS-like rates get an extra factor for the sim's
    # smaller pages (the paper's pages are 512 KB).
    rate_scale: float = 1.0

    @property
    def op_scale(self) -> float:
        """Rate scale for per-operation limits (IOPS, request rates).

        Simulation pages are much smaller than the paper's 512 KB pages
        and real systems coalesce adjacent page reads, so one simulated
        operation stands for a fraction of a real operation: per-op rate
        limits scale by the page-size ratio (x2 for read coalescing) on
        top of the plain rate scale.
        """
        return self.rate_scale * (2 * 524288 / self.page_size)

    def with_overrides(self, **kwargs: object) -> "DatabaseConfig":
        return replace(self, **kwargs)  # type: ignore[arg-type]


class NodeRuntime:
    """A node's local execution context: buffer, dbspace views, caches."""

    def __init__(self, node_id: str, buffer: BufferManager,
                 dbspaces: "Dict[str, PageStore]") -> None:
        self.node_id = node_id
        self.buffer = buffer
        self._dbspaces = dict(dbspaces)
        self._blockmaps: Dict[Tuple[int, int], Blockmap] = {}

    def dbspace(self, name: str) -> PageStore:
        return self._dbspaces[name]

    def dbspaces(self) -> "Dict[str, PageStore]":
        return dict(self._dbspaces)

    def add_dbspace(self, name: str, store: PageStore) -> None:
        self._dbspaces[name] = store

    def blockmap_for(self, identity: IdentityObject) -> Blockmap:
        key = (identity.object_id, identity.version)
        cached = self._blockmaps.get(key)
        if cached is not None:
            return cached
        blockmap = Blockmap(
            self.dbspace(identity.dbspace),
            root_locator=identity.root_locator,
            height=identity.height,
        )
        self._blockmaps[key] = blockmap
        return blockmap

    def publish_blockmap(self, blockmap: Blockmap,
                         identity: IdentityObject) -> None:
        self._blockmaps[(identity.object_id, identity.version)] = blockmap

    def invalidate_caches(self) -> None:
        self._blockmaps.clear()
        self.buffer.invalidate_all()


class _ViewTransaction:
    """Inert transaction token for read-only snapshot views."""

    def __init__(self, txn_id: int) -> None:
        self.txn_id = txn_id


class SnapshotView:
    """Read-only session over a past snapshot's catalog.

    Pages of snapshot-referenced versions are retained on the object store
    for the retention period, so reads resolve exactly as they would have
    at snapshot time; writes are rejected.  The view shares the node's
    buffer manager — version-tagged frames make that MVCC-safe (a version
    number never maps to two different page images).
    """

    def __init__(self, db: "Database", snapshot: Snapshot) -> None:
        self.db = db
        self.snapshot = snapshot
        self.catalog = Catalog.from_bytes(snapshot.catalog_bytes)
        self.buffer = db.buffer
        self.cpu = db.cpu
        self.clock = db.clock
        self._next_view_txn = -1

    def begin(self) -> _ViewTransaction:
        token = _ViewTransaction(self._next_view_txn)
        self._next_view_txn -= 1
        return token

    def commit(self, txn: _ViewTransaction) -> None:
        """Read-only views have nothing to commit."""

    def rollback(self, txn: _ViewTransaction) -> None:
        """Read-only views have nothing to roll back."""

    def open_for_read(self, txn: _ViewTransaction, name: str) -> ObjectHandle:
        object_id = self.catalog.object_id(name)
        identity = self.catalog.current(object_id)
        blockmap = self.db.node.blockmap_for(identity)
        return ObjectHandle(
            object_id=object_id,
            name=name,
            dbspace=self.db.node.dbspace(identity.dbspace),
            blockmap=blockmap,
            version=identity.version,
            page_count=identity.page_count,
            writable=False,
        )

    def open_for_write(self, txn: _ViewTransaction, name: str) -> ObjectHandle:
        raise EngineError(
            f"snapshot view #{self.snapshot.snapshot_id} is read-only"
        )

    def read_page(self, txn: _ViewTransaction, name: str,
                  page_no: int) -> bytes:
        return self.buffer.get_page(self.open_for_read(txn, name), page_no)


class Database:
    """A single-node SAP-IQ-style engine over simulated cloud storage."""

    def __init__(self, config: "Optional[DatabaseConfig]" = None) -> None:
        self.config = config or DatabaseConfig()
        cfg = self.config
        if cfg.vectorized_executor:
            # Fail fast with one clear error instead of a mid-query
            # ImportError; the scalar path never touches numpy.
            from repro.columnar.vec import require_numpy

            require_numpy("vectorized_executor=True")
        self.clock = VirtualClock()
        self.rng = DeterministicRng(cfg.seed, "database")
        self.meter = CostMeter()
        self.page_config = PageConfig(cfg.page_size, cfg.codec_name)
        self.cpu = CpuModel(
            self.clock, cfg.vcpus, cfg.cpu_ops_per_second * cfg.rate_scale
        )
        # The NIC carries load input *and* object store traffic; the
        # engine cannot push S3 past ~9 Gbit/s (512 KB page limitation the
        # paper reports), so the pipe is capped at the lower of the two.
        effective_gbits = min(cfg.nic_gbits, cfg.s3_effective_gbits)
        self.nic = Pipe(effective_gbits * GBIT * cfg.rate_scale, name="nic")
        self.crashed = False
        self.metrics = MetricsRegistry()
        # Name of the crash point whose firing killed this node last
        # (set by crash_from; None for clean crashes).
        self.last_crash_point: "Optional[str]" = None
        self.tracer = (
            Tracer(self.clock, meter=self.meter)
            if cfg.tracing_enabled
            else NULL_TRACER
        )

        # --- system dbspace (strong consistency, holds log/catalog) ---- #
        # The system dbspace carries only metadata (log, catalog,
        # checkpoints), whose volume does not scale with the dataset, so
        # its device runs at real gp2 rates even under rate scaling.
        system_blocks = cfg.system_volume_size_bytes // self.page_config.block_size
        self.system_device = BlockDevice(
            ebs_gp2(cfg.system_volume_size_bytes, name="system-gp2"),
            self.page_config.block_size,
            system_blocks,
            clock=self.clock,
            rng=self.rng.substream("system-device"),
        )
        self.system_dbspace = BlockDbspace(SYSTEM_DBSPACE, self.system_device)
        self.log = TransactionLog(self.system_device)

        # --- key generation --------------------------------------------- #
        self.keygen = ObjectKeyGenerator(self.log)
        self.key_cache = NodeKeyCache(
            cfg.node_id, self.keygen.allocate_range, self.clock.now
        )

        # --- user dbspace ------------------------------------------------ #
        self.object_store: "Optional[SimulatedObjectStore]" = None
        self.object_client: "Optional[RetryingObjectClient]" = None
        self.ocm: "Optional[ObjectCacheManager]" = None
        self.user_device: "Optional[BlockDevice]" = None
        self.user_dbspace = self._build_user_dbspace()

        # --- buffer, catalog, transactions ------------------------------ #
        self.buffer = BufferManager(
            cfg.buffer_capacity_bytes, self.page_config
        )
        self.node = NodeRuntime(
            cfg.node_id,
            self.buffer,
            {SYSTEM_DBSPACE: self.system_dbspace, USER_DBSPACE: self.user_dbspace},
        )
        self.catalog = Catalog()
        self.snapshot_manager: "Optional[SnapshotManager]" = None
        if cfg.retention_seconds > 0:
            self.snapshot_manager = SnapshotManager(
                self.clock,
                cfg.retention_seconds,
                {USER_DBSPACE: self.user_dbspace},
            )
        self.txn_manager = TransactionManager(
            self.catalog,
            self.log,
            keygen=self.keygen,
            gc_dbspaces={
                SYSTEM_DBSPACE: self.system_dbspace,
                USER_DBSPACE: self.user_dbspace,
            },
            snapshot_manager=self.snapshot_manager,
            identity_write_cost=lambda: self.system_device.charge_write(256),
        )
        # An initial checkpoint anchors recovery for logs with no history.
        self.checkpoint()
        self.attach_tracer(self.tracer)

    def new_session_scheduler(self) -> "SessionScheduler":
        """An event-driven scheduler interleaving sessions on this clock.

        Spawned sessions run ordinary engine code (transactions,
        :class:`~repro.columnar.query.QueryContext` scans, page reads) —
        while the scheduler runs, every timed wait inside the stack
        (store latency, SSD service, CPU charges, RPC round-trips)
        yields to whichever session wakes earliest instead of
        monopolizing the clock, so thousands of logical clients share
        the engine the way the paper's Figure 7/9 elasticity experiments
        assume.  With no scheduler running, the engine behaves exactly
        as the single-stream benches always have.
        """
        from repro.sim.sessions import SessionScheduler

        return SessionScheduler(self.clock)

    def attach_tracer(self, tracer) -> None:
        """Share one tracer across every instrumented layer.

        Benchmark drivers call this with their own :class:`Tracer` to
        collect spans from several engines into one trace; passing
        :data:`NULL_TRACER` detaches tracing again.
        """
        self.tracer = tracer
        self.buffer.tracer = tracer
        self.txn_manager.tracer = tracer
        for dbspace in self.cloud_dbspaces().values():
            io = dbspace.io
            io.tracer = tracer
            client = getattr(io, "client", None)
            if client is not None:
                client.tracer = tracer
                client.store.tracer = tracer

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    def _build_user_dbspace(self) -> PageStore:
        cfg = self.config
        if cfg.user_volume == "s3":
            profile = ObjectStoreProfile(
                name="s3",
                consistency=cfg.consistency,
                per_prefix_put_rate=3500.0 * cfg.op_scale,
                per_prefix_get_rate=5500.0 * cfg.op_scale,
            )
            self.object_store = SimulatedObjectStore(
                profile,
                clock=self.clock,
                rng=self.rng.substream("s3"),
                bandwidth=self.nic,
                meter=self.meter,
                fault_schedule=cfg.fault_schedule,
            )
            if cfg.replication is not None:
                # The single-region store becomes the primary region of a
                # replicated store; its RNG substreams and request path
                # are untouched, so the default path stays byte-identical
                # and replication only adds secondaries around it.
                self.object_store = build_replicated_store(
                    cfg.replication, self.object_store, self.rng
                )
            self.object_client = RetryingObjectClient(
                self.object_store,
                policy=cfg.retry,
                parallel_window=cfg.parallel_window,
                node_id=cfg.node_id,
                breaker=cfg.breaker,
                hedge=cfg.hedge,
                rng=self.rng.substream("object-client"),
                coalesce_gets=cfg.coalesce_gets,
                coalesce_puts=cfg.coalesce_puts,
                verify_reads=cfg.verify_reads,
            )
            if cfg.ocm_enabled:
                ssd = scaled_profile(
                    raid0(
                        [nvme_ssd(f"nvme{i}") for i in range(cfg.ocm_ssd_count)],
                        name="ocm-raid0",
                    ),
                    cfg.rate_scale,
                    cfg.op_scale,
                )
                self.ocm = ObjectCacheManager(
                    self.object_client,
                    ssd,
                    OcmConfig(
                        capacity_bytes=cfg.ocm_capacity_bytes,
                        upload_window=cfg.ocm_upload_window,
                        read_window=cfg.parallel_window,
                        adaptive_read_routing=cfg.ocm_adaptive_routing,
                        policy=cfg.ocm_policy,
                        adaptive_upload_window=cfg.adaptive_upload_window,
                        group_commit_flush=cfg.group_commit_flush,
                        max_pending_uploads=cfg.ocm_max_pending_uploads,
                    ),
                    rng=self.rng.substream("ocm"),
                )
                io = self.ocm
            else:
                io = DirectObjectIO(self.object_client)
            encryptor = (
                PageEncryptor(cfg.encryption_key)
                if cfg.encryption_key is not None
                else None
            )
            return CloudDbspace(
                USER_DBSPACE, io, self.key_cache,
                prefix_bits=cfg.prefix_bits, encryptor=encryptor,
                page_checksums=cfg.page_checksums,
            )
        if cfg.user_volume in ("ebs", "efs"):
            if cfg.user_volume == "ebs":
                profile = ebs_gp2(cfg.user_volume_size_bytes, name="user-gp2")
            else:
                profile = efs_standard(cfg.user_volume_size_bytes, name="user-efs")
            profile = scaled_profile(profile, cfg.rate_scale, cfg.op_scale)
            blocks = cfg.user_volume_size_bytes // self.page_config.block_size
            self.user_device = BlockDevice(
                profile,
                self.page_config.block_size,
                blocks,
                clock=self.clock,
                rng=self.rng.substream("user-device"),
            )
            return BlockDbspace(USER_DBSPACE, self.user_device)
        raise EngineError(
            f"unknown user volume kind {cfg.user_volume!r} "
            "(expected 's3', 'ebs' or 'efs')"
        )

    def _check_usable(self) -> None:
        if self.crashed:
            raise EngineError("the database is crashed; call restart() first")

    # ------------------------------------------------------------------ #
    # dbspace management
    # ------------------------------------------------------------------ #

    def create_cloud_dbspace(
        self,
        name: str,
        page_size: "Optional[int]" = None,
        profile: "Optional[ObjectStoreProfile]" = None,
        prefix_bits: "Optional[int]" = None,
    ) -> CloudDbspace:
        """CREATE DBSPACE ... USING OBJECT STORE: an additional bucket.

        The paper lets users mix dbspaces across providers and proposes
        per-dbspace page sizes as future work; both are supported here.
        The new dbspace shares the global key space (the Object Key
        Generator) and the node NIC, but has its own bucket (and optional
        page size and store profile — e.g. an Azure-Blob-like one).
        """
        self._check_usable()
        if name in self.node.dbspaces():
            raise EngineError(f"dbspace {name!r} already exists")
        if page_size is not None and (
            page_size <= 0 or page_size % 16 != 0
        ):
            raise EngineError("page size must be a positive multiple of 16")
        cfg = self.config
        store_profile = profile or ObjectStoreProfile(
            name=name,
            consistency=cfg.consistency,
            per_prefix_put_rate=3500.0 * cfg.op_scale,
            per_prefix_get_rate=5500.0 * cfg.op_scale,
        )
        store = SimulatedObjectStore(
            store_profile,
            clock=self.clock,
            rng=self.rng.substream(f"store/{name}"),
            bandwidth=self.nic,
            meter=self.meter,
        )
        client = RetryingObjectClient(
            store, policy=cfg.retry, parallel_window=cfg.parallel_window,
            node_id=cfg.node_id, breaker=cfg.breaker, hedge=cfg.hedge,
            rng=self.rng.substream(f"object-client/{name}"),
            coalesce_gets=cfg.coalesce_gets,
            coalesce_puts=cfg.coalesce_puts,
            verify_reads=cfg.verify_reads,
        )
        encryptor = (
            PageEncryptor(cfg.encryption_key)
            if cfg.encryption_key is not None
            else None
        )
        client.tracer = self.tracer
        store.tracer = self.tracer
        dbspace = CloudDbspace(
            name,
            DirectObjectIO(client),
            self.key_cache,
            prefix_bits=cfg.prefix_bits if prefix_bits is None else prefix_bits,
            encryptor=encryptor,
            page_size_limit=page_size,
            page_checksums=cfg.page_checksums,
        )
        self.node.add_dbspace(name, dbspace)
        self.txn_manager.register_gc_dbspace(name, dbspace)
        if self.snapshot_manager is not None:
            self.snapshot_manager.register_dbspace(name, dbspace)
        return dbspace

    def cloud_dbspaces(self) -> "Dict[str, CloudDbspace]":
        """All registered cloud dbspaces, by name."""
        return {
            name: store
            for name, store in self.node.dbspaces().items()
            if isinstance(store, CloudDbspace)
        }

    def page_size_for(self, dbspace: str) -> int:
        """Effective page size of a dbspace (its override or the default)."""
        store = self.node.dbspace(dbspace)
        return store.page_size_limit or self.page_config.page_size

    # ------------------------------------------------------------------ #
    # DDL and transactions
    # ------------------------------------------------------------------ #

    def create_object(self, name: str, dbspace: str = USER_DBSPACE) -> int:
        """Register a paged storage object (autocommitted, logged DDL)."""
        self._check_usable()
        if dbspace not in self.node.dbspaces():
            raise EngineError(f"unknown dbspace {dbspace!r}")
        object_id = self.catalog.register_object(name, dbspace)
        crash_point(CP_CREATE_OBJECT_BEFORE_LOG)
        self.log.append(
            OBJECT_CREATED,
            {"name": name, "dbspace": dbspace, "object_id": object_id},
        )
        return object_id

    def begin(self) -> Transaction:
        self._check_usable()
        return self.txn_manager.begin(self.node)

    def commit(self, txn: Transaction) -> None:
        self._check_usable()
        with self.tracer.span("commit", "engine", txn_id=txn.txn_id):
            self.txn_manager.commit(txn)

    def rollback(self, txn: Transaction) -> None:
        self._check_usable()
        self.txn_manager.rollback(txn)

    # ------------------------------------------------------------------ #
    # page-level convenience API
    # ------------------------------------------------------------------ #

    def open_for_read(self, txn: Transaction, name: str) -> ObjectHandle:
        return self.txn_manager.open_for_read(txn, name)

    def open_for_write(self, txn: Transaction, name: str) -> ObjectHandle:
        return self.txn_manager.open_for_write(txn, name)

    def write_page(self, txn: Transaction, name: str, page_no: int,
                   data: bytes) -> None:
        with self.tracer.span("write_page", "engine",
                              object=name, page_no=page_no):
            handle = self.open_for_write(txn, name)
            self.buffer.write_page(handle, page_no, data)

    def read_page(self, txn: Transaction, name: str, page_no: int) -> bytes:
        with self.tracer.span("read_page", "engine",
                              object=name, page_no=page_no):
            handle = self.open_for_read(txn, name)
            return self.buffer.get_page(handle, page_no)

    def prefetch(self, txn: Transaction, name: str,
                 page_nos: "List[int]") -> int:
        with self.tracer.span("prefetch", "engine",
                              object=name, pages=len(page_nos)):
            handle = self.open_for_read(txn, name)
            return self.buffer.prefetch(handle, page_nos,
                                        window=self.config.parallel_window)

    # ------------------------------------------------------------------ #
    # checkpointing, crash, restart
    # ------------------------------------------------------------------ #

    def _freelists(self) -> "Dict[str, bytes]":
        freelists = {SYSTEM_DBSPACE: self.system_dbspace.freelist.to_bytes()}
        if isinstance(self.user_dbspace, BlockDbspace):
            freelists[USER_DBSPACE] = self.user_dbspace.freelist.to_bytes()
        return freelists

    def checkpoint(self) -> None:
        """Persist recovery state: catalog, freelists, keygen, chain."""
        self._check_usable()
        freelist_objects = {SYSTEM_DBSPACE: self.system_dbspace.freelist}
        if isinstance(self.user_dbspace, BlockDbspace):
            freelist_objects[USER_DBSPACE] = self.user_dbspace.freelist
        state = encode_checkpoint(
            self.catalog,
            self.keygen,
            freelist_objects,
            self.txn_manager.chain_state(),
            self.txn_manager.commit_seq,
        )
        crash_point(CP_CHECKPOINT_BEFORE_WRITE)
        self.log.checkpoint(state)

    def crash(self) -> None:
        """Simulate a node crash: volatile state vanishes, storage survives.

        Only transactions running *on this node* abort; in a multiplex,
        secondary nodes' transactions survive a coordinator crash and are
        re-adopted after recovery (Table 1, clocks 110-130).
        """
        if self.crashed:
            raise EngineError("the database is already crashed")
        for txn in self.txn_manager.active_transactions():
            if txn.node_id == self.config.node_id:
                self.txn_manager.abort_in_crash(txn)
        self.node.invalidate_caches()
        if self.ocm is not None:
            self.ocm.invalidate_all()
        self.key_cache.drop_cached_range()
        self.crashed = True

    def crash_from(self, exc: SimulatedCrash) -> None:
        """Translate a fired crash point into ordinary crash semantics.

        Idempotent over an already-crashed node: a point that fires during
        recovery (restart GC, checkpoint) leaves the node crashed again
        only if it had already been marked healthy.
        """
        self.last_crash_point = exc.point
        if not self.crashed:
            self.crash()

    def restart(self) -> None:
        """Crash recovery: checkpoint + log replay + restart GC."""
        if not self.crashed:
            raise EngineError("restart() is only valid after crash()")
        span = self.tracer.begin("replay", "recovery")
        recovered = recover(self.log)
        self.tracer.finish(
            span,
            replayed_commits=recovered.replayed_commits,
            replayed_allocations=recovered.replayed_allocations,
        )
        self.catalog = recovered.catalog
        self.keygen = recovered.keygen
        if SYSTEM_DBSPACE in recovered.freelists:
            self.system_dbspace.freelist = recovered.freelists[SYSTEM_DBSPACE]
        if (
            isinstance(self.user_dbspace, BlockDbspace)
            and USER_DBSPACE in recovered.freelists
        ):
            self.user_dbspace.freelist = recovered.freelists[USER_DBSPACE]
        self.key_cache = NodeKeyCache(
            self.config.node_id, self.keygen.allocate_range, self.clock.now
        )
        if isinstance(self.user_dbspace, CloudDbspace):
            self.user_dbspace.key_source = self.key_cache
        self.txn_manager = TransactionManager(
            self.catalog,
            self.log,
            keygen=self.keygen,
            gc_dbspaces=self.node.dbspaces(),
            snapshot_manager=self.snapshot_manager,
            identity_write_cost=lambda: self.system_device.charge_write(256),
        )
        self.txn_manager.restore_chain(
            [entry.to_payload() for entry in recovered.chain_entries]
        )
        self.crashed = False
        crash_point(CP_RESTART_BEFORE_GC)
        self._restart_gc()
        self.checkpoint()

    def _restart_gc(self) -> int:
        """Poll and reclaim this node's outstanding key allocations.

        The key space is global across cloud dbspaces, so every cloud
        bucket is polled for each outstanding key.  The active set is
        cleared only *after* every key was polled: clearing first would
        lose the remaining keys forever if the node died mid-poll, since
        the cleared set exists only in coordinator memory (polls are
        idempotent, so re-polling after another crash is safe).
        """
        active = self.keygen.active_set(self.config.node_id)
        stores = list(self.cloud_dbspaces().values())
        reclaimed = 0
        polled = 0
        if active.key_count():
            self._fence_in_flight_writes(stores)
        with self.tracer.span("restart_gc", "recovery",
                              node=self.config.node_id):
            for lo, hi in active.intervals():
                for key in range(lo, hi + 1):
                    crash_point(CP_RESTART_GC_MID_POLL)
                    polled += 1
                    for store in stores:
                        if store.poll_and_free(key):
                            reclaimed += 1
            self.keygen.clear_active_set(self.config.node_id)
        self.metrics.counter("restart_gc_polled_keys").increment(polled)
        return reclaimed

    def _fence_in_flight_writes(self, stores: "List[CloudDbspace]") -> None:
        """Wait out every accepted-but-unsettled store request.

        Polling before a dead node's in-flight puts have settled lets a
        late-completing put outrun the poll's blind delete under
        last-writer-wins, resurrecting the orphan.  Restart GC therefore
        fences: the clock advances past the stores' write horizon so the
        deletes it issues are unambiguously last.
        """
        horizon = 0.0
        for dbspace in stores:
            store = getattr(dbspace.io, "client", None)
            store = getattr(store, "store", None)
            if store is not None and hasattr(store, "write_horizon"):
                horizon = max(horizon, store.write_horizon())
        if horizon > self.clock.now():
            self.clock.advance_to(horizon + 1e-6)

    # ------------------------------------------------------------------ #
    # snapshots & point-in-time restore
    # ------------------------------------------------------------------ #

    def create_snapshot(self) -> Snapshot:
        """Near-instantaneous snapshot: metadata only (Section 5)."""
        self._check_usable()
        if self.snapshot_manager is None:
            raise EngineError(
                "snapshots need retention_seconds > 0 in DatabaseConfig"
            )
        snapshot = self.snapshot_manager.create_snapshot(
            self.catalog.to_bytes(),
            self.keygen.max_allocated_key,
            self._freelists(),
            max_consumed_key=self.key_cache.last_consumed,
        )
        crash_point(CP_SNAPSHOT_BEFORE_LOG)
        self.log.append(
            SNAPSHOT_CREATED,
            {
                "snapshot_id": snapshot.snapshot_id,
                "max_allocated_key": snapshot.max_allocated_key,
            },
        )
        crash_point(CP_SNAPSHOT_AFTER_LOG)
        # Charge the small metadata backup (system dbspace write).
        self.system_device.charge_write(
            len(snapshot.catalog_bytes) + len(snapshot.snapmgr_metadata)
        )
        return snapshot

    def restore_snapshot(self, snapshot_id: int) -> None:
        """Point-in-time restore to a snapshot within the retention period."""
        self._check_usable()
        if self.snapshot_manager is None:
            raise EngineError("no snapshot manager configured")
        snapshot = self.snapshot_manager.get_snapshot(snapshot_id)
        for txn in self.txn_manager.active_transactions():
            self.txn_manager.rollback(txn)
        current_max = self.keygen.max_allocated_key
        self.catalog = Catalog.from_bytes(snapshot.catalog_bytes)
        # Thanks to monotonic allocation, keys consumed after the snapshot
        # all lie above the snapshot's consumption floor; poll them for GC,
        # skipping anything the restored catalog or the snapshot's captured
        # retention FIFO still references.  The FIFO switch itself is a
        # durable-metadata write and happens only after the polls: a crash
        # at the point below recovers to the pre-restore state with the
        # pre-restore FIFO fully intact, so nothing leaks.
        cloud_stores = self.cloud_dbspaces()
        if cloud_stores:
            crash_point(CP_RESTORE_BEFORE_POLL)
            keep = self._reachable_cloud_keys()
            for __, locator, __expiry in SnapshotManager.decode_metadata(
                snapshot.snapmgr_metadata
            ):
                keep.add(locator)
            floor = snapshot.max_consumed_key or snapshot.max_allocated_key
            for key in range(floor + 1, current_max + 1):
                if key in keep:
                    continue
                for store in cloud_stores.values():
                    store.poll_and_free(key)
        self.snapshot_manager.restore_metadata(snapshot.snapmgr_metadata)
        for name, payload in snapshot.freelists.items():
            from repro.blockstore.freelist import Freelist

            if name == SYSTEM_DBSPACE:
                self.system_dbspace.freelist = Freelist.from_bytes(payload)
            elif name == USER_DBSPACE and isinstance(self.user_dbspace, BlockDbspace):
                self.user_dbspace.freelist = Freelist.from_bytes(payload)
        self.txn_manager = TransactionManager(
            self.catalog,
            self.log,
            keygen=self.keygen,
            gc_dbspaces=self.node.dbspaces(),
            snapshot_manager=self.snapshot_manager,
            identity_write_cost=lambda: self.system_device.charge_write(256),
        )
        self.node.invalidate_caches()
        self.checkpoint()

    def open_snapshot_view(self, snapshot_id: int) -> "SnapshotView":
        """A read-only, query-capable view over a past snapshot.

        The paper lists read-only views over snapshots (without restoring
        the database) as future work; retention makes them possible: every
        page a live snapshot references is still on the object store.  The
        view is a session-like object usable with
        :class:`~repro.columnar.query.QueryContext`.
        """
        self._check_usable()
        if self.snapshot_manager is None:
            raise EngineError("no snapshot manager configured")
        snapshot = self.snapshot_manager.get_snapshot(snapshot_id)
        return SnapshotView(self, snapshot)

    def _reachable_cloud_keys(self) -> "set[int]":
        """Object keys reachable from the current catalog (metadata walk)."""
        keep: "set[int]" = set()
        for identity in self.catalog.all_identities():
            try:
                store = self.node.dbspace(identity.dbspace)
            except KeyError:
                continue
            if not store.is_cloud or identity.root_locator == NULL_LOCATOR:
                continue
            blockmap = Blockmap(
                store,
                root_locator=identity.root_locator,
                height=identity.height,
            )
            for locator in blockmap.live_locators():
                if is_object_key(locator):
                    keep.add(locator)
        return keep

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def user_data_bytes(self) -> int:
        """Compressed bytes at rest in the user dbspace."""
        return self.user_dbspace.stored_bytes()

    def monthly_storage_cost(self) -> float:
        """USD per month for the user dbspace's data at rest (Table 4)."""
        volume = {"s3": "s3", "ebs": "ebs-gp2", "efs": "efs"}[
            self.config.user_volume
        ]
        return self.meter.storage_monthly_cost(volume, self.user_data_bytes())

    def stats(self) -> "Dict[str, object]":
        out: Dict[str, object] = {
            "clock_seconds": self.clock.now(),
            "buffer": self.buffer.stats(),
            "txn": dict(self.txn_manager.stats),
            "user_data_bytes": self.user_data_bytes(),
        }
        if self.ocm is not None:
            out["ocm"] = self.ocm.stats()
        if self.object_store is not None:
            out["object_store"] = self.object_store.metrics.snapshot()
        return out
