"""Lightweight metrics: counters, histograms and time series.

The benchmark harness reads these to produce the paper's tables and figures
(e.g. OCM hit/miss counts for Table 5, NIC bandwidth samples for Figure 8).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def increment(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value:g})"


class Gauge:
    """A point-in-time value that can move both ways (queue depths, states)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def increment(self, amount: float = 1.0) -> None:
        self._value += amount

    def decrement(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self._value:g})"


class Histogram:
    """Stores observations; offers mean/percentile/geomean summaries.

    Percentile queries keep a cached sorted copy of the observations,
    invalidated by :meth:`observe`: the load harness asks for
    p50/p95/p99 over per-request latencies after every ramp stage, and
    re-sorting the full list on each call is quadratic once thousands of
    sessions contribute observations.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []
        self._sorted: "Optional[List[float]]" = None

    def observe(self, value: float) -> None:
        self._values.append(float(value))
        self._sorted = None

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        if other._values:
            self._values.extend(other._values)
            self._sorted = None

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def values(self) -> "List[float]":
        return list(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile; ``q`` in [0, 100]."""
        if not self._values:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q!r}")
        if self._sorted is None:
            self._sorted = sorted(self._values)
        ordered = self._sorted
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def geomean(self) -> float:
        """Geometric mean of positive observations (paper's query summary)."""
        positives = [v for v in self._values if v > 0]
        if not positives:
            return 0.0
        return math.exp(sum(math.log(v) for v in positives) / len(positives))

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class TimeSeries:
    """(virtual-time, value) samples; supports bucketed rate aggregation."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[Tuple[float, float]] = []

    def record(self, when: float, value: float) -> None:
        # Samples may arrive out of time order (asynchronous background
        # work is scheduled lazily); consumers sort or bucket as needed.
        self._samples.append((when, float(value)))

    @property
    def samples(self) -> "List[Tuple[float, float]]":
        return sorted(self._samples)

    def value_at(self, when: float) -> "Optional[float]":
        """Step-function read: the last recorded value at or before ``when``.

        Gauges-over-time (node counts, queue depths) are step functions;
        this answers "what was the value at time t" without the caller
        re-sorting the samples.  Returns ``None`` before the first sample.
        """
        best_when: "Optional[float]" = None
        best: "Optional[float]" = None
        for t, value in self._samples:
            if t <= when and (best_when is None or t >= best_when):
                best_when, best = t, value
        return best

    def bucketed_sum(self, bucket_seconds: float) -> "List[Tuple[float, float]]":
        """Sum sample values per fixed-width time bucket.

        Returns ``(bucket_start_time, sum)`` pairs for non-empty buckets.
        Used e.g. to turn per-request byte counts into a bandwidth curve.
        """
        if bucket_seconds <= 0:
            raise ValueError("bucket width must be positive")
        buckets: Dict[int, float] = {}
        for when, value in self._samples:
            buckets.setdefault(int(when // bucket_seconds), 0.0)
            buckets[int(when // bucket_seconds)] += value
        return [
            (index * bucket_seconds, total)
            for index, total in sorted(buckets.items())
        ]

    def __repr__(self) -> str:
        return f"TimeSeries({self.name!r}, samples={len(self._samples)})"


class MetricNameCollisionError(ValueError):
    """A metric name was registered under two different kinds.

    ``snapshot()`` flattens counters and gauges into one dict, so a gauge
    named like a counter would silently shadow it there; the registry now
    rejects the collision at registration time instead.
    """


class MetricsRegistry:
    """A named collection of metrics, one per simulated component.

    Names are unique across kinds: registering e.g. a gauge with the name
    of an existing counter raises :class:`MetricNameCollisionError` (the
    flat :meth:`snapshot` view would otherwise silently drop one of them).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}
        self._kinds: Dict[str, str] = {}

    def _claim(self, name: str, kind: str) -> None:
        existing = self._kinds.get(name)
        if existing is None:
            self._kinds[name] = kind
        elif existing != kind:
            raise MetricNameCollisionError(
                f"metric name {name!r} is already registered as a "
                f"{existing}; cannot also register it as a {kind}"
            )

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._claim(name, "counter")
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._claim(name, "gauge")
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._claim(name, "histogram")
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._claim(name, "series")
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def counters(self) -> "Iterable[Counter]":
        return self._counters.values()

    def histograms(self) -> "Dict[str, Histogram]":
        return dict(self._histograms)

    def snapshot(self) -> "Dict[str, float]":
        """Flat view of all counter and gauge values (reports and tests)."""
        out = {name: c.value for name, c in self._counters.items()}
        out.update({name: g.value for name, g in self._gauges.items()})
        return out


def labeled_histograms(registry: "MetricsRegistry",
                       base: str) -> "Dict[str, Histogram]":
    """Histograms named ``base`` or ``base:{label}``, keyed by label.

    Components that split one logical metric per region/tenant register
    ``name:{label}`` twins (e.g. the resilient client's
    ``get_latency:us-east-1``); the unlabeled original maps to ``""``.
    Reports aggregate across the whole family instead of reading only the
    unlabeled name — which silently holds nothing in replicated runs.
    """
    out: "Dict[str, Histogram]" = {}
    prefix = base + ":"
    for name, histogram in registry.histograms().items():
        if name == base:
            out[""] = histogram
        elif name.startswith(prefix):
            out[name[len(prefix):]] = histogram
    return out


def merged_histogram(registry: "MetricsRegistry", base: str) -> Histogram:
    """One histogram holding the union of a labeled family's observations."""
    merged = Histogram(base)
    for histogram in labeled_histograms(registry, base).values():
        merged.merge(histogram)
    return merged


def snapshot_delta(before: "Dict[str, float]",
                   after: "Dict[str, float]") -> "Dict[str, float]":
    """Per-metric change between two :meth:`MetricsRegistry.snapshot` calls.

    Metrics absent from ``before`` count from zero; only non-zero deltas
    are reported.  Benchmarks use this to attribute request counts to one
    workload phase.
    """
    delta: "Dict[str, float]" = {}
    for name, value in after.items():
        change = value - before.get(name, 0.0)
        if change:
            delta[name] = change
    return delta
