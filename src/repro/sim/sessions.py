"""Event-driven session scheduler: thousands of logical clients, one clock.

Everything in the simulation charges durations to one
:class:`~repro.sim.clock.VirtualClock`.  Historically a benchmark was a
single stream: each operation ran to completion, advancing the clock as it
went, so "concurrency" could only be approximated by running streams back
to back.  The :class:`SessionScheduler` replaces that with a discrete-event
design:

- every logical client is a **session** running its ordinary synchronous
  code (the full engine stack: buffer, OCM, client, store) on a dedicated
  coroutine-style worker thread;
- the scheduler keeps an **event heap** of ``(wakeup_time, seq, session)``
  entries and hands control to exactly one session at a time — the one
  with the earliest wakeup;
- any ``clock.advance()`` / ``clock.advance_to()`` made *inside* a session
  becomes a timed wait: the session parks on the heap and other sessions
  run during the gap.  Device models (:class:`~repro.sim.pipes.Pipe`
  FCFS queues, token buckets, the CPU model) are shared, so contention
  between interleaved sessions emerges from the same reservation
  machinery the single-stream benches use.

Determinism: handoff is strict (never two runnable sessions at once), the
heap order is a total order via the monotone sequence number, and no wall
clock or OS scheduling decision is ever consulted — a run is a pure
function of the seed and the session program.  Worker threads are an
implementation detail that lets deep synchronous call stacks suspend
mid-operation without rewriting every layer into generators.

With no scheduler attached the clock behaves exactly as before, keeping
single-stream runs byte-identical (see the golden regression).
"""

from __future__ import annotations

import heapq
import threading
from typing import Callable, List, Optional, Tuple

from repro.sim.clock import VirtualClock

# Worker stacks are small: engine call stacks are a few dozen frames deep,
# and thousands of sessions at the default 8 MiB would bloat virtual
# memory for nothing.
_SESSION_STACK_BYTES = 2 * 1024 * 1024


class SchedulerError(Exception):
    """Misuse of the scheduler (deadlocks, cross-session calls...)."""


class _SessionKilled(BaseException):
    """Raised inside a parked session when the scheduler shuts down.

    Derives from ``BaseException`` so ordinary ``except Exception``
    handlers in session code cannot swallow the shutdown.
    """


class Session:
    """One logical client: a named, schedulable unit of work."""

    def __init__(self, scheduler: "SessionScheduler", session_id: int,
                 name: str, fn: Callable[["Session"], object],
                 tenant: "Optional[str]" = None) -> None:
        self.scheduler = scheduler
        self.session_id = session_id
        self.name = name
        self.tenant = tenant
        self.result: object = None
        self.error: "Optional[BaseException]" = None
        self.finished = False
        self.started_at: "Optional[float]" = None
        self.finished_at: "Optional[float]" = None
        self._fn = fn
        self._thread: "Optional[threading.Thread]" = None
        self._resume = threading.Event()
        self._suspended = False
        self._killed = False

    # -- thread plumbing ------------------------------------------------ #

    def _ensure_thread(self) -> None:
        if self._thread is not None:
            return
        previous = threading.stack_size()
        try:
            try:
                threading.stack_size(_SESSION_STACK_BYTES)
            except (ValueError, RuntimeError):
                pass
            self._thread = threading.Thread(
                target=self._run, name=f"session/{self.name}", daemon=True
            )
            self._thread.start()
        finally:
            try:
                threading.stack_size(previous)
            except (ValueError, RuntimeError):
                pass

    def _run(self) -> None:
        self._resume.wait()
        self._resume.clear()
        scheduler = self.scheduler
        try:
            if not self._killed:
                self.started_at = scheduler.clock.now()
                self.result = self._fn(self)
        except _SessionKilled:
            pass
        except BaseException as error:  # surfaced by run()
            self.error = error
        finally:
            self.finished = True
            self.finished_at = scheduler.clock.now()
            scheduler._on_session_exit(self)

    def sleep(self, seconds: float) -> float:
        """Park this session for ``seconds`` of virtual time."""
        if seconds < 0:
            raise SchedulerError(f"cannot sleep {seconds!r} seconds")
        return self.scheduler.wait_until(
            self.scheduler.clock.now() + seconds, session=self
        )

    def __repr__(self) -> str:
        return f"Session(#{self.session_id} {self.name!r})"


class SessionScheduler:
    """Interleave sessions on a shared clock via an event heap of wakeups."""

    def __init__(self, clock: VirtualClock) -> None:
        self.clock = clock
        self._heap: "List[Tuple[float, int, Session]]" = []
        self._seq = 0
        self._sessions: "List[Session]" = []
        self._current: "Optional[Session]" = None
        self._driver_wake = threading.Event()
        self._unfinished = 0
        self._suspended_count = 0
        self._running = False
        self._handoffs = 0

    # -- public API ----------------------------------------------------- #

    def spawn(self, fn: Callable[[Session], object], *,
              name: "Optional[str]" = None, at: "Optional[float]" = None,
              tenant: "Optional[str]" = None) -> Session:
        """Register a session starting at virtual time ``at`` (default now).

        ``fn`` receives the :class:`Session` and runs synchronously on the
        shared engine stack; its return value lands in ``session.result``.
        """
        session_id = len(self._sessions)
        session = Session(
            self, session_id, name or f"s{session_id}", fn, tenant=tenant
        )
        wake = self.clock.now() if at is None else float(at)
        if wake < self.clock.now():
            raise SchedulerError(
                f"cannot spawn {session.name!r} in the past ({wake!r})"
            )
        self._sessions.append(session)
        self._unfinished += 1
        self._push(wake, session)
        return session

    def run(self, until: "Optional[float]" = None) -> None:
        """Drive the event loop until every session finished (or ``until``).

        Attaches to the clock for the duration so in-session advances park
        on the heap; detaches afterwards, restoring plain clock semantics.
        Raises the first session error (after killing the survivors).
        """
        if self._running:
            raise SchedulerError("run() is not reentrant")
        self._running = True
        self.clock.attach_scheduler(self)
        try:
            while self._heap:
                wake, __, session = heapq.heappop(self._heap)
                if until is not None and wake > until:
                    self._push(wake, session)
                    break
                self.clock._set_now(wake)
                self._switch_to(session)
                if session.error is not None:
                    raise session.error
            if until is None and self._unfinished:
                raise SchedulerError(
                    f"deadlock: {self._suspended_count} suspended "
                    "session(s) can never be resumed"
                )
        finally:
            self._running = False
            self._kill_remaining()
            self.clock.detach_scheduler(self)

    def in_session(self) -> bool:
        """True when the calling thread is the currently scheduled session."""
        current = self._current
        return (
            current is not None
            and current._thread is threading.current_thread()
        )

    def wait_until(self, when: float,
                   session: "Optional[Session]" = None) -> float:
        """Park the calling session until global time reaches ``when``.

        A target at or before the current time returns immediately without
        yielding (zero-length waits would only churn handoffs).  Called by
        the clock on behalf of whatever in-session code advanced it.
        """
        current = self._require_current(session)
        now = self.clock.now()
        if when <= now:
            return now
        self._push(when, current)
        self._yield_from(current)
        return self.clock.now()

    def suspend(self, session: "Optional[Session]" = None) -> float:
        """Park the calling session with *no* wakeup scheduled.

        Admission control and other condition-style waits use this; some
        other session must :meth:`resume` it.  Returns the virtual time at
        resumption.
        """
        current = self._require_current(session)
        current._suspended = True
        self._suspended_count += 1
        self._yield_from(current)
        return self.clock.now()

    def resume(self, session: Session, delay: float = 0.0) -> None:
        """Schedule a suspended session to wake ``delay`` seconds from now."""
        if not session._suspended:
            raise SchedulerError(f"{session!r} is not suspended")
        if delay < 0:
            raise SchedulerError(f"cannot resume after {delay!r} seconds")
        session._suspended = False
        self._suspended_count -= 1
        self._push(self.clock.now() + delay, session)

    @property
    def sessions(self) -> "List[Session]":
        return list(self._sessions)

    @property
    def unfinished(self) -> int:
        """Sessions spawned but not yet finished."""
        return self._unfinished

    def runnable_backlog(self, now: "Optional[float]" = None) -> int:
        """Sessions due to run at or before ``now`` (default: current time).

        A controller-style session reading this sees how far behind the
        event loop is: parked wakeups that have already come due are
        offered work the engine has not absorbed yet.  Purely a function
        of the heap and the virtual clock, so reading it never perturbs
        a run.
        """
        when = self.clock.now() if now is None else now
        return sum(
            1 for wake, __, session in self._heap
            if wake <= when and not session.finished
        )

    @property
    def handoffs(self) -> int:
        """Number of session activations so far (scheduler overhead stat)."""
        return self._handoffs

    # -- internals ------------------------------------------------------ #

    def _push(self, wake: float, session: Session) -> None:
        heapq.heappush(self._heap, (wake, self._seq, session))
        self._seq += 1

    def _require_current(self, session: "Optional[Session]") -> Session:
        current = self._current
        if current is None or not self.in_session():
            raise SchedulerError(
                "wait/suspend called outside the scheduled session"
            )
        if session is not None and session is not current:
            raise SchedulerError(
                f"{session!r} tried to park while {current!r} is scheduled"
            )
        return current

    def _switch_to(self, session: Session) -> None:
        """Hand control to ``session``; block until it parks or finishes."""
        self._handoffs += 1
        self._current = session
        session._ensure_thread()
        session._resume.set()
        self._driver_wake.wait()
        self._driver_wake.clear()
        self._current = None

    def _yield_from(self, session: Session) -> None:
        """Called on the session thread: give control back, await resume."""
        self._driver_wake.set()
        session._resume.wait()
        session._resume.clear()
        if session._killed:
            raise _SessionKilled()

    def _on_session_exit(self, session: Session) -> None:
        if not session._killed:
            self._unfinished -= 1
        self._driver_wake.set()

    def _kill_remaining(self) -> None:
        """Unwind every unfinished session (error or early-exit paths)."""
        for session in self._sessions:
            if session.finished or session._thread is None:
                continue
            session._killed = True
            self._current = session
            session._resume.set()
            self._driver_wake.wait()
            self._driver_wake.clear()
            self._current = None
            if session._thread is not None:
                session._thread.join(timeout=5.0)
        self._heap.clear()
