"""Deterministic crash-point injection (the crash-consistency backstop).

The paper's recovery story (Sections 3-5, Table 1) rests on multi-step
protocols — allocate key, PUT object, append a log record, update the
blockmap, publish the identity — surviving a crash *between any two
steps*.  This module provides named, arm-able crash points so a test or
the crash-exploration harness can make the next traversal of a specific
protocol step raise :class:`SimulatedCrash`, which the engine translates
into its ordinary ``crash()`` semantics.

Instrumented modules register their points at import time and call
:func:`crash_point` at each protocol step.  The check is a dict lookup
plus an integer increment when nothing is armed, so leaving the
instrumentation in hot paths (page writes, uploads) is essentially free.

All points share one process-wide registry (:data:`CRASH_POINTS`): the
simulation is single-threaded and deterministic, and the registry is the
natural rendezvous between the instrumented engine internals — which have
no reference to a :class:`~repro.engine.Database` — and the harness that
arms points.  Arming is one-shot: a fired point disarms itself, so a
recovery pass never re-trips the crash that interrupted it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.sim.metrics import MetricsRegistry


class CrashPointError(Exception):
    """Arming unknown points or invalid arm parameters."""


class SimulatedCrash(Exception):
    """An armed crash point was traversed; the node dies *here*.

    Raised from deep inside a protocol (mid-commit, mid-GC, mid-restart):
    the handler must treat the node's volatile state as garbage and go
    through ``crash()``/``restart()``, exactly as for any other crash.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at point {point!r}")
        self.point = point


@dataclass
class CrashPoint:
    """One named protocol step that can be armed to crash."""

    name: str
    description: str = ""
    hits: int = 0
    fired: int = 0
    # None = disarmed; N = crash on the (N+1)-th traversal from now.
    armed_countdown: "Optional[int]" = None

    @property
    def armed(self) -> bool:
        return self.armed_countdown is not None


class CrashPointRegistry:
    """Named crash points: registration, arming, traversal accounting."""

    def __init__(self) -> None:
        self._points: Dict[str, CrashPoint] = {}
        self._armed_count = 0
        self.fired_total = 0
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register(self, name: str, description: str = "") -> CrashPoint:
        """Declare a point (idempotent; keeps the first description)."""
        point = self._points.get(name)
        if point is None:
            point = CrashPoint(name, description)
            self._points[name] = point
        elif description and not point.description:
            point.description = description
        return point

    def names(self) -> "List[str]":
        return sorted(self._points)

    def points(self) -> "Dict[str, CrashPoint]":
        return dict(self._points)

    def point(self, name: str) -> CrashPoint:
        try:
            return self._points[name]
        except KeyError:
            raise CrashPointError(f"unknown crash point {name!r}") from None

    # ------------------------------------------------------------------ #
    # arming
    # ------------------------------------------------------------------ #

    def arm(self, name: str, skip: int = 0) -> None:
        """Crash on the ``skip + 1``-th traversal of ``name`` from now."""
        if skip < 0:
            raise CrashPointError(f"skip must be >= 0, got {skip}")
        point = self.point(name)
        if point.armed_countdown is None:
            self._armed_count += 1
        point.armed_countdown = skip

    def disarm(self, name: str) -> None:
        point = self.point(name)
        if point.armed_countdown is not None:
            point.armed_countdown = None
            self._armed_count -= 1

    def disarm_all(self) -> None:
        for point in self._points.values():
            point.armed_countdown = None
        self._armed_count = 0

    def armed_points(self) -> "List[str]":
        return sorted(
            name for name, point in self._points.items() if point.armed
        )

    @contextmanager
    def armed(self, name: str, skip: int = 0) -> "Iterator[None]":
        """Arm ``name`` for the duration of a ``with`` block."""
        self.arm(name, skip=skip)
        try:
            yield
        finally:
            self.disarm(name)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #

    def hit(self, name: str) -> None:
        """Record a traversal; raise :class:`SimulatedCrash` if armed."""
        point = self._points.get(name)
        if point is None:
            # Unregistered names are registered on first traversal so ad
            # hoc instrumentation in tests cannot silently miscount.
            point = self.register(name)
        point.hits += 1
        if self._armed_count == 0 or point.armed_countdown is None:
            return
        if point.armed_countdown > 0:
            point.armed_countdown -= 1
            return
        # One-shot: disarm before raising so recovery can traverse the
        # same step without re-crashing.
        point.armed_countdown = None
        self._armed_count -= 1
        point.fired += 1
        self.fired_total += 1
        self.metrics.counter("crashpoints_fired").increment()
        self.metrics.counter(f"crashpoint_fired:{name}").increment()
        raise SimulatedCrash(name)

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    def reset_counts(self) -> None:
        """Zero hit/fired counters (registrations and arming survive)."""
        for point in self._points.values():
            point.hits = 0
            point.fired = 0
        self.fired_total = 0
        self.metrics = MetricsRegistry()

    def snapshot(self) -> "Dict[str, Dict[str, int]]":
        """Machine-readable traversal/fire counts per point."""
        return {
            name: {"hits": point.hits, "fired": point.fired}
            for name, point in sorted(self._points.items())
        }


#: The process-wide registry every instrumented module reports into.
CRASH_POINTS = CrashPointRegistry()


def register_crash_point(name: str, description: str = "") -> str:
    """Module-level registration helper; returns ``name`` for reuse."""
    CRASH_POINTS.register(name, description)
    return name


def crash_point(name: str) -> None:
    """Traverse a crash point (raises :class:`SimulatedCrash` if armed)."""
    CRASH_POINTS.hit(name)
