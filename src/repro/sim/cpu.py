"""CPU time accounting for the simulated instance.

The columnar executor and load engine charge abstract *work units*
(tuple operations) to a :class:`CpuModel`; the model converts them into
virtual seconds given the instance's vCPU count and a parallel fraction
(Amdahl-style), which is what produces the paper's scale-up curves
(Figure 7).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.sim.clock import VirtualClock


class CpuModel:
    """Charges work units against the virtual clock."""

    def __init__(
        self,
        clock: VirtualClock,
        vcpus: int,
        ops_per_second: float = 50e6,
        parallel_fraction: float = 0.97,
    ) -> None:
        if vcpus < 1:
            raise ValueError(f"need at least one vCPU, got {vcpus}")
        if ops_per_second <= 0:
            raise ValueError("ops_per_second must be positive")
        if not 0.0 <= parallel_fraction <= 1.0:
            raise ValueError("parallel fraction must be in [0, 1]")
        self.clock = clock
        self.vcpus = vcpus
        self.ops_per_second = ops_per_second
        self.parallel_fraction = parallel_fraction
        self.total_ops = 0.0

    def seconds_for(self, ops: float) -> float:
        """Virtual seconds a workload of ``ops`` units takes (Amdahl)."""
        if ops < 0:
            raise ValueError(f"cannot charge negative work {ops!r}")
        serial = (1.0 - self.parallel_fraction) * ops
        parallel = self.parallel_fraction * ops / self.vcpus
        return (serial + parallel) / self.ops_per_second

    def charge(self, ops: float) -> float:
        """Advance the clock by the work's duration; return seconds."""
        seconds = self.seconds_for(ops)
        self.total_ops += ops
        self.clock.advance(seconds)
        return seconds


class MorselScheduler:
    """Morsel-driven parallel CPU charging for the vectorized executor.

    The vectorized operators hand work over as ``(ops, rows)``.  Rows are
    split into fixed-size *morsels* which the scheduler dispatches to the
    instance's vCPUs in waves, so a batch's virtual duration is

        waves * (ops / morsels) / rate  +  morsels * dispatch_ops / rate

    where ``waves = ceil(morsels / vcpus)``.  The first term shrinks
    nearly linearly with vCPUs until a batch has fewer morsels than
    cores; the second models the serial scheduler loop that eventually
    binds — which is exactly the mechanism behind the paper's Figure 7
    scale-up curve.  Reading ``cpu.vcpus`` live means re-provisioning an
    instance immediately changes query times without rebuilding anything.

    The scalar executor never routes through this class, so default
    configurations keep their Amdahl charging byte-for-byte.
    """

    def __init__(
        self,
        cpu: CpuModel,
        morsel_rows: int = 4096,
        dispatch_ops: float = 32.0,
        metrics: "Optional[object]" = None,
    ) -> None:
        if morsel_rows < 1:
            raise ValueError(f"morsel_rows must be positive, got {morsel_rows}")
        if dispatch_ops < 0:
            raise ValueError("dispatch_ops cannot be negative")
        self.cpu = cpu
        self.morsel_rows = morsel_rows
        self.dispatch_ops = dispatch_ops
        self.morsels_dispatched = 0
        self.waves_run = 0
        self._morsel_counter = (
            metrics.counter("morsels_dispatched") if metrics is not None else None
        )
        self._wave_counter = (
            metrics.counter("morsel_waves") if metrics is not None else None
        )

    def plan(self, rows: float) -> "tuple[int, int]":
        """(morsels, waves) a batch of ``rows`` splits into right now."""
        morsels = max(1, math.ceil(rows / self.morsel_rows))
        return morsels, math.ceil(morsels / self.cpu.vcpus)

    def seconds_for(self, ops: float, rows: "Optional[float]" = None) -> float:
        """Virtual seconds the batch takes under morsel parallelism."""
        if ops < 0:
            raise ValueError(f"cannot charge negative work {ops!r}")
        morsels, waves = self.plan(rows if rows is not None else ops)
        per_morsel = ops / morsels
        return (
            waves * per_morsel + morsels * self.dispatch_ops
        ) / self.cpu.ops_per_second

    def charge(self, ops: float, rows: "Optional[float]" = None) -> float:
        """Advance the clock by the batch's duration; return seconds."""
        seconds = self.seconds_for(ops, rows)
        morsels, waves = self.plan(rows if rows is not None else ops)
        self.morsels_dispatched += morsels
        self.waves_run += waves
        if self._morsel_counter is not None:
            self._morsel_counter.increment(morsels)
            self._wave_counter.increment(waves)
        self.cpu.total_ops += ops
        self.cpu.clock.advance(seconds)
        return seconds
