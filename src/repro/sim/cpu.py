"""CPU time accounting for the simulated instance.

The columnar executor and load engine charge abstract *work units*
(tuple operations) to a :class:`CpuModel`; the model converts them into
virtual seconds given the instance's vCPU count and a parallel fraction
(Amdahl-style), which is what produces the paper's scale-up curves
(Figure 7).
"""

from __future__ import annotations

from repro.sim.clock import VirtualClock


class CpuModel:
    """Charges work units against the virtual clock."""

    def __init__(
        self,
        clock: VirtualClock,
        vcpus: int,
        ops_per_second: float = 50e6,
        parallel_fraction: float = 0.97,
    ) -> None:
        if vcpus < 1:
            raise ValueError(f"need at least one vCPU, got {vcpus}")
        if ops_per_second <= 0:
            raise ValueError("ops_per_second must be positive")
        if not 0.0 <= parallel_fraction <= 1.0:
            raise ValueError("parallel fraction must be in [0, 1]")
        self.clock = clock
        self.vcpus = vcpus
        self.ops_per_second = ops_per_second
        self.parallel_fraction = parallel_fraction
        self.total_ops = 0.0

    def seconds_for(self, ops: float) -> float:
        """Virtual seconds a workload of ``ops`` units takes (Amdahl)."""
        if ops < 0:
            raise ValueError(f"cannot charge negative work {ops!r}")
        serial = (1.0 - self.parallel_fraction) * ops
        parallel = self.parallel_fraction * ops / self.vcpus
        return (serial + parallel) / self.ops_per_second

    def charge(self, ops: float) -> float:
        """Advance the clock by the work's duration; return seconds."""
        seconds = self.seconds_for(ops)
        self.total_ops += ops
        self.clock.advance(seconds)
        return seconds
