"""End-to-end request tracing on the virtual clock (observability).

The paper's Figure 6 analysis (the Q3/Q4 SSD-saturation anomaly) and the
Table 5 OCM accounting were only possible because the engine could attribute
every page read and write to a layer and a device.  This module gives the
reproduction the same attribution: a :class:`Tracer` records *spans* —
``(name, layer, start, end, attrs)`` intervals on the shared virtual clock —
propagated through the stack::

    query / engine  ->  buffer  ->  ocm / ssd  ->  client / retry  ->  store

so a single query or commit yields a span tree showing where virtual time
goes: SSD reads vs object-store requests vs retry backoff vs breaker
fail-fasts.  Spans carry per-request cost attribution (USD, from the cost
meter's price table) so dollar totals roll up the same tree.

Three consumers are served:

- **latency histograms** per ``layer/op`` (a :class:`MetricsRegistry`
  owned by the tracer; every finished span observes its duration there,
  so span-tree totals and histogram totals reconcile exactly);
- a **Chrome-trace-event exporter** (:meth:`Tracer.to_chrome_trace`):
  the JSON loads directly into ``about://tracing`` / Perfetto, with one
  track per layer;
- a **text flamegraph** (:meth:`Tracer.flame_report`): identical sibling
  spans are folded, so a 10k-span query renders as a readable profile.

Tracing is opt-in: every instrumented component defaults to the shared
:data:`NULL_TRACER`, whose methods are no-ops, and a real tracer can be
toggled with :attr:`Tracer.enabled` (e.g. to skip the bulk-load phase and
trace only the queries).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.sim.clock import VirtualClock
from repro.sim.metrics import MetricsRegistry

# Canonical layer ordering for exports: one Chrome-trace track per layer,
# listed top-of-stack first.
LAYERS = (
    "query", "engine", "buffer", "ocm", "ssd", "client", "retry", "store",
    "recovery", "audit",
)


class TracingError(Exception):
    """Tracer misuse (finishing a span that is not open, bad times)."""


class Span:
    """One attributed interval of virtual time.

    ``end`` may exceed the parent's ``end`` for asynchronous work (an OCM
    cache fill completes after the read that triggered it returns); the
    tree still records *causality* — who issued the work — which is what
    attribution needs.
    """

    __slots__ = ("name", "layer", "start", "end", "attrs", "children")

    def __init__(self, name: str, layer: str, start: float,
                 attrs: "Optional[Dict[str, object]]" = None) -> None:
        self.name = name
        self.layer = layer
        self.start = start
        self.end: "Optional[float]" = None
        self.attrs: "Dict[str, object]" = dict(attrs or {})
        self.children: "List[Span]" = []

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def key(self) -> str:
        return f"{self.layer}/{self.name}"

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        end = "open" if self.end is None else f"{self.end:.6f}"
        return f"Span({self.key!r}, {self.start:.6f}..{end})"


class _SpanContext:
    """``with tracer.span(...)`` sugar over begin/finish."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: "Optional[Span]") -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> "Optional[Span]":
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and self._span is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer.finish(self._span)


class NullTracer:
    """Shared no-op tracer: instrumented code calls it unconditionally."""

    enabled = False

    def begin(self, name: str, layer: str, start: "Optional[float]" = None,
              **attrs: object) -> "Optional[Span]":
        return None

    def finish(self, span: "Optional[Span]", end: "Optional[float]" = None,
               **attrs: object) -> None:
        return None

    def record(self, name: str, layer: str, start: float, end: float,
               **attrs: object) -> "Optional[Span]":
        return None

    def span(self, name: str, layer: str, **attrs: object) -> _SpanContext:
        return _NULL_CONTEXT


NULL_TRACER = NullTracer()
_NULL_CONTEXT = _SpanContext(NULL_TRACER, None)  # type: ignore[arg-type]


class Tracer:
    """Records a span tree on the virtual clock, plus latency histograms.

    Spans form a tree through an explicit open-span stack: a ``begin``
    (or ``record``) while another span is open attaches the new span as
    its child.  Timed-API layers (client, store) pass explicit start/end
    times; clock-advancing layers let ``begin``/``finish`` default to
    ``clock.now()``.

    Every finished span observes its duration in the histogram named
    ``layer/name`` in :attr:`metrics`, so per-layer time totals derived
    from the span tree and from the histograms agree to float precision.
    ``cost_usd`` attributes roll up through :meth:`cost_totals`.
    """

    def __init__(self, clock: VirtualClock, meter: "Optional[object]" = None,
                 enabled: bool = True) -> None:
        self.clock = clock
        self.meter = meter
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.roots: "List[Span]" = []
        self._stack: "List[Span]" = []

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def begin(self, name: str, layer: str, start: "Optional[float]" = None,
              **attrs: object) -> "Optional[Span]":
        """Open a span; subsequent spans nest under it until ``finish``."""
        if not self.enabled:
            return None
        span = Span(name, layer, self.clock.now() if start is None else start,
                    attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: "Optional[Span]", end: "Optional[float]" = None,
               **attrs: object) -> None:
        """Close a span opened by :meth:`begin` (tolerates ``None``)."""
        if span is None:
            return
        if span not in self._stack:
            raise TracingError(f"finishing {span!r} which is not open")
        # Exception paths may unwind past nested begins; close descendants
        # that never finished so the stack stays balanced.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.end is None:
                self._seal(top, None, {"error": top.attrs.get("error", "unwound")})
        self._seal(span, end, attrs)

    def _seal(self, span: Span, end: "Optional[float]",
              attrs: "Dict[str, object]") -> None:
        span.end = self.clock.now() if end is None else end
        if span.end < span.start - 1e-12:
            raise TracingError(
                f"span {span.key!r} ends before it starts "
                f"({span.end!r} < {span.start!r})"
            )
        span.end = max(span.end, span.start)
        if attrs:
            span.attrs.update(attrs)
        self.metrics.histogram(span.key).observe(span.duration)

    def record(self, name: str, layer: str, start: float, end: float,
               **attrs: object) -> "Optional[Span]":
        """A leaf span with explicit times (timed APIs, async completions)."""
        if not self.enabled:
            return None
        span = Span(name, layer, start, attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._seal(span, end, {})
        return span

    def span(self, name: str, layer: str, **attrs: object) -> _SpanContext:
        """Context-manager sugar: begin on entry, finish at clock.now()."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, self.begin(name, layer, **attrs))

    def current(self) -> "Optional[Span]":
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        """Drop all recorded spans and histograms (new trace session)."""
        self.roots = []
        self._stack = []
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #

    def all_spans(self):
        for root in self.roots:
            yield from root.walk()

    def span_count(self) -> int:
        return sum(1 for __ in self.all_spans())

    def layer_totals(self) -> "Dict[str, float]":
        """Summed span durations per layer (inclusive time)."""
        totals: "Dict[str, float]" = {}
        for span in self.all_spans():
            totals[span.layer] = totals.get(span.layer, 0.0) + span.duration
        return totals

    def histogram_totals(self) -> "Dict[str, float]":
        """Summed histogram time per layer — must reconcile with spans."""
        totals: "Dict[str, float]" = {}
        for key, histogram in sorted(self.metrics.histograms().items()):
            layer = key.split("/", 1)[0]
            totals[layer] = totals.get(layer, 0.0) + histogram.total
        return totals

    def cost_totals(self) -> "Dict[str, float]":
        """Summed ``cost_usd`` attributes per layer."""
        totals: "Dict[str, float]" = {}
        for span in self.all_spans():
            cost = span.attrs.get("cost_usd")
            if cost:
                totals[span.layer] = totals.get(span.layer, 0.0) + float(cost)
        return totals

    def latency_rows(self) -> "List[List[object]]":
        """Per-(layer, op) latency table rows for paper-style reports."""
        rows: "List[List[object]]" = []
        for key, hist in sorted(self.metrics.histograms().items()):
            rows.append([
                key,
                hist.count,
                round(hist.total, 6),
                round(hist.mean * 1e3, 3),
                round(hist.percentile(50) * 1e3, 3),
                round(hist.percentile(95) * 1e3, 3),
                round(hist.percentile(99) * 1e3, 3),
            ])
        return rows

    LATENCY_HEADERS = (
        "layer/op", "count", "total (s)", "mean (ms)", "p50 (ms)",
        "p95 (ms)", "p99 (ms)",
    )

    # ------------------------------------------------------------------ #
    # exporters
    # ------------------------------------------------------------------ #

    def to_chrome_trace(self) -> "Dict[str, object]":
        """Chrome trace-event JSON (``about://tracing`` / Perfetto).

        One complete-duration (``ph: "X"``) event per span, one track
        (``tid``) per layer, timestamps in microseconds of virtual time.
        """
        tids = {layer: index + 1 for index, layer in enumerate(LAYERS)}
        events: "List[Dict[str, object]]" = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "repro (virtual time)"},
            }
        ]
        seen_layers: "List[str]" = []
        for span in self.all_spans():
            if span.layer not in tids:
                tids[span.layer] = len(tids) + 1
            if span.layer not in seen_layers:
                seen_layers.append(span.layer)
            events.append({
                "name": span.name,
                "cat": span.layer,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": 1,
                "tid": tids[span.layer],
                "args": {k: v for k, v in span.attrs.items()},
            })
        for layer in seen_layers:
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tids[layer],
                "args": {"name": layer},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)

    def flame_report(self, max_depth: int = 6, min_pct: float = 0.5) -> str:
        """Folded text flamegraph: identical siblings merge into one line.

        Each line shows inclusive virtual seconds, the percentage of its
        root span, and how many sibling spans were folded into it.
        """
        lines: "List[str]" = []
        for root in self.roots:
            base = max(root.duration, 1e-12)
            lines.append(
                f"{root.name} [{root.layer}]  "
                f"{root.duration:.6f}s  100.0%"
            )
            self._render_folded(root.children, base, 1, max_depth, min_pct,
                                lines)
        return "\n".join(lines)

    def _render_folded(self, children: "List[Span]", base: float, depth: int,
                       max_depth: int, min_pct: float,
                       lines: "List[str]") -> None:
        if depth > max_depth or not children:
            return
        folded: "Dict[str, Tuple[float, int, List[Span]]]" = {}
        for child in children:
            total, count, grand = folded.get(child.key, (0.0, 0, []))
            folded[child.key] = (
                total + child.duration, count + 1, grand + child.children
            )
        ordered = sorted(folded.items(), key=lambda item: -item[1][0])
        for key, (total, count, grand) in ordered:
            pct = 100.0 * total / base
            if pct < min_pct:
                continue
            suffix = f"  x{count}" if count > 1 else ""
            lines.append(
                f"{'  ' * depth}{key}  {total:.6f}s  {pct:5.1f}%{suffix}"
            )
            self._render_folded(grand, base, depth + 1, max_depth, min_pct,
                                lines)


def overlap_seconds(a: Span, b: Span) -> float:
    """Virtual seconds during which both spans were in flight.

    Open spans (no end yet) contribute nothing.  Used by pipeline tests
    to assert that batch N's decode genuinely overlaps batch N+1's I/O.
    """
    if a.end is None or b.end is None:
        return 0.0
    return max(0.0, min(a.end, b.end) - max(a.start, b.start))


def load_chrome_trace(path: str) -> "Dict[str, object]":
    """Parse a Chrome-trace JSON and aggregate it per (layer, op).

    Returns ``{"events": n, "rows": [[layer/op, count, total_s], ...],
    "layer_totals": {...}, "cost_totals": {...}}`` — the offline half of
    ``repro report``.
    """
    with open(path) as handle:
        payload = json.load(handle)
    events = payload.get("traceEvents", [])
    rows: "Dict[str, Tuple[int, float]]" = {}
    layer_totals: "Dict[str, float]" = {}
    cost_totals: "Dict[str, float]" = {}
    spans = 0
    for event in events:
        if event.get("ph") != "X":
            continue
        spans += 1
        layer = event.get("cat", "?")
        key = f"{layer}/{event.get('name', '?')}"
        seconds = float(event.get("dur", 0.0)) / 1e6
        count, total = rows.get(key, (0, 0.0))
        rows[key] = (count + 1, total + seconds)
        layer_totals[layer] = layer_totals.get(layer, 0.0) + seconds
        cost = event.get("args", {}).get("cost_usd")
        if cost:
            cost_totals[layer] = cost_totals.get(layer, 0.0) + float(cost)
    return {
        "events": spans,
        "rows": [
            [key, count, round(total, 6)]
            for key, (count, total) in sorted(rows.items())
        ],
        "layer_totals": layer_totals,
        "cost_totals": cost_totals,
    }
