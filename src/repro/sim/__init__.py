"""Deterministic simulation substrate: virtual time, rate limits, devices.

All performance-sensitive components in this reproduction charge their work
(I/O, CPU, RPC) to a shared :class:`~repro.sim.clock.VirtualClock` instead of
wall-clock time.  Real Python code computes real results, while the clock
advances according to device models, which makes benchmark output
deterministic and independent of the host machine.
"""

from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng
from repro.sim.pipes import Pipe, TokenBucket
from repro.sim.devices import QueueingDevice, DeviceProfile
from repro.sim.crashpoints import (
    CRASH_POINTS,
    CrashPointError,
    CrashPointRegistry,
    SimulatedCrash,
    crash_point,
    register_crash_point,
)
from repro.sim.metrics import (
    Counter,
    Histogram,
    MetricNameCollisionError,
    MetricsRegistry,
    TimeSeries,
)
from repro.sim.tracing import NULL_TRACER, Span, Tracer, TracingError

__all__ = [
    "VirtualClock",
    "DeterministicRng",
    "Pipe",
    "TokenBucket",
    "QueueingDevice",
    "DeviceProfile",
    "CRASH_POINTS",
    "CrashPointError",
    "CrashPointRegistry",
    "SimulatedCrash",
    "crash_point",
    "register_crash_point",
    "Counter",
    "Histogram",
    "MetricNameCollisionError",
    "MetricsRegistry",
    "TimeSeries",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "TracingError",
]
