"""A virtual clock shared by every simulated component.

The clock only moves forward.  Components *charge* durations to the clock
(``advance``) or declare that an operation completes at an absolute virtual
time (``advance_to``).  Benchmarks read elapsed virtual seconds through
:meth:`VirtualClock.now` and :class:`Stopwatch`.

With a :class:`~repro.sim.sessions.SessionScheduler` attached, an advance
made from inside a scheduled session becomes a *timed wait*: the session
yields to the scheduler until global virtual time reaches its wakeup, so
other sessions run during the gap instead of the caller monopolizing the
clock.  Without a scheduler (the default), advances behave exactly as they
always have — single-stream benchmarks are byte-identical either way.
"""

from __future__ import annotations


class ClockError(Exception):
    """Raised when a caller tries to move the clock backwards."""


class VirtualClock:
    """Monotonically increasing virtual time, in seconds.

    The clock starts at zero (or at ``start``).  It is deliberately not
    thread-safe: the whole simulation is single-threaded and deterministic.
    (The session scheduler preserves this: it hands control to exactly one
    session at a time, so even its thread-backed sessions never race.)
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)
        self._scheduler = None

    def now(self) -> float:
        """Return the current virtual time in seconds."""
        return self._now

    def attach_scheduler(self, scheduler) -> None:
        """Route in-session advances through ``scheduler`` as timed waits."""
        if self._scheduler is not None and self._scheduler is not scheduler:
            raise ClockError("another session scheduler is already attached")
        self._scheduler = scheduler

    def detach_scheduler(self, scheduler) -> None:
        if self._scheduler is scheduler:
            self._scheduler = None

    @property
    def scheduler(self):
        return self._scheduler

    def _set_now(self, when: float) -> None:
        """Scheduler-internal forward jump (no yield, driver only)."""
        if when < self._now - 1e-12:
            raise ClockError(
                f"cannot move clock backwards from {self._now!r} to {when!r}"
            )
        self._now = max(self._now, when)

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ClockError(f"cannot advance clock by {seconds!r} seconds")
        scheduler = self._scheduler
        if scheduler is not None and scheduler.in_session():
            return scheduler.wait_until(self._now + seconds)
        self._now += seconds
        return self._now

    def advance_to(self, when: float) -> float:
        """Move the clock forward to the absolute time ``when``.

        Moving to a time in the past is an error; moving to the current time
        is a no-op.  Returns the new time.  From inside a scheduled session
        a *past* target is instead a no-op: concurrent sessions may have
        legitimately pushed global time beyond a completion computed before
        the session last yielded, which simply means no further wait.
        """
        scheduler = self._scheduler
        if scheduler is not None and scheduler.in_session():
            return scheduler.wait_until(when)
        if when < self._now - 1e-12:
            raise ClockError(
                f"cannot move clock backwards from {self._now!r} to {when!r}"
            )
        self._now = max(self._now, when)
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"


class Stopwatch:
    """Measure elapsed virtual time across a code region."""

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._start: float = clock.now()
        self._elapsed: float = 0.0
        self._running = False

    def __enter__(self) -> "Stopwatch":
        self._start = self._clock.now()
        self._running = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._elapsed = self._clock.now() - self._start
        self._running = False

    @property
    def elapsed(self) -> float:
        """Elapsed virtual seconds (live while running)."""
        if self._running:
            return self._clock.now() - self._start
        return self._elapsed
