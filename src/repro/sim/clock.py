"""A virtual clock shared by every simulated component.

The clock only moves forward.  Components *charge* durations to the clock
(``advance``) or declare that an operation completes at an absolute virtual
time (``advance_to``).  Benchmarks read elapsed virtual seconds through
:meth:`VirtualClock.now` and :class:`Stopwatch`.
"""

from __future__ import annotations


class ClockError(Exception):
    """Raised when a caller tries to move the clock backwards."""


class VirtualClock:
    """Monotonically increasing virtual time, in seconds.

    The clock starts at zero (or at ``start``).  It is deliberately not
    thread-safe: the whole simulation is single-threaded and deterministic.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    def now(self) -> float:
        """Return the current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ClockError(f"cannot advance clock by {seconds!r} seconds")
        self._now += seconds
        return self._now

    def advance_to(self, when: float) -> float:
        """Move the clock forward to the absolute time ``when``.

        Moving to a time in the past is an error; moving to the current time
        is a no-op.  Returns the new time.
        """
        if when < self._now - 1e-12:
            raise ClockError(
                f"cannot move clock backwards from {self._now!r} to {when!r}"
            )
        self._now = max(self._now, when)
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"


class Stopwatch:
    """Measure elapsed virtual time across a code region."""

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._start: float = clock.now()
        self._elapsed: float = 0.0
        self._running = False

    def __enter__(self) -> "Stopwatch":
        self._start = self._clock.now()
        self._running = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._elapsed = self._clock.now() - self._start
        self._running = False

    @property
    def elapsed(self) -> float:
        """Elapsed virtual seconds (live while running)."""
        if self._running:
            return self._clock.now() - self._start
        return self._elapsed
