"""Generic queueing model of a storage device or network link.

A :class:`QueueingDevice` combines:

- a fixed per-operation base latency (optionally jittered),
- a shared bandwidth :class:`~repro.sim.pipes.Pipe` (bytes/second) through
  which reads *and* writes flow, and
- an optional IOPS pipe (operations/second) modelling throttled volumes
  such as EBS gp2.

Because the bandwidth pipe is first-come-first-served and shared, a burst of
asynchronous writes (as issued by the Object Cache Manager's write-back mode)
pushes subsequent reads behind it in the queue — which is exactly the
SSD-saturation effect the paper observes for Q3/Q4 in Figure 6.

Synchronous callers use :meth:`read` / :meth:`write`, which return the
virtual completion time *without* advancing the shared clock; the caller
decides whether to wait (``clock.advance_to``) or to treat the operation as
background work (fire-and-forget).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.clock import VirtualClock
from repro.sim.metrics import MetricsRegistry
from repro.sim.pipes import Pipe
from repro.sim.rng import DeterministicRng


@dataclass(frozen=True)
class DeviceProfile:
    """Static performance description of a device.

    ``bandwidth`` is in bytes/second and is shared between reads and writes.
    ``iops`` of ``None`` means the device is not operation-throttled.
    ``latency_jitter`` is the relative sigma of a lognormal multiplier
    applied to base latencies (0 disables jitter).
    """

    name: str
    read_latency: float
    write_latency: float
    bandwidth: float
    iops: Optional[float] = None
    latency_jitter: float = 0.0
    # Writes consume this multiple of their bytes on the shared bandwidth
    # pipe (SSD write throughput is far below read throughput, and write
    # amplification makes it worse) — heavy asynchronous write bursts
    # therefore crowd out reads, the paper's Figure 6 anomaly.
    write_cost_multiplier: float = 1.0
    description: str = ""


class QueueingDevice:
    """A device instance with queues, metrics and deterministic jitter."""

    def __init__(
        self,
        profile: DeviceProfile,
        clock: VirtualClock,
        rng: Optional[DeterministicRng] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.profile = profile
        self._clock = clock
        self._rng = rng or DeterministicRng(0, f"device/{profile.name}")
        self.metrics = metrics or MetricsRegistry()
        self._bandwidth = Pipe(profile.bandwidth, name=f"{profile.name}/bw")
        self._iops = (
            Pipe(profile.iops, name=f"{profile.name}/iops")
            if profile.iops is not None
            else None
        )

    @property
    def clock(self) -> VirtualClock:
        return self._clock

    def _jittered(self, latency: float) -> float:
        if self.profile.latency_jitter <= 0:
            return latency
        return latency * self._rng.lognormal(0.0, self.profile.latency_jitter)

    def backlog(self, now: Optional[float] = None) -> float:
        """Seconds of queued (not yet drained) work on the bandwidth pipe."""
        when = self._clock.now() if now is None else now
        return self._bandwidth.backlog(when)

    def _submit(self, now: float, nbytes: int, base_latency: float,
                cost_multiplier: float = 1.0) -> float:
        """Queue one operation; return its virtual completion time."""
        if nbytes < 0:
            raise ValueError(f"operation size cannot be negative: {nbytes!r}")
        start = now
        if self._iops is not None:
            __, start = self._iops.request(start, 1.0)
        __, transfer_done = self._bandwidth.request(
            start, float(nbytes) * cost_multiplier
        )
        return transfer_done + self._jittered(base_latency)

    def read(self, nbytes: int, now: Optional[float] = None) -> float:
        """Queue a read of ``nbytes``; return virtual completion time."""
        when = self._clock.now() if now is None else now
        done = self._submit(when, nbytes, self.profile.read_latency)
        self.metrics.counter("read_ops").increment()
        self.metrics.counter("read_bytes").increment(nbytes)
        self.metrics.histogram("read_latency").observe(done - when)
        self.metrics.series("read_bytes_over_time").record(when, nbytes)
        return done

    def write(self, nbytes: int, now: Optional[float] = None) -> float:
        """Queue a write of ``nbytes``; return virtual completion time."""
        when = self._clock.now() if now is None else now
        done = self._submit(when, nbytes, self.profile.write_latency,
                            self.profile.write_cost_multiplier)
        self.metrics.counter("write_ops").increment()
        self.metrics.counter("write_bytes").increment(nbytes)
        self.metrics.histogram("write_latency").observe(done - when)
        self.metrics.series("write_bytes_over_time").record(when, nbytes)
        return done

    def __repr__(self) -> str:
        return f"QueueingDevice({self.profile.name!r})"


def scaled_profile(profile: DeviceProfile, rate_scale: float,
                   op_scale: "Optional[float]" = None) -> DeviceProfile:
    """Scale a device's *rates* (bandwidth, IOPS) leaving latencies real.

    Used to run scaled-down datasets against proportionally slowed
    hardware so that throughput bottlenecks bind as they would at full
    scale (see DatabaseConfig.rate_scale).
    """
    if rate_scale <= 0:
        raise ValueError(f"rate scale must be positive, got {rate_scale}")
    ops = rate_scale if op_scale is None else op_scale
    return DeviceProfile(
        name=profile.name,
        read_latency=profile.read_latency,
        write_latency=profile.write_latency,
        bandwidth=profile.bandwidth * rate_scale,
        iops=None if profile.iops is None else profile.iops * ops,
        latency_jitter=profile.latency_jitter,
        write_cost_multiplier=profile.write_cost_multiplier,
        description=f"{profile.description} (rates x{rate_scale:g})",
    )


def raid0(profiles: "list[DeviceProfile]", name: str = "raid0") -> DeviceProfile:
    """Combine identical local devices into a single RAID 0 profile.

    The paper bundles the instance's NVMe SSDs into one RAID 0 volume for
    the OCM; bandwidth adds up, latency stays that of a single device.
    """
    if not profiles:
        raise ValueError("raid0 requires at least one device profile")
    first = profiles[0]
    total_bandwidth = sum(p.bandwidth for p in profiles)
    total_iops = None
    if all(p.iops is not None for p in profiles):
        total_iops = sum(p.iops for p in profiles)  # type: ignore[misc]
    return DeviceProfile(
        name=name,
        read_latency=first.read_latency,
        write_latency=first.write_latency,
        bandwidth=total_bandwidth,
        iops=total_iops,
        latency_jitter=first.latency_jitter,
        write_cost_multiplier=first.write_cost_multiplier,
        description=f"RAID 0 of {len(profiles)} x {first.name}",
    )
