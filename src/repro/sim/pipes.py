"""Rate limiting primitives used by all simulated devices.

Two models are provided:

- :class:`Pipe` — a serial server with a fixed service rate.  Requests are
  processed first-come-first-served; a request arriving while the pipe is
  busy queues behind earlier work.  This models bandwidth- and IOPS-limited
  resources (an NVMe channel, an EBS volume, a NIC).
- :class:`TokenBucket` — a classic token bucket allowing bursts up to a
  capacity, refilled at a fixed rate.  This models request-rate throttles
  such as S3's per-prefix request limits.

Both return *virtual* start/completion times and never sleep.
"""

from __future__ import annotations


class Pipe:
    """A first-come-first-served server with a fixed rate (units/second).

    ``request(now, amount)`` reserves ``amount`` units of service starting no
    earlier than ``now`` and no earlier than the completion of previously
    accepted work, returning ``(start, end)`` virtual times.
    """

    def __init__(self, rate: float, name: str = "pipe") -> None:
        if rate <= 0:
            raise ValueError(f"pipe rate must be positive, got {rate!r}")
        self.name = name
        self._rate = float(rate)
        self._next_free = 0.0
        self._busy_seconds = 0.0
        self._total_units = 0.0

    @property
    def rate(self) -> float:
        return self._rate

    @property
    def next_free(self) -> float:
        """Virtual time at which all accepted work will have drained."""
        return self._next_free

    @property
    def busy_seconds(self) -> float:
        """Total service time performed so far."""
        return self._busy_seconds

    @property
    def total_units(self) -> float:
        """Total units of work accepted so far."""
        return self._total_units

    def backlog(self, now: float) -> float:
        """Seconds of queued work remaining at virtual time ``now``."""
        return max(0.0, self._next_free - now)

    def service_time(self, amount: float) -> float:
        """Seconds needed to serve ``amount`` units on an idle pipe."""
        return amount / self._rate

    def eta(self, now: float, amount: float) -> float:
        """Completion estimate for ``amount`` units WITHOUT reserving them.

        Backpressure logic peeks at a pipe's drain horizon to decide
        whether a producer should stall; unlike :meth:`request` this does
        not mutate the queue, so the eventual real request still charges
        the pipe exactly once.
        """
        if amount < 0:
            raise ValueError(f"cannot estimate negative work {amount!r}")
        return max(now, self._next_free) + amount / self._rate

    def request(self, now: float, amount: float) -> "tuple[float, float]":
        """Reserve ``amount`` units of service; return ``(start, end)``."""
        if amount < 0:
            raise ValueError(f"cannot request negative work {amount!r}")
        start = max(now, self._next_free)
        duration = amount / self._rate
        end = start + duration
        self._next_free = end
        self._busy_seconds += duration
        self._total_units += amount
        return start, end

    def __repr__(self) -> str:
        return f"Pipe({self.name!r}, rate={self._rate:g}, next_free={self._next_free:.6f})"


class TokenBucket:
    """A token bucket: ``rate`` tokens/second, burst capacity ``capacity``.

    ``request(now, tokens)`` returns the earliest virtual time at which the
    requested tokens are available, and consumes them.  Requests larger than
    the capacity are allowed and simply take multiple refill periods.
    """

    def __init__(self, rate: float, capacity: float, name: str = "bucket") -> None:
        if rate <= 0:
            raise ValueError(f"bucket rate must be positive, got {rate!r}")
        if capacity <= 0:
            raise ValueError(f"bucket capacity must be positive, got {capacity!r}")
        self.name = name
        self._rate = float(rate)
        self._capacity = float(capacity)
        self._available = float(capacity)
        self._last_time = 0.0
        self._total_tokens = 0.0
        self._throttled_requests = 0

    @property
    def rate(self) -> float:
        return self._rate

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def total_tokens(self) -> float:
        return self._total_tokens

    @property
    def throttled_requests(self) -> int:
        """Number of requests that had to wait for a refill."""
        return self._throttled_requests

    def _refill(self, now: float) -> None:
        if now > self._last_time:
            self._available = min(
                self._capacity,
                self._available + (now - self._last_time) * self._rate,
            )
            self._last_time = now

    def available(self, now: float) -> float:
        """Tokens available at virtual time ``now`` (without consuming)."""
        if now <= self._last_time:
            return self._available
        return min(self._capacity, self._available + (now - self._last_time) * self._rate)

    def request(self, now: float, tokens: float = 1.0) -> float:
        """Consume ``tokens``; return the virtual time they become available."""
        if tokens < 0:
            raise ValueError(f"cannot request negative tokens {tokens!r}")
        self._refill(now)
        self._total_tokens += tokens
        if self._available >= tokens:
            self._available -= tokens
            return max(now, self._last_time)
        # The bucket owes tokens; requests queue from the time the bucket
        # was last drained (which may lie in the future relative to `now`).
        base = max(now, self._last_time)
        deficit = tokens - self._available
        ready = base + deficit / self._rate
        self._available = 0.0
        self._last_time = ready
        self._throttled_requests += 1
        return ready

    def __repr__(self) -> str:
        return (
            f"TokenBucket({self.name!r}, rate={self._rate:g}, "
            f"capacity={self._capacity:g})"
        )
