"""Deterministic random number generation with named substreams.

Every stochastic choice in the simulation (latency jitter, eventual
consistency lag, TPC-H data) draws from a :class:`DeterministicRng` derived
from a single root seed, so that re-running any experiment reproduces the
same virtual timeline bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRng:
    """A seeded random stream that can spawn independent named substreams.

    Substreams are derived by hashing ``(seed, name)`` so that adding a new
    consumer of randomness does not perturb existing streams — a property
    plain sequential ``random.Random`` sharing does not have.
    """

    def __init__(self, seed: int = 0, name: str = "root") -> None:
        self._seed = int(seed)
        self._name = name
        self._random = random.Random(self._derive(seed, name))

    @staticmethod
    def _derive(seed: int, name: str) -> int:
        digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    @property
    def name(self) -> str:
        return self._name

    def substream(self, name: str) -> "DeterministicRng":
        """Return an independent stream derived from this one."""
        return DeterministicRng(self._seed, f"{self._name}/{name}")

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._random.lognormvariate(mu, sigma)

    def randint(self, low: int, high: int) -> int:
        """Random integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def choice(self, seq):
        return self._random.choice(seq)

    def shuffle(self, seq) -> None:
        self._random.shuffle(seq)

    def sample(self, seq, k: int):
        return self._random.sample(seq, k)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def __repr__(self) -> str:
        return f"DeterministicRng(seed={self._seed}, name={self._name!r})"
