"""Object naming: hashed randomized prefixes over 64-bit keys.

AWS throttles request rates *per key prefix*.  The paper therefore prepends
each 64-bit key with a prefix computed by a cheap hash of the key (they cite
the Mersenne Twister); we use the splitmix64 finalizer, which has the same
relevant property — uniform, deterministic dispersion — in a few integer
operations.

The on-bucket name is ``"{hash16}/{key16}"`` (both lower-case hex), so the
original 64-bit key is recoverable from the name (used by GC polling).
"""

from __future__ import annotations

from repro.storage.locator import OBJECT_KEY_BASE

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """The splitmix64 finalizer: a fast, well-dispersed 64-bit hash."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def hashed_object_name(key: int, prefix_bits: int = 16) -> str:
    """Bucket name for a 64-bit object key, with a randomized prefix.

    ``prefix_bits`` controls how many distinct prefixes are generated
    (2^prefix_bits); the ablation benchmark varies this down to 0 to show
    the throttling cost of a single shared prefix.
    """
    if not OBJECT_KEY_BASE <= key < (1 << 64):
        raise ValueError(
            f"object keys live in [2^63, 2^64), got {key:#x}"
        )
    if not 0 <= prefix_bits <= 32:
        raise ValueError(f"prefix_bits must be in [0, 32], got {prefix_bits}")
    if prefix_bits == 0:
        return f"pages/{key:016x}"
    prefix = _splitmix64(key) >> (64 - prefix_bits)
    width = (prefix_bits + 3) // 4
    return f"{prefix:0{width}x}/{key:016x}"


def object_key_from_name(name: str) -> int:
    """Recover the 64-bit key from a bucket object name."""
    __, __, key_hex = name.rpartition("/")
    key = int(key_hex, 16)
    if not OBJECT_KEY_BASE <= key < (1 << 64):
        raise ValueError(f"name {name!r} does not carry a valid object key")
    return key
