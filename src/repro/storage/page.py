"""Page geometry configuration.

SAP IQ uses a database-wide page size (512 KB in the paper's runs); a page
is stored physically as 1-16 contiguous blocks, so the block size is
``page_size / 16``.  The simulation defaults to smaller pages so tests and
benchmarks stay fast; the benchmark harness scales results accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.locator import MAX_BLOCKS_PER_PAGE


@dataclass(frozen=True)
class PageConfig:
    """Database-wide page geometry."""

    page_size: int = 64 * 1024
    codec_name: str = "zlib"

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size % MAX_BLOCKS_PER_PAGE != 0:
            raise ValueError(
                f"page size must be a positive multiple of "
                f"{MAX_BLOCKS_PER_PAGE}, got {self.page_size}"
            )

    @property
    def block_size(self) -> int:
        """A page spans at most 16 blocks, so blocks are page_size/16."""
        return self.page_size // MAX_BLOCKS_PER_PAGE
