"""The blockmap: a copy-on-write tree from logical pages to locators.

Blockmap pages are pages themselves: they are persisted through the owning
dbspace, they get fresh object keys on every flush (cloud), and versioning
cascades bottom-up exactly as in Figure 2 of the paper — flushing a dirty
data page dirties its leaf blockmap page, flushing the leaf dirties its
parent, and the new *root* locator is finally recorded in the identity
object (system catalog).

The tree is copy-on-write at node granularity so that a writer transaction
can fork the committed blockmap cheaply (``fork()``) while concurrent
readers keep using the immutable base — the mechanism behind table-level
MVCC.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Iterator, List, Optional, Protocol, Tuple

from repro.storage.dbspace import PageStore
from repro.storage.locator import NULL_LOCATOR

_HEADER = struct.Struct(">2sBQI")
_SLOT = struct.Struct(">Q")
_MAGIC = b"BM"


class BlockmapError(Exception):
    """Corruption or misuse of the blockmap."""


class GcSink(Protocol):
    """Receives page allocation/replacement events for RF/RB accounting."""

    def on_allocate(self, locator: int) -> None:
        """A fresh locator was written by the current transaction (RB)."""
        ...

    def on_replace(self, old_locator: int, fresh: bool) -> None:
        """``old_locator`` was superseded.  ``fresh`` means it had been
        allocated by the *same* transaction (immediately dead garbage);
        otherwise it belongs to a committed version (deferred GC via RF)."""
        ...


class NullGcSink:
    """Ignores GC events (bootstrap writes, tests)."""

    def on_allocate(self, locator: int) -> None:
        pass

    def on_replace(self, old_locator: int, fresh: bool) -> None:
        pass


class _Node:
    """One blockmap page: ``fanout`` locator slots at (level, index)."""

    __slots__ = ("level", "index", "slots", "dirty", "locator", "fresh")

    def __init__(self, level: int, index: int, slots: "Optional[List[int]]" = None,
                 locator: int = NULL_LOCATOR) -> None:
        self.level = level
        self.index = index
        self.slots: List[int] = slots if slots is not None else []
        self.dirty = locator == NULL_LOCATOR
        self.locator = locator
        # fresh: the node's current on-storage image was written by the
        # transaction currently owning this blockmap (update-in-place is
        # allowed for it on block dbspaces, and its old image is immediately
        # dead rather than RF garbage).
        self.fresh = locator == NULL_LOCATOR

    def get_slot(self, slot: int) -> int:
        if slot < len(self.slots):
            return self.slots[slot]
        return NULL_LOCATOR

    def set_slot(self, slot: int, locator: int) -> None:
        if slot >= len(self.slots):
            self.slots.extend([NULL_LOCATOR] * (slot + 1 - len(self.slots)))
        self.slots[slot] = locator

    def copy(self) -> "_Node":
        clone = _Node(self.level, self.index, list(self.slots), self.locator)
        clone.dirty = self.dirty
        clone.fresh = self.fresh
        return clone

    def to_bytes(self) -> bytes:
        # Trim trailing null slots to keep blockmap pages compact.
        count = len(self.slots)
        while count and self.slots[count - 1] == NULL_LOCATOR:
            count -= 1
        payload = [_HEADER.pack(_MAGIC, self.level, self.index, count)]
        payload.extend(_SLOT.pack(slot) for slot in self.slots[:count])
        return b"".join(payload)

    @classmethod
    def from_bytes(cls, payload: bytes, locator: int) -> "_Node":
        if len(payload) < _HEADER.size:
            raise BlockmapError("truncated blockmap page")
        magic, level, index, count = _HEADER.unpack_from(payload)
        if magic != _MAGIC:
            raise BlockmapError(f"bad blockmap magic {magic!r}")
        expected = _HEADER.size + count * _SLOT.size
        if len(payload) < expected:
            raise BlockmapError("blockmap page shorter than slot count")
        slots = [
            _SLOT.unpack_from(payload, _HEADER.size + i * _SLOT.size)[0]
            for i in range(count)
        ]
        node = cls(level, index, slots, locator)
        node.dirty = False
        node.fresh = False
        return node


class Blockmap:
    """Mapping from logical page numbers to 64-bit locators."""

    def __init__(
        self,
        store: PageStore,
        fanout: int = 512,
        root_locator: int = NULL_LOCATOR,
        height: int = 1,
        base: "Optional[Blockmap]" = None,
    ) -> None:
        if fanout < 2:
            raise BlockmapError(f"fanout must be >= 2, got {fanout}")
        self.store = store
        self.fanout = fanout
        self.root_locator = root_locator
        self.height = max(1, height)
        self._base = base
        self._nodes: Dict[Tuple[int, int], _Node] = {}
        if root_locator == NULL_LOCATOR and base is None:
            # An empty blockmap's root is clean: there is nothing to flush
            # until a mapping dirties it, and clean roots keep fork() legal
            # for freshly registered (version 0, empty) objects.
            root = _Node(self.height - 1, 0)
            root.dirty = False
            self._nodes[(self.height - 1, 0)] = root

    # ------------------------------------------------------------------ #
    # node access
    # ------------------------------------------------------------------ #

    def _load_node(self, level: int, index: int, locator: int) -> _Node:
        payload = self.store.read_page(locator)
        node = _Node.from_bytes(payload, locator)
        if (node.level, node.index) != (level, index):
            raise BlockmapError(
                f"blockmap page at {locator:#x} claims (level={node.level}, "
                f"index={node.index}), expected ({level}, {index})"
            )
        self._nodes[(level, index)] = node
        return node

    def _peek_node(self, level: int, index: int) -> "Optional[_Node]":
        """Find a node without loading from storage (self, then base)."""
        node = self._nodes.get((level, index))
        if node is not None:
            return node
        if self._base is not None:
            return self._base._peek_node(level, index)
        return None

    def _get_node(self, level: int, index: int) -> "Optional[_Node]":
        """Find a node, loading the path from storage if necessary."""
        node = self._peek_node(level, index)
        if node is not None:
            return node
        # Walk down from the root to discover the node's locator.
        if level >= self.height:
            return None
        current = self._root_node()
        if current is None:
            return None
        for walk_level in range(self.height - 1, level, -1):
            child_index = index // (self.fanout ** (walk_level - 1 - level))
            slot = child_index - (child_index // self.fanout) * self.fanout
            child_locator = current.get_slot(slot)
            if child_locator == NULL_LOCATOR:
                return None
            child = self._peek_node(walk_level - 1, child_index)
            if child is None:
                child = self._load_node(walk_level - 1, child_index, child_locator)
            current = child
        return current

    def _root_node(self) -> "Optional[_Node]":
        node = self._peek_node(self.height - 1, 0)
        if node is not None:
            return node
        if self.root_locator == NULL_LOCATOR:
            return None
        return self._load_node(self.height - 1, 0, self.root_locator)

    def _own_node(self, level: int, index: int) -> _Node:
        """Return a node owned (mutable) by this blockmap, creating/copying."""
        node = self._nodes.get((level, index))
        if node is not None:
            return node
        inherited = self._get_node(level, index)
        if inherited is not None and (level, index) not in self._nodes:
            # Copy-on-write from the base (or from a lazily loaded page).
            node = inherited.copy()
            node.fresh = False
        elif inherited is not None:
            node = inherited
        else:
            node = _Node(level, index)
        self._nodes[(level, index)] = node
        return node

    # ------------------------------------------------------------------ #
    # public mapping API
    # ------------------------------------------------------------------ #

    @property
    def capacity(self) -> int:
        """Number of logical pages addressable at the current height."""
        return self.fanout ** self.height

    def _ensure_height(self, page_no: int) -> None:
        while page_no >= self.capacity:
            old_root = self._root_node()
            new_level = self.height
            new_root = _Node(new_level, 0)
            if old_root is not None:
                key = (old_root.level, old_root.index)
                if key not in self._nodes:
                    # The old root is inherited from the base blockmap:
                    # take a private copy before keeping it reachable, or
                    # later mutations would corrupt the shared base.
                    old_root = old_root.copy()
                    old_root.fresh = False
                    self._nodes[key] = old_root
                new_root.set_slot(0, old_root.locator)
            self.height += 1
            self._nodes[(new_level, 0)] = new_root

    def lookup(self, page_no: int) -> int:
        """Locator of logical page ``page_no`` (NULL_LOCATOR if unmapped)."""
        if page_no < 0:
            raise BlockmapError(f"negative logical page {page_no}")
        if page_no >= self.capacity:
            return NULL_LOCATOR
        leaf = self._get_node(0, page_no // self.fanout)
        if leaf is None:
            return NULL_LOCATOR
        return leaf.get_slot(page_no % self.fanout)

    def set(self, page_no: int, locator: int) -> int:
        """Map ``page_no`` to ``locator``; return the previous locator."""
        if page_no < 0:
            raise BlockmapError(f"negative logical page {page_no}")
        self._ensure_height(page_no)
        leaf = self._own_node(0, page_no // self.fanout)
        old = leaf.get_slot(page_no % self.fanout)
        leaf.set_slot(page_no % self.fanout, locator)
        leaf.dirty = True
        return old

    def lookup_many(self, page_nos: "List[int]") -> "List[int]":
        return [self.lookup(page_no) for page_no in page_nos]

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def flush(self, sink: "Optional[GcSink]" = None,
              txn_id: "Optional[int]" = None,
              commit_mode: bool = False) -> int:
        """Persist dirty nodes bottom-up; return the new root locator.

        Every flushed node gets a fresh locator on cloud dbspaces (the
        Figure 2 cascade); replaced locators are reported to ``sink``.
        """
        gc = sink or NullGcSink()
        for level in range(0, self.height):
            dirty_here = [
                node for (node_level, __), node in sorted(self._nodes.items())
                if node_level == level and node.dirty
            ]
            for node in dirty_here:
                old_locator = node.locator
                was_fresh = node.fresh
                new_locator = self.store.write_page(
                    node.to_bytes(),
                    replace_locator=old_locator,
                    in_place_ok=was_fresh,
                    txn_id=txn_id,
                    commit_mode=commit_mode,
                )
                node.dirty = False
                if new_locator != old_locator:
                    node.locator = new_locator
                    node.fresh = True
                    gc.on_allocate(new_locator)
                    if old_locator != NULL_LOCATOR:
                        gc.on_replace(old_locator, fresh=was_fresh)
                    if level + 1 < self.height:
                        parent = self._own_node(level + 1, node.index // self.fanout)
                        parent.set_slot(node.index % self.fanout, new_locator)
                        parent.dirty = True
        root = self._root_node()
        if root is None:
            raise BlockmapError("blockmap has no root after flush")
        self.root_locator = root.locator
        return self.root_locator

    def mark_committed(self) -> None:
        """Drop per-transaction freshness after a commit boundary."""
        for node in self._nodes.values():
            node.fresh = False

    def fork(self) -> "Blockmap":
        """A writable copy-on-write view over this (committed) blockmap."""
        if any(node.dirty for node in self._nodes.values()):
            raise BlockmapError("cannot fork a blockmap with dirty nodes")
        return Blockmap(
            self.store,
            fanout=self.fanout,
            root_locator=self.root_locator,
            height=self.height,
            base=self,
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def mapped_pages(self) -> "Iterator[Tuple[int, int]]":
        """Yield ``(page_no, locator)`` for every mapped logical page.

        Walks the whole tree, loading nodes as needed (test/GC audits).
        """
        root = self._root_node()
        if root is None:
            return
        stack: List[_Node] = [root]
        while stack:
            node = stack.pop()
            if node.level == 0:
                base_page = node.index * self.fanout
                for slot, locator in enumerate(node.slots):
                    if locator != NULL_LOCATOR:
                        yield base_page + slot, locator
                continue
            for slot, locator in enumerate(node.slots):
                if locator == NULL_LOCATOR:
                    continue
                child_index = node.index * self.fanout + slot
                child = self._peek_node(node.level - 1, child_index)
                if child is None:
                    child = self._load_node(node.level - 1, child_index, locator)
                stack.append(child)

    def live_locators(self) -> "Iterator[int]":
        """All reachable locators: data pages plus blockmap pages."""
        root = self._root_node()
        if root is None:
            return
        if root.locator != NULL_LOCATOR:
            yield root.locator
        stack: List[_Node] = [root]
        while stack:
            node = stack.pop()
            if node.level == 0:
                for locator in node.slots:
                    if locator != NULL_LOCATOR:
                        yield locator
                continue
            for slot, locator in enumerate(node.slots):
                if locator == NULL_LOCATOR:
                    continue
                yield locator
                child_index = node.index * self.fanout + slot
                child = self._peek_node(node.level - 1, child_index)
                if child is None:
                    child = self._load_node(node.level - 1, child_index, locator)
                stack.append(child)

    def __repr__(self) -> str:
        return (
            f"Blockmap(store={self.store.name!r}, height={self.height}, "
            f"root={self.root_locator:#x})"
        )
