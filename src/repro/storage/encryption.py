"""Page encryption (Section 4's closing paragraph).

When encryption is enabled, the buffer manager hands pages to the OCM (and
hence to the object store) in encrypted form, so neither the locally
cached copies nor the objects at rest can expose user data.

The cipher is a deterministic keystream XOR derived from SHA-256 over
``(key, nonce, counter)`` with a per-page random nonce and an integrity
tag — an AES-CTR+MAC stand-in with the properties that matter here
(confidentiality of cached/stored images, tamper detection, exact
round-trip) without external dependencies.
"""

from __future__ import annotations

import hashlib
import hmac
import struct

_NONCE_BYTES = 16
_TAG_BYTES = 16
_MAGIC = b"EP1"


class EncryptionError(Exception):
    """Bad keys, corrupt or tampered ciphertext."""


class PageEncryptor:
    """Encrypts/decrypts page images with a database-wide key."""

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise EncryptionError("encryption keys must be >= 16 bytes")
        self._key = bytes(key)
        self._counter = 0

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        for block_no in range((length + 31) // 32):
            blocks.append(
                hashlib.sha256(
                    self._key + nonce + struct.pack(">I", block_no)
                ).digest()
            )
        return b"".join(blocks)[:length]

    def _tag(self, nonce: bytes, ciphertext: bytes) -> bytes:
        return hmac.new(
            self._key, nonce + ciphertext, hashlib.sha256
        ).digest()[:_TAG_BYTES]

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt a page image; output = magic | nonce | tag | body."""
        self._counter += 1
        nonce = hashlib.sha256(
            self._key + struct.pack(">Q", self._counter)
        ).digest()[:_NONCE_BYTES]
        body = bytes(
            a ^ b
            for a, b in zip(plaintext, self._keystream(nonce, len(plaintext)))
        )
        return _MAGIC + nonce + self._tag(nonce, body) + body

    def decrypt(self, payload: bytes) -> bytes:
        """Invert :meth:`encrypt`; raises on tampering or corruption."""
        header = len(_MAGIC) + _NONCE_BYTES + _TAG_BYTES
        if len(payload) < header or not payload.startswith(_MAGIC):
            raise EncryptionError("not an encrypted page image")
        nonce = payload[len(_MAGIC):len(_MAGIC) + _NONCE_BYTES]
        tag = payload[len(_MAGIC) + _NONCE_BYTES:header]
        body = payload[header:]
        if not hmac.compare_digest(tag, self._tag(nonce, body)):
            raise EncryptionError("page integrity check failed")
        return bytes(
            a ^ b for a, b in zip(body, self._keystream(nonce, len(body)))
        )

    @property
    def overhead_bytes(self) -> int:
        """Ciphertext size increase per page."""
        return len(_MAGIC) + _NONCE_BYTES + _TAG_BYTES
