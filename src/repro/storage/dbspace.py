"""Dbspaces: where pages physically live.

A *dbspace* is SAP IQ's unit of physical storage.  This module provides:

- :class:`PageStore` — the I/O surface a dbspace offers to the buffer
  manager and the blockmap: write a page image, read it back by locator,
  free it, all in virtual time with windowed parallelism;
- :class:`BlockDbspace` — a conventional dbspace over a shared block device
  with a freelist allocator (update-in-place allowed within a transaction);
- :class:`CloudDbspace` — a cloud dbspace over an object store: every write
  consumes a *fresh* 64-bit object key (never-write-twice), names are
  prefixed with a randomized hash, and there is no freelist at all;
- :class:`ObjectIO` — the pluggable path from a cloud dbspace to the bucket,
  implemented directly by :class:`DirectObjectIO` or by the Object Cache
  Manager (:mod:`repro.core.ocm`).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.blockstore.device import BlockDevice
from repro.blockstore.freelist import Freelist
from repro.checksum import open_page, seal_page
from repro.objectstore.client import RetryingObjectClient
from repro.sim.crashpoints import crash_point, register_crash_point
from repro.storage.keys import hashed_object_name, object_key_from_name
from repro.storage.locator import (
    NULL_LOCATOR,
    block_range,
    is_object_key,
    make_block_locator,
)

CP_WRITE_PAGE_BEFORE_PUT = register_crash_point(
    "dbspace.write_page.before_put",
    "object key consumed but the PUT never left the node",
)
CP_WRITE_PAGE_AFTER_PUT = register_crash_point(
    "dbspace.write_page.after_put",
    "object uploaded but its locator never reached the caller "
    "(orphan covered by the keygen active set)",
)
CP_WRITE_PAGES_BEFORE_PUT = register_crash_point(
    "dbspace.write_pages.before_put",
    "batch of keys consumed, none of the PUTs issued",
)
CP_FREE_PAGE_BEFORE_DELETE = register_crash_point(
    "dbspace.free_page.before_delete",
    "GC decided to free a page but the DELETE never left the node",
)
CP_POLL_BEFORE_DELETE = register_crash_point(
    "dbspace.poll.before_delete",
    "restart-GC poll probed an orphan key but crashed before deleting it",
)


class DbspaceError(Exception):
    """Dbspace misuse (wrong locator kind, exhausted space...)."""


class KeySource(Protocol):
    """Anything that can hand out fresh object keys (see core.keygen)."""

    def next_key(self) -> int:
        """Return a fresh, never-before-used key in ``[2^63, 2^64)``."""
        ...


class ObjectIO(ABC):
    """Cloud dbspace I/O path: direct to the bucket, or through the OCM.

    ``txn_id`` attributes writes to a transaction so the OCM can promote
    them on FlushForCommit; ``commit_mode`` selects write-through.
    """

    @abstractmethod
    def put(self, name: str, data: bytes, txn_id: "Optional[int]" = None,
            commit_mode: bool = False) -> None:
        ...

    @abstractmethod
    def get(self, name: str) -> bytes:
        ...

    @abstractmethod
    def get_many(self, names: "Sequence[str]",
                 scan_hint: bool = False) -> "Dict[str, bytes]":
        """Windowed-parallel read.  ``scan_hint`` marks bulk-scan traffic
        so a scan-resistant cache policy can apply its admission rule;
        cacheless implementations ignore it."""
        ...

    def get_many_at(self, names: "Sequence[str]", now: float,
                    scan_hint: bool = False,
                    ) -> "Tuple[Dict[str, bytes], float]":
        """Timed ``get_many`` for pipelined prefetch: charge the I/O path
        from ``now`` and return ``(results, completion)`` without
        advancing the shared clock."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support pipelined reads"
        )

    @abstractmethod
    def put_many(self, items: "Sequence[Tuple[str, bytes]]",
                 txn_id: "Optional[int]" = None,
                 commit_mode: bool = False) -> None:
        ...

    @abstractmethod
    def delete(self, name: str) -> None:
        ...

    @abstractmethod
    def delete_many(self, names: "Sequence[str]") -> None:
        ...

    @abstractmethod
    def exists(self, name: str) -> bool:
        ...

    def flush_for_commit(self, txn_id: int) -> None:
        """Drain pending asynchronous work for a committing transaction."""
        # Direct I/O has nothing pending; the OCM overrides this.

    def stored_bytes(self) -> int:
        """Bytes at rest on the underlying bucket (billing)."""
        raise NotImplementedError


class DirectObjectIO(ObjectIO):
    """Cloud I/O without a cache: straight through the retrying client."""

    def __init__(self, client: RetryingObjectClient) -> None:
        self.client = client

    def put(self, name: str, data: bytes, txn_id: "Optional[int]" = None,
            commit_mode: bool = False) -> None:
        self.client.put(name, data)

    def get(self, name: str) -> bytes:
        return self.client.get(name)

    def get_many(self, names: "Sequence[str]",
                 scan_hint: bool = False) -> "Dict[str, bytes]":
        return self.client.get_many(names)

    def get_many_at(self, names: "Sequence[str]", now: float,
                    scan_hint: bool = False,
                    ) -> "Tuple[Dict[str, bytes], float]":
        return self.client.get_many_at(names, now)

    def put_many(self, items: "Sequence[Tuple[str, bytes]]",
                 txn_id: "Optional[int]" = None,
                 commit_mode: bool = False) -> None:
        self.client.put_many(items)

    def delete(self, name: str) -> None:
        self.client.delete(name)

    def delete_many(self, names: "Sequence[str]") -> None:
        self.client.delete_many(names)

    def exists(self, name: str) -> bool:
        return self.client.exists(name)

    def stored_bytes(self) -> int:
        return self.client.store.stored_bytes()


class PageStore(ABC):
    """A dbspace's page I/O surface.

    ``page_size_limit`` optionally overrides the engine-wide page size for
    objects living on this dbspace (the paper's future-work item of
    per-dbspace page sizes; the uniform-size requirement came from shared
    block devices and does not apply to object stores).
    """

    def __init__(self, name: str,
                 page_size_limit: "Optional[int]" = None) -> None:
        self.name = name
        self.page_size_limit = page_size_limit

    @property
    @abstractmethod
    def is_cloud(self) -> bool:
        """Whether locators are object keys (True) or block runs."""

    @abstractmethod
    def write_page(
        self,
        payload: bytes,
        replace_locator: int = NULL_LOCATOR,
        in_place_ok: bool = False,
        txn_id: "Optional[int]" = None,
        commit_mode: bool = False,
    ) -> int:
        """Persist a (compressed) page image; return its locator.

        On a conventional dbspace, if ``in_place_ok`` (the page was already
        written by the *same* transaction) and the new image fits the old
        run, the page is updated in place and ``replace_locator`` is
        returned.  On a cloud dbspace, a write is *always* a fresh key.
        """

    @abstractmethod
    def read_page(self, locator: int) -> bytes:
        """Read one page image."""

    @abstractmethod
    def read_pages(self, locators: "Sequence[int]",
                   scan_hint: bool = False) -> "Dict[int, bytes]":
        """Windowed-parallel read of several page images (prefetching).

        ``scan_hint`` marks bulk-scan traffic for scan-resistant cache
        policies down the I/O path; block dbspaces ignore it."""

    def read_pages_at(self, locators: "Sequence[int]", now: float,
                      scan_hint: bool = False,
                      ) -> "Tuple[Dict[int, bytes], float]":
        """Timed ``read_pages`` for pipelined prefetch: charge the I/O
        path from ``now``; return ``(pages, completion)`` without
        advancing the shared clock."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support pipelined reads"
        )

    @abstractmethod
    def write_pages(
        self,
        payloads: "Sequence[bytes]",
        txn_id: "Optional[int]" = None,
        commit_mode: bool = False,
    ) -> "List[int]":
        """Windowed-parallel write; returns locators in payload order."""

    @abstractmethod
    def free_page(self, locator: int) -> None:
        """Release a page's storage (GC path)."""

    @abstractmethod
    def free_pages(self, locators: "Sequence[int]") -> None:
        """Release many pages (GC batches)."""

    @abstractmethod
    def stored_bytes(self) -> int:
        """Bytes at rest on the dbspace (billing)."""

    def flush_for_commit(self, txn_id: int) -> None:
        """Hook for commit-time cache draining (cloud + OCM only)."""


class BlockDbspace(PageStore):
    """A conventional dbspace: freelist-allocated runs on a block device."""

    def __init__(self, name: str, device: BlockDevice,
                 freelist: "Optional[Freelist]" = None) -> None:
        super().__init__(name)
        self.device = device
        self.freelist = freelist or Freelist(device.total_blocks)
        if self.freelist.total_blocks != device.total_blocks:
            raise DbspaceError(
                "freelist and device disagree on block count: "
                f"{self.freelist.total_blocks} vs {device.total_blocks}"
            )

    @property
    def is_cloud(self) -> bool:
        return False

    def _allocate(self, payload: bytes) -> int:
        nblocks = self.device.blocks_for(len(payload))
        start = self.freelist.allocate(nblocks)
        return make_block_locator(start, nblocks)

    def write_page(
        self,
        payload: bytes,
        replace_locator: int = NULL_LOCATOR,
        in_place_ok: bool = False,
        txn_id: "Optional[int]" = None,
        commit_mode: bool = False,
    ) -> int:
        if (
            in_place_ok
            and replace_locator != NULL_LOCATOR
            and not is_object_key(replace_locator)
        ):
            start, nblocks = block_range(replace_locator)
            if self.device.blocks_for(len(payload)) <= nblocks:
                # Same-transaction update in place: strong consistency of
                # block storage makes this safe (the pre-cloud fast path).
                self.device.write(start, payload)
                return replace_locator
        locator = self._allocate(payload)
        start, __ = block_range(locator)
        self.device.write(start, payload)
        return locator

    def read_page(self, locator: int) -> bytes:
        start, __ = block_range(locator)
        return self.device.read(start)

    def read_pages(self, locators: "Sequence[int]",
                   scan_hint: bool = False) -> "Dict[int, bytes]":
        starts = {block_range(loc)[0]: loc for loc in locators}
        raw = self.device.read_many(list(starts))
        return {starts[start]: data for start, data in raw.items()}

    def read_pages_at(self, locators: "Sequence[int]", now: float,
                      scan_hint: bool = False,
                      ) -> "Tuple[Dict[int, bytes], float]":
        starts = {block_range(loc)[0]: loc for loc in locators}
        inflight: "List[float]" = []
        results: "Dict[int, bytes]" = {}
        last = now
        for start in starts:
            begin = now
            if len(inflight) >= 32:
                begin = max(now, heapq.heappop(inflight))
            data, done = self.device.read_at(start, begin)
            results[starts[start]] = data
            heapq.heappush(inflight, done)
            last = max(last, done)
        return results, last

    def write_pages(
        self,
        payloads: "Sequence[bytes]",
        txn_id: "Optional[int]" = None,
        commit_mode: bool = False,
    ) -> "List[int]":
        locators = [self._allocate(payload) for payload in payloads]
        items = [
            (block_range(loc)[0], payload)
            for loc, payload in zip(locators, payloads)
        ]
        self.device.write_many(items)
        return locators

    def free_page(self, locator: int) -> None:
        start, nblocks = block_range(locator)
        self.freelist.free(start, nblocks)
        self.device.discard(start)

    def free_pages(self, locators: "Sequence[int]") -> None:
        for locator in locators:
            self.free_page(locator)

    def stored_bytes(self) -> int:
        return self.device.stored_bytes()


class CloudDbspace(PageStore):
    """A cloud dbspace: pages are immutable objects named by fresh keys.

    With an ``encryptor``, page images are encrypted *before* entering the
    I/O path, so both the OCM's local cache and the objects at rest hold
    ciphertext only (Section 4).

    With ``page_checksums``, every page image is framed with a CRC-32C
    trailer header (:mod:`repro.checksum`) *inside* the encryption
    envelope: seal applies trailer-then-encrypt, open applies
    decrypt-then-verify.  The trailer travels with the page through every
    path — OCM SSD cache, backups, replication — so damage is caught at
    unseal even where the store's own checksum records are out of reach.
    """

    def __init__(
        self,
        name: str,
        io: ObjectIO,
        key_source: KeySource,
        prefix_bits: int = 16,
        encryptor: "Optional[object]" = None,
        page_size_limit: "Optional[int]" = None,
        page_checksums: bool = False,
    ) -> None:
        super().__init__(name, page_size_limit)
        self.io = io
        self.key_source = key_source
        self.prefix_bits = prefix_bits
        self.encryptor = encryptor
        self.page_checksums = page_checksums

    @property
    def is_cloud(self) -> bool:
        return True

    def _seal(self, payload: bytes) -> bytes:
        if self.page_checksums:
            payload = seal_page(payload)
        if self.encryptor is None:
            return payload
        return self.encryptor.encrypt(payload)  # type: ignore[attr-defined]

    def _open(self, payload: bytes) -> bytes:
        if self.encryptor is not None:
            payload = self.encryptor.decrypt(payload)  # type: ignore[attr-defined]
        if self.page_checksums:
            payload = open_page(payload)
        return payload

    def object_name(self, locator: int) -> str:
        if not is_object_key(locator):
            raise DbspaceError(
                f"cloud dbspace {self.name!r} got a block locator {locator:#x}"
            )
        return hashed_object_name(locator, self.prefix_bits)

    def write_page(
        self,
        payload: bytes,
        replace_locator: int = NULL_LOCATOR,
        in_place_ok: bool = False,
        txn_id: "Optional[int]" = None,
        commit_mode: bool = False,
    ) -> int:
        # Never write an object twice: in_place_ok is deliberately ignored.
        key = self.key_source.next_key()
        crash_point(CP_WRITE_PAGE_BEFORE_PUT)
        self.io.put(self.object_name(key), self._seal(payload),
                    txn_id=txn_id, commit_mode=commit_mode)
        crash_point(CP_WRITE_PAGE_AFTER_PUT)
        return key

    def read_page(self, locator: int) -> bytes:
        return self._open(self.io.get(self.object_name(locator)))

    def read_pages(self, locators: "Sequence[int]",
                   scan_hint: bool = False) -> "Dict[int, bytes]":
        names = {self.object_name(loc): loc for loc in locators}
        raw = self.io.get_many(list(names), scan_hint=scan_hint)
        return {names[name]: self._open(data) for name, data in raw.items()}

    def read_pages_at(self, locators: "Sequence[int]", now: float,
                      scan_hint: bool = False,
                      ) -> "Tuple[Dict[int, bytes], float]":
        names = {self.object_name(loc): loc for loc in locators}
        raw, done = self.io.get_many_at(list(names), now,
                                        scan_hint=scan_hint)
        return (
            {names[name]: self._open(data) for name, data in raw.items()},
            done,
        )

    def write_pages(
        self,
        payloads: "Sequence[bytes]",
        txn_id: "Optional[int]" = None,
        commit_mode: bool = False,
    ) -> "List[int]":
        keys = [self.key_source.next_key() for __ in payloads]
        crash_point(CP_WRITE_PAGES_BEFORE_PUT)
        items = [
            (self.object_name(key), self._seal(payload))
            for key, payload in zip(keys, payloads)
        ]
        self.io.put_many(items, txn_id=txn_id, commit_mode=commit_mode)
        return keys

    def free_page(self, locator: int) -> None:
        crash_point(CP_FREE_PAGE_BEFORE_DELETE)
        self.io.delete(self.object_name(locator))

    def free_pages(self, locators: "Sequence[int]") -> None:
        if locators:
            crash_point(CP_FREE_PAGE_BEFORE_DELETE)
        self.io.delete_many([self.object_name(loc) for loc in locators])

    def poll_and_free(self, locator: int) -> bool:
        """GC polling: delete the object if it exists; report whether it did.

        Used when recovering handed-out key ranges — some keys in a polled
        range were never flushed, which is fine (Section 3.3).  The delete
        is issued even when the probe says "not found": under eventual
        consistency a freshly written object may be temporarily invisible,
        and deletes are idempotent (and free) on object stores, so deleting
        blindly guarantees the orphan cannot resurface later.
        """
        name = self.object_name(locator)
        existed = self.io.exists(name)
        crash_point(CP_POLL_BEFORE_DELETE)
        self.io.delete(name)
        return existed

    def stored_bytes(self) -> int:
        return self.io.stored_bytes()

    def flush_for_commit(self, txn_id: int) -> None:
        self.io.flush_for_commit(txn_id)


class Dbspace:
    """User-facing dbspace record: a named PageStore plus its kind."""

    def __init__(self, store: PageStore, system: bool = False) -> None:
        self.store = store
        self.system = system

    @property
    def name(self) -> str:
        return self.store.name

    @property
    def is_cloud(self) -> bool:
        return self.store.is_cloud

    def __repr__(self) -> str:
        kind = "cloud" if self.is_cloud else ("system" if self.system else "block")
        return f"Dbspace({self.name!r}, {kind})"
