"""Storage layer: pages, locators, the blockmap tree, identity objects,
dbspaces.

SAP IQ separates a page's logical identity (logical page number + version)
from its physical location.  The *blockmap* tree maintains that mapping; the
64-bit physical field is overloaded to hold either a contiguous block run on
a conventional dbspace or an object key in ``[2^63, 2^64)`` on a cloud
dbspace (Section 3.1 of the paper).
"""

from repro.storage.locator import (
    OBJECT_KEY_BASE,
    MAX_BLOCKS_PER_PAGE,
    is_object_key,
    make_block_locator,
    block_range,
    describe_locator,
)
from repro.storage.keys import hashed_object_name, object_key_from_name
from repro.storage.compression import (
    PageCodec,
    ZlibCodec,
    NoCompressionCodec,
    codec_by_name,
)
from repro.storage.page import PageConfig
from repro.storage.blockmap import Blockmap, BlockmapError
from repro.storage.identity import IdentityObject
from repro.storage.dbspace import (
    Dbspace,
    BlockDbspace,
    CloudDbspace,
    DbspaceError,
    PageStore,
)

__all__ = [
    "OBJECT_KEY_BASE",
    "MAX_BLOCKS_PER_PAGE",
    "is_object_key",
    "make_block_locator",
    "block_range",
    "describe_locator",
    "hashed_object_name",
    "object_key_from_name",
    "PageCodec",
    "ZlibCodec",
    "NoCompressionCodec",
    "codec_by_name",
    "PageConfig",
    "Blockmap",
    "BlockmapError",
    "IdentityObject",
    "Dbspace",
    "BlockDbspace",
    "CloudDbspace",
    "DbspaceError",
    "PageStore",
]
