"""Page-level compression codecs.

SAP IQ compresses pages before they hit storage; the compressed size (in
blocks) is recorded in the blockmap.  We provide a zlib codec (the default)
and a pass-through codec for tests; the columnar layer adds dictionary and
n-bit encodings *inside* the page before page-level compression, mirroring
the paper's two-level scheme.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Dict


class PageCodec(ABC):
    """Compress/decompress whole page images."""

    name: str = "abstract"

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Return the on-storage image of ``data``."""

    @abstractmethod
    def decompress(self, payload: bytes) -> bytes:
        """Invert :meth:`compress`."""


class NoCompressionCodec(PageCodec):
    """Pass-through codec (tests, incompressible data)."""

    name = "none"

    def compress(self, data: bytes) -> bytes:
        return bytes(data)

    def decompress(self, payload: bytes) -> bytes:
        return bytes(payload)


class ZlibCodec(PageCodec):
    """zlib page compression; level 1 mimics a fast LZ page compressor."""

    name = "zlib"

    def __init__(self, level: int = 1) -> None:
        if not 0 <= level <= 9:
            raise ValueError(f"zlib level must be in [0, 9], got {level}")
        self._level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(bytes(data), self._level)

    def decompress(self, payload: bytes) -> bytes:
        return zlib.decompress(payload)


_CODECS: "Dict[str, PageCodec]" = {
    "none": NoCompressionCodec(),
    "zlib": ZlibCodec(),
}


def codec_by_name(name: str) -> PageCodec:
    """Resolve a codec by its registered name."""
    try:
        return _CODECS[name]
    except KeyError:
        raise KeyError(
            f"unknown page codec {name!r}; known: {sorted(_CODECS)}"
        ) from None
