"""Identity objects and the system catalog.

An *identity object* records where a storage object's root blockmap page
lives.  It is the anchor of the Figure 2 cascade: when a root blockmap page
is versioned, the new root locator is written into the identity object,
which resides in the system dbspace — always on strongly consistent storage,
hence safely updated in place.

The catalog keeps the identity of every *committed version* of every
storage object; the transaction manager decides which versions are still
referenced and when old ones can be garbage collected.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, List, Optional


class CatalogError(Exception):
    """Unknown objects/versions or invalid catalog transitions."""


@dataclass(frozen=True)
class IdentityObject:
    """Pointer to one committed version of a storage object."""

    object_id: int
    name: str
    version: int
    root_locator: int
    height: int
    page_count: int
    dbspace: str

    def to_dict(self) -> "Dict[str, object]":
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: "Dict[str, object]") -> "IdentityObject":
        return cls(**payload)  # type: ignore[arg-type]


class Catalog:
    """System catalog: object registry + per-version identity objects."""

    def __init__(self) -> None:
        self._next_object_id = 1
        self._names: Dict[str, int] = {}
        self._identities: Dict[int, Dict[int, IdentityObject]] = {}
        self._current_version: Dict[int, int] = {}

    def register_object(self, name: str, dbspace: str) -> int:
        """Create a storage object; returns its id (version 0, empty)."""
        if name in self._names:
            raise CatalogError(f"storage object {name!r} already exists")
        object_id = self._next_object_id
        self._next_object_id += 1
        self._names[name] = object_id
        identity = IdentityObject(
            object_id=object_id,
            name=name,
            version=0,
            root_locator=0,
            height=1,
            page_count=0,
            dbspace=dbspace,
        )
        self._identities[object_id] = {0: identity}
        self._current_version[object_id] = 0
        return object_id

    def drop_object(self, object_id: int) -> None:
        identity = self.current(object_id)
        del self._names[identity.name]
        del self._identities[object_id]
        del self._current_version[object_id]

    def object_id(self, name: str) -> int:
        try:
            return self._names[name]
        except KeyError:
            raise CatalogError(f"no storage object named {name!r}") from None

    def has_object(self, name: str) -> bool:
        return name in self._names

    def object_names(self) -> "List[str]":
        return sorted(self._names)

    def current(self, object_id: int) -> IdentityObject:
        try:
            version = self._current_version[object_id]
            return self._identities[object_id][version]
        except KeyError:
            raise CatalogError(f"unknown storage object id {object_id}") from None

    def identity(self, object_id: int, version: int) -> IdentityObject:
        try:
            return self._identities[object_id][version]
        except KeyError:
            raise CatalogError(
                f"object {object_id} has no version {version}"
            ) from None

    def has_version(self, object_id: int, version: int) -> bool:
        return version in self._identities.get(object_id, {})

    def publish(self, identity: IdentityObject) -> None:
        """Record a new committed version and make it current.

        Versions must advance strictly — the transaction manager serializes
        commits per storage object.
        """
        versions = self._identities.get(identity.object_id)
        if versions is None:
            raise CatalogError(f"unknown storage object id {identity.object_id}")
        current = self._current_version[identity.object_id]
        if identity.version <= current:
            raise CatalogError(
                f"version {identity.version} does not advance past {current} "
                f"for object {identity.name!r}"
            )
        versions[identity.version] = identity
        self._current_version[identity.object_id] = identity.version

    def drop_version(self, object_id: int, version: int) -> None:
        """Forget a garbage-collected (non-current) version."""
        if version == self._current_version.get(object_id):
            raise CatalogError(
                f"cannot drop the current version {version} of object {object_id}"
            )
        self._identities.get(object_id, {}).pop(version, None)

    def all_identities(self) -> "Iterator[IdentityObject]":
        for versions in self._identities.values():
            yield from versions.values()

    # ------------------------------------------------------------------ #
    # persistence (checkpoints & snapshots)
    # ------------------------------------------------------------------ #

    def to_bytes(self) -> bytes:
        payload = {
            "next_object_id": self._next_object_id,
            "names": self._names,
            "current_version": {
                str(oid): version for oid, version in self._current_version.items()
            },
            "identities": {
                str(oid): {str(v): ident.to_dict() for v, ident in versions.items()}
                for oid, versions in self._identities.items()
            },
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, payload: bytes) -> "Catalog":
        data = json.loads(payload.decode("utf-8"))
        catalog = cls()
        catalog._next_object_id = data["next_object_id"]
        catalog._names = {name: int(oid) for name, oid in data["names"].items()}
        catalog._current_version = {
            int(oid): int(version)
            for oid, version in data["current_version"].items()
        }
        catalog._identities = {
            int(oid): {
                int(v): IdentityObject.from_dict(ident)
                for v, ident in versions.items()
            }
            for oid, versions in data["identities"].items()
        }
        return catalog

    def copy(self) -> "Catalog":
        return Catalog.from_bytes(self.to_bytes())
