"""64-bit physical locators: block runs or object keys in one field.

The paper overloads SAP IQ's existing 64-bit physical block number field
instead of widening the blockmap format:

- block locators use the low bits: the maximum physical block number is
  ``2^48 - 1``; a page occupies 1-16 contiguous blocks, and we encode the
  run length in bits 48-52 so a single integer fully describes the run;
- object keys occupy the reserved high range ``[2^63, 2^64)``.

``is_object_key`` is the single test that distinguishes the two — the same
trick lets RF/RB bitmaps record either representation (Section 3.3).
"""

from __future__ import annotations

OBJECT_KEY_BASE = 1 << 63
MAX_BLOCK_NUMBER = (1 << 48) - 1
MAX_BLOCKS_PER_PAGE = 16
_RUN_SHIFT = 48
_RUN_MASK = 0x1F  # 5 bits: run lengths 1..16 stored verbatim (never zero,
# so a block locator can never collide with NULL_LOCATOR == 0)

NULL_LOCATOR = 0


class LocatorError(ValueError):
    """Malformed locator construction or decoding."""


def is_object_key(locator: int) -> bool:
    """Whether the locator is an object key (high range) vs a block run."""
    if locator < 0 or locator >= (1 << 64):
        raise LocatorError(f"locator {locator!r} outside 64-bit range")
    return locator >= OBJECT_KEY_BASE


def make_block_locator(start_block: int, nblocks: int) -> int:
    """Encode a contiguous run of ``nblocks`` starting at ``start_block``."""
    if not 0 <= start_block <= MAX_BLOCK_NUMBER:
        raise LocatorError(f"block number {start_block!r} exceeds 2^48-1")
    if not 1 <= nblocks <= MAX_BLOCKS_PER_PAGE:
        raise LocatorError(
            f"pages occupy 1..{MAX_BLOCKS_PER_PAGE} blocks, got {nblocks!r}"
        )
    locator = start_block | (nblocks << _RUN_SHIFT)
    # Never collides with the object-key range: bit 63 stays clear.
    return locator


def block_range(locator: int) -> "tuple[int, int]":
    """Decode a block locator into ``(start_block, nblocks)``."""
    if is_object_key(locator):
        raise LocatorError(f"locator {locator:#x} is an object key, not a block run")
    if locator == NULL_LOCATOR:
        raise LocatorError("null locator has no block range")
    start = locator & MAX_BLOCK_NUMBER
    nblocks = (locator >> _RUN_SHIFT) & _RUN_MASK
    if not 1 <= nblocks <= MAX_BLOCKS_PER_PAGE:
        raise LocatorError(f"corrupt run length in locator {locator:#x}")
    return start, nblocks


def describe_locator(locator: int) -> str:
    """Human-readable form, for logs and error messages."""
    if locator == NULL_LOCATOR:
        return "<null>"
    if is_object_key(locator):
        return f"object-key:{locator - OBJECT_KEY_BASE}"
    start, nblocks = block_range(locator)
    return f"blocks:{start}+{nblocks}"
