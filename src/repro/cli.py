"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``quickstart`` — tiny end-to-end demo (load, query, storage stats),
- ``tpch`` — load TPC-H at a scale factor and run benchmark queries,
- ``compare`` — the S3 vs EBS vs EFS comparison (Tables 2/4 in miniature),
- ``table1`` — print the paper's Table 1 recovery walkthrough.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.configs import load_engine
from repro.bench.report import format_table, geomean
from repro.costs.pricing import DEFAULT_PRICES
from repro.tpch import power_run

_VOLUME_PRICE_KEY = {"s3": "s3", "ebs": "ebs-gp2", "efs": "efs"}


def _cold(db) -> None:
    db.buffer.invalidate_all()
    if db.ocm is not None:
        db.ocm.drain_all()
        db.ocm.invalidate_all()


def cmd_quickstart(args: argparse.Namespace) -> int:
    from repro.columnar import (
        ColumnSchema,
        ColumnStore,
        QueryContext,
        TableSchema,
    )
    from repro.columnar.exec import group_by, rows
    from repro.engine import Database, DatabaseConfig

    db = Database(DatabaseConfig(buffer_capacity_bytes=8 << 20,
                                 page_size=16 * 1024))
    store = ColumnStore(db)
    store.create_table(TableSchema(
        "demo", (ColumnSchema("k", "int"), ColumnSchema("v", "float")),
        rows_per_page=256,
    ))
    store.load("demo", [(i, float(i % 10)) for i in range(5000)])
    with QueryContext(db) as ctx:
        rel = ctx.read("demo", ["v"])
        agg = group_by(ctx, rel, [], {"total": ("sum", "v"),
                                      "n": ("count", None)})
    print(f"loaded 5000 rows in {db.clock.now():.2f} virtual seconds")
    print(f"sum(v) = {agg['total'][0]:.0f} over {agg['n'][0]} rows")
    print(f"objects on the store: {db.object_store.object_count()} "
          f"({db.user_data_bytes()} bytes at rest)")
    return 0


def cmd_tpch(args: argparse.Namespace) -> int:
    numbers = (
        [int(q) for q in args.queries.split(",")] if args.queries else None
    )
    db, store, load_seconds = load_engine(
        args.instance, args.volume, scale_factor=args.scale_factor
    )
    _cold(db)
    times = power_run(db, args.scale_factor, query_numbers=numbers)
    rows = [[f"Q{q}", times[q]] for q in sorted(times)]
    rows.append(["geomean", geomean(times.values())])
    print(f"load: {load_seconds:.1f} virtual seconds "
          f"({args.volume}, SF {args.scale_factor}, {args.instance})")
    print(format_table(["query", "seconds"], rows))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    for volume in ("s3", "ebs", "efs"):
        db, store, load_seconds = load_engine(
            args.instance, volume, scale_factor=args.scale_factor
        )
        _cold(db)
        times = power_run(db, args.scale_factor, query_numbers=[1, 3, 6])
        monthly = DEFAULT_PRICES.storage_price(
            _VOLUME_PRICE_KEY[volume]
        ).monthly_cost(
            int(db.user_data_bytes() * (1000 / args.scale_factor))
        )
        rows.append([
            volume.upper(), load_seconds, times[1], times[3], times[6],
            monthly,
        ])
    print(format_table(
        ["volume", "load (s)", "Q1 (s)", "Q3 (s)", "Q6 (s)",
         "$/month at SF1000"],
        rows,
    ))
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    import pathlib
    benchmarks = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
    sys.path.insert(0, str(benchmarks))
    try:
        from test_table1_recovery import run_table1_scenario

        from repro.bench.report import format_table as fmt

        events = run_table1_scenario()
        print(fmt(["Clock", "Event", "Description", "Active Set (W1)"],
                  events))
    finally:
        sys.path.remove(str(benchmarks))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Bringing Cloud-Native Storage to "
                    "SAP IQ' (SIGMOD 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("quickstart", help="tiny end-to-end demo")

    tpch = sub.add_parser("tpch", help="load TPC-H and run queries")
    tpch.add_argument("--scale-factor", type=float, default=0.005)
    tpch.add_argument("--volume", choices=("s3", "ebs", "efs"), default="s3")
    tpch.add_argument("--instance", default="m5ad.24xlarge")
    tpch.add_argument("--queries", default="",
                      help="comma-separated query numbers (default: all 22)")

    compare = sub.add_parser("compare", help="S3 vs EBS vs EFS comparison")
    compare.add_argument("--scale-factor", type=float, default=0.005)
    compare.add_argument("--instance", default="m5ad.24xlarge")

    sub.add_parser("table1", help="print the Table 1 recovery walkthrough")
    return parser


def main(argv: "Optional[List[str]]" = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "quickstart": cmd_quickstart,
        "tpch": cmd_tpch,
        "compare": cmd_compare,
        "table1": cmd_table1,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
