"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``quickstart`` — tiny end-to-end demo (load, query, storage stats),
- ``tpch`` — load TPC-H at a scale factor and run benchmark queries,
- ``compare`` — the S3 vs EBS vs EFS comparison (Tables 2/4 in miniature),
- ``table1`` — print the paper's Table 1 recovery walkthrough,
- ``chaos`` — run a named fault schedule against a live engine and report
  resilience metrics (breaker transitions, hedges, degraded reads) plus a
  committed-data durability check,
- ``load`` — multi-tenant load run on the session scheduler: arrival
  ramps, per-tenant latency SLOs, and a saturation curve,
- ``trace`` — run a workload with end-to-end tracing enabled, export the
  span tree as Chrome-trace JSON (loadable in ``about://tracing`` /
  Perfetto) and print a flamegraph-style attribution report,
- ``report`` — re-aggregate a previously exported trace JSON offline,
- ``scrub`` — damage a replicated store at rest, then run the budgeted
  background scrubber and prove it repairs every copy (DESIGN.md §15),
- ``fsck --deep`` — extend the metadata audit with content verification:
  every present object's bytes are re-checksummed against the recorded
  CRC-32C and mismatches are reported as CORRUPT.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.bench.configs import load_engine
from repro.bench.report import format_table, geomean
from repro.costs.pricing import DEFAULT_PRICES
from repro.tpch import power_run

_VOLUME_PRICE_KEY = {"s3": "s3", "ebs": "ebs-gp2", "efs": "efs"}


def _cold(db) -> None:
    db.buffer.invalidate_all()
    if db.ocm is not None:
        db.ocm.drain_all()
        db.ocm.invalidate_all()
    batches = getattr(db, "_decoded_batches", None)
    if batches is not None:
        batches.clear()


def cmd_quickstart(args: argparse.Namespace) -> int:
    from repro.columnar import (
        ColumnSchema,
        ColumnStore,
        QueryContext,
        TableSchema,
    )
    from repro.columnar.exec import group_by, rows
    from repro.engine import Database, DatabaseConfig

    db = Database(DatabaseConfig(buffer_capacity_bytes=8 << 20,
                                 page_size=16 * 1024))
    store = ColumnStore(db)
    store.create_table(TableSchema(
        "demo", (ColumnSchema("k", "int"), ColumnSchema("v", "float")),
        rows_per_page=256,
    ))
    store.load("demo", [(i, float(i % 10)) for i in range(5000)])
    with QueryContext(db) as ctx:
        rel = ctx.read("demo", ["v"])
        agg = group_by(ctx, rel, [], {"total": ("sum", "v"),
                                      "n": ("count", None)})
    print(f"loaded 5000 rows in {db.clock.now():.2f} virtual seconds")
    print(f"sum(v) = {agg['total'][0]:.0f} over {agg['n'][0]} rows")
    print(f"objects on the store: {db.object_store.object_count()} "
          f"({db.user_data_bytes()} bytes at rest)")
    return 0


def cmd_tpch(args: argparse.Namespace) -> int:
    numbers = (
        [int(q) for q in args.queries.split(",")] if args.queries else None
    )
    db, store, load_seconds = load_engine(
        args.instance, args.volume, scale_factor=args.scale_factor
    )
    _cold(db)
    times = power_run(db, args.scale_factor, query_numbers=numbers,
                      vectorized=True if args.vectorized else None)
    rows = [[f"Q{q}", times[q]] for q in sorted(times)]
    rows.append(["geomean", geomean(times.values())])
    executor = "vectorized" if args.vectorized else "scalar"
    print(f"load: {load_seconds:.1f} virtual seconds "
          f"({args.volume}, SF {args.scale_factor}, {args.instance}, "
          f"{executor} executor)")
    print(format_table(["query", "seconds"], rows))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    for volume in ("s3", "ebs", "efs"):
        db, store, load_seconds = load_engine(
            args.instance, volume, scale_factor=args.scale_factor
        )
        _cold(db)
        times = power_run(db, args.scale_factor, query_numbers=[1, 3, 6])
        monthly = DEFAULT_PRICES.storage_price(
            _VOLUME_PRICE_KEY[volume]
        ).monthly_cost(
            int(db.user_data_bytes() * (1000 / args.scale_factor))
        )
        rows.append([
            volume.upper(), load_seconds, times[1], times[3], times[6],
            monthly,
        ])
    print(format_table(
        ["volume", "load (s)", "Q1 (s)", "Q3 (s)", "Q6 (s)",
         "$/month at SF1000"],
        rows,
    ))
    return 0


_CHAOS_REGION_NAMES = (
    "us-east-1", "us-west-2", "eu-west-1", "ap-southeast-1", "sa-east-1",
)


def run_chaos_scenario(
    schedule_name: str = "storm",
    seed: int = 0,
    start: float = 5.0,
    pages: int = 6,
    settle: float = 5.0,
    regions: int = 1,
) -> "Dict[str, object]":
    """Drive an engine through a named fault schedule; return the evidence.

    A writer keeps committing generations of pages while the schedule
    plays out; interleaved readers touch recently committed pages (cache
    hits keep working in degraded mode, misses fail fast).  After the
    schedule's horizon the caches are dropped and every committed page is
    read back from the store — the durability check.  Entirely
    deterministic for a given ``(schedule_name, seed)``.
    """
    from repro.engine import Database, DatabaseConfig
    from repro.objectstore.client import (
        CircuitBreakerConfig,
        HedgePolicy,
        RetryPolicy,
    )
    from repro.objectstore.errors import (
        CircuitOpenError,
        CorruptObjectError,
        RetriesExhaustedError,
    )
    from repro.objectstore.faults import named_schedule
    from repro.objectstore.replicated import ReplicationConfig

    if not 1 <= regions <= len(_CHAOS_REGION_NAMES):
        raise ValueError(
            f"regions must be in [1, {len(_CHAOS_REGION_NAMES)}]"
        )
    replication = (
        ReplicationConfig(regions=_CHAOS_REGION_NAMES[:regions])
        if regions > 1 else None
    )
    schedule = named_schedule(schedule_name, start=start)
    db = Database(DatabaseConfig(
        seed=seed,
        buffer_capacity_bytes=8 << 20,
        ocm_capacity_bytes=32 << 20,
        page_size=16 * 1024,
        fault_schedule=schedule,
        # Corruption schedules flip payload bits; without verified reads
        # the damaged bytes would flow straight into the durability check
        # as silent mismatches.  Pure availability schedules keep the
        # knob off so their byte streams stay identical to older runs.
        verify_reads=schedule.corrupting,
        replication=replication,
        breaker=CircuitBreakerConfig(failure_threshold=3, reset_timeout=2.0),
        hedge=HedgePolicy(),
        retry=RetryPolicy(max_attempts=60, initial_backoff=0.05,
                          backoff_multiplier=1.5, max_backoff=2.0,
                          jitter="decorrelated"),
    ))
    db.create_object("t")
    committed: "Dict[int, bytes]" = {}
    generation = 0
    commits_ok = 0
    commits_failed = 0
    reads_failed_fast = 0
    corrupt_detected = 0
    horizon = schedule.horizon + settle
    while db.clock.now() < horizon:
        txn = db.begin()
        staged: "Dict[int, bytes]" = {}
        try:
            for page in range(pages):
                payload = b"gen-%d-page-%d" % (generation, page)
                db.write_page(txn, "t", page, payload)
                staged[page] = payload
            db.commit(txn)
            committed.update(staged)
            commits_ok += 1
        except (CircuitOpenError, RetriesExhaustedError):
            try:
                db.rollback(txn)
            except Exception:
                pass
            commits_failed += 1
        if committed:
            # A health probe that does NOT bypass the breaker: during an
            # outage its consecutive failures open the circuit, putting
            # the OCM into degraded mode for the reads below.
            try:
                db.object_client.exists("health/probe")
            except (CircuitOpenError, RetriesExhaustedError):
                pass
            # Force reads through the OCM (and, every few generations,
            # all the way to the store) so degraded-mode cache serving
            # and hedged GETs actually get exercised.
            db.buffer.invalidate_all()
            if db.ocm is not None and generation % 5 == 4:
                db.ocm.invalidate_all()
            reader = db.begin()
            for page in sorted(committed)[:3]:
                try:
                    db.read_page(reader, "t", page)
                except (CircuitOpenError, RetriesExhaustedError):
                    reads_failed_fast += 1
                except CorruptObjectError:
                    # Detected — never served silently.  Unrepairable
                    # only when no healthy replica holds the version.
                    corrupt_detected += 1
            try:
                db.commit(reader)
            except Exception:
                db.rollback(reader)
        generation += 1
        # Fail-fast paths consume no virtual time; keep the clock moving
        # so the schedule always plays out in bounded iterations.
        db.clock.advance(0.25)
    # Recovery: drop every cache and verify committed data byte-for-byte.
    db.buffer.invalidate_all()
    if db.ocm is not None:
        db.ocm.drain_all()
        db.ocm.invalidate_all()
    mismatches = 0
    reader = db.begin()
    for page, payload in sorted(committed.items()):
        try:
            if db.read_page(reader, "t", page) != payload:
                mismatches += 1
        except CorruptObjectError:
            # The checksum caught it before any bytes reached the
            # reader; still a durability problem — the page is gone
            # unless a replica can repair it.
            corrupt_detected += 1
    db.commit(reader)
    # GET latencies live in a labeled family: the resilient client records
    # under plain `get_latency` against a single-region store but under
    # `get_latency:{region}` when replication is on.  Aggregate the whole
    # family — reading only the unlabeled name reports 0.0 for replicated
    # runs.
    from repro.sim.metrics import labeled_histograms, merged_histogram

    client_metrics = db.object_client.metrics
    p99_by_region = {
        label or "(unlabeled)": histogram.percentile(99.0)
        for label, histogram in
        labeled_histograms(client_metrics, "get_latency").items()
        if histogram.count
    }
    return {
        "schedule": schedule_name,
        "seed": seed,
        "generations": generation,
        "commits_ok": commits_ok,
        "commits_failed": commits_failed,
        "reads_failed_fast": reads_failed_fast,
        "committed_pages": len(committed),
        "mismatches": mismatches,
        "corrupt_detected": corrupt_detected,
        "verify_reads": schedule.corrupting,
        "client_metrics": db.object_client.metrics.snapshot(),
        "store_metrics": db.object_store.metrics.snapshot(),
        "ocm_metrics": db.ocm.metrics.snapshot() if db.ocm is not None else {},
        "breaker_transitions": (
            db.object_client.metrics.series("breaker_transitions").samples
        ),
        "p99_get_latency": (
            merged_histogram(client_metrics, "get_latency").percentile(99.0)
        ),
        "p99_get_latency_by_region": p99_by_region,
        "regions": regions,
        "virtual_seconds": db.clock.now(),
    }


def cmd_chaos(args: argparse.Namespace) -> int:
    result = run_chaos_scenario(
        schedule_name=args.schedule,
        seed=args.seed,
        start=args.start,
        pages=args.pages,
        regions=args.regions,
    )
    client = result["client_metrics"]
    store = result["store_metrics"]
    ocm = result["ocm_metrics"]
    rows = [
        ["virtual seconds", result["virtual_seconds"]],
        ["commits ok / failed",
         f"{result['commits_ok']} / {result['commits_failed']}"],
        ["committed pages verified", result["committed_pages"]],
        ["durability mismatches", result["mismatches"]],
        ["corrupt reads detected (unrepairable)",
         result["corrupt_detected"]],
        ["checksum mismatches caught",
         f"{client.get('checksum_mismatches', 0):.0f}"],
        ["read repairs (client / store)",
         f"{client.get('read_repairs', 0):.0f} / "
         f"{store.get('read_repairs', 0):.0f}"],
        ["hedge winners failing verification",
         f"{client.get('hedge_mismatch', 0):.0f}"],
        ["breaker opened / closed",
         f"{client.get('breaker_opened', 0):.0f} / "
         f"{client.get('breaker_closed', 0):.0f}"],
        ["breaker fast failures", client.get("breaker_fast_failures", 0)],
        ["hedged GETs / hedge wins",
         f"{client.get('hedged_gets', 0):.0f} / "
         f"{client.get('hedge_wins', 0):.0f}"],
        ["deadline expirations", client.get("deadline_expirations", 0)],
        ["retries (put/get/delete)",
         f"{client.get('put_retries', 0):.0f}/"
         f"{client.get('get_retries', 0):.0f}/"
         f"{client.get('delete_retries', 0):.0f}"],
        ["scheduled outage failures", store.get("fault_outage_failures", 0)],
        ["scheduled storm failures", store.get("fault_storm_failures", 0)],
        ["throttled-by-storm requests",
         store.get("fault_throttled_requests", 0)],
        ["degraded cache reads", ocm.get("degraded_reads", 0)],
        ["degraded queued writes", ocm.get("degraded_queued_writes", 0)],
        ["p99 GET latency (s)", result["p99_get_latency"]],
    ]
    for region, p99 in sorted(result["p99_get_latency_by_region"].items()):
        rows.append([f"p99 GET latency [{region}] (s)", p99])
    print(f"chaos schedule {result['schedule']!r} (seed {result['seed']})")
    print(format_table(["metric", "value"], rows))
    if result["mismatches"]:
        print(f"DURABILITY VIOLATION: {result['mismatches']} committed "
              "pages did not read back intact")
        return 1
    if result["corrupt_detected"]:
        print(f"INTEGRITY: {result['corrupt_detected']} corrupt reads were "
              "detected but could not be repaired (no healthy replica — "
              "run with --regions 2+ for read-repair)")
        return 1
    print("all committed data read back byte-identical after recovery")
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    import json

    from repro.bench.load import LoadConfig, LoadHarness
    from repro.core.autoscale import AutoscaleConfig

    autoscale = None
    if args.autoscale:
        floor = args.autoscale_min if args.autoscale_min is not None \
            else args.nodes
        autoscale = AutoscaleConfig(
            min_nodes=floor,
            max_nodes=args.autoscale_max,
            prewarm=not args.no_prewarm,
        )
    harness = LoadHarness(LoadConfig(
        sessions=args.sessions,
        seed=args.seed,
        profile=args.profile,
        arrival_rate=args.rate,
        stages=args.stages,
        admission_limit=args.admission,
        scale_factor=args.scale_factor,
        instance_type=args.instance,
        nodes=args.nodes,
        autoscale=autoscale,
    ))
    summary = harness.run()
    if args.json:
        # Stdout stays pure JSON for machine consumers (the CI smoke job
        # diffs two runs byte-for-byte); the status line goes to stderr.
        print(json.dumps(summary, indent=2, sort_keys=True))
        print(f"load: {summary['ops']['completed']} ops in "
              f"{summary['clock_seconds']:g} virtual seconds "
              f"({harness.wall_seconds:.1f}s wall)", file=sys.stderr)
        return 0
    print(f"load run: {args.sessions} sessions, profile {args.profile!r}, "
          f"seed {args.seed} ({args.instance}, SF {args.scale_factor})")
    print(f"  {summary['ops']['completed']} ops completed, "
          f"{summary['ops']['failed']} failed, "
          f"{summary['clock_seconds']:g} virtual seconds, "
          f"{summary['scheduler']['handoffs']} scheduler handoffs "
          f"({harness.wall_seconds:.1f}s wall)")
    print()
    tenant_rows = []
    for name, tenant in summary["tenants"].items():
        tail = tenant["latency_seconds"]
        attainment = tenant["slo_attainment"]
        tenant_rows.append([
            name, tenant["sessions"], tenant["ops"],
            tail["p50"], tail["p95"], tail["p99"],
            f"{attainment:.1%}" if attainment is not None else "-",
        ])
    print(format_table(
        ["tenant", "sessions", "ops", "p50 (s)", "p95 (s)", "p99 (s)",
         "SLO attainment"],
        tenant_rows,
    ))
    print()
    stage_rows = []
    for point in summary["saturation"]:
        tail = point["latency_seconds"]
        offered = point["offered_sessions_per_second"]
        realized = point["realized_arrival_rate"]
        stage_rows.append([
            point["stage"], point["sessions"],
            offered if offered is not None else "closed",
            realized if realized is not None else "-", point["ops"],
            tail["p50"], tail["p99"],
        ])
    print(format_table(
        ["stage", "sessions", "offered /s", "realized /s", "ops",
         "p50 (s)", "p99 (s)"],
        stage_rows,
    ))
    if summary["admission"] is not None:
        admission = summary["admission"]
        print()
        print(f"admission: limit {admission['limit']}, "
              f"{admission['waits']} waits "
              f"(p95 wait {admission['wait_seconds']['p95']:g}s), "
              f"by tenant {admission['waits_by_tenant']}")
    if summary["routing"] is not None:
        print()
        print(f"routing (ops by node): {summary['routing']}")
    if summary["autoscale"] is not None:
        scale = summary["autoscale"]
        print(f"autoscale: {scale['scale_outs']} scale-outs, "
              f"{scale['scale_ins']} scale-ins, "
              f"final {scale['final_nodes']} node(s), "
              f"{scale['node_seconds']:g} node-seconds")
        for event in scale["events"]:
            detail = (
                f"prewarmed {event['prewarmed_entries']} OCM entries"
                if event["action"] == "scale_out"
                else f"reclaimed {event['reclaimed_keys']} keys"
            )
            print(f"  t={event['started']:g}s {event['action']} "
                  f"{event['node']} -> {event['nodes_after']} node(s) "
                  f"({detail}; queue {event['queue_depth']}, "
                  f"backlog {event['runnable_backlog']})")
    return 0


def _print_trace_summary(tracer) -> None:
    print()
    print("== flamegraph (inclusive virtual time) ==")
    print(tracer.flame_report())
    print()
    print("== latency by layer/op ==")
    print(format_table(list(tracer.LATENCY_HEADERS), tracer.latency_rows()))
    costs = tracer.cost_totals()
    rows = [
        [layer, round(seconds, 6), round(costs.get(layer, 0.0), 8)]
        for layer, seconds in sorted(tracer.layer_totals().items())
    ]
    print()
    print("== per-layer totals ==")
    print(format_table(["layer", "seconds", "request cost (USD)"], rows))


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim.tracing import Tracer

    if args.workload == "quickstart":
        from repro.engine import Database, DatabaseConfig

        db = Database(DatabaseConfig(
            buffer_capacity_bytes=8 << 20,
            ocm_capacity_bytes=32 << 20,
            page_size=16 * 1024,
            tracing_enabled=True,
        ))
        tracer = db.tracer
        db.create_object("demo")
        txn = db.begin()
        for page in range(16):
            db.write_page(txn, "demo", page, (b"%03d" % page) * 256)
        db.commit(txn)
        db.buffer.invalidate_all()
        reader = db.begin()
        for page in range(16):
            db.read_page(reader, "demo", page)
        db.commit(reader)
        print(f"traced quickstart: {db.clock.now():.3f} virtual seconds, "
              f"{tracer.span_count()} spans")
    else:
        numbers = (
            [int(q) for q in args.queries.split(",")] if args.queries
            else [1, 6]
        )
        db, store, load_seconds = load_engine(
            args.instance, "s3", scale_factor=args.scale_factor
        )
        _cold(db)
        # The tracer is attached after the bulk load so the trace holds
        # only the queries, not millions of load-time spans.
        tracer = Tracer(db.clock, meter=db.meter)
        db.attach_tracer(tracer)
        times = power_run(db, args.scale_factor, query_numbers=numbers)
        total = sum(times.values())
        print(f"traced {len(times)} queries (SF {args.scale_factor}, "
              f"{args.instance}): {total:.3f} virtual seconds, "
              f"{tracer.span_count()} spans")
    tracer.write_chrome_trace(args.output)
    print(f"chrome trace written to {args.output} "
          "(load it in about://tracing or https://ui.perfetto.dev)")
    _print_trace_summary(tracer)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.sim.tracing import load_chrome_trace

    summary = load_chrome_trace(args.input)
    print(f"{summary['events']} spans in {args.input}")
    print(format_table(["layer/op", "count", "total (s)"], summary["rows"]))
    costs = summary["cost_totals"]
    rows = [
        [layer, round(seconds, 6), round(costs.get(layer, 0.0), 8)]
        for layer, seconds in sorted(summary["layer_totals"].items())
    ]
    print()
    print(format_table(["layer", "seconds", "request cost (USD)"], rows))
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    import json

    from repro.bench.crash_explorer import run_churn_episode

    result = run_churn_episode(
        args.crash_point or None,
        seed=args.seed,
        broken_gc=args.broken_gc,
        deep=args.deep,
    )
    report = result.report
    if report is None:
        print("fsck: the audit could not run", file=sys.stderr)
        for violation in result.violations:
            print(f"  {violation}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        rows = [
            ["objects scanned", report.objects_scanned],
            ["live", report.live],
            ["snapshot retained", report.snapshot_retained],
            ["pending GC", report.pending_gc],
            ["active-set covered", report.active_covered],
            ["LEAKED", len(report.leaked)],
            ["MISSING", len(report.missing)],
            ["snapshot MISSING", len(report.snapshot_missing)],
            ["already freed (benign)", report.already_freed],
            ["unparseable names", len(report.unparseable)],
        ]
        if report.deep:
            rows.append(["content verified", report.content_verified])
            rows.append(["CORRUPT", len(report.corrupt)])
            rows.append(["region CORRUPT", len(report.region_corrupt)])
        label = args.crash_point or "none"
        print(f"fsck after churn (seed {args.seed}, crash point {label}, "
              f"broken GC {'on' if args.broken_gc else 'off'}, "
              f"{'deep' if args.deep else 'shallow'})")
        print(format_table(["classification", "count"], rows))
        for name, key in report.leaked[:10]:
            print(f"  LEAKED  {name} {key:#x}")
        for name, key in report.missing[:10]:
            print(f"  MISSING {name} {key:#x}")
        for where, key in report.corrupt[:10]:
            print(f"  CORRUPT {where} {key:#x}")
    # The status line goes to stderr so `--json` keeps stdout pure for
    # machine consumers (CI gates on the exit code + the `ok` key).
    if not report.ok():
        print("fsck: store is NOT clean", file=sys.stderr)
        return 1
    print("fsck: store is clean", file=sys.stderr)
    return 0


def run_scrub_scenario(
    seed: int = 0,
    regions: int = 3,
    generations: int = 4,
    pages: int = 8,
    damage: int = 4,
    flips: int = 3,
    budget: "Optional[float]" = None,
) -> "Dict[str, object]":
    """Rot a replicated store at rest, scrub it, and return the evidence.

    A short workload commits ``generations`` generations of ``pages``
    pages, replication converges, and then ``damage`` stored objects on
    the primary are bit-flipped in place — silent at-rest rot, invisible
    until something re-reads the bytes.  A deep fsck counts the damage,
    one budgeted scrubber pass repairs it from the healthy replicas, and
    a second deep fsck proves the store is clean.  Deterministic for a
    given seed.
    """
    from repro.core.audit import StoreAuditor
    from repro.core.scrub import DEFAULT_BYTES_PER_SECOND, Scrubber
    from repro.engine import Database, DatabaseConfig
    from repro.objectstore.replicated import ReplicationConfig

    if not 1 <= regions <= len(_CHAOS_REGION_NAMES):
        raise ValueError(
            f"regions must be in [1, {len(_CHAOS_REGION_NAMES)}]"
        )
    replication = (
        ReplicationConfig(regions=_CHAOS_REGION_NAMES[:regions],
                          mean_lag_seconds=0.2, staleness_horizon=5.0)
        if regions > 1 else None
    )
    db = Database(DatabaseConfig(
        seed=seed,
        buffer_capacity_bytes=8 << 20,
        ocm_capacity_bytes=32 << 20,
        page_size=16 * 1024,
        replication=replication,
        verify_reads=True,
    ))
    db.create_object("t")
    for gen in range(generations):
        txn = db.begin()
        for page in range(pages):
            db.write_page(txn, "t", page, b"gen-%d-page-%d" % (gen, page))
        db.commit(txn)
        db.clock.advance(0.5)
    store = db.object_store
    if replication is not None:
        # Let every queued apply land so each region holds every version.
        db.clock.advance(replication.staleness_horizon + 1.0)
        store.pump(db.clock.now())
    # At-rest rot: deterministic in-place bit flips on stored primary
    # copies.  No fault schedule, no RNG — rot is not an I/O event.
    primary = store.store_for(store.regions[0]) if replication else store
    damaged = []
    for name in sorted(primary.all_keys()):
        if len(damaged) >= damage:
            break
        if primary.latest_data(name) is None:
            continue
        if store.inject_damage(name, flips=flips):
            damaged.append(name)
    auditor = StoreAuditor(db)
    before = auditor.audit(deep=True)
    scrubber = Scrubber(
        db, bytes_per_second=budget or DEFAULT_BYTES_PER_SECOND
    )
    report = scrubber.run()
    after = auditor.audit(deep=True)
    return {
        "seed": seed,
        "regions": regions,
        "damaged": len(damaged),
        "scrub": report.to_dict(),
        "corrupt_before": len(before.corrupt) + len(before.region_corrupt),
        "corrupt_after": len(after.corrupt) + len(after.region_corrupt),
        "audit_ok_after": after.ok(),
        "scrub_virtual_seconds": report.finished_at - report.started_at,
        "bytes_per_second": scrubber.bytes_per_second,
        "virtual_seconds": db.clock.now(),
    }


def cmd_scrub(args: argparse.Namespace) -> int:
    import json

    result = run_scrub_scenario(
        seed=args.seed,
        regions=args.regions,
        damage=args.damage,
        flips=args.flips,
        budget=args.budget,
    )
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        scrub = result["scrub"]
        print(f"scrub drill (seed {result['seed']}, "
              f"{result['regions']} regions, "
              f"{result['damaged']} objects damaged at rest)")
        print(format_table(["measure", "value"], [
            ["objects scanned", scrub["objects_scanned"]],
            ["bytes scanned", scrub["bytes_scanned"]],
            ["regions scanned", ", ".join(scrub["regions_scanned"])],
            ["corrupt found", scrub["corrupt_found"]],
            ["repaired", scrub["repaired"]],
            ["quarantined", len(scrub["quarantined"])],
            ["deep fsck CORRUPT before", result["corrupt_before"]],
            ["deep fsck CORRUPT after", result["corrupt_after"]],
            ["scrub budget (bytes/s)", result["bytes_per_second"]],
            ["scrub pass (virtual s)",
             round(result["scrub_virtual_seconds"], 3)],
        ]))
        for region, name in scrub["quarantined"][:10]:
            print(f"  QUARANTINED [{region}] {name}")
    scrub_ok = result["scrub"]["ok"]
    if not (scrub_ok and result["corrupt_after"] == 0
            and result["audit_ok_after"]):
        why = ("quarantined copies remain" if not scrub_ok
               else "deep fsck still reports corruption")
        print(f"scrub: store is NOT clean ({why})", file=sys.stderr)
        return 1
    print("scrub: every damaged copy repaired; deep fsck clean",
          file=sys.stderr)
    return 0


def cmd_dr(args: argparse.Namespace) -> int:
    import json

    from repro.bench.dr import DrillConfig, run_dr_drill

    result = run_dr_drill(DrillConfig(
        seed=args.seed,
        mean_lag_seconds=args.lag,
        staleness_horizon=args.horizon,
        outage_seconds=args.outage,
    ))
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"disaster-recovery drill (seed {args.seed}, mean lag "
              f"{args.lag:g}s, staleness horizon {args.horizon:g}s)")
        print(format_table(
            ["clock (s)", "phase", "event"],
            [[when, phase, text] for when, phase, text in result.events],
        ))
        print()
        print(format_table(["measure", "value"], [
            ["failover (s)", round(result.failover_seconds, 3)],
            ["RTO: first query on new primary (s)",
             round(result.rto_seconds, 3)],
            ["RPO: acknowledged writes (s)",
             result.rpo_acknowledged_seconds],
            ["RPO bound: staleness horizon (s)", result.rpo_bound_seconds],
            ["worst observed replication lag (s)",
             round(result.max_observed_lag_seconds, 3)],
            ["entries drained at promotion", result.drained_entries],
            ["fsck across regions", "clean" if result.audit_ok else "DIRTY"],
            ["cross-region restore", "ok" if result.restore_ok else "FAILED"],
        ]))
    if not result.ok:
        for violation in result.violations:
            print(f"dr: {violation}", file=sys.stderr)
        print("dr: the drill violated its recovery invariants",
              file=sys.stderr)
        return 1
    print("dr: outage -> failover -> heal -> fsck -> restore all clean",
          file=sys.stderr)
    return 0


def cmd_crashtest(args: argparse.Namespace) -> int:
    from repro.bench.crash_explorer import (
        explore_all_points,
        explore_random,
        run_episode,
    )

    if args.point:
        results = [run_episode(args.point, seed=args.seed,
                               broken_gc=args.broken_gc)]
    elif args.random:
        results = explore_random(count=args.random, seed=args.seed)
    else:
        results = explore_all_points(seed=args.seed,
                                     broken_gc=args.broken_gc)
    rows = []
    violations = 0
    for result in results:
        rows.append([
            result.crash_point or "(none)",
            result.mode,
            result.fired,
            result.crashes,
            "ok" if result.ok else "; ".join(result.violations),
        ])
        violations += len(result.violations)
    print(format_table(
        ["crash point", "episode", "fired", "crashes", "verdict"], rows
    ))
    fired = sum(result.fired for result in results)
    print(f"{len(results)} episodes, {fired} injected crashes, "
          f"{violations} invariant violations")
    if violations:
        print("CRASH EXPLORATION FAILED: recovery invariants violated")
        return 1
    print("all episodes recovered with no data loss, no missing objects, "
          "and no leaks")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    import pathlib
    benchmarks = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
    sys.path.insert(0, str(benchmarks))
    try:
        from test_table1_recovery import run_table1_scenario

        from repro.bench.report import format_table as fmt

        events = run_table1_scenario()
        print(fmt(["Clock", "Event", "Description", "Active Set (W1)"],
                  events))
    finally:
        sys.path.remove(str(benchmarks))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Bringing Cloud-Native Storage to "
                    "SAP IQ' (SIGMOD 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("quickstart", help="tiny end-to-end demo")

    tpch = sub.add_parser("tpch", help="load TPC-H and run queries")
    tpch.add_argument("--scale-factor", type=float, default=0.005)
    tpch.add_argument("--volume", choices=("s3", "ebs", "efs"), default="s3")
    tpch.add_argument("--instance", default="m5ad.24xlarge")
    tpch.add_argument("--queries", default="",
                      help="comma-separated query numbers (default: all 22)")
    tpch.add_argument("--vectorized", action="store_true",
                      help="use the numpy-backed vectorized executor "
                           "(requires the [perf] extra)")

    compare = sub.add_parser("compare", help="S3 vs EBS vs EFS comparison")
    compare.add_argument("--scale-factor", type=float, default=0.005)
    compare.add_argument("--instance", default="m5ad.24xlarge")

    sub.add_parser("table1", help="print the Table 1 recovery walkthrough")

    chaos = sub.add_parser(
        "chaos", help="run a named fault schedule and report resilience"
    )
    chaos.add_argument("--schedule", default="storm",
                       choices=["storm", "outage", "latency", "throttle",
                                "bitrot", "torn-read"],
                       help="named fault schedule to run (bitrot and "
                            "torn-read corrupt payloads and turn on "
                            "verified reads)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--start", type=float, default=5.0,
                       help="virtual time at which the schedule begins")
    chaos.add_argument("--pages", type=int, default=6,
                       help="pages written per committed generation")
    chaos.add_argument("--regions", type=int, default=1,
                       help="object-store regions (>1 turns on replication)")

    load = sub.add_parser(
        "load",
        help="multi-tenant load run on the session scheduler: arrival "
             "ramps, tenant SLOs, saturation curve",
    )
    load.add_argument("--sessions", type=int, default=200,
                      help="logical client sessions to run")
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--profile", default="poisson",
                      choices=["poisson", "bursty", "closed"],
                      help="arrival process (closed = all present at t=0)")
    load.add_argument("--rate", type=float, default=40.0,
                      help="stage-1 session arrivals per virtual second")
    load.add_argument("--stages", type=int, default=3,
                      help="ramp stages; stage s offers s× the base rate")
    load.add_argument("--admission", type=int, default=0,
                      help="max concurrent in-engine ops (0 = unlimited)")
    load.add_argument("--scale-factor", type=float, default=0.002)
    load.add_argument("--instance", default="m5ad.4xlarge")
    load.add_argument("--nodes", type=int, default=1,
                      help="serving nodes at t=0 (coordinator + multiplex "
                           "secondaries, round-robin routed)")
    load.add_argument("--autoscale", action="store_true",
                      help="run the elastic controller: grow/shrink "
                           "secondaries from live load signals")
    load.add_argument("--autoscale-min", type=int, default=None,
                      help="autoscale floor (default: --nodes)")
    load.add_argument("--autoscale-max", type=int, default=4,
                      help="autoscale ceiling, total serving nodes")
    load.add_argument("--no-prewarm", action="store_true",
                      help="skip OCM pre-warming on scale-out (cold-node "
                           "control for the pre-warm ablation)")
    load.add_argument("--json", action="store_true",
                      help="print the machine-readable summary (stdout is "
                           "pure JSON; deterministic for a given config)")

    trace = sub.add_parser(
        "trace",
        help="run a workload with tracing; export Chrome-trace JSON",
    )
    trace.add_argument("workload", choices=("tpch", "quickstart"),
                       help="workload to trace")
    trace.add_argument("--scale-factor", type=float, default=0.002)
    trace.add_argument("--instance", default="m5ad.24xlarge")
    trace.add_argument("--queries", default="1,6",
                       help="comma-separated query numbers (tpch workload)")
    trace.add_argument("--output", default="trace.json",
                       help="Chrome-trace JSON output path")

    report = sub.add_parser(
        "report", help="re-aggregate a previously exported trace JSON"
    )
    report.add_argument("--input", default="trace.json",
                        help="trace JSON produced by `repro trace`")

    fsck = sub.add_parser(
        "fsck",
        help="audit the object store against engine metadata (cloud fsck)",
    )
    fsck.add_argument("--seed", type=int, default=0)
    fsck.add_argument("--crash-point", default="",
                      help="arm this crash point during the churn workload")
    fsck.add_argument("--broken-gc", action="store_true",
                      help="sabotage GC to demonstrate leak detection")
    fsck.add_argument("--deep", action="store_true",
                      help="also verify every object's bytes against its "
                           "recorded CRC-32C (reports CORRUPT)")
    fsck.add_argument("--json", action="store_true",
                      help="print the machine-readable audit report")

    scrub = sub.add_parser(
        "scrub",
        help="damage a replicated store at rest, then run the budgeted "
             "background scrubber and verify repairs (deep fsck gated)",
    )
    scrub.add_argument("--seed", type=int, default=0)
    scrub.add_argument("--regions", type=int, default=3,
                       help="object-store regions (1 = no replicas: "
                            "damage is quarantined, not repaired)")
    scrub.add_argument("--damage", type=int, default=4,
                       help="stored objects to bit-flip at rest")
    scrub.add_argument("--flips", type=int, default=3,
                       help="bit flips per damaged object")
    scrub.add_argument("--budget", type=float, default=None,
                       help="scrub budget in bytes per virtual second "
                            "(default 8 MiB/s)")
    scrub.add_argument("--json", action="store_true",
                       help="print the machine-readable drill result")

    dr = sub.add_parser(
        "dr",
        help="disaster-recovery drill: region outage, failover, heal, "
             "fsck, cross-region restore",
    )
    dr.add_argument("--seed", type=int, default=0)
    dr.add_argument("--lag", type=float, default=0.5,
                    help="mean replication lag in virtual seconds")
    dr.add_argument("--horizon", type=float, default=30.0,
                    help="bounded-staleness horizon in virtual seconds")
    dr.add_argument("--outage", type=float, default=60.0,
                    help="primary-region outage length in virtual seconds")
    dr.add_argument("--json", action="store_true",
                    help="print the machine-readable drill result")

    crashtest = sub.add_parser(
        "crashtest",
        help="systematically crash at registered points and verify recovery",
    )
    crashtest.add_argument("--all-points", action="store_true",
                           help="one episode per registered point (default)")
    crashtest.add_argument("--point", default="",
                           help="run a single named crash point")
    crashtest.add_argument("--random", type=int, default=0, metavar="N",
                           help="N seeded random point/schedule episodes")
    crashtest.add_argument("--seed", type=int, default=0)
    crashtest.add_argument("--broken-gc", action="store_true",
                           help="run with sabotaged GC (episodes must "
                                "detect the leaks)")
    return parser


def main(argv: "Optional[List[str]]" = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "quickstart": cmd_quickstart,
        "tpch": cmd_tpch,
        "compare": cmd_compare,
        "table1": cmd_table1,
        "chaos": cmd_chaos,
        "load": cmd_load,
        "trace": cmd_trace,
        "report": cmd_report,
        "fsck": cmd_fsck,
        "scrub": cmd_scrub,
        "dr": cmd_dr,
        "crashtest": cmd_crashtest,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
