"""The Object Cache Manager (OCM, Section 4).

The OCM is a node-local, disk-based extension of the buffer manager sitting
between it and the object store:

- **read-through**: a miss fetches from the object store, returns the data
  to the caller and *asynchronously* caches it on the local SSD;
- **write-back** (churn phase): a page write completes at local-SSD latency
  while the upload to the object store proceeds in the background — but the
  page joins the LRU list only after its upload succeeds, so pages of
  failed/rolled-back transactions never pollute the cache;
- **write-through** (commit phase): the page is synchronously uploaded and
  asynchronously cached;
- **FlushForCommit**: a committing transaction's queued background uploads
  are promoted ahead of other transactions' and drained write-through;
- a pluggable **eviction policy** orders read and write traffic together:
  the default ``lru`` policy is the paper's single LRU list; ``arc2q``
  (see :mod:`repro.core.cache_policy`) adds probationary/protected
  segments with ghost lists and a scan-hint admission rule so one bulk
  scan cannot flush the hot working set.

Asynchronous work is modelled by charging the SSD/NIC pipes at enqueue time
without advancing the shared clock; because the SSD's bandwidth pipe is
FIFO and shared between reads and writes, a burst of asynchronous cache
fills delays subsequent cache-hit reads — reproducing the Q3/Q4 anomaly the
paper reports in Figure 6.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.checksum import crc32c
from repro.core.aimd import AimdConfig, AimdUploadController
from repro.core.cache_policy import make_policy
from repro.objectstore.client import RetryingObjectClient
from repro.objectstore.errors import CircuitOpenError, DegradedCacheMissError
from repro.sim.crashpoints import crash_point, register_crash_point
from repro.sim.devices import DeviceProfile, QueueingDevice
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import DeterministicRng
from repro.sim.tracing import NULL_TRACER
from repro.storage.dbspace import ObjectIO
from repro.storage.keys import object_key_from_name

CP_WRITE_THROUGH_BEFORE_PUT = register_crash_point(
    "ocm.write_through.before_put",
    "commit-mode write reached the OCM but the upload never started",
)
CP_WRITE_THROUGH_AFTER_PUT = register_crash_point(
    "ocm.write_through.after_put",
    "commit-mode upload landed on the store, local fill/LRU state lost",
)
CP_FLUSH_BEFORE_UPLOAD = register_crash_point(
    "ocm.flush.before_upload",
    "FlushForCommit drained some queued write-backs, crashed mid-queue "
    "(remaining pages exist only on the dead node's SSD)",
)
CP_BATCH_FLUSH_BEFORE_UPLOAD = register_crash_point(
    "ocm.batch_flush.before_upload",
    "group-commit flush was about to upload a coalesced batch; every page "
    "in the batch (and all later batches) exists only on the dead node",
)
CP_BATCH_FLUSH_AFTER_UPLOAD = register_crash_point(
    "ocm.batch_flush.after_upload",
    "a coalesced batch landed on the store but the node died before the "
    "commit record — the batch's objects are unreferenced until recovery",
)


@dataclass(frozen=True)
class OcmConfig:
    """OCM sizing and behaviour knobs."""

    capacity_bytes: int
    upload_window: int = 16
    read_window: int = 32
    # Eviction policy: "lru" (the paper's single LRU list, default) or
    # "arc2q" (scan-resistant probation/protected segments with ghost
    # lists; see repro.core.cache_policy).
    policy: str = "lru"
    # Ablation knob: insert write-back pages into the LRU immediately
    # instead of after upload success (the paper's rule is False).
    lru_insert_before_upload: bool = False
    # The paper's proposed future work (Section 6's Figure 6 analysis):
    # monitor SSD vs object-store read latency and re-route cache hits to
    # the object store while asynchronous fills saturate the SSD.
    adaptive_read_routing: bool = False
    # Degraded mode: while the client's circuit breaker is open, serve
    # reads from the SSD cache, keep queuing write-backs locally, and
    # drain the backlog when the breaker closes.  Write-through-at-commit
    # stays enforced throughout: commit uploads bypass the breaker's
    # fail-fast and ride the retry policy through the outage.
    degraded_mode: bool = True
    # Adaptive write pipeline (all off by default; the defaults reproduce
    # the paper's fixed-window drain byte-for-byte):
    # - adaptive_upload_window: replace the fixed upload_window with an
    #   AIMD controller seeded at upload_window (see repro.core.aimd);
    # - group_commit_flush: FlushForCommit promotes a transaction's
    #   queued jobs as coalesced adjacent-key batches (requires the
    #   client's coalesce_puts for multi-key requests, else batches of 1);
    # - max_pending_uploads: backpressure — a write-back that would push
    #   the pending-upload queue past this bound stalls the producer
    #   while the oldest queued uploads drain (0 = unbounded, the
    #   paper's behaviour).  Degraded mode wins: while the breaker is
    #   open the queue may grow without bound, as before.
    adaptive_upload_window: bool = False
    group_commit_flush: bool = False
    max_pending_uploads: int = 0
    aimd: "Optional[AimdConfig]" = None


class _CacheEntry:
    __slots__ = ("name", "data", "uploaded", "in_lru", "crc")

    def __init__(self, name: str, data: bytes, uploaded: bool, in_lru: bool,
                 crc: "Optional[int]" = None) -> None:
        self.name = name
        self.data = data
        self.uploaded = uploaded
        self.in_lru = in_lru
        # CRC-32C recorded at SSD-fill time (verified-reads mode only):
        # cache hits — including degraded-mode hits, which cannot fall
        # back to the fenced-off store — re-verify against it, so the SSD
        # cache is never an integrity blind spot.
        self.crc = crc

    @property
    def size(self) -> int:
        return len(self.data)


class _PendingUpload:
    __slots__ = ("name", "data", "txn_id", "enqueue_time")

    def __init__(self, name: str, data: bytes, txn_id: "Optional[int]",
                 enqueue_time: float) -> None:
        self.name = name
        self.data = data
        self.txn_id = txn_id
        self.enqueue_time = enqueue_time


class ObjectCacheManager(ObjectIO):
    """Node-local SSD read/write cache in front of an object store."""

    def __init__(
        self,
        client: RetryingObjectClient,
        device_profile: DeviceProfile,
        config: OcmConfig,
        rng: "Optional[DeterministicRng]" = None,
    ) -> None:
        if config.capacity_bytes <= 0:
            raise ValueError("OCM capacity must be positive")
        self.client = client
        self.config = config
        self.clock = client.clock
        self.device = QueueingDevice(
            device_profile,
            self.clock,
            rng or DeterministicRng(0, "ocm-device"),
        )
        self.metrics = MetricsRegistry()
        self.tracer = NULL_TRACER
        self._entries: "OrderedDict[str, _CacheEntry]" = OrderedDict()
        self._policy = make_policy(config.policy, config.capacity_bytes)
        self._used = 0
        # Mirror the client's verified-reads knob: fills record a CRC and
        # cache hits re-verify (the client already verified the fetch).
        self._verify = bool(getattr(client, "verify_reads", False))
        self._pending: "Dict[int, List[_PendingUpload]]" = {}
        self._anonymous_pending: "List[_PendingUpload]" = []
        self._upload_inflight: "List[float]" = []
        self._was_degraded = False
        self._aimd: "Optional[AimdUploadController]" = None
        if config.adaptive_upload_window:
            aimd_config = config.aimd or AimdConfig(
                initial_window=config.upload_window
            )
            self._aimd = AimdUploadController(aimd_config, metrics=self.metrics)

    # ------------------------------------------------------------------ #
    # degraded mode (client circuit breaker open)
    # ------------------------------------------------------------------ #

    def degraded(self) -> bool:
        """Whether the OCM is currently serving in degraded mode."""
        return (
            self.config.degraded_mode
            and self.client.breaker is not None
            and self.client.breaker_state() == "open"
        )

    def _track_degradation(self) -> None:
        """Note breaker transitions; drain the backlog on recovery.

        Called on every public operation.  When the breaker closes after a
        degraded period, queued *anonymous* write-backs are drained in the
        background (transaction-scoped queues keep waiting for their
        commit's FlushForCommit, as always).
        """
        if self.degraded():
            self._was_degraded = True
            self.metrics.gauge("degraded_queue_depth").set(
                self.pending_upload_count()
            )
            return
        if not self._was_degraded:
            return
        self._was_degraded = False
        jobs, self._anonymous_pending = self._anonymous_pending, []
        for job in jobs:
            self._schedule_upload(job)
            entry = self._entries.get(job.name)
            if entry is not None:
                entry.uploaded = True
                entry.in_lru = True
        if jobs:
            self.metrics.counter("degraded_drained_uploads").increment(len(jobs))
        self.metrics.counter("degraded_recoveries").increment()
        self.metrics.gauge("degraded_queue_depth").set(
            self.pending_upload_count()
        )

    # ------------------------------------------------------------------ #
    # cache bookkeeping
    # ------------------------------------------------------------------ #

    @property
    def used_bytes(self) -> int:
        return self._used

    def cached(self, name: str) -> bool:
        return name in self._entries

    def entry_count(self) -> int:
        return len(self._entries)

    def pending_upload_count(self) -> int:
        return sum(len(jobs) for jobs in self._pending.values()) + len(
            self._anonymous_pending
        )

    def _insert(self, name: str, data: bytes, uploaded: bool, in_lru: bool,
                scan_hint: bool = False) -> None:
        old = self._entries.pop(name, None)
        if old is not None:
            self._used -= old.size
        payload = bytes(data)
        crc = crc32c(payload) if self._verify else None
        entry = _CacheEntry(name, payload, uploaded, in_lru, crc=crc)
        self._entries[name] = entry
        self._used += entry.size
        self._policy.on_insert(name, entry.size, scan_hint)
        self._evict_if_needed()

    def _verified_entry(self, name: str,
                        entry: "Optional[_CacheEntry]",
                        ) -> "Optional[_CacheEntry]":
        """Drop (and report) a cached entry whose bytes no longer match
        their fill-time CRC; the caller falls through to the miss path."""
        if entry is None or entry.crc is None:
            return entry
        if crc32c(entry.data) == entry.crc:
            return entry
        self.metrics.counter("cache_verify_failures").increment()
        self.tracer.record("verify", "cache_checksum_mismatch",
                           self.clock.now(), self.clock.now(), key=name)
        self._remove(name)
        return None

    def _remove(self, name: str, evicted: bool = False) -> "Optional[_CacheEntry]":
        entry = self._entries.pop(name, None)
        if entry is not None:
            self._used -= entry.size
            self._policy.on_remove(name, evicted)
        return entry

    def _touch(self, name: str, scan_hint: bool = False) -> None:
        self._policy.on_access(name, scan_hint)

    def _evict_if_needed(self) -> None:
        """Policy-ordered eviction; only uploaded, listed entries are victims.

        The policy supplies the victim *order*; eviction *eligibility*
        stays here.  Under the ``lru_insert_before_upload`` ablation,
        not-yet-uploaded listed residents are also eligible, but evicting
        one forces its upload synchronously first (the data must not be
        lost) — the cost the paper's insert-after-upload rule avoids
        paying for pages of doomed transactions.
        """
        if self._used <= self.config.capacity_bytes:
            return
        victims: List[str] = []
        projected = self._used
        for name in self._policy.eviction_order():
            if projected <= self.config.capacity_bytes:
                break
            entry = self._entries.get(name)
            if entry is None:
                continue
            if entry.in_lru and entry.uploaded:
                victims.append(name)
                projected -= entry.size
            elif entry.in_lru and self.config.lru_insert_before_upload:
                self._force_upload(name)
                victims.append(name)
                projected -= entry.size
        for name in victims:
            self._remove(name, evicted=True)
            self.metrics.counter("evictions").increment()

    def _force_upload(self, name: str) -> None:
        """Synchronously upload a pending write-back entry (ablation path)."""
        for jobs in list(self._pending.values()) + [self._anonymous_pending]:
            for job in jobs:
                if job.name == name:
                    done = self._schedule_upload(job)
                    self.clock.advance_to(max(self.clock.now(), done))
                    jobs.remove(job)
                    entry = self._entries.get(name)
                    if entry is not None:
                        entry.uploaded = True
                    self.metrics.counter("forced_uploads").increment()
                    return

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def _ssd_read_estimate(self, nbytes: int, now: float) -> float:
        """Expected SSD read latency including queued asynchronous work."""
        return (
            self.device.backlog(now)
            + nbytes / self.device.profile.bandwidth
            + self.device.profile.read_latency
        )

    def _store_read_estimate(self, nbytes: int) -> float:
        """Expected object-store read latency for ``nbytes``."""
        store = self.client.store
        pipe = self.client.bandwidth
        rate = pipe.rate if pipe is not None else store.profile.default_bandwidth
        return store.profile.get_latency + nbytes / rate

    def _should_reroute(self, nbytes: int, now: float) -> bool:
        if not self.config.adaptive_read_routing:
            return False
        return self._ssd_read_estimate(nbytes, now) > self._store_read_estimate(
            nbytes
        )

    def get(self, name: str, scan_hint: bool = False) -> bytes:
        self._track_degradation()
        with self.tracer.span("get", "ocm", key=name) as span:
            data, outcome = self._get_inner(name, scan_hint)
            if span is not None:
                span.attrs["outcome"] = outcome
                span.attrs["nbytes"] = len(data)
            return data

    def _get_inner(self, name: str, scan_hint: bool = False) -> "Tuple[bytes, str]":
        now = self.clock.now()
        degraded = self.degraded()
        entry = self._verified_entry(name, self._entries.get(name))
        if entry is not None:
            if degraded:
                # Degraded mode: the store is fenced off; serve the hit
                # from the SSD without considering adaptive rerouting.
                done = self.device.read(entry.size, now)
                self.tracer.record("read", "ssd", now, done,
                                   key=name, nbytes=entry.size)
                self.clock.advance_to(done)
                self._touch(name, scan_hint)
                self.metrics.counter("hits").increment()
                self.metrics.counter("degraded_reads").increment()
                return entry.data, "degraded_hit"
            if entry.uploaded and self._should_reroute(entry.size, now):
                # Adaptive routing: the SSD is saturated with asynchronous
                # fills; serve this hit from the object store instead.
                data, done = self.client.get_at(name, now)
                self.clock.advance_to(done)
                self._touch(name, scan_hint)
                self.metrics.counter("hits").increment()
                self.metrics.counter("rerouted_reads").increment()
                return data, "rerouted_hit"
            # Cache hit: read from the local SSD.  The shared bandwidth
            # pipe means queued asynchronous fills delay this read.
            done = self.device.read(entry.size, now)
            self.tracer.record("read", "ssd", now, done,
                               key=name, nbytes=entry.size)
            self.clock.advance_to(done)
            self._touch(name, scan_hint)
            self.metrics.counter("hits").increment()
            return entry.data, "hit"
        self.metrics.counter("misses").increment()
        try:
            data, done = self.client.get_at(name, now)
        except CircuitOpenError as exc:
            if degraded:
                self.metrics.counter("degraded_miss_failures").increment()
                raise DegradedCacheMissError(name, exc.retry_at) from exc
            raise
        self.clock.advance_to(done)
        # Read-through: return to the caller and cache asynchronously.
        fill_start = self.clock.now()
        fill_done = self.device.write(len(data), fill_start)
        self.tracer.record("fill", "ssd", fill_start, fill_done,
                           key=name, nbytes=len(data))
        self._insert(name, data, uploaded=True, in_lru=True,
                     scan_hint=scan_hint)
        return data, "miss"

    def get_many(self, names: "Sequence[str]",
                 scan_hint: bool = False) -> "Dict[str, bytes]":
        """Parallel read: SSD hits and object store misses overlap."""
        self._track_degradation()
        t0 = self.clock.now()
        degraded = self.degraded()
        span = self.tracer.begin("get_many", "ocm", count=len(names))
        results: Dict[str, bytes] = {}
        hit_last = t0
        hit_count = 0
        misses: List[str] = []
        rerouted: List[str] = []
        try:
            for name in names:
                entry = self._verified_entry(name, self._entries.get(name))
                if entry is not None:
                    if degraded:
                        done = self.device.read(entry.size, t0)
                        self.tracer.record("read", "ssd", t0, done,
                                           key=name, nbytes=entry.size)
                        hit_last = max(hit_last, done)
                        self._touch(name, scan_hint)
                        hit_count += 1
                        self.metrics.counter("hits").increment()
                        self.metrics.counter("degraded_reads").increment()
                        results[name] = entry.data
                        continue
                    if entry.uploaded and self._should_reroute(entry.size, t0):
                        rerouted.append(name)
                        self._touch(name, scan_hint)
                        hit_count += 1
                        self.metrics.counter("hits").increment()
                        self.metrics.counter("rerouted_reads").increment()
                        results[name] = entry.data
                        continue
                    done = self.device.read(entry.size, t0)
                    self.tracer.record("read", "ssd", t0, done,
                                       key=name, nbytes=entry.size)
                    hit_last = max(hit_last, done)
                    self._touch(name, scan_hint)
                    hit_count += 1
                    self.metrics.counter("hits").increment()
                    results[name] = entry.data
                else:
                    misses.append(name)
            if rerouted:
                # Rerouted hits cost object-store reads (timing only; the
                # data is already in hand from the cache entries).
                for name in rerouted:
                    __, done = self.client.get_at(name, t0)
                    hit_last = max(hit_last, done)
            if misses:
                self.metrics.counter("misses").increment(len(misses))
                try:
                    fetched = self.client.get_many(
                        misses, window=self.config.read_window
                    )
                except CircuitOpenError as exc:
                    if degraded:
                        self.metrics.counter(
                            "degraded_miss_failures"
                        ).increment(len(misses))
                        raise DegradedCacheMissError(
                            misses[0], exc.retry_at
                        ) from exc
                    raise
                fill_time = self.clock.now()
                for name in misses:
                    data = fetched[name]
                    fill_done = self.device.write(len(data), fill_time)
                    self.tracer.record("fill", "ssd", fill_time, fill_done,
                                       key=name, nbytes=len(data))
                    self._insert(name, data, uploaded=True, in_lru=True,
                                 scan_hint=scan_hint)
                    results[name] = data
            self.clock.advance_to(max(self.clock.now(), hit_last))
            return results
        finally:
            self.tracer.finish(span, hits=hit_count, misses=len(misses))

    def get_many_at(self, names: "Sequence[str]", now: float,
                    scan_hint: bool = False,
                    ) -> "Tuple[Dict[str, bytes], float]":
        """Timed variant of :meth:`get_many` for pipelined prefetch.

        Charges the SSD device and the object-store pipes from ``now``
        and returns ``(results, completion_time)`` WITHOUT advancing the
        shared clock — the caller overlaps its own CPU work with the
        in-flight I/O and waits for ``completion_time`` when it needs
        the data.  Entries are inserted immediately (the simulation's
        usual convention for asynchronously arriving state).
        """
        self._track_degradation()
        degraded = self.degraded()
        results: Dict[str, bytes] = {}
        hit_last = now
        hit_count = 0
        misses: List[str] = []
        for name in names:
            entry = self._verified_entry(name, self._entries.get(name))
            if entry is None:
                misses.append(name)
                continue
            done = self.device.read(entry.size, now)
            self.tracer.record("read", "ssd", now, done,
                               key=name, nbytes=entry.size)
            hit_last = max(hit_last, done)
            self._touch(name, scan_hint)
            hit_count += 1
            self.metrics.counter("hits").increment()
            if degraded:
                self.metrics.counter("degraded_reads").increment()
            results[name] = entry.data
        miss_done = now
        if misses:
            self.metrics.counter("misses").increment(len(misses))
            try:
                fetched, miss_done = self.client.get_many_at(
                    misses, now, window=self.config.read_window
                )
            except CircuitOpenError as exc:
                if degraded:
                    self.metrics.counter(
                        "degraded_miss_failures"
                    ).increment(len(misses))
                    raise DegradedCacheMissError(
                        misses[0], exc.retry_at
                    ) from exc
                raise
            for name in misses:
                data = fetched[name]
                fill_done = self.device.write(len(data), miss_done)
                self.tracer.record("fill", "ssd", miss_done, fill_done,
                                   key=name, nbytes=len(data))
                self._insert(name, data, uploaded=True, in_lru=True,
                             scan_hint=scan_hint)
                results[name] = data
        done = max(hit_last, miss_done)
        self.tracer.record("get_many_issue", "ocm", now, done,
                           count=len(names), hits=hit_count,
                           misses=len(misses))
        return results, done

    # ------------------------------------------------------------------ #
    # pre-warm export / bulk admission (autoscale scale-out)
    # ------------------------------------------------------------------ #

    def warm_set(self, max_bytes: "Optional[int]" = None,
                 max_entries: "Optional[int]" = None) -> "List[str]":
        """Hottest-first resident entry names, for pre-warming a peer OCM.

        The eviction policy's victim order is coldest-first; reversing
        it yields the warm set.  Only uploaded, policy-listed entries
        qualify — pending write-backs are transaction state, not cache
        heat — so every returned name is fetchable from the shared
        store.  ``max_bytes`` clamps the budget as a hottest prefix (the
        first entry always fits, so a tiny budget still warms something).
        """
        names: "List[str]" = []
        total = 0
        for name in reversed(list(self._policy.eviction_order())):
            entry = self._entries.get(name)
            if entry is None or not (entry.in_lru and entry.uploaded):
                continue
            if max_bytes is not None and names and total + entry.size > max_bytes:
                break
            names.append(name)
            total += entry.size
            if max_entries is not None and len(names) >= max_entries:
                break
            if max_bytes is not None and total >= max_bytes:
                break
        return names

    def bulk_admit(self, names: "Sequence[str]") -> int:
        """Fetch-and-cache a batch of objects (scale-out pre-warm).

        Misses ride the client's coalescing ``get_many`` — adjacent keys
        collapse into ranged GETs — and fill the SSD like ordinary
        read-through.  The caller waits for the fills: a pre-warm that
        overlapped admission would hand the first queries a saturated
        SSD queue instead of a warm cache.  Returns entries admitted.
        """
        self._track_degradation()
        todo = [name for name in names if name not in self._entries]
        if not todo:
            return 0
        with self.tracer.span("bulk_admit", "ocm", count=len(todo)):
            fetched = self.client.get_many(
                todo, window=self.config.read_window
            )
            fill_start = self.clock.now()
            last = fill_start
            admitted_bytes = 0
            for name in todo:
                data = fetched[name]
                fill_done = self.device.write(len(data), fill_start)
                self.tracer.record("fill", "ssd", fill_start, fill_done,
                                   key=name, nbytes=len(data))
                self._insert(name, data, uploaded=True, in_lru=True)
                admitted_bytes += len(data)
                last = max(last, fill_done)
            self.clock.advance_to(last)
        self.metrics.counter("prewarm_admitted").increment(len(todo))
        self.metrics.counter("prewarm_bytes").increment(admitted_bytes)
        return len(todo)

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def put(self, name: str, data: bytes, txn_id: "Optional[int]" = None,
            commit_mode: bool = False) -> None:
        self._track_degradation()
        with self.tracer.span(
            "put", "ocm", key=name, nbytes=len(data),
            mode="write_through" if commit_mode else "write_back",
        ):
            if commit_mode:
                self._put_write_through(name, data)
            else:
                self._put_write_back(name, data, txn_id)

    def _put_write_through(self, name: str, data: bytes) -> None:
        """Synchronous upload, asynchronous local caching.

        Commit-critical: bypasses the circuit breaker's fail-fast so the
        write-through-at-commit invariant holds through an outage (the
        retry policy, not the breaker, decides when to give up).
        """
        crash_point(CP_WRITE_THROUGH_BEFORE_PUT)
        done = self.client.put_at(name, data, self.clock.now(),
                                  bypass_breaker=True)
        self.clock.advance_to(done)
        crash_point(CP_WRITE_THROUGH_AFTER_PUT)
        fill_start = self.clock.now()
        fill_done = self.device.write(len(data), fill_start)
        self.tracer.record("fill", "ssd", fill_start, fill_done,
                           key=name, nbytes=len(data))
        self._insert(name, data, uploaded=True, in_lru=True)
        self.metrics.counter("write_through").increment()

    def _put_write_back(self, name: str, data: bytes,
                        txn_id: "Optional[int]") -> None:
        """Synchronous local write, upload queued in the background."""
        start = self.clock.now()
        done = self.device.write(len(data), start)
        self.tracer.record("write", "ssd", start, done,
                           key=name, nbytes=len(data))
        self.clock.advance_to(done)
        in_lru = self.config.lru_insert_before_upload
        self._insert(name, data, uploaded=False, in_lru=in_lru)
        job = _PendingUpload(name, bytes(data), txn_id, self.clock.now())
        if txn_id is None:
            self._anonymous_pending.append(job)
        else:
            self._pending.setdefault(txn_id, []).append(job)
        self.metrics.counter("write_back").increment()
        if self.degraded():
            self.metrics.counter("degraded_queued_writes").increment()
            self.metrics.gauge("degraded_queue_depth").set(
                self.pending_upload_count()
            )
        elif self.config.max_pending_uploads > 0:
            self._apply_backpressure()

    def _pop_oldest_pending(self) -> "Optional[_PendingUpload]":
        """Remove and return the oldest queued upload across all queues."""
        best: "Optional[List[_PendingUpload]]" = None
        best_time: "Optional[float]" = None
        if self._anonymous_pending:
            best = self._anonymous_pending
            best_time = self._anonymous_pending[0].enqueue_time
        for jobs in self._pending.values():
            if jobs and (best_time is None
                         or jobs[0].enqueue_time < best_time):
                best = jobs
                best_time = jobs[0].enqueue_time
        if best is None:
            return None
        return best.pop(0)

    def _apply_backpressure(self) -> None:
        """Stall the producer while the oldest queued uploads drain.

        The paper's write-back queue is unbounded — a loader faster than
        the network pipe accumulates pending uploads without limit.  With
        ``max_pending_uploads`` set, the writer that pushes the queue
        past the bound synchronously drains the oldest jobs (through the
        live upload window, so AIMD backoff slows the producer too) until
        the queue fits.  Drained jobs leave their queues — FlushForCommit
        must never see them again, or it would PUT the same key twice.
        """
        limit = self.config.max_pending_uploads
        stalled = False
        while self.pending_upload_count() > limit:
            job = self._pop_oldest_pending()
            if job is None:
                break
            done = self._schedule_upload(job)
            self.clock.advance_to(max(self.clock.now(), done))
            entry = self._entries.get(job.name)
            if entry is not None:
                entry.uploaded = True
                entry.in_lru = True
            self.metrics.counter("backpressure_stalls").increment()
            stalled = True
        if stalled:
            pipe = self.client.bandwidth
            if pipe is not None:
                now = self.clock.now()
                pending = sum(
                    len(job.data)
                    for jobs in self._pending.values() for job in jobs
                ) + sum(len(job.data) for job in self._anonymous_pending)
                self.metrics.gauge("drain_eta_seconds").set(
                    pipe.eta(now, float(pending)) - now
                )

    def put_many(self, items: "Sequence[Tuple[str, bytes]]",
                 txn_id: "Optional[int]" = None,
                 commit_mode: bool = False) -> None:
        self._track_degradation()
        with self.tracer.span(
            "put_many", "ocm", count=len(items),
            mode="write_through" if commit_mode else "write_back",
        ):
            if commit_mode:
                # Parallel synchronous uploads, asynchronous cache fills.
                # The window is read through _upload_window() so an AIMD
                # backoff throttles commit-mode bursts too (it used to
                # read the config constant and ignore live backoff).
                self.client.put_many(items, window=self._upload_window(),
                                     bypass_breaker=True)
                fill_time = self.clock.now()
                for name, data in items:
                    fill_done = self.device.write(len(data), fill_time)
                    self.tracer.record("fill", "ssd", fill_time, fill_done,
                                       key=name, nbytes=len(data))
                    self._insert(name, data, uploaded=True, in_lru=True)
                    self.metrics.counter("write_through").increment()
                return
            for name, data in items:
                self._put_write_back(name, data, txn_id)

    # ------------------------------------------------------------------ #
    # FlushForCommit and rollback
    # ------------------------------------------------------------------ #

    def _upload_window(self) -> int:
        """The drain window in force right now (live AIMD or the constant).

        Every drain path — FlushForCommit, group batches, degraded-mode
        recovery, commit-mode ``put_many`` — reads the window through
        here, so an AIMD backoff throttles all of them at once.
        """
        if self._aimd is not None:
            return self._aimd.window
        return self.config.upload_window

    def _put_retries(self) -> float:
        return self.client.metrics.counter("put_retries").value

    def _feed_aimd(self, started: float, completed: float,
                   retries_before: float) -> None:
        if self._aimd is None:
            return
        retries = int(self._put_retries() - retries_before)
        self._aimd.on_completion(started, completed, retries=retries)

    def _acquire_upload_slot(self, start: float) -> float:
        """Wait (in virtual time) for an upload-window slot.

        A ``while`` rather than an ``if``: after an AIMD backoff the
        window may sit *below* the in-flight count, and new work must
        wait for several completions, not one.  With a fixed window the
        heap never exceeds the window, so at most one pop happens and
        the schedule is identical to the historical behaviour.
        """
        window = self._upload_window()
        while len(self._upload_inflight) >= window:
            start = max(start, heapq.heappop(self._upload_inflight))
        return start

    def _schedule_upload(self, job: _PendingUpload) -> float:
        start = max(job.enqueue_time, self.clock.now())
        start = self._acquire_upload_slot(start)
        retries_before = self._put_retries() if self._aimd is not None else 0.0
        # Queued write-backs drain on the commit/recovery path, where the
        # data must reach the store: bypass the breaker's fail-fast.
        done = self.client.put_at(job.name, job.data, start,
                                  bypass_breaker=True)
        heapq.heappush(self._upload_inflight, done)
        self._feed_aimd(start, done, retries_before)
        return done

    def _schedule_batch(self, batch: "List[_PendingUpload]") -> float:
        """Upload a coalesced batch through one window slot.

        A batch of one rides the plain single-PUT path; larger batches
        become one ranged multi-put billed as a single request.  Either
        way the batch occupies one slot of the live window, so the AIMD
        controller bounds *requests* in flight, coalesced or not.
        """
        if len(batch) == 1:
            return self._schedule_upload(batch[0])
        start = max(max(job.enqueue_time for job in batch), self.clock.now())
        start = self._acquire_upload_slot(start)
        retries_before = self._put_retries() if self._aimd is not None else 0.0
        done = self.client.put_batch_at(
            [(job.name, job.data) for job in batch], start,
            bypass_breaker=True,
        )
        heapq.heappush(self._upload_inflight, done)
        self._feed_aimd(start, done, retries_before)
        self.metrics.counter("batched_flush_uploads").increment(len(batch))
        return done

    def _group_adjacent(
        self, jobs: "List[_PendingUpload]"
    ) -> "List[List[_PendingUpload]]":
        """Pack queued jobs into adjacent-key runs for coalesced upload.

        Mirrors the client's read-side ``_coalesce_runs``: fresh page
        keys are allocated monotonically, so a transaction's queue is
        dominated by adjacency runs.  Jobs whose names do not carry a
        parseable key — and everything when the client has coalescing
        disabled — stay as singleton batches.
        """
        if not self.client.coalesce_puts:
            return [[job] for job in jobs]
        max_run = self.client.coalesce_max_run
        keyed: "List[Tuple[int, _PendingUpload]]" = []
        batches: "List[List[_PendingUpload]]" = []
        for job in jobs:
            try:
                keyed.append((object_key_from_name(job.name), job))
            except ValueError:
                batches.append([job])
        keyed.sort(key=lambda pair: pair[0])
        run: "List[_PendingUpload]" = []
        previous_key: "Optional[int]" = None
        for key, job in keyed:
            if (run and previous_key is not None
                    and key == previous_key + 1 and len(run) < max_run):
                run.append(job)
            else:
                if run:
                    batches.append(run)
                run = [job]
            previous_key = key
        if run:
            batches.append(run)
        return batches

    def flush_for_commit(self, txn_id: int) -> None:
        """Promote and drain the transaction's queued uploads (Section 4).

        The committing transaction's jobs jump ahead of other transactions'
        still-unscheduled background work; the commit waits for them.
        """
        self._track_degradation()
        jobs = self._pending.pop(txn_id, [])
        with self.tracer.span("flush_for_commit", "ocm",
                              txn_id=txn_id, jobs=len(jobs)):
            last = self.clock.now()
            if self.config.group_commit_flush:
                for batch in self._group_adjacent(jobs):
                    crash_point(CP_BATCH_FLUSH_BEFORE_UPLOAD)
                    done = self._schedule_batch(batch)
                    last = max(last, done)
                    for job in batch:
                        entry = self._entries.get(job.name)
                        if entry is not None:
                            entry.uploaded = True
                            entry.in_lru = True
                    crash_point(CP_BATCH_FLUSH_AFTER_UPLOAD)
            else:
                for job in jobs:
                    crash_point(CP_FLUSH_BEFORE_UPLOAD)
                    done = self._schedule_upload(job)
                    last = max(last, done)
                    entry = self._entries.get(job.name)
                    if entry is not None:
                        entry.uploaded = True
                        entry.in_lru = True
            self.clock.advance_to(last)
            if jobs:
                self.metrics.counter("flush_for_commit_jobs").increment(
                    len(jobs)
                )
            self._evict_if_needed()

    def discard_txn(self, txn_id: int) -> int:
        """Drop a rolled-back transaction's pending uploads and entries."""
        jobs = self._pending.pop(txn_id, [])
        for job in jobs:
            entry = self._entries.get(job.name)
            if entry is not None and not entry.uploaded:
                self._remove(job.name)
        self.metrics.counter("discarded_uploads").increment(len(jobs))
        return len(jobs)

    def drain_all(self) -> None:
        """Flush every pending upload (shutdown path, tests)."""
        with self.tracer.span("drain_all", "ocm"):
            for txn_id in list(self._pending):
                self.flush_for_commit(txn_id)
            jobs, self._anonymous_pending = self._anonymous_pending, []
            last = self.clock.now()
            for job in jobs:
                done = self._schedule_upload(job)
                last = max(last, done)
                entry = self._entries.get(job.name)
                if entry is not None:
                    entry.uploaded = True
                    entry.in_lru = True
            self.clock.advance_to(last)

    # ------------------------------------------------------------------ #
    # deletes / probes / billing
    # ------------------------------------------------------------------ #

    def _cancel_pending(self, names: "Sequence[str]") -> int:
        """Drop queued uploads for deleted objects.

        Without this, a delete leaves the object's ``_PendingUpload`` in
        the queues and the next ``flush_for_commit``/``drain_all``/
        degraded-recovery drain re-uploads it — resurrecting a deleted
        object on the store.
        """
        doomed = set(names)
        cancelled = 0
        for txn_id in list(self._pending):
            jobs = self._pending[txn_id]
            kept = [job for job in jobs if job.name not in doomed]
            cancelled += len(jobs) - len(kept)
            if kept:
                self._pending[txn_id] = kept
            else:
                del self._pending[txn_id]
        kept = [
            job for job in self._anonymous_pending if job.name not in doomed
        ]
        cancelled += len(self._anonymous_pending) - len(kept)
        self._anonymous_pending = kept
        if cancelled:
            self.metrics.counter("cancelled_uploads").increment(cancelled)
        return cancelled

    def delete(self, name: str) -> None:
        self._remove(name)
        self._cancel_pending([name])
        self.client.delete(name)

    def delete_many(self, names: "Sequence[str]") -> None:
        for name in names:
            self._remove(name)
        self._cancel_pending(names)
        self.client.delete_many(names)

    def exists(self, name: str) -> bool:
        # GC polling must consult the store, not this node's cache.
        return self.client.exists(name)

    def stored_bytes(self) -> int:
        return self.client.store.stored_bytes()

    def invalidate_all(self) -> None:
        """Drop the whole cache (node crash: instance storage is ephemeral).

        The upload-window heap goes too: its entries are completion times
        of uploads from before the crash, and keeping them would throttle
        the restarted node's first ``upload_window`` uploads against work
        that no longer exists.
        """
        self._entries.clear()
        self._policy.clear()
        self._pending.clear()
        self._anonymous_pending.clear()
        self._upload_inflight.clear()
        self._used = 0
        self._was_degraded = False
        self.metrics.gauge("degraded_queue_depth").set(0.0)

    def stats(self) -> "Dict[str, float]":
        """Hit/miss/eviction counters (Table 5), plus policy counters."""
        snapshot = self.metrics.snapshot()
        snapshot.setdefault("hits", 0.0)
        snapshot.setdefault("misses", 0.0)
        snapshot.setdefault("evictions", 0.0)
        for key, value in self._policy.stats().items():
            snapshot[f"policy_{key}"] = value
        return snapshot

    def hit_rate(self) -> float:
        stats = self.stats()
        total = stats["hits"] + stats["misses"]
        if total == 0:
            return 0.0
        return stats["hits"] / total
