"""The store auditor: a "cloud fsck" for the simulated object store.

The engine's metadata claims to account for every object in the bucket:

- the **catalog** (every committed version's blockmap walk) covers live
  data pages and blockmap pages;
- registered **snapshots** cover pages only their captured catalogs still
  reference;
- the **retention FIFO** covers superseded pages awaiting deletion;
- the **commit chain** (RF/RB bitmaps of not-yet-collected commits) covers
  pages whose deletion or tracking is still pending;
- the **keygen active sets** cover keys handed to nodes whose transactions
  have not committed — including crashed nodes' orphans awaiting restart
  GC.

:class:`StoreAuditor` walks all five against the bucket's ground truth and
classifies every object.  Anything present but uncovered is **LEAKED**
(storage paid for forever, the failure mode Stocator-style naming protocols
must prevent); anything covered by the catalog or a snapshot but absent is
**MISSING** (data loss).  A healthy engine — crashed mid-protocol at any
registered crash point, recovered, drained — must show neither.

The audit never advances the virtual clock: it reads the simulated store's
ground truth directly (``latest_data``), not through the timed, visibility-
filtered client path, because fsck verifies what *is*, not what a reader
would currently observe under eventual consistency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.objectstore.replicated import ReplicatedObjectStore
from repro.storage.blockmap import Blockmap, BlockmapError
from repro.storage.dbspace import CloudDbspace
from repro.storage.keys import object_key_from_name
from repro.storage.locator import NULL_LOCATOR, is_object_key
from repro.storage.identity import Catalog

if TYPE_CHECKING:
    from repro.engine import Database


class AuditError(Exception):
    """Auditor misuse (no cloud dbspaces, unknown database state)."""


class _MissingPageError(Exception):
    """A metadata walk touched a locator absent from the store."""

    def __init__(self, locator: int) -> None:
        super().__init__(f"page {locator:#x} is not on the store")
        self.locator = locator


class _TornPageError(Exception):
    """A metadata walk read a page whose stored bytes do not decode.

    At-rest rot on a blockmap page surfaces here: decompression,
    decryption or the page trailer rejects the damaged bytes before the
    blockmap even sees them.
    """

    def __init__(self, locator: int) -> None:
        super().__init__(f"page {locator:#x} does not decode")
        self.locator = locator


class _PeekPageStore:
    """Un-timed, visibility-blind page reads for metadata walks.

    Quacks like a :class:`~repro.storage.dbspace.PageStore` for
    :class:`~repro.storage.blockmap.Blockmap`, which only needs
    ``read_page``.  Reads go straight to the simulated store's latest
    versions so the audit neither advances the clock nor trips over
    eventual-consistency lag.
    """

    def __init__(self, dbspace: CloudDbspace, store) -> None:
        self._dbspace = dbspace
        self._store = store

    def read_page(self, locator: int) -> bytes:
        raw = self._store.latest_data(self._dbspace.object_name(locator))
        if raw is None:
            raise _MissingPageError(locator)
        try:
            return self._dbspace._open(raw)
        except Exception as exc:
            raise _TornPageError(locator) from exc


@dataclass
class AuditReport:
    """Machine-readable outcome of one store audit."""

    objects_scanned: int = 0
    live: int = 0
    snapshot_retained: int = 0
    pending_gc: int = 0
    active_covered: int = 0
    # (dbspace, key) pairs — present on the store, covered by nothing.
    leaked: "List[Tuple[str, int]]" = field(default_factory=list)
    # (dbspace, key) pairs — referenced by the current catalog, absent.
    missing: "List[Tuple[str, int]]" = field(default_factory=list)
    # (dbspace, key) pairs — referenced only by a snapshot, absent.
    snapshot_missing: "List[Tuple[str, int]]" = field(default_factory=list)
    # FIFO/chain entries whose objects are already gone (benign: the
    # free-then-pop windows make re-deletion idempotent, not harmful).
    already_freed: int = 0
    # Bucket names that do not parse as page objects (foreign objects).
    unparseable: "List[str]" = field(default_factory=list)
    # Multi-region convergence (empty/zero on single-region stores):
    # regions audited against the primary's ground truth.
    regions_audited: "List[str]" = field(default_factory=list)
    # (region, key) — object the primary holds, absent from the region,
    # with no queued replication entry covering it: regional data loss.
    region_missing: "List[Tuple[str, int]]" = field(default_factory=list)
    # (region, key) — object present in the region, gone from the
    # primary, with no queued tombstone: a regional orphan.
    region_leaked: "List[Tuple[str, int]]" = field(default_factory=list)
    # (region, key) — region holds different bytes than the primary and
    # no queued entry explains it.
    region_divergent: "List[Tuple[str, int]]" = field(default_factory=list)
    # Queued entries explaining a divergence (benign: replication in
    # flight, or deferred by an outage on the target region).
    region_pending: int = 0
    # (region, key) — queued entries that outlived the staleness horizon
    # without being outage-deferred: the bounded-staleness guarantee broke.
    staleness_violations: "List[Tuple[str, int]]" = field(default_factory=list)
    # Deep (content) verification — populated only by ``audit(deep=True)``:
    # every present object's stored bytes are re-hashed against the
    # store's recorded CRC-32C.
    deep: bool = False
    content_verified: int = 0
    # (dbspace, key) — present on the primary, bytes fail their checksum.
    corrupt: "List[Tuple[str, int]]" = field(default_factory=list)
    # (region, key) — a secondary region's copy fails its checksum.
    region_corrupt: "List[Tuple[str, int]]" = field(default_factory=list)

    def ok(self) -> bool:
        """No leaks, no data loss, every region convergent-or-pending,
        and (under ``deep``) no content corruption anywhere."""
        return not (
            self.leaked
            or self.missing
            or self.snapshot_missing
            or self.region_missing
            or self.region_leaked
            or self.region_divergent
            or self.staleness_violations
            or self.corrupt
            or self.region_corrupt
        )

    def to_dict(self) -> "Dict[str, object]":
        return {
            "ok": self.ok(),
            "objects_scanned": self.objects_scanned,
            "live": self.live,
            "snapshot_retained": self.snapshot_retained,
            "pending_gc": self.pending_gc,
            "active_covered": self.active_covered,
            "leaked": [[name, key] for name, key in self.leaked],
            "missing": [[name, key] for name, key in self.missing],
            "snapshot_missing": [
                [name, key] for name, key in self.snapshot_missing
            ],
            "already_freed": self.already_freed,
            "unparseable": list(self.unparseable),
            "regions_audited": list(self.regions_audited),
            "region_missing": [[r, key] for r, key in self.region_missing],
            "region_leaked": [[r, key] for r, key in self.region_leaked],
            "region_divergent": [
                [r, key] for r, key in self.region_divergent
            ],
            "region_pending": self.region_pending,
            "staleness_violations": [
                [r, key] for r, key in self.staleness_violations
            ],
            "deep": self.deep,
            "content_verified": self.content_verified,
            "corrupt": [[name, key] for name, key in self.corrupt],
            "region_corrupt": [
                [r, key] for r, key in self.region_corrupt
            ],
        }


class StoreAuditor:
    """Walks engine metadata against the object store's ground truth."""

    def __init__(self, db: "Database") -> None:
        self.db = db

    # ------------------------------------------------------------------ #
    # reference-set construction
    # ------------------------------------------------------------------ #

    def _walk_catalog(
        self,
        catalog: Catalog,
        dbspaces: "Dict[str, CloudDbspace]",
        refs: "Dict[str, Set[int]]",
        unreadable: "List[Tuple[str, int]]",
    ) -> None:
        """Add every cloud locator reachable from ``catalog`` to ``refs``.

        A walk that dies on a missing, undecodable, or structurally
        nonsensical interior page records that page in ``unreadable`` and
        moves on — the audit must survive the very corruption it is
        looking for.  (A rotted blockmap page stays *present*, so the
        classification pass counts it and the deep pass flags it CORRUPT.)
        """
        for identity in catalog.all_identities():
            dbspace = dbspaces.get(identity.dbspace)
            if dbspace is None or identity.root_locator == NULL_LOCATOR:
                continue
            store = dbspace.io.client.store
            peek = _PeekPageStore(dbspace, store)
            target = refs.setdefault(identity.dbspace, set())
            try:
                blockmap = Blockmap(
                    peek,
                    root_locator=identity.root_locator,
                    height=identity.height,
                )
                for locator in blockmap.live_locators():
                    if is_object_key(locator):
                        target.add(locator)
            except (_MissingPageError, _TornPageError) as error:
                # Both the unreadable page and the root belong to the
                # reference set; the classification pass reports whichever
                # of them the store does not hold as MISSING.
                target.add(identity.root_locator)
                if is_object_key(error.locator):
                    target.add(error.locator)
                unreadable.append((identity.dbspace, error.locator))
            except BlockmapError:
                # The damaged page decoded into a structurally wrong
                # node — same story, but only the root is attributable.
                target.add(identity.root_locator)
                unreadable.append(
                    (identity.dbspace, identity.root_locator)
                )

    def _snapshot_catalogs(self) -> "List[Catalog]":
        manager = self.db.snapshot_manager
        if manager is None:
            return []
        return [
            Catalog.from_bytes(snapshot.catalog_bytes)
            for snapshot in manager.snapshots()
        ]

    def _chain_refs(self) -> "Dict[str, Set[int]]":
        refs: "Dict[str, Set[int]]" = {}
        for entry in self.db.txn_manager.chain_entries():
            for bitmaps in (entry.rf, entry.rb):
                for dbspace_name, bitmap in bitmaps.items():
                    refs.setdefault(dbspace_name, set()).update(
                        bitmap.cloud_keys()
                    )
        return refs

    def _retained_refs(self) -> "Dict[str, Set[int]]":
        manager = self.db.snapshot_manager
        if manager is None:
            return {}
        return {
            dbspace_name: set(locators)
            for dbspace_name, locators in manager.retained_locators().items()
        }

    def _active_intervals(self) -> "List[Tuple[int, int]]":
        merged: "List[Tuple[int, int]]" = []
        for active in self.db.keygen.active_sets().values():
            merged.extend(active.intervals())
        return sorted(merged)

    @staticmethod
    def _covered(key: int, intervals: "List[Tuple[int, int]]") -> bool:
        for lo, hi in intervals:
            if lo <= key <= hi:
                return True
            if lo > key:
                return False
        return False

    # ------------------------------------------------------------------ #
    # the audit
    # ------------------------------------------------------------------ #

    def audit(self, deep: bool = False) -> AuditReport:
        """Classify every object in every cloud bucket; update metrics.

        ``deep`` adds content verification on top of the existence-based
        classification: every present object's stored bytes are re-hashed
        with CRC-32C against the store's recorded checksum (in every
        region for replicated stores).  Mismatches classify as CORRUPT —
        the class a bit flip at rest falls into, invisible to the
        existence audit because the damaged object is still *there*.
        """
        db = self.db
        dbspaces = db.cloud_dbspaces()
        if not dbspaces:
            raise AuditError("no cloud dbspaces to audit")
        with db.tracer.span("fsck", "audit", deep=deep):
            report = self._audit(dbspaces, deep)
        db.metrics.counter("fsck_runs").increment()
        db.metrics.gauge("fsck_leaked").set(len(report.leaked))
        db.metrics.gauge("fsck_missing").set(
            len(report.missing) + len(report.snapshot_missing)
        )
        if deep:
            db.metrics.counter("fsck_deep_runs").increment()
            db.metrics.gauge("fsck_corrupt").set(
                len(report.corrupt) + len(report.region_corrupt)
            )
        return report

    def _audit(self, dbspaces: "Dict[str, CloudDbspace]",
               deep: bool = False) -> AuditReport:
        report = AuditReport(deep=deep)
        unreadable: "List[Tuple[str, int]]" = []

        live: "Dict[str, Set[int]]" = {}
        self._walk_catalog(self.db.catalog, dbspaces, live, unreadable)
        snap: "Dict[str, Set[int]]" = {}
        for catalog in self._snapshot_catalogs():
            self._walk_catalog(catalog, dbspaces, snap, unreadable)
        retained = self._retained_refs()
        chain = self._chain_refs()
        intervals = self._active_intervals()

        # Dbspaces can share one bucket (multiplex nodes all mount "user"):
        # group by store identity and audit each store once, against the
        # union of its dbspaces' reference sets.
        by_store: "Dict[int, Tuple[object, List[str]]]" = {}
        for name, dbspace in dbspaces.items():
            store = dbspace.io.client.store
            by_store.setdefault(id(store), (store, []))[1].append(name)

        def union(refs: "Dict[str, Set[int]]",
                  names: "List[str]") -> "Set[int]":
            merged: "Set[int]" = set()
            for name in names:
                merged.update(refs.get(name, ()))
            return merged

        for store, names in by_store.values():
            label = "+".join(sorted(set(names)))
            live_keys = union(live, names)
            snap_keys = union(snap, names)
            retained_keys = union(retained, names)
            chain_keys = union(chain, names)
            present: "Set[int]" = set()
            for object_name in store.all_keys():  # type: ignore[attr-defined]
                try:
                    key = object_key_from_name(object_name)
                except ValueError:
                    report.unparseable.append(object_name)
                    continue
                present.add(key)
                report.objects_scanned += 1
                if deep:
                    report.content_verified += 1
                    if store.verify_at_rest(object_name) is False:  # type: ignore[attr-defined]
                        report.corrupt.append((label, key))
                if key in live_keys:
                    report.live += 1
                elif key in snap_keys or key in retained_keys:
                    report.snapshot_retained += 1
                elif key in chain_keys:
                    report.pending_gc += 1
                elif self._covered(key, intervals):
                    report.active_covered += 1
                else:
                    report.leaked.append((label, key))
            for key in sorted(live_keys - present):
                report.missing.append((label, key))
            for key in sorted(snap_keys - live_keys - present):
                report.snapshot_missing.append((label, key))
            report.already_freed += len(
                (retained_keys | chain_keys) - present - live_keys - snap_keys
            )
            if isinstance(store, ReplicatedObjectStore):
                self._audit_regions(store, report, deep)
        return report

    def _audit_regions(self, store: ReplicatedObjectStore,
                       report: AuditReport, deep: bool = False) -> None:
        """Audit every secondary region against the primary ground truth.

        Convergence is judged *modulo the replication queue*: a
        divergence explained by a queued entry (replication in flight, or
        deferred by an outage on the target region) is benign pending;
        anything unexplained is regional loss/leak/divergence.  On top of
        convergence, the bounded-staleness invariant is checked: no
        queued entry may outlive ``op_time + staleness_horizon`` unless
        outage-deferred.
        """
        now = self.db.clock.now()
        store.pump(now)
        horizon = store.config.staleness_horizon
        primary = store.primary

        def key_of(name: str) -> "Optional[int]":
            try:
                return object_key_from_name(name)
            except ValueError:
                return None

        for region in store.secondary_regions():
            report.regions_audited.append(region)
            regional = store.store_for(region)
            pending = {e.key: e for e in store.pending_for(region)}
            report.region_pending += len(pending)
            primary_names = set(primary.all_keys())
            region_names = set(regional.all_keys())
            if deep:
                for name in sorted(region_names):
                    key = key_of(name)
                    if key is None:
                        continue
                    report.content_verified += 1
                    if regional.verify_at_rest(name) is False:
                        report.region_corrupt.append((region, key))
            for name in sorted(primary_names - region_names):
                key = key_of(name)
                if key is None:
                    continue
                entry = pending.get(name)
                if entry is None or entry.data is None:
                    report.region_missing.append((region, key))
            for name in sorted(region_names - primary_names):
                key = key_of(name)
                if key is None:
                    continue
                entry = pending.get(name)
                if entry is None or entry.data is not None:
                    report.region_leaked.append((region, key))
            for name in sorted(primary_names & region_names):
                key = key_of(name)
                if key is None or name in pending:
                    continue
                if primary.latest_data(name) != regional.latest_data(name):
                    report.region_divergent.append((region, key))
            for name, entry in sorted(pending.items()):
                key = key_of(name)
                if key is None or entry.deferred:
                    continue
                if now > entry.op_time + horizon:
                    report.staleness_violations.append((region, key))
