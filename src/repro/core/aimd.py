"""AIMD controller for the OCM's upload window.

The write-back drain used to run with a fixed ``upload_window = 16`` — the
same constant whether the object store was idle or mid ThrottleStorm.
Taurus-style frugal write paths instead treat the in-flight window like a
TCP congestion window:

- **additive increase**: every clean completion grows the window by a
  small fraction (default 1/16 of a slot), so a healthy backend earns
  deeper pipelines one round-trip at a time;
- **multiplicative decrease**: any sign of pushback — a retry (transient
  failure or throttle-induced error) or a completion whose latency spikes
  far above the EWMA-smoothed norm — halves the window at once.

ThrottleStorm faults in the simulator surface as *delay*, not errors
(tokens cost ``1 / throttle_factor`` times more), so retries alone would
miss them; the latency-spike detector is what catches a silently
throttled prefix.  A virtual-time cooldown makes one burst of bad
completions count as one cut, mirroring TCP's once-per-RTT rule —
otherwise a single storm with 16 in-flight uploads would collapse the
window to the floor instead of halving it.

Everything here is deterministic and driven purely by virtual timestamps
the caller already has; the controller never reads a clock of its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.metrics import MetricsRegistry


@dataclass(frozen=True)
class AimdConfig:
    """Tuning for :class:`AimdUploadController`."""

    initial_window: int = 16
    min_window: int = 2
    max_window: int = 64
    increase_per_completion: float = 1.0 / 16.0
    decrease_factor: float = 0.5
    latency_spike_factor: float = 3.0
    ewma_alpha: float = 0.2
    cooldown_seconds: float = 1.0

    def validate(self) -> None:
        if self.min_window < 1:
            raise ValueError("min_window must be at least 1")
        if self.max_window < self.min_window:
            raise ValueError("max_window must be >= min_window")
        if not self.min_window <= self.initial_window <= self.max_window:
            raise ValueError(
                f"initial_window {self.initial_window} outside "
                f"[{self.min_window}, {self.max_window}]"
            )
        if self.increase_per_completion <= 0:
            raise ValueError("increase_per_completion must be positive")
        if not 0.0 < self.decrease_factor < 1.0:
            raise ValueError("decrease_factor must be in (0, 1)")
        if self.latency_spike_factor <= 1.0:
            raise ValueError("latency_spike_factor must exceed 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")


class AimdUploadController:
    """Adaptive window: additive increase, multiplicative decrease.

    The window is held as a float so sub-slot additive increases
    accumulate; :attr:`window` exposes the clamped integer the drain loop
    actually uses.
    """

    def __init__(self, config: AimdConfig = AimdConfig(),
                 metrics: "Optional[MetricsRegistry]" = None) -> None:
        config.validate()
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._window = float(config.initial_window)
        self._latency_ewma: "Optional[float]" = None
        self._last_cut: "Optional[float]" = None
        self._publish()

    @property
    def window(self) -> int:
        """The integer window the drain loop should use right now."""
        return max(self.config.min_window,
                   min(self.config.max_window, int(self._window)))

    @property
    def latency_ewma(self) -> "Optional[float]":
        return self._latency_ewma

    def on_completion(self, started: float, completed: float,
                      retries: int = 0) -> None:
        """Feed one finished upload back into the controller.

        ``started``/``completed`` are the upload's virtual times;
        ``retries`` is how many transient failures it absorbed along the
        way.  Spike detection compares against the EWMA *before* this
        sample updates it, so a storm does not poison its own baseline.
        """
        latency = max(0.0, completed - started)
        spiked = (
            self._latency_ewma is not None
            and latency > self._latency_ewma * self.config.latency_spike_factor
        )
        if retries > 0 or spiked:
            self._backoff(completed)
        else:
            self._window = min(
                float(self.config.max_window),
                self._window + self.config.increase_per_completion,
            )
        alpha = self.config.ewma_alpha
        if self._latency_ewma is None:
            self._latency_ewma = latency
        else:
            self._latency_ewma += alpha * (latency - self._latency_ewma)
        self._publish()

    def _backoff(self, now: float) -> None:
        if (self._last_cut is not None
                and now - self._last_cut < self.config.cooldown_seconds):
            return
        self._last_cut = now
        self._window = max(
            float(self.config.min_window),
            self._window * self.config.decrease_factor,
        )
        self.metrics.counter("aimd_backoffs").increment()

    def _publish(self) -> None:
        self.metrics.gauge("upload_window").set(float(self.window))

    def __repr__(self) -> str:
        return (
            f"AimdUploadController(window={self.window}, "
            f"ewma={self._latency_ewma}, raw={self._window:.3f})"
        )
