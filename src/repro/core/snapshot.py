"""Snapshots and retention-deferred deletion (Section 5).

On the cloud, storing data is cheap, so instead of deleting superseded
pages the transaction manager *transfers their ownership* to the snapshot
manager, which deletes them in the background once a user-defined retention
period expires.  Because every page that any snapshot within the retention
window could reference is thereby retained, taking a snapshot reduces to
backing up metadata:

- the snapshot manager's own FIFO metadata, and
- the system catalog (plus non-cloud dbspaces, which the simulation
  captures as the catalog + freelist state).

Point-in-time restore re-installs the snapshot's catalog; the keys consumed
*after* the snapshot form a contiguous range (key monotonicity) that the
restore garbage-collects by polling.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.sim.clock import VirtualClock
from repro.sim.crashpoints import crash_point, register_crash_point
from repro.storage.dbspace import PageStore

CP_RETAIN_MID = register_crash_point(
    "snapshot.retain.mid",
    "GC transferred some, but not all, superseded pages into the FIFO",
)
CP_REAP_BEFORE_FREE = register_crash_point(
    "snapshot.reap.before_free",
    "expired FIFO entries selected, deletes not yet issued",
)
CP_REAP_AFTER_FREE = register_crash_point(
    "snapshot.reap.after_free",
    "expired pages deleted from the bucket, FIFO entries not yet popped "
    "(re-delete on the next reap is idempotent)",
)
CP_CREATE_BEFORE_REGISTER = register_crash_point(
    "snapshot.create.before_register",
    "snapshot metadata captured but the snapshot never registered",
)


class SnapshotError(Exception):
    """Unknown snapshots, expired restores."""


@dataclass(frozen=True)
class Snapshot:
    """Metadata captured by one near-instantaneous snapshot."""

    snapshot_id: int
    created_at: float
    expires_at: float
    catalog_bytes: bytes
    max_allocated_key: int
    snapmgr_metadata: bytes
    freelists: "Dict[str, bytes]" = field(default_factory=dict)
    # Largest key actually *consumed* when the snapshot was taken; the
    # restore-time GC polls keys above this floor (keys below were either
    # committed — hence reachable from the restored catalog — retained, or
    # belong to transactions covered by active-set GC).
    max_consumed_key: int = 0


class SnapshotManager:
    """FIFO of retained pages + the registry of snapshots."""

    def __init__(
        self,
        clock: VirtualClock,
        retention_seconds: float,
        dbspaces: "Optional[Dict[str, PageStore]]" = None,
    ) -> None:
        if retention_seconds < 0:
            raise SnapshotError("retention must be non-negative")
        self.clock = clock
        self.retention_seconds = retention_seconds
        self._dbspaces: Dict[str, PageStore] = dict(dbspaces or {})
        # FIFO of (dbspace, locator, expiry): pages enter in expiry order
        # because the expiry is always now + retention.
        self._fifo: Deque[Tuple[str, int, float]] = deque()
        self._snapshots: Dict[int, Snapshot] = {}
        self._next_snapshot_id = 1
        self.stats = {"retained": 0, "reaped": 0, "snapshots": 0}

    def register_dbspace(self, name: str, store: PageStore) -> None:
        self._dbspaces[name] = store

    # ------------------------------------------------------------------ #
    # retention
    # ------------------------------------------------------------------ #

    def retain(self, dbspace_name: str, locators: "List[int]") -> None:
        """Take ownership of superseded pages; delete after retention."""
        expiry = self.clock.now() + self.retention_seconds
        for locator in locators:
            crash_point(CP_RETAIN_MID)
            self._fifo.append((dbspace_name, locator, expiry))
        self.stats["retained"] += len(locators)

    def retained_count(self) -> int:
        return len(self._fifo)

    def retained_locators(self) -> "Dict[str, List[int]]":
        """Currently retained locators per dbspace (restore-GC skip set)."""
        out: Dict[str, List[int]] = {}
        for dbspace_name, locator, __ in self._fifo:
            out.setdefault(dbspace_name, []).append(locator)
        return out

    def reap(self) -> int:
        """Background deletion of pages whose retention expired.

        The FIFO is durable metadata, so the deletes are issued *before*
        the entries are popped: a crash in between leaves already-deleted
        entries in the FIFO and the next reap re-deletes them, which is
        idempotent on an object store.  Popping first would leak the pages
        forever if the node died before the deletes went out.
        """
        now = self.clock.now()
        expired = 0
        by_dbspace: Dict[str, List[int]] = {}
        for dbspace_name, locator, expiry in self._fifo:
            if expiry > now:
                break
            expired += 1
            by_dbspace.setdefault(dbspace_name, []).append(locator)
        if expired:
            crash_point(CP_REAP_BEFORE_FREE)
        reaped = 0
        for dbspace_name, locators in by_dbspace.items():
            store = self._dbspaces.get(dbspace_name)
            if store is not None:
                store.free_pages(locators)
            reaped += len(locators)
        if expired:
            crash_point(CP_REAP_AFTER_FREE)
        for __ in range(expired):
            self._fifo.popleft()
        self.stats["reaped"] += reaped
        self._expire_snapshots(now)
        return reaped

    def _expire_snapshots(self, now: float) -> None:
        expired = [
            snapshot_id
            for snapshot_id, snapshot in self._snapshots.items()
            if snapshot.expires_at <= now
        ]
        for snapshot_id in expired:
            del self._snapshots[snapshot_id]

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #

    def create_snapshot(
        self,
        catalog_bytes: bytes,
        max_allocated_key: int,
        freelists: "Optional[Dict[str, bytes]]" = None,
        max_consumed_key: "Optional[int]" = None,
    ) -> Snapshot:
        """Record a snapshot: metadata only, hence near-instantaneous."""
        now = self.clock.now()
        snapshot = Snapshot(
            snapshot_id=self._next_snapshot_id,
            created_at=now,
            expires_at=now + self.retention_seconds,
            catalog_bytes=bytes(catalog_bytes),
            max_allocated_key=max_allocated_key,
            snapmgr_metadata=self.metadata_bytes(),
            freelists=dict(freelists or {}),
            max_consumed_key=(
                max_consumed_key if max_consumed_key is not None
                else max_allocated_key
            ),
        )
        crash_point(CP_CREATE_BEFORE_REGISTER)
        self._next_snapshot_id += 1
        self._snapshots[snapshot.snapshot_id] = snapshot
        self.stats["snapshots"] += 1
        return snapshot

    def get_snapshot(self, snapshot_id: int) -> Snapshot:
        snapshot = self._snapshots.get(snapshot_id)
        if snapshot is None:
            raise SnapshotError(
                f"snapshot {snapshot_id} does not exist or has expired"
            )
        return snapshot

    def snapshots(self) -> "List[Snapshot]":
        return sorted(self._snapshots.values(), key=lambda s: s.snapshot_id)

    @staticmethod
    def decode_metadata(payload: bytes) -> "List[Tuple[str, int, float]]":
        """Decode a :meth:`metadata_bytes` payload without installing it.

        Restore uses this to learn which locators the snapshot's FIFO still
        covers *before* committing to the FIFO switch — the switch is a
        durable-metadata write and must come after the destructive polls.
        """
        data = json.loads(payload.decode("utf-8"))
        return [
            (str(name), int(locator), float(expiry))
            for name, locator, expiry in data["fifo"]
        ]

    def restore_metadata(self, payload: bytes) -> None:
        """Re-install FIFO state captured by :meth:`metadata_bytes`."""
        self._fifo = deque(self.decode_metadata(payload))

    def metadata_bytes(self) -> bytes:
        """Serialize the FIFO (stored on the object store, like user data)."""
        return json.dumps(
            {"fifo": [[name, locator, expiry] for name, locator, expiry in self._fifo]}
        ).encode("utf-8")
