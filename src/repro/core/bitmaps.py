"""RF/RB bitmaps: per-transaction allocation/deallocation records.

Each transaction owns a pair of bitmaps (Section 3.3):

- the **RB (roll-back) bitmap** records pages *allocated* by the
  transaction — on rollback these can be deleted immediately;
- the **RF (roll-forward) bitmap** records pages *marked for deletion* —
  on commit their deletion is deferred to the transaction manager because
  older MVCC snapshots may still read them.

On-premise SAP IQ records a page as the run of block bits it occupies; for
cloud pages the same structure records the object key — a single "bit" in
the reserved ``[2^63, 2^64)`` range.  We represent the bitmap as a set of
locators with range-compressed serialization, which is semantically
identical and keeps the recovery arithmetic (range trims, polls) explicit.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, List, Set, Tuple

from repro.storage.locator import is_object_key


class LocatorBitmap:
    """A set of 64-bit locators (block runs or object keys)."""

    def __init__(self, locators: "Iterable[int]" = ()) -> None:
        self._locators: Set[int] = set(locators)

    def add(self, locator: int) -> None:
        self._locators.add(locator)

    def add_range(self, lo: int, hi: int) -> None:
        """Add every object key in ``[lo, hi]`` (inclusive)."""
        if hi < lo:
            raise ValueError(f"invalid range [{lo}, {hi}]")
        self._locators.update(range(lo, hi + 1))

    def discard(self, locator: int) -> None:
        self._locators.discard(locator)

    def __contains__(self, locator: int) -> bool:
        return locator in self._locators

    def __len__(self) -> int:
        return len(self._locators)

    def __iter__(self) -> "Iterator[int]":
        return iter(sorted(self._locators))

    def __bool__(self) -> bool:
        return bool(self._locators)

    def cloud_keys(self) -> "List[int]":
        """The object-key members, sorted."""
        return sorted(loc for loc in self._locators if is_object_key(loc))

    def block_locators(self) -> "List[int]":
        """The block-run members, sorted."""
        return sorted(loc for loc in self._locators if not is_object_key(loc))

    def cloud_key_ranges(self) -> "List[Tuple[int, int]]":
        """Object keys compressed into maximal ``[lo, hi]`` ranges.

        Monotonic key allocation makes these ranges long, which is the
        space/performance optimization the paper's monotonicity requirement
        buys (Section 3.2).
        """
        ranges: List[Tuple[int, int]] = []
        for key in self.cloud_keys():
            if ranges and key == ranges[-1][1] + 1:
                ranges[-1] = (ranges[-1][0], key)
            else:
                ranges.append((key, key))
        return ranges

    def union(self, other: "LocatorBitmap") -> "LocatorBitmap":
        return LocatorBitmap(self._locators | other._locators)

    def to_bytes(self) -> bytes:
        """Serialize as range-compressed JSON (flushed at commit)."""
        payload = {
            "blocks": self.block_locators(),
            "key_ranges": self.cloud_key_ranges(),
        }
        return json.dumps(payload).encode("utf-8")

    @classmethod
    def from_bytes(cls, payload: bytes) -> "LocatorBitmap":
        data = json.loads(payload.decode("utf-8"))
        bitmap = cls(data["blocks"])
        for lo, hi in data["key_ranges"]:
            bitmap.add_range(lo, hi)
        return bitmap

    def __repr__(self) -> str:
        return f"LocatorBitmap({len(self._locators)} locators)"
