"""Core engine: key generation, buffering, transactions, OCM, snapshots.

This package implements the paper's contribution proper — the protocol
layer that lets a blockmap-based MVCC engine run on eventually consistent
object stores:

- :mod:`repro.core.keygen` — the Object Key Generator (Section 3.2),
- :mod:`repro.core.bitmaps` — RF/RB bitmaps over locators (Section 3.3),
- :mod:`repro.core.buffer` — the buffer manager with never-write-twice
  flushing (Section 3.1),
- :mod:`repro.core.txn` — MVCC transaction manager, commit chain and
  garbage collection (Section 3.3),
- :mod:`repro.core.ocm` — the Object Cache Manager (Section 4),
- :mod:`repro.core.snapshot` — retention snapshots and point-in-time
  restore (Section 5),
- :mod:`repro.core.log` / :mod:`repro.core.recovery` — transaction log,
  checkpoints and crash recovery,
- :mod:`repro.core.multiplex` — coordinator/writer/reader clusters.
"""

from repro.core.bitmaps import LocatorBitmap
from repro.core.keygen import KeyRange, NodeKeyCache, ObjectKeyGenerator
from repro.core.log import LogRecord, TransactionLog
from repro.core.buffer import BufferManager
from repro.core.txn import Transaction, TransactionManager, TransactionError
from repro.core.ocm import ObjectCacheManager, OcmConfig
from repro.core.snapshot import SnapshotManager, Snapshot
from repro.core.backup import BackupManager, BackupRecord

__all__ = [
    "LocatorBitmap",
    "KeyRange",
    "NodeKeyCache",
    "ObjectKeyGenerator",
    "LogRecord",
    "TransactionLog",
    "BufferManager",
    "Transaction",
    "TransactionManager",
    "TransactionError",
    "ObjectCacheManager",
    "OcmConfig",
    "SnapshotManager",
    "Snapshot",
    "BackupManager",
    "BackupRecord",
]
