"""Pluggable eviction policies for the Object Cache Manager.

The paper's OCM orders read and write traffic together on a single LRU
list (Section 4); its Figure 6 analysis shows how that single ordering
lets one bulk scan's fills flush the hot working set.  This module
factors the *ordering* decision out of the OCM into a policy object:

- :class:`LruPolicy` reproduces the paper's single LRU exactly (default);
- :class:`Arc2QPolicy` is a scan-resistant segmented policy in the
  ARC/2Q family: new entries land in a *probationary* segment, a second
  non-scan access promotes them to a *protected* segment, and a bounded
  *ghost list* remembers recently evicted probationary keys so that a
  key re-fetched outside a scan is recognised as hot and admitted
  straight to the protected segment.  Accesses marked with a ``scan_hint`` (set by
  ``QueryContext`` for bulk table scans) never promote, so one large
  scan cycles through the probationary segment without touching the
  protected working set.

The policy owns only recency/segment ordering.  Eviction *eligibility*
(the insert-after-upload rule, write-through-at-commit, the
``lru_insert_before_upload`` ablation) stays in the OCM, which walks
:meth:`EvictionPolicy.eviction_order` and skips ineligible entries —
so both rules hold identically under either policy.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List


class EvictionPolicy:
    """Ordering strategy for OCM cache entries.

    The OCM calls :meth:`on_insert` / :meth:`on_access` / :meth:`on_remove`
    as entries come and go, and walks :meth:`eviction_order` (victim
    candidates first) when over capacity.  Every resident entry must
    appear in the ordering regardless of its eviction eligibility; the
    OCM applies eligibility itself while walking.
    """

    name = "abstract"

    def on_insert(self, key: str, size: int, scan_hint: bool = False) -> None:
        raise NotImplementedError

    def on_access(self, key: str, scan_hint: bool = False) -> None:
        raise NotImplementedError

    def on_remove(self, key: str, evicted: bool = False) -> None:
        """Forget ``key``; ``evicted=True`` marks a capacity eviction
        (as opposed to a delete/invalidate), enabling ghost bookkeeping."""
        raise NotImplementedError

    def eviction_order(self) -> "Iterator[str]":
        """Resident keys, best victim first."""
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def stats(self) -> "Dict[str, float]":
        """Policy-specific counters, merged into OCM ``stats()`` under a
        ``policy_`` prefix.  Empty for LRU so default snapshots are
        unchanged."""
        return {}


class LruPolicy(EvictionPolicy):
    """The paper's single LRU list; scan hints are ignored."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[str, None]" = OrderedDict()

    def on_insert(self, key: str, size: int, scan_hint: bool = False) -> None:
        self._order.pop(key, None)
        self._order[key] = None

    def on_access(self, key: str, scan_hint: bool = False) -> None:
        if key in self._order:
            self._order.move_to_end(key)

    def on_remove(self, key: str, evicted: bool = False) -> None:
        self._order.pop(key, None)

    def eviction_order(self) -> "Iterator[str]":
        return iter(list(self._order))

    def clear(self) -> None:
        self._order.clear()

    def keys(self) -> "List[str]":
        """LRU-to-MRU key order (tests)."""
        return list(self._order)


class Arc2QPolicy(EvictionPolicy):
    """Scan-resistant segmented policy (ARC/2Q family).

    Segments (all byte-accounted):

    - *probation*: first-time entries and everything a scan drags in;
      evicted first, oldest first.
    - *protected*: entries re-accessed without a scan hint, capped at
      ``protected_fraction`` of capacity; overflow demotes the oldest
      protected entry back to probation (MRU end) rather than dropping
      it outright.
    - *ghost*: keys (not data) of recently evicted probationary entries,
      bounded to one capacity's worth of remembered sizes.  Re-inserting
      a ghosted key outside a scan admits it straight to protected — the
      signal that a key keeps coming back even though probation churned
      it out.  A scan re-fetch only requeues it in probation, so even a
      repeated bulk scan larger than the cache cannot displace the
      protected working set.
    """

    name = "arc2q"

    def __init__(self, capacity_bytes: int,
                 protected_fraction: float = 0.8) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if not 0.0 < protected_fraction < 1.0:
            raise ValueError("protected_fraction must be in (0, 1)")
        self.capacity_bytes = capacity_bytes
        self.protected_target = int(capacity_bytes * protected_fraction)
        self._probation: "OrderedDict[str, int]" = OrderedDict()
        self._protected: "OrderedDict[str, int]" = OrderedDict()
        self._ghost: "OrderedDict[str, int]" = OrderedDict()
        self._probation_bytes = 0
        self._protected_bytes = 0
        self._ghost_bytes = 0
        self._ghost_hits = 0
        self._promotions = 0
        self._demotions = 0
        self._scan_admissions = 0

    # -------------------------------------------------------------- #
    # segment plumbing
    # -------------------------------------------------------------- #

    def _discard_resident(self, key: str) -> None:
        size = self._probation.pop(key, None)
        if size is not None:
            self._probation_bytes -= size
            return
        size = self._protected.pop(key, None)
        if size is not None:
            self._protected_bytes -= size

    def _ghost_remember(self, key: str, size: int) -> None:
        self._ghost.pop(key, None)
        self._ghost[key] = size
        self._ghost_bytes += size
        while self._ghost_bytes > self.capacity_bytes and self._ghost:
            __, dropped = self._ghost.popitem(last=False)
            self._ghost_bytes -= dropped

    def _rebalance(self) -> None:
        # Protected overflow demotes oldest entries to probation's MRU
        # end: they outrank fresh scan pages but can now be evicted.
        while (self._protected_bytes > self.protected_target
               and len(self._protected) > 1):
            key, size = self._protected.popitem(last=False)
            self._protected_bytes -= size
            self._probation[key] = size
            self._probation_bytes += size
            self._demotions += 1

    # -------------------------------------------------------------- #
    # EvictionPolicy interface
    # -------------------------------------------------------------- #

    def on_insert(self, key: str, size: int, scan_hint: bool = False) -> None:
        self._discard_resident(key)
        ghosted = self._ghost.pop(key, None)
        if ghosted is not None:
            self._ghost_bytes -= ghosted
            if not scan_hint:
                self._ghost_hits += 1
                self._protected[key] = size
                self._protected_bytes += size
                self._rebalance()
                return
            # A scan re-fetching a ghosted key is still a scan: requeue
            # it in probation.  Unconditional readmission would let a
            # repeated bulk scan cycle straight through the protected
            # segment (each readmission demoting the previous keys),
            # recreating the LRU pathology one level up.
        if scan_hint:
            self._scan_admissions += 1
        self._probation[key] = size
        self._probation_bytes += size

    def on_access(self, key: str, scan_hint: bool = False) -> None:
        if key in self._protected:
            self._protected.move_to_end(key)
            return
        size = self._probation.get(key)
        if size is None:
            return
        if scan_hint:
            # A scan re-touching a probationary page is still a scan:
            # refresh recency within probation, never promote.
            self._probation.move_to_end(key)
            return
        del self._probation[key]
        self._probation_bytes -= size
        self._protected[key] = size
        self._protected_bytes += size
        self._promotions += 1
        self._rebalance()

    def on_remove(self, key: str, evicted: bool = False) -> None:
        size = self._probation.pop(key, None)
        if size is not None:
            self._probation_bytes -= size
            if evicted:
                self._ghost_remember(key, size)
            return
        size = self._protected.pop(key, None)
        if size is not None:
            self._protected_bytes -= size

    def eviction_order(self) -> "Iterator[str]":
        # Probation churns first (oldest first); the protected segment is
        # only eaten into when probation alone cannot make room.
        order = list(self._probation)
        order.extend(self._protected)
        return iter(order)

    def clear(self) -> None:
        self._probation.clear()
        self._protected.clear()
        self._ghost.clear()
        self._probation_bytes = 0
        self._protected_bytes = 0
        self._ghost_bytes = 0

    def stats(self) -> "Dict[str, float]":
        return {
            "ghost_hits": float(self._ghost_hits),
            "promotions": float(self._promotions),
            "demotions": float(self._demotions),
            "scan_admissions": float(self._scan_admissions),
            "ghost_entries": float(len(self._ghost)),
            "probation_entries": float(len(self._probation)),
            "protected_entries": float(len(self._protected)),
        }

    # -------------------------------------------------------------- #
    # introspection (tests, examples)
    # -------------------------------------------------------------- #

    def probation_keys(self) -> "List[str]":
        return list(self._probation)

    def protected_keys(self) -> "List[str]":
        return list(self._protected)

    def ghost_keys(self) -> "List[str]":
        return list(self._ghost)


POLICIES = {
    "lru": LruPolicy,
    "arc2q": Arc2QPolicy,
}


def make_policy(name: str, capacity_bytes: int) -> EvictionPolicy:
    """Instantiate the named policy (``lru`` or ``arc2q``)."""
    if name == "lru":
        return LruPolicy()
    if name == "arc2q":
        return Arc2QPolicy(capacity_bytes)
    raise ValueError(
        f"unknown OCM eviction policy {name!r}; expected one of "
        f"{sorted(POLICIES)}"
    )
