"""Transactions, MVCC versioning, the commit chain and garbage collection.

SAP IQ uses table-level versioning with snapshot isolation (Section 2):
a transaction pins the versions current at its begin; writers fork a
table's blockmap copy-on-write, flush dirty pages before commit (the log
carries metadata only) and publish a new identity at commit.

Garbage collection follows Section 3.3:

- each transaction records allocations in its **RB** bitmap and superseded
  committed pages in its **RF** bitmap, both partitioned by dbspace;
- pages superseded *within* the same transaction are immediately dead
  ("local garbage") and are reclaimed at commit;
- on rollback, everything the transaction allocated is deleted right away —
  and the coordinator's key generator is deliberately *not* notified, so a
  later node-restart GC will re-poll those keys (a cheap no-op) instead of
  paying an RPC per rollback;
- on commit, the RF/RB bitmaps are persisted (embedded in the commit log
  record), the transaction enters the *commit chain*, and its RF pages are
  deleted only once no active transaction can still reference the
  superseded versions;
- when a :class:`~repro.core.snapshot.SnapshotManager` is attached, RF
  pages on cloud dbspaces are handed to it for retention-deferred deletion
  instead of being deleted (Section 5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Deque, Dict, List, Optional, Protocol, Tuple

from repro.core.bitmaps import LocatorBitmap
from repro.core.buffer import BufferManager, ObjectHandle
from repro.core.keygen import ObjectKeyGenerator
from repro.core.log import (
    GC_COLLECT,
    TXN_COMMIT,
    TXN_ROLLBACK,
    TransactionLog,
)
from repro.sim.crashpoints import crash_point, register_crash_point
from repro.sim.tracing import NULL_TRACER
from repro.storage.blockmap import Blockmap
from repro.storage.dbspace import PageStore
from repro.storage.identity import Catalog, IdentityObject
from repro.storage.locator import is_object_key

CP_COMMIT_BEFORE_FLUSH = register_crash_point(
    "txn.commit.before_flush",
    "commit requested, nothing durable yet (clean pre-commit crash)",
)
CP_COMMIT_AFTER_FLUSH_FOR_COMMIT = register_crash_point(
    "txn.commit.after_flush_for_commit",
    "queued write-backs drained to the store, dirty pages not yet flushed",
)
CP_COMMIT_AFTER_PAGE_FLUSH = register_crash_point(
    "txn.commit.after_page_flush",
    "all data pages uploaded, no identity published, no commit logged",
)
CP_COMMIT_BEFORE_PUBLISH = register_crash_point(
    "txn.commit.before_publish",
    "blockmap flushed for one handle, its identity not yet published",
)
CP_COMMIT_AFTER_PUBLISH = register_crash_point(
    "txn.commit.after_publish",
    "identities published in memory, commit record not yet logged "
    "(the commit must vanish on recovery)",
)
CP_COMMIT_BEFORE_LOG = register_crash_point(
    "txn.commit.before_log",
    "chain entry built and sequenced, TXN_COMMIT not yet appended",
)
CP_COMMIT_AFTER_LOG = register_crash_point(
    "txn.commit.after_log",
    "TXN_COMMIT logged, frame promotion/keygen notification lost "
    "(the commit must survive recovery)",
)
CP_ROLLBACK_BEFORE_FREE = register_crash_point(
    "txn.rollback.before_free",
    "rollback decided, allocated objects not yet deleted",
)
CP_ROLLBACK_AFTER_FREE = register_crash_point(
    "txn.rollback.after_free",
    "rolled-back allocations deleted, TXN_ROLLBACK not yet logged",
)
CP_GC_BEFORE_APPLY_RF = register_crash_point(
    "txn.gc.before_apply_rf",
    "chain entry popped, RF pages neither freed nor retained yet",
)
CP_GC_AFTER_APPLY_RF = register_crash_point(
    "txn.gc.after_apply_rf",
    "RF pages freed/retained, GC_COLLECT not yet logged",
)
CP_GC_AFTER_LOG = register_crash_point(
    "txn.gc.after_log",
    "GC_COLLECT logged for the entry, loop may have more entries",
)


class TransactionError(Exception):
    """Isolation violations, double commits, unknown objects."""


class TxnStatus(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ROLLED_BACK = "rolled_back"


class NodeContext(Protocol):
    """What a transaction needs from the node it runs on."""

    node_id: str
    buffer: BufferManager

    def dbspace(self, name: str) -> PageStore:
        """The node's I/O view of the named dbspace."""
        ...

    def blockmap_for(self, identity: IdentityObject) -> Blockmap:
        """A (cached) read-only blockmap for a committed identity."""
        ...


class _DbspaceSink:
    """GC sink bound to one (transaction, dbspace) pair."""

    def __init__(self, txn: "Transaction", dbspace_name: str) -> None:
        self._txn = txn
        self._name = dbspace_name

    def on_allocate(self, locator: int) -> None:
        txn = self._txn
        txn.rb_for(self._name).add(locator)
        txn.all_allocated_for(self._name).add(locator)

    def on_replace(self, old_locator: int, fresh: bool) -> None:
        txn = self._txn
        if fresh:
            txn.rb_for(self._name).discard(old_locator)
            txn.local_garbage.setdefault(self._name, []).append(old_locator)
        else:
            txn.rf_for(self._name).add(old_locator)


class Transaction:
    """One transaction: snapshot, write handles, RF/RB bitmaps."""

    def __init__(self, txn_id: int, node: NodeContext, begin_seq: int,
                 snapshot: "Dict[int, int]") -> None:
        self.txn_id = txn_id
        self.node = node
        self.begin_seq = begin_seq
        self.snapshot = snapshot
        self.status = TxnStatus.ACTIVE
        self.rf: Dict[str, LocatorBitmap] = {}
        self.rb: Dict[str, LocatorBitmap] = {}
        self.all_allocated: Dict[str, LocatorBitmap] = {}
        self.local_garbage: Dict[str, List[int]] = {}
        self.write_handles: Dict[int, ObjectHandle] = {}
        self.read_handles: Dict[int, ObjectHandle] = {}
        self._sinks: Dict[str, _DbspaceSink] = {}

    @property
    def node_id(self) -> str:
        return self.node.node_id

    def rf_for(self, dbspace: str) -> LocatorBitmap:
        return self.rf.setdefault(dbspace, LocatorBitmap())

    def rb_for(self, dbspace: str) -> LocatorBitmap:
        return self.rb.setdefault(dbspace, LocatorBitmap())

    def all_allocated_for(self, dbspace: str) -> LocatorBitmap:
        return self.all_allocated.setdefault(dbspace, LocatorBitmap())

    def sink_for(self, dbspace: str) -> _DbspaceSink:
        if dbspace not in self._sinks:
            self._sinks[dbspace] = _DbspaceSink(self, dbspace)
        return self._sinks[dbspace]

    def is_active(self) -> bool:
        return self.status is TxnStatus.ACTIVE

    def touched_dbspaces(self) -> "List[str]":
        names = set(self.rf) | set(self.rb) | set(self.local_garbage)
        for handle in self.write_handles.values():
            names.add(handle.dbspace.name)
        return sorted(names)

    def __repr__(self) -> str:
        return (
            f"Transaction(id={self.txn_id}, node={self.node_id!r}, "
            f"status={self.status.value})"
        )


@dataclass
class CommitChainEntry:
    """A committed transaction awaiting garbage collection."""

    commit_seq: int
    txn_id: int
    node_id: str
    rf: "Dict[str, LocatorBitmap]"
    rb: "Dict[str, LocatorBitmap]"
    superseded: "List[Tuple[int, int]]"  # (object_id, old_version)

    def to_payload(self) -> "Dict[str, object]":
        return {
            "commit_seq": self.commit_seq,
            "txn_id": self.txn_id,
            "node_id": self.node_id,
            "rf": {name: bm.to_bytes().decode("utf-8") for name, bm in self.rf.items()},
            "rb": {name: bm.to_bytes().decode("utf-8") for name, bm in self.rb.items()},
            "superseded": list(self.superseded),
        }

    @classmethod
    def from_payload(cls, payload: "Dict[str, object]") -> "CommitChainEntry":
        return cls(
            commit_seq=int(payload["commit_seq"]),  # type: ignore[arg-type]
            txn_id=int(payload["txn_id"]),  # type: ignore[arg-type]
            node_id=str(payload["node_id"]),
            rf={
                name: LocatorBitmap.from_bytes(raw.encode("utf-8"))
                for name, raw in payload["rf"].items()  # type: ignore[union-attr]
            },
            rb={
                name: LocatorBitmap.from_bytes(raw.encode("utf-8"))
                for name, raw in payload["rb"].items()  # type: ignore[union-attr]
            },
            superseded=[tuple(pair) for pair in payload["superseded"]],  # type: ignore[union-attr,misc]
        )


class TransactionManager:
    """Global (coordinator-side) transaction authority.

    Owns the catalog, the commit chain, begin/commit sequencing, table
    write locks and garbage collection.  Nodes supply their local I/O
    context (buffer manager, dbspace views) per transaction.
    """

    def __init__(
        self,
        catalog: Catalog,
        log: TransactionLog,
        keygen: "Optional[ObjectKeyGenerator]" = None,
        gc_dbspaces: "Optional[Dict[str, PageStore]]" = None,
        snapshot_manager: "Optional[object]" = None,
        identity_write_cost: "Optional[Callable[[], None]]" = None,
    ) -> None:
        self.catalog = catalog
        self.log = log
        self.keygen = keygen
        # Dbspace views used for GC deletions (the coordinator's views).
        self.gc_dbspaces: Dict[str, PageStore] = dict(gc_dbspaces or {})
        self.snapshot_manager = snapshot_manager
        self._identity_write_cost = identity_write_cost
        self._next_txn_id = 1
        self._commit_seq = 0
        self._active: Dict[int, Transaction] = {}
        self._chain: Deque[CommitChainEntry] = deque()
        self._write_locks: Dict[int, int] = {}  # object_id -> txn_id
        self.stats = {
            "commits": 0,
            "rollbacks": 0,
            "flush_promotions": 0,
            "gc_entries_collected": 0,
            "gc_pages_deleted": 0,
            "gc_pages_retained": 0,
        }
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def commit_seq(self) -> int:
        return self._commit_seq

    def register_gc_dbspace(self, name: str, store: PageStore) -> None:
        self.gc_dbspaces[name] = store

    def active_transactions(self) -> "List[Transaction]":
        return list(self._active.values())

    def chain_length(self) -> int:
        return len(self._chain)

    def begin(self, node: NodeContext) -> Transaction:
        """Start a transaction pinning the current committed versions."""
        snapshot = {
            identity.object_id: identity.version
            for identity in (
                self.catalog.current(self.catalog.object_id(name))
                for name in self.catalog.object_names()
            )
        }
        txn = Transaction(self._next_txn_id, node, self._commit_seq, snapshot)
        self._next_txn_id += 1
        self._active[txn.txn_id] = txn
        return txn

    # ------------------------------------------------------------------ #
    # handle acquisition
    # ------------------------------------------------------------------ #

    def open_for_read(self, txn: Transaction, name: str) -> ObjectHandle:
        """Read handle at the transaction's snapshot version."""
        self._check_active(txn)
        object_id = self.catalog.object_id(name)
        cached = txn.read_handles.get(object_id)
        if cached is not None:
            return cached
        # A writer reads its own uncommitted state.
        if object_id in txn.write_handles:
            return txn.write_handles[object_id]
        version = txn.snapshot.get(object_id)
        if version is None:
            # Object created after this transaction began: not visible.
            raise TransactionError(
                f"object {name!r} is not visible to transaction {txn.txn_id}"
            )
        identity = self.catalog.identity(object_id, version)
        blockmap = txn.node.blockmap_for(identity)
        handle = ObjectHandle(
            object_id=object_id,
            name=name,
            dbspace=txn.node.dbspace(identity.dbspace),
            blockmap=blockmap,
            version=version,
            page_count=identity.page_count,
            writable=False,
        )
        txn.read_handles[object_id] = handle
        return handle

    def open_for_write(self, txn: Transaction, name: str) -> ObjectHandle:
        """Write handle; takes the object's table-level write lock."""
        self._check_active(txn)
        object_id = self.catalog.object_id(name)
        cached = txn.write_handles.get(object_id)
        if cached is not None:
            return cached
        holder = self._write_locks.get(object_id)
        if holder is not None and holder != txn.txn_id:
            raise TransactionError(
                f"write-write conflict on {name!r}: held by txn {holder}"
            )
        self._write_locks[object_id] = txn.txn_id
        current = self.catalog.current(object_id)
        if txn.snapshot.get(object_id) != current.version:
            # Cannot happen while the lock is honoured, but guard anyway.
            self._write_locks.pop(object_id, None)
            raise TransactionError(
                f"snapshot of {name!r} is stale under txn {txn.txn_id}"
            )
        base_blockmap = txn.node.blockmap_for(current)
        handle = ObjectHandle(
            object_id=object_id,
            name=name,
            dbspace=txn.node.dbspace(current.dbspace),
            blockmap=base_blockmap.fork(),
            version=current.version,
            page_count=current.page_count,
            writable=True,
            txn=txn,
        )
        txn.write_handles[object_id] = handle
        return handle

    def open_for_rewrite(self, txn: Transaction, name: str,
                         target_dbspace: str) -> ObjectHandle:
        """Write handle that re-homes the object onto another dbspace.

        The paper lets users "move data between different storage
        providers as needed": the handle starts from an *empty* blockmap
        on the target dbspace; the caller copies the pages it wants to
        keep, and at commit every page of the superseded version enters
        the RF bitmap for garbage collection on the old dbspace.
        """
        self._check_active(txn)
        object_id = self.catalog.object_id(name)
        if object_id in txn.write_handles:
            raise TransactionError(
                f"object {name!r} already opened for writing by this txn"
            )
        holder = self._write_locks.get(object_id)
        if holder is not None and holder != txn.txn_id:
            raise TransactionError(
                f"write-write conflict on {name!r}: held by txn {holder}"
            )
        self._write_locks[object_id] = txn.txn_id
        current = self.catalog.current(object_id)
        target = txn.node.dbspace(target_dbspace)
        handle = ObjectHandle(
            object_id=object_id,
            name=name,
            dbspace=target,
            blockmap=Blockmap(target),
            version=current.version,
            page_count=0,
            writable=True,
            txn=txn,
        )
        handle.rewritten_from = current
        txn.write_handles[object_id] = handle
        return handle

    def _check_active(self, txn: Transaction) -> None:
        if not txn.is_active():
            raise TransactionError(
                f"transaction {txn.txn_id} is {txn.status.value}"
            )

    # ------------------------------------------------------------------ #
    # commit
    # ------------------------------------------------------------------ #

    def commit(self, txn: Transaction) -> None:
        """Flush, version, log and enter the commit chain."""
        self._check_active(txn)
        node = txn.node
        crash_point(CP_COMMIT_BEFORE_FLUSH)
        # 1. FlushForCommit: promote this transaction's queued write-back
        #    uploads and switch its writes to write-through (Section 4).
        #    With group_commit_flush the dbspace drains them as coalesced
        #    batches; either way the commit waits for every upload.
        touched = txn.touched_dbspaces()
        with self.tracer.span("commit_flush_promotion", "txn",
                              txn_id=txn.txn_id, dbspaces=len(touched)):
            for dbspace_name in touched:
                node.dbspace(dbspace_name).flush_for_commit(txn.txn_id)
                self.stats["flush_promotions"] += 1
        crash_point(CP_COMMIT_AFTER_FLUSH_FOR_COMMIT)
        # 2. Flush remaining dirty pages write-through; durability before
        #    commit because the log carries metadata only.
        node.buffer.flush_txn(txn.txn_id, commit_mode=True)
        crash_point(CP_COMMIT_AFTER_PAGE_FLUSH)
        # 3. Cascade blockmap versioning and publish new identities.
        new_versions: Dict[int, int] = {}
        superseded: List[Tuple[int, int]] = []
        identities: List[IdentityObject] = []
        for object_id, handle in sorted(txn.write_handles.items()):
            sink = txn.sink_for(handle.dbspace.name)
            new_root = handle.blockmap.flush(
                sink, txn_id=txn.txn_id, commit_mode=True
            )
            crash_point(CP_COMMIT_BEFORE_PUBLISH)
            if handle.rewritten_from is not None:
                # Re-homed object: every page of the superseded version on
                # the old dbspace becomes RF garbage.
                old = handle.rewritten_from
                old_blockmap = txn.node.blockmap_for(old)  # type: ignore[arg-type]
                old_rf = txn.rf_for(old.dbspace)  # type: ignore[attr-defined]
                for locator in old_blockmap.live_locators():
                    old_rf.add(locator)
            new_version = handle.version + 1
            identity = IdentityObject(
                object_id=object_id,
                name=handle.name,
                version=new_version,
                root_locator=new_root,
                height=handle.blockmap.height,
                page_count=handle.page_count,
                dbspace=handle.dbspace.name,
            )
            self.catalog.publish(identity)
            identities.append(identity)
            new_versions[object_id] = new_version
            superseded.append((object_id, handle.version))
            if self._identity_write_cost is not None:
                # Identity objects live in the system dbspace and are
                # updated in place (strong consistency): one small write.
                self._identity_write_cost()
        crash_point(CP_COMMIT_AFTER_PUBLISH)
        # 4. Reclaim local garbage (same-transaction page rewrites).
        self._reclaim_local_garbage(txn)
        # 5. Sequence the commit, log it, enter the commit chain.
        self._commit_seq += 1
        entry = CommitChainEntry(
            commit_seq=self._commit_seq,
            txn_id=txn.txn_id,
            node_id=txn.node_id,
            rf={name: bm for name, bm in txn.rf.items() if bm},
            rb={name: bm for name, bm in txn.rb.items() if bm},
            superseded=superseded,
        )
        self._chain.append(entry)
        consumed = self._consumed_key_ranges(txn)
        crash_point(CP_COMMIT_BEFORE_LOG)
        self.log.append(
            TXN_COMMIT,
            {
                "txn_id": txn.txn_id,
                "node": txn.node_id,
                "chain_entry": entry.to_payload(),
                "identities": [identity.to_dict() for identity in identities],
                "consumed_key_ranges": consumed,
            },
        )
        crash_point(CP_COMMIT_AFTER_LOG)
        # 6. Tell the key generator which keys are now tracked by RF/RB.
        if self.keygen is not None and consumed:
            self.keygen.notify_committed(txn.node_id, consumed)
        # 7. Promote cached frames to the new versions; finish bookkeeping.
        node.buffer.promote_txn_frames(txn.txn_id, new_versions)
        for object_id, handle in txn.write_handles.items():
            handle.blockmap.mark_committed()
            node.publish_blockmap(handle.blockmap,
                                  self.catalog.current(object_id))
        txn.status = TxnStatus.COMMITTED
        self._release(txn)
        self.stats["commits"] += 1
        self.collect_garbage()

    def _consumed_key_ranges(self, txn: Transaction) -> "List[Tuple[int, int]]":
        merged = LocatorBitmap()
        for bitmap in txn.all_allocated.values():
            for key in bitmap.cloud_keys():
                merged.add(key)
        return [tuple(pair) for pair in merged.cloud_key_ranges()]

    def _reclaim_local_garbage(self, txn: Transaction) -> None:
        for dbspace_name, locators in txn.local_garbage.items():
            store = self._store_for(txn, dbspace_name)
            if store is not None:
                store.free_pages(locators)
        txn.local_garbage.clear()

    def _store_for(self, txn: "Optional[Transaction]",
                   dbspace_name: str) -> "Optional[PageStore]":
        if txn is not None:
            try:
                return txn.node.dbspace(dbspace_name)
            except KeyError:
                pass
        return self.gc_dbspaces.get(dbspace_name)

    # ------------------------------------------------------------------ #
    # rollback
    # ------------------------------------------------------------------ #

    def rollback(self, txn: Transaction) -> None:
        """Undo everything the transaction allocated, immediately."""
        self._check_active(txn)
        node = txn.node
        crash_point(CP_ROLLBACK_BEFORE_FREE)
        node.buffer.drop_txn_frames(txn.txn_id)
        for dbspace_name in txn.touched_dbspaces():
            store = self._store_for(txn, dbspace_name)
            if store is None:
                continue
            store_discard = getattr(store.io, "discard_txn", None) if store.is_cloud else None
            if store_discard is not None:
                # Drop the OCM's pending background uploads for this txn.
                store_discard(txn.txn_id)
            allocated = txn.all_allocated.get(dbspace_name)
            if allocated:
                # Deleting never-uploaded keys is a no-op (S3 semantics).
                store.free_pages(list(allocated))
        # Deliberately NOT notifying the key generator: the active set keeps
        # the rolled-back keys, and a future node-restart GC will re-poll
        # them — cheaper than an RPC per rollback (Section 3.3, Table 1).
        crash_point(CP_ROLLBACK_AFTER_FREE)
        self.log.append(
            TXN_ROLLBACK, {"txn_id": txn.txn_id, "node": txn.node_id}
        )
        txn.status = TxnStatus.ROLLED_BACK
        self._release(txn)
        self.stats["rollbacks"] += 1
        self.collect_garbage()

    def abort_in_crash(self, txn: Transaction) -> None:
        """Abandon a transaction whose node crashed: no cleanup runs here.

        The allocations persist as orphaned objects until the node-restart
        GC polls the coordinator's active set for the node (Section 3.3).
        """
        txn.status = TxnStatus.ROLLED_BACK
        self._active.pop(txn.txn_id, None)
        for object_id, holder in list(self._write_locks.items()):
            if holder == txn.txn_id:
                del self._write_locks[object_id]

    def _release(self, txn: Transaction) -> None:
        self._active.pop(txn.txn_id, None)
        for object_id, holder in list(self._write_locks.items()):
            if holder == txn.txn_id:
                del self._write_locks[object_id]

    # ------------------------------------------------------------------ #
    # garbage collection
    # ------------------------------------------------------------------ #

    def _min_active_begin_seq(self) -> int:
        if not self._active:
            return self._commit_seq
        return min(txn.begin_seq for txn in self._active.values())

    def collect_garbage(self) -> int:
        """Collect unreferenced commit-chain entries; returns pages freed.

        The oldest entry is collectible once every active transaction began
        at or after its commit — no snapshot can still reference the
        versions it superseded.
        """
        freed = 0
        horizon = self._min_active_begin_seq()
        while self._chain and self._chain[0].commit_seq <= horizon:
            entry = self._chain.popleft()
            # A crash anywhere in this body is safe: GC_COLLECT is logged
            # last, so recovery re-enters the entry into the chain and the
            # re-run frees/retains idempotently.
            crash_point(CP_GC_BEFORE_APPLY_RF)
            freed += self._apply_rf(entry)
            crash_point(CP_GC_AFTER_APPLY_RF)
            for object_id, old_version in entry.superseded:
                if self.catalog.has_version(object_id, old_version):
                    self.catalog.drop_version(object_id, old_version)
            self.log.append(GC_COLLECT, {"commit_seq": entry.commit_seq})
            self.stats["gc_entries_collected"] += 1
            crash_point(CP_GC_AFTER_LOG)
        return freed

    def _apply_rf(self, entry: CommitChainEntry) -> int:
        freed = 0
        for dbspace_name, bitmap in entry.rf.items():
            store = self.gc_dbspaces.get(dbspace_name)
            if store is None:
                continue
            locators = list(bitmap)
            if store.is_cloud and self.snapshot_manager is not None:
                # Retention: ownership moves to the snapshot manager.
                self.snapshot_manager.retain(dbspace_name, locators)  # type: ignore[attr-defined]
                self.stats["gc_pages_retained"] += len(locators)
            else:
                store.free_pages(locators)
                self.stats["gc_pages_deleted"] += len(locators)
            freed += len(locators)
        return freed

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #

    def chain_entries(self) -> "List[CommitChainEntry]":
        """The commit chain, oldest first (auditor's pending-GC set)."""
        return list(self._chain)

    def chain_state(self) -> "List[Dict[str, object]]":
        return [entry.to_payload() for entry in self._chain]

    def restore_chain(self, payloads: "List[Dict[str, object]]") -> None:
        self._chain = deque(
            CommitChainEntry.from_payload(payload) for payload in payloads
        )
        if self._chain:
            self._commit_seq = max(self._commit_seq,
                                   self._chain[-1].commit_seq)

    def note_replayed_commit(self, entry: CommitChainEntry) -> None:
        """Re-enter a replayed committed transaction into the chain."""
        self._chain.append(entry)
        self._commit_seq = max(self._commit_seq, entry.commit_seq)

    def adopt(self, txn: Transaction) -> None:
        """Re-register a surviving transaction after coordinator recovery.

        Secondary-node transactions outlive a coordinator crash; the
        recovered manager re-learns them and re-takes their write locks.
        """
        if not txn.is_active():
            raise TransactionError(
                f"cannot adopt transaction {txn.txn_id}: {txn.status.value}"
            )
        self._active[txn.txn_id] = txn
        self._next_txn_id = max(self._next_txn_id, txn.txn_id + 1)
        for object_id in txn.write_handles:
            holder = self._write_locks.get(object_id)
            if holder is not None and holder != txn.txn_id:
                raise TransactionError(
                    f"write lock on object {object_id} already held by "
                    f"txn {holder}"
                )
            self._write_locks[object_id] = txn.txn_id
