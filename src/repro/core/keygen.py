"""The Object Key Generator (Section 3.2).

The coordinator hands out object keys in monotonically increasing ranges
from the reserved ``[2^63, 2^64)`` space.  Each allocation runs as a small
transaction on the coordinator: the largest allocated key is written to the
transaction log and the *active set* — the ranges handed out to each node
whose keys are not yet covered by a committed transaction — is updated.
After a crash, the coordinator recovers the maximum key and the active sets
by replaying the log (see :mod:`repro.core.recovery`), and a restarting
writer's outstanding ranges are polled for garbage collection.

Every node (the coordinator included) consumes keys through a
:class:`NodeKeyCache`, which caches a locally allocated range and refills it
with an adaptively sized request when exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.log import ALLOC_RANGE, TransactionLog
from repro.sim.crashpoints import crash_point, register_crash_point
from repro.storage.locator import OBJECT_KEY_BASE

CP_ALLOCATE_BEFORE_LOG = register_crash_point(
    "keygen.allocate.before_log",
    "active set updated in memory, ALLOC_RANGE not yet logged "
    "(the Table 1 window: no key has reached the caller yet)",
)
CP_ALLOCATE_AFTER_LOG = register_crash_point(
    "keygen.allocate.after_log",
    "ALLOC_RANGE logged but the range never returned to the caller "
    "(restart GC must poll the orphaned range)",
)


class KeygenError(Exception):
    """Key space exhaustion or invalid range bookkeeping."""


@dataclass(frozen=True)
class KeyRange:
    """An inclusive range of object keys ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not OBJECT_KEY_BASE <= self.lo <= self.hi < (1 << 64):
            raise KeygenError(f"invalid key range [{self.lo:#x}, {self.hi:#x}]")

    @property
    def count(self) -> int:
        return self.hi - self.lo + 1

    def __iter__(self) -> "Iterator[int]":
        return iter(range(self.lo, self.hi + 1))

    def to_pair(self) -> "Tuple[int, int]":
        return self.lo, self.hi


class ActiveSet:
    """The not-yet-committed key intervals handed out to one node."""

    def __init__(self, intervals: "Optional[List[Tuple[int, int]]]" = None) -> None:
        self._intervals: List[Tuple[int, int]] = list(intervals or [])

    def add(self, lo: int, hi: int) -> None:
        self._intervals.append((lo, hi))
        self._normalize()

    def _normalize(self) -> None:
        self._intervals.sort()
        merged: List[Tuple[int, int]] = []
        for lo, hi in self._intervals:
            if merged and lo <= merged[-1][1] + 1:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        self._intervals = merged

    def remove(self, lo: int, hi: int) -> None:
        """Subtract ``[lo, hi]`` (committed keys no longer need tracking)."""
        result: List[Tuple[int, int]] = []
        for start, end in self._intervals:
            if end < lo or start > hi:
                result.append((start, end))
                continue
            if start < lo:
                result.append((start, lo - 1))
            if end > hi:
                result.append((hi + 1, end))
        self._intervals = result

    def intervals(self) -> "List[Tuple[int, int]]":
        return list(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __iter__(self) -> "Iterator[Tuple[int, int]]":
        return iter(self._intervals)

    def key_count(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ActiveSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __repr__(self) -> str:
        spans = ", ".join(f"{lo:#x}-{hi:#x}" for lo, hi in self._intervals)
        return f"ActiveSet([{spans}])"


class ObjectKeyGenerator:
    """Coordinator-side key allocator with logged, recoverable state."""

    def __init__(
        self,
        log: TransactionLog,
        first_key: int = OBJECT_KEY_BASE,
    ) -> None:
        if not OBJECT_KEY_BASE <= first_key < (1 << 64):
            raise KeygenError(f"first key {first_key:#x} outside reserved range")
        self._log = log
        self._next_key = first_key
        self._active_sets: Dict[str, ActiveSet] = {}

    @property
    def next_key(self) -> int:
        """The next key that would be handed out (max allocated + 1)."""
        return self._next_key

    @property
    def max_allocated_key(self) -> int:
        """Largest key ever allocated (first_key - 1 if none)."""
        return self._next_key - 1

    def allocate_range(self, node_id: str, count: int) -> KeyRange:
        """Allocate ``count`` keys to ``node_id``; logged transactionally."""
        if count < 1:
            raise KeygenError(f"cannot allocate {count} keys")
        lo = self._next_key
        hi = lo + count - 1
        if hi >= (1 << 64):
            raise KeygenError("object key space exhausted")
        self._next_key = hi + 1
        self._active_sets.setdefault(node_id, ActiveSet()).add(lo, hi)
        crash_point(CP_ALLOCATE_BEFORE_LOG)
        # Bookkeeping events of Section 3.2: the largest allocated key is
        # recorded in the transaction log and the handed-out range persists
        # with it; the allocation transaction commits with this append.
        self._log.append(
            ALLOC_RANGE,
            {"node": node_id, "lo": lo, "hi": hi},
        )
        crash_point(CP_ALLOCATE_AFTER_LOG)
        return KeyRange(lo, hi)

    def notify_committed(self, node_id: str,
                         key_ranges: "List[Tuple[int, int]]") -> None:
        """A transaction on ``node_id`` committed having consumed these keys.

        The committed keys leave the active set: from now on the RF/RB
        bitmaps of the committed transaction track them.
        """
        active = self._active_sets.get(node_id)
        if active is None:
            return
        for lo, hi in key_ranges:
            active.remove(lo, hi)

    def active_set(self, node_id: str) -> ActiveSet:
        return self._active_sets.setdefault(node_id, ActiveSet())

    def active_sets(self) -> "Dict[str, ActiveSet]":
        return dict(self._active_sets)

    def clear_active_set(self, node_id: str) -> ActiveSet:
        """Drop and return a node's active set (after restart GC)."""
        return self._active_sets.pop(node_id, ActiveSet())

    # ------------------------------------------------------------------ #
    # checkpoint / recovery support
    # ------------------------------------------------------------------ #

    def checkpoint_state(self) -> "Dict[str, object]":
        return {
            "next_key": self._next_key,
            "active_sets": {
                node: active.intervals()
                for node, active in self._active_sets.items()
                if active
            },
        }

    @classmethod
    def from_checkpoint(
        cls, log: TransactionLog, state: "Optional[Dict[str, object]]"
    ) -> "ObjectKeyGenerator":
        generator = cls(log)
        if state:
            generator._next_key = int(state["next_key"])  # type: ignore[arg-type]
            generator._active_sets = {
                node: ActiveSet([tuple(pair) for pair in intervals])  # type: ignore[misc]
                for node, intervals in state["active_sets"].items()  # type: ignore[union-attr]
            }
        return generator

    def replay_allocation(self, node_id: str, lo: int, hi: int) -> None:
        """Re-apply a logged allocation during crash recovery."""
        self._active_sets.setdefault(node_id, ActiveSet()).add(lo, hi)
        self._next_key = max(self._next_key, hi + 1)


@dataclass
class RangeSizePolicy:
    """Adaptive sizing of key-range requests (Section 3.2).

    The requested range starts at ``initial``; if refills arrive within
    ``grow_threshold`` virtual seconds of each other the node is hot and the
    size doubles (up to ``maximum``); refills after a long quiet period
    shrink it back (down to ``minimum``).
    """

    initial: int = 64
    minimum: int = 16
    maximum: int = 65536
    grow_threshold: float = 1.0
    shrink_threshold: float = 60.0


class NodeKeyCache:
    """Per-node key cache: consumes a local range, refills over RPC.

    ``allocate`` is the refill callback — on the coordinator it calls the
    generator directly, on secondaries it is wrapped in a simulated RPC.
    ``now`` provides virtual time for the adaptive sizing policy.
    """

    def __init__(
        self,
        node_id: str,
        allocate: "Callable[[str, int], KeyRange]",
        now: "Callable[[], float]",
        policy: "Optional[RangeSizePolicy]" = None,
    ) -> None:
        self.node_id = node_id
        self._allocate = allocate
        self._now = now
        self._policy = policy or RangeSizePolicy()
        self._range_size = self._policy.initial
        self._current: "Optional[KeyRange]" = None
        self._cursor = 0
        self._last_refill: "Optional[float]" = None
        self.refill_count = 0
        self.last_consumed: "Optional[int]" = None

    @property
    def range_size(self) -> int:
        return self._range_size

    def remaining(self) -> int:
        if self._current is None:
            return 0
        return self._current.hi - self._cursor + 1

    def _refill(self) -> None:
        now = self._now()
        if self._last_refill is not None:
            gap = now - self._last_refill
            if gap < self._policy.grow_threshold:
                self._range_size = min(self._policy.maximum, self._range_size * 2)
            elif gap > self._policy.shrink_threshold:
                self._range_size = max(self._policy.minimum, self._range_size // 2)
        self._last_refill = now
        self._current = self._allocate(self.node_id, self._range_size)
        self._cursor = self._current.lo
        self.refill_count += 1

    def next_key(self) -> int:
        """Fresh object key; refills from the coordinator when exhausted."""
        if self._current is None or self._cursor > self._current.hi:
            self._refill()
        assert self._current is not None
        key = self._cursor
        self._cursor += 1
        self.last_consumed = key
        return key

    def drop_cached_range(self) -> "Optional[KeyRange]":
        """Forget the cached range (node crash); returns what was cached."""
        current = self._current
        self._current = None
        self._cursor = 0
        return current
