"""Deterministic elastic autoscaling for the multiplex (DESIGN.md §16).

The paper's scale-out story (Figure 9) is static: secondary-node counts
are swept offline and each point is a separate run.  Taurus-style
compute/storage separation exists so compute can *track* load instead;
this module closes that loop with a feedback controller that runs as an
ordinary session on the virtual clock:

- **signals** come from the live load harness — admission-queue depth,
  trailing-window SLO attainment, and the session scheduler's runnable
  backlog — all pure functions of virtual-clock state;
- **decisions** go through hysteresis bands (distinct high/low
  watermarks per signal), per-direction cooldowns and min/max node
  clamps, so the controller neither flaps nor runs away;
- **scale-out** models spin-up cost as a configured virtual delay, then
  pre-warms the new node's OCM from the shared object store (bulk
  ranged GETs over the hottest entries of a donor cache) *before* the
  node is admitted to the routing ring;
- **scale-in** drains-and-retires: the victim stops receiving new
  operations, in-flight work finishes, pending write-backs flush, the
  node's unconsumed key allocations are reclaimed by the same
  coordinator-side GC a restart uses, and only then does it detach.

Everything the controller reads or does is a deterministic function of
the virtual clock and the seed, so an autoscaled run stays byte-identical
across invocations — the property the load harness's CI smoke gates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.crashpoints import crash_point, register_crash_point

CP_PREWARM_BEFORE_ADMIT = register_crash_point(
    "autoscale.prewarm.before_admit",
    "the new node's OCM was pre-warmed from the store but the node has "
    "not been admitted to the routing ring yet",
)

#: Router id of the coordinator (always present, never retired).
COORDINATOR_ID = "coordinator"


class AutoscaleError(Exception):
    """Invalid controller configuration or routing misuse."""


@dataclass(frozen=True)
class AutoscaleConfig:
    """Controller shape: clamps, watermarks, cooldowns, scale-event costs.

    Node counts are *total serving targets* — the coordinator plus the
    multiplex secondaries — matching ``LoadConfig.nodes``.
    """

    min_nodes: int = 1
    max_nodes: int = 4
    interval_seconds: float = 0.5     # controller evaluation period
    queue_high: int = 8               # admission queue depth: scale-out at/above
    queue_low: int = 1                # ... scale-in at/below (hysteresis band)
    backlog_high: int = 12            # scheduler runnable backlog watermarks
    backlog_low: int = 2
    slo_floor: float = 0.9            # trailing attainment below this -> out
    slo_ceiling: float = 0.98         # scale-in only at/above this
    slo_window_seconds: float = 5.0   # trailing window for attainment
    cooldown_out_seconds: float = 2.0
    cooldown_in_seconds: float = 6.0
    spin_up_seconds: float = 1.5      # modeled node provisioning delay
    drain_poll_seconds: float = 0.25  # retire: in-flight re-check period
    prewarm: bool = True
    prewarm_max_bytes: int = 8 * 1024 * 1024
    node_kind: str = "writer"

    def __post_init__(self) -> None:
        if self.min_nodes < 1:
            raise ValueError("min_nodes must keep at least the coordinator")
        if self.max_nodes < self.min_nodes:
            raise ValueError("max_nodes cannot be below min_nodes")
        if self.interval_seconds <= 0:
            raise ValueError("controller interval must be positive")
        if self.queue_low > self.queue_high:
            raise ValueError("queue watermarks must form a hysteresis band")
        if self.backlog_low > self.backlog_high:
            raise ValueError("backlog watermarks must form a hysteresis band")
        if not 0.0 < self.slo_floor <= 1.0:
            raise ValueError("slo_floor must be in (0, 1]")
        if not self.slo_floor <= self.slo_ceiling <= 1.0:
            raise ValueError("slo_ceiling must be in [slo_floor, 1]")
        if self.spin_up_seconds < 0 or self.drain_poll_seconds <= 0:
            raise ValueError("scale-event delays must be sensible")
        if self.node_kind not in ("writer", "reader"):
            raise ValueError(f"unknown node kind {self.node_kind!r}")


@dataclass(frozen=True)
class AutoscaleSignals:
    """One controller observation, sampled at an evaluation tick."""

    queue_depth: int                  # sessions parked on admission control
    runnable_backlog: int             # due-but-unserved scheduler wakeups
    slo_attainment: "Optional[float]"  # trailing window; None = no data yet
    nodes: int                        # live serving targets right now


def decide(
    config: AutoscaleConfig,
    signals: AutoscaleSignals,
    now: float,
    last_out_at: "Optional[float]" = None,
    last_in_at: "Optional[float]" = None,
) -> str:
    """The controller's pure decision function: ``"out"|"in"|"hold"``.

    Scale-out pressure wins over scale-in pressure when both fire in the
    same tick (an overloaded queue with a momentarily idle backlog is
    still overloaded).  Between the low and high watermarks is the
    hysteresis band: hold.  Cooldowns are per direction, and a recent
    scale-out also suppresses scale-in (the new node deserves a chance
    to absorb load before being judged surplus).
    """
    want_out = (
        signals.queue_depth >= config.queue_high
        or signals.runnable_backlog >= config.backlog_high
        or (
            signals.slo_attainment is not None
            and signals.slo_attainment < config.slo_floor
        )
    )
    want_in = (
        signals.queue_depth <= config.queue_low
        and signals.runnable_backlog <= config.backlog_low
        and (
            signals.slo_attainment is None
            or signals.slo_attainment >= config.slo_ceiling
        )
    )
    if want_out:
        if signals.nodes >= config.max_nodes:
            return "hold"
        if (
            last_out_at is not None
            and now - last_out_at < config.cooldown_out_seconds
        ):
            return "hold"
        return "out"
    if want_in:
        if signals.nodes <= config.min_nodes:
            return "hold"
        if (
            last_in_at is not None
            and now - last_in_at < config.cooldown_in_seconds
        ):
            return "hold"
        if (
            last_out_at is not None
            and now - last_out_at < config.cooldown_in_seconds
        ):
            return "hold"
        return "in"
    return "hold"


def prewarm_secondary(node, source_ocm, max_bytes: int) -> int:
    """Pre-warm a new node's OCM from a donor cache's hottest entries.

    The donor's eviction policy already ranks its residents; the warm
    set (hottest-first, budget-clamped to the smaller of ``max_bytes``
    and the new node's OCM capacity) is fetched from the *shared object
    store* through the new node's own client — bulk ranged GETs via the
    coalescing ``get_many`` path — and filled onto its SSD.  Returns the
    number of entries admitted.  The bracketing crash point models a
    node dying after the warm fill but before taking traffic; pre-warm
    is read-only, so the crash is benign by construction.
    """
    admitted = 0
    if node.ocm is not None and source_ocm is not None:
        budget = min(int(max_bytes), node.ocm.config.capacity_bytes)
        names = source_ocm.warm_set(max_bytes=budget)
        if names:
            admitted = node.ocm.bulk_admit(names)
    crash_point(CP_PREWARM_BEFORE_ADMIT)
    return admitted


class NodeRouter:
    """Deterministic round-robin over live serving targets.

    The router is the harness's single source of truth for *where* an
    operation runs: ``acquire`` picks the next non-draining target and
    counts it in flight, ``release`` returns the slot.  Draining a node
    stops new acquisitions immediately; the retire path polls
    ``in_flight`` until the node is idle.  No RNG is consulted — the
    pick sequence is a pure function of the acquire order.
    """

    def __init__(self) -> None:
        self._order: "List[str]" = []
        self._targets: "Dict[str, object]" = {}
        self._draining: "set" = set()
        self._in_flight: "Dict[str, int]" = {}
        self._cursor = 0
        #: Every id ever admitted, in admission order (reporting).
        self.ever_ids: "List[str]" = []

    def add(self, node_id: str, target: object) -> None:
        if node_id in self._targets:
            raise AutoscaleError(f"node {node_id!r} already routed")
        self._order.append(node_id)
        self._targets[node_id] = target
        self._in_flight.setdefault(node_id, 0)
        if node_id not in self.ever_ids:
            self.ever_ids.append(node_id)

    def drain(self, node_id: str) -> None:
        """Stop routing new operations to ``node_id`` (in-flight continue)."""
        if node_id not in self._targets:
            raise AutoscaleError(f"cannot drain unknown node {node_id!r}")
        if node_id == COORDINATOR_ID:
            raise AutoscaleError("the coordinator cannot be drained")
        self._draining.add(node_id)

    def remove(self, node_id: str) -> None:
        """Detach a drained, idle node from the ring."""
        if node_id not in self._targets:
            raise AutoscaleError(f"cannot remove unknown node {node_id!r}")
        if node_id not in self._draining:
            raise AutoscaleError(f"node {node_id!r} must drain before removal")
        if self._in_flight.get(node_id, 0):
            raise AutoscaleError(f"node {node_id!r} still has in-flight ops")
        self._order.remove(node_id)
        del self._targets[node_id]
        self._draining.discard(node_id)

    def live_count(self) -> int:
        return len(self._order) - len(self._draining)

    def live_ids(self) -> "List[str]":
        return [n for n in self._order if n not in self._draining]

    def in_flight(self, node_id: str) -> int:
        return self._in_flight.get(node_id, 0)

    def acquire(self) -> "Tuple[str, object]":
        """Pick the next live target round-robin; counts it in flight."""
        if not self._order:
            raise AutoscaleError("no serving targets routed")
        for __ in range(len(self._order)):
            node_id = self._order[self._cursor % len(self._order)]
            self._cursor += 1
            if node_id not in self._draining:
                self._in_flight[node_id] += 1
                return node_id, self._targets[node_id]
        raise AutoscaleError("every routed node is draining")

    def release(self, node_id: str) -> None:
        count = self._in_flight.get(node_id, 0)
        if count <= 0:
            raise AutoscaleError(f"release without acquire on {node_id!r}")
        self._in_flight[node_id] = count - 1


class AutoscaleController:
    """The feedback loop, run as one scheduler session on the shared clock.

    Each tick: sleep the evaluation interval, sample the signals, run
    :func:`decide`, and act.  Scale-out sleeps the modeled spin-up
    delay, builds the node, pre-warms its OCM and only then admits it to
    the router.  Scale-in drains the victim, polls until its in-flight
    count reaches zero, then retires it through
    :meth:`~repro.core.multiplex.Multiplex.retire_secondary`.  The loop
    exits when the workload reports done, so the scheduler's
    deadlock-freedom invariant holds.
    """

    def __init__(
        self,
        config: AutoscaleConfig,
        multiplex,
        router: NodeRouter,
        clock,
        epoch: float,
        signals: "Callable[[], AutoscaleSignals]",
        done: "Callable[[], bool]",
        metrics,
        prewarm_source=None,
        on_change: "Optional[Callable[[], None]]" = None,
    ) -> None:
        self.config = config
        self.multiplex = multiplex
        self.router = router
        self.clock = clock
        self.metrics = metrics
        self.prewarm_source = prewarm_source
        #: Called after every completed scale event — the load harness
        #: uses it to hand fresh admission slots to parked sessions.
        self.on_change = on_change
        self._epoch = epoch
        self._signals = signals
        self._done = done
        self._last_out: "Optional[float]" = None
        self._last_in: "Optional[float]" = None
        self._added: "List[str]" = []
        self.events: "List[Dict[str, object]]" = []
        self._record_node_count()

    # -- bookkeeping ----------------------------------------------------- #

    def _record_node_count(self) -> None:
        self.metrics.series("autoscale_node_count").record(
            max(0.0, self.clock.now() - self._epoch),
            float(self.router.live_count()),
        )

    def _record_event(self, action: str, node_id: str, started: float,
                      signals: AutoscaleSignals, **extra: object) -> None:
        event: "Dict[str, object]" = {
            "action": action,
            "node": node_id,
            "started": round(started - self._epoch, 6),
            "completed": round(self.clock.now() - self._epoch, 6),
            "nodes_after": self.router.live_count(),
            "queue_depth": signals.queue_depth,
            "runnable_backlog": signals.runnable_backlog,
            "slo_attainment": (
                round(signals.slo_attainment, 6)
                if signals.slo_attainment is not None else None
            ),
        }
        event.update(extra)
        self.events.append(event)
        self._record_node_count()
        if self.on_change is not None:
            self.on_change()

    # -- the session body ------------------------------------------------ #

    def body(self, session) -> "List[Dict[str, object]]":
        cfg = self.config
        while not self._done():
            session.sleep(cfg.interval_seconds)
            if self._done():
                break
            signals = self._signals()
            decision = decide(
                cfg, signals, self.clock.now(), self._last_out, self._last_in
            )
            self.metrics.counter(f"autoscale_decisions:{decision}").increment()
            if decision == "out":
                self._scale_out(session, signals)
            elif decision == "in":
                self._scale_in(session, signals)
        return self.events

    # -- actuation ------------------------------------------------------- #

    def _scale_out(self, session, signals: AutoscaleSignals) -> None:
        cfg = self.config
        started = self.clock.now()
        # Spin-up cost: the paper's minutes-long node launch, collapsed
        # to a configured virtual delay; load keeps running meanwhile.
        if cfg.spin_up_seconds > 0:
            session.sleep(cfg.spin_up_seconds)
        node = self.multiplex.add_secondary(cfg.node_kind)
        prewarmed = 0
        if cfg.prewarm:
            prewarmed = prewarm_secondary(
                node, self.prewarm_source, cfg.prewarm_max_bytes
            )
        self.router.add(node.node_id, node)
        self._added.append(node.node_id)
        self._last_out = self.clock.now()
        self.metrics.counter("autoscale_scale_outs").increment()
        self._record_event(
            "scale_out", node.node_id, started, signals,
            prewarmed_entries=prewarmed,
        )

    def _pick_victim(self) -> "Optional[str]":
        if self._added:
            return self._added[-1]
        for node_id in reversed(self.router.live_ids()):
            if node_id != COORDINATOR_ID:
                return node_id
        return None

    def _scale_in(self, session, signals: AutoscaleSignals) -> None:
        cfg = self.config
        victim = self._pick_victim()
        if victim is None:
            return
        started = self.clock.now()
        self.router.drain(victim)
        while self.router.in_flight(victim) > 0:
            session.sleep(cfg.drain_poll_seconds)
        reclaimed = self.multiplex.retire_secondary(victim)
        self.router.remove(victim)
        if victim in self._added:
            self._added.remove(victim)
        self._last_in = self.clock.now()
        self.metrics.counter("autoscale_scale_ins").increment()
        self._record_event(
            "scale_in", victim, started, signals, reclaimed_keys=reclaimed,
        )
