"""Multiplex clusters: coordinator, writer and reader nodes (Section 2).

A *multiplex* is SAP IQ's scale-out configuration: one coordinator plus
secondary nodes (writers can modify data, readers cannot) over shared
storage.  In this reproduction:

- the coordinator is a full :class:`~repro.engine.Database` and remains the
  authority for the catalog, the transaction log, the Object Key Generator
  and the commit chain;
- each secondary node has its *own* buffer manager, its own OCM over its
  own (ephemeral) local SSDs, its own NIC pipe into the *shared* object
  store, and a node-local key cache that refills via RPC to the
  coordinator;
- RPCs are simulated: each call charges a round-trip latency to the shared
  virtual clock and bumps a counter;
- crashing a writer abandons its active transactions and wipes its caches;
  on restart the node RPCs the coordinator, which polls the node's active
  key set against the cloud dbspaces and garbage-collects orphans — the
  Table 1 walkthrough.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.buffer import BufferManager
from repro.core.keygen import KeyRange, NodeKeyCache
from repro.core.ocm import ObjectCacheManager, OcmConfig
from repro.core.txn import Transaction, TransactionError
from repro.engine import Database, DatabaseConfig, NodeRuntime, SYSTEM_DBSPACE, USER_DBSPACE
from repro.blockstore.profiles import nvme_ssd
from repro.objectstore.client import RetryingObjectClient
from repro.objectstore.faults import FaultSchedule, OutageWindow, RegionOutage
from repro.objectstore.replicated import ReplicatedObjectStore
from repro.sim.cpu import CpuModel
from repro.sim.crashpoints import (
    SimulatedCrash,
    crash_point,
    register_crash_point,
)
from repro.sim.devices import raid0, scaled_profile
from repro.sim.metrics import MetricsRegistry
from repro.sim.pipes import Pipe
from repro.storage.dbspace import CloudDbspace, DirectObjectIO

GBIT = 1_000_000_000 / 8

CP_RESTART_GC_BEFORE_POLL = register_crash_point(
    "multiplex.restart_gc.before_poll",
    "restart-GC RPC reached the coordinator, no key polled yet",
)
CP_RESTART_GC_MID_POLL = register_crash_point(
    "multiplex.restart_gc.mid_poll",
    "coordinator crashed between polling two of a node's orphaned keys",
)
CP_FAILOVER_BEFORE_FENCE = register_crash_point(
    "multiplex.failover.before_fence",
    "region failover decided on a target but has not fenced in-flight "
    "writes yet",
)
CP_FAILOVER_BEFORE_PROMOTE = register_crash_point(
    "multiplex.failover.before_promote",
    "in-flight writes fenced, the secondary region not yet promoted",
)
CP_FAILOVER_AFTER_PROMOTE = register_crash_point(
    "multiplex.failover.after_promote",
    "the secondary region was promoted but the failover has not been "
    "acknowledged to callers",
)
CP_RETIRE_BEFORE_FLUSH = register_crash_point(
    "multiplex.retire.before_flush",
    "drain-and-retire picked a victim and stopped admissions, but its "
    "pending write-backs are not flushed yet",
)
CP_RETIRE_AFTER_DETACH = register_crash_point(
    "multiplex.retire.after_detach",
    "the retiring node flushed, was GCed and detached, but the "
    "retirement has not been acknowledged to the controller",
)


class MultiplexError(Exception):
    """Invalid cluster operations (writes on readers, unknown nodes...)."""


@dataclass(frozen=True)
class MultiplexConfig:
    """Cluster shape and per-node resources."""

    writers: int = 1
    readers: int = 0
    rpc_latency: float = 0.0005
    secondary_buffer_bytes: int = 64 * 1024 * 1024
    secondary_ocm_bytes: int = 256 * 1024 * 1024
    secondary_ocm_ssd_count: int = 2
    secondary_nic_gbits: float = 10.0
    secondary_vcpus: int = 16
    ocm_enabled: bool = True


class Rpc:
    """Simulated RPC channel: charges latency, counts calls."""

    def __init__(self, clock, latency: float,
                 metrics: "Optional[MetricsRegistry]" = None) -> None:
        self._clock = clock
        self.latency = latency
        self.metrics = metrics or MetricsRegistry()

    def call(self, name: str, fn, *args, **kwargs):
        """Round-trip: request latency, server work, response latency."""
        self._clock.advance(self.latency)
        result = fn(*args, **kwargs)
        self._clock.advance(self.latency)
        self.metrics.counter("rpc_calls").increment()
        self.metrics.counter(f"rpc:{name}").increment()
        return result


class SecondaryNode:
    """A writer or reader node in the multiplex."""

    def __init__(
        self,
        node_id: str,
        kind: str,
        multiplex: "Multiplex",
        config: MultiplexConfig,
    ) -> None:
        if kind not in ("writer", "reader"):
            raise MultiplexError(f"unknown node kind {kind!r}")
        self.node_id = node_id
        self.kind = kind
        self.multiplex = multiplex
        self._config = config
        coordinator = multiplex.coordinator
        self.clock = coordinator.clock
        self.rpc = Rpc(self.clock, config.rpc_latency)
        rate_scale = coordinator.config.rate_scale
        self.nic = Pipe(config.secondary_nic_gbits * GBIT * rate_scale,
                        name=f"{node_id}/nic")
        self.cpu = CpuModel(
            self.clock,
            config.secondary_vcpus,
            coordinator.config.cpu_ops_per_second * rate_scale,
        )
        self.crashed = False
        self.last_crash_point: "Optional[str]" = None

        # Node-local key cache; refills RPC into the coordinator.
        self.key_cache = NodeKeyCache(
            node_id, self._allocate_range_rpc, self.clock.now
        )
        # Own client into the *shared* store, through the node's own NIC.
        if coordinator.object_store is None:
            raise MultiplexError("multiplex requires an S3 user dbspace")
        self.client = RetryingObjectClient(
            coordinator.object_store,
            policy=coordinator.config.retry,
            parallel_window=coordinator.config.parallel_window,
            bandwidth=self.nic,
            node_id=node_id,
            breaker=coordinator.config.breaker,
            hedge=coordinator.config.hedge,
            rng=coordinator.rng.substream(f"client/{node_id}"),
        )
        self.ocm: "Optional[ObjectCacheManager]" = None
        if config.ocm_enabled:
            ssd = scaled_profile(
                raid0(
                    [nvme_ssd(f"{node_id}-nvme{i}")
                     for i in range(config.secondary_ocm_ssd_count)],
                    name=f"{node_id}-ocm",
                ),
                rate_scale,
                coordinator.config.op_scale,
            )
            self.ocm = ObjectCacheManager(
                self.client,
                ssd,
                OcmConfig(capacity_bytes=config.secondary_ocm_bytes),
                rng=coordinator.rng.substream(f"ocm/{node_id}"),
            )
            io = self.ocm
        else:
            io = DirectObjectIO(self.client)
        self.user_dbspace = CloudDbspace(
            USER_DBSPACE, io, self.key_cache,
            prefix_bits=coordinator.config.prefix_bits,
        )
        self.buffer = BufferManager(
            config.secondary_buffer_bytes, coordinator.page_config
        )
        self.runtime = NodeRuntime(
            node_id,
            self.buffer,
            {
                SYSTEM_DBSPACE: coordinator.system_dbspace,
                USER_DBSPACE: self.user_dbspace,
            },
        )

    # ------------------------------------------------------------------ #
    # coordinator RPCs
    # ------------------------------------------------------------------ #

    def _allocate_range_rpc(self, node_id: str, count: int) -> KeyRange:
        return self.rpc.call(
            "allocate_range",
            self.multiplex.coordinator.keygen.allocate_range,
            node_id,
            count,
        )

    # ------------------------------------------------------------------ #
    # transactions
    # ------------------------------------------------------------------ #

    def _check_usable(self) -> None:
        if self.crashed:
            raise MultiplexError(f"node {self.node_id!r} is crashed")

    def begin(self) -> Transaction:
        self._check_usable()
        return self.rpc.call(
            "begin", self.multiplex.coordinator.txn_manager.begin, self.runtime
        )

    def commit(self, txn: Transaction) -> None:
        self._check_usable()
        self.rpc.call(
            "commit", self.multiplex.coordinator.txn_manager.commit, txn
        )

    def rollback(self, txn: Transaction) -> None:
        self._check_usable()
        # Rollback is local to the node: the coordinator is deliberately
        # not told which keys died (Section 3.3's optimization); only the
        # log append happens centrally, which we fold into the same call.
        self.multiplex.coordinator.txn_manager.rollback(txn)

    def open_for_read(self, txn: Transaction, name: str):
        self._check_usable()
        return self.multiplex.coordinator.txn_manager.open_for_read(txn, name)

    def open_for_write(self, txn: Transaction, name: str):
        self._check_usable()
        if self.kind != "writer":
            raise MultiplexError(
                f"node {self.node_id!r} is a reader and cannot modify data"
            )
        return self.rpc.call(
            "open_for_write",
            self.multiplex.coordinator.txn_manager.open_for_write,
            txn,
            name,
        )

    def write_page(self, txn: Transaction, name: str, page_no: int,
                   data: bytes) -> None:
        handle = self.open_for_write(txn, name)
        self.buffer.write_page(handle, page_no, data)

    def read_page(self, txn: Transaction, name: str, page_no: int) -> bytes:
        handle = self.open_for_read(txn, name)
        return self.buffer.get_page(handle, page_no)

    # ------------------------------------------------------------------ #
    # crash / restart
    # ------------------------------------------------------------------ #

    def crash(self) -> None:
        """The node dies: active transactions abort without cleanup."""
        if self.crashed:
            raise MultiplexError(f"node {self.node_id!r} is already crashed")
        manager = self.multiplex.coordinator.txn_manager
        for txn in manager.active_transactions():
            if txn.node_id == self.node_id:
                manager.abort_in_crash(txn)
        self.runtime.invalidate_caches()
        if self.ocm is not None:
            self.ocm.invalidate_all()
        self.key_cache.drop_cached_range()
        self.crashed = True

    def crash_from(self, exc: SimulatedCrash) -> None:
        """Translate a fired crash point into ordinary crash semantics."""
        self.last_crash_point = exc.point
        if not self.crashed:
            self.crash()

    def restart(self) -> int:
        """Restart the node: coordinator GCs its outstanding allocations.

        Returns the number of orphaned objects reclaimed (Table 1, 150).
        """
        if not self.crashed:
            raise MultiplexError(f"node {self.node_id!r} is not crashed")
        reclaimed = self.rpc.call(
            "restart_gc", self.multiplex.restart_gc, self.node_id
        )
        self.crashed = False
        return reclaimed


class Multiplex:
    """A coordinator plus secondary nodes over shared storage."""

    def __init__(
        self,
        coordinator_config: "Optional[DatabaseConfig]" = None,
        config: "Optional[MultiplexConfig]" = None,
    ) -> None:
        self.config = config or MultiplexConfig()
        base = coordinator_config or DatabaseConfig()
        if base.user_volume != "s3":
            raise MultiplexError(
                "the multiplex reproduction requires cloud (s3) user dbspaces"
            )
        self.coordinator = Database(base)
        self.nodes: Dict[str, SecondaryNode] = {}
        for i in range(self.config.writers):
            node_id = f"writer-{i + 1}"
            self.nodes[node_id] = SecondaryNode(
                node_id, "writer", self, self.config
            )
        for i in range(self.config.readers):
            node_id = f"reader-{i + 1}"
            self.nodes[node_id] = SecondaryNode(
                node_id, "reader", self, self.config
            )
        # Dynamically added nodes get monotonically increasing ids that
        # are never reused after a retirement, so a node's RNG substreams
        # and key-cache identity stay stable whatever the scale history.
        self._node_seq = max(self.config.writers, self.config.readers) + 1

    @property
    def clock(self):
        return self.coordinator.clock

    def new_session_scheduler(self):
        """A session scheduler over the cluster's shared clock.

        Every node — the coordinator and all secondaries — charges the
        same clock, so sessions spawned against *different* nodes
        interleave on one timeline: a reader node's scan overlaps a
        writer node's commit exactly as the shared-storage multiplex
        intends, with contention emerging from the shared object store's
        token buckets and each node's own NIC/SSD pipes.
        """
        return self.coordinator.new_session_scheduler()

    def session_targets(self, include_coordinator: bool = True) -> "List[object]":
        """Round-robin-able session endpoints: coordinator + secondaries.

        Any returned object supports ``begin/commit/rollback``,
        ``open_for_read``, ``read_page``/``write_page`` (writers), a
        ``buffer`` and a ``cpu`` — the session-protocol surface
        :class:`~repro.columnar.query.QueryContext` and the load harness
        program against.
        """
        targets: "List[object]" = (
            [self.coordinator] if include_coordinator else []
        )
        targets.extend(self.nodes.values())
        return targets

    def node(self, node_id: str) -> SecondaryNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise MultiplexError(f"no node named {node_id!r}") from None

    def writers(self) -> "List[SecondaryNode]":
        return [n for n in self.nodes.values() if n.kind == "writer"]

    def readers(self) -> "List[SecondaryNode]":
        return [n for n in self.nodes.values() if n.kind == "reader"]

    def secondaries(self) -> "List[SecondaryNode]":
        return list(self.nodes.values())

    # ------------------------------------------------------------------ #
    # elastic scale-out / scale-in (DESIGN.md §16)
    # ------------------------------------------------------------------ #

    def add_secondary(self, kind: str = "writer",
                      node_id: "Optional[str]" = None) -> SecondaryNode:
        """Provision a new secondary at the current virtual time.

        Construction itself is instantaneous — callers model spin-up
        cost (the autoscaler sleeps a configured virtual delay before
        calling this).  The new node inherits the coordinator's CPU
        calibration so a scaled-out node is the same hardware as a
        statically provisioned one.
        """
        if kind not in ("writer", "reader"):
            raise MultiplexError(f"unknown node kind {kind!r}")
        if node_id is None:
            node_id = f"{kind}-{self._node_seq}"
        if node_id in self.nodes:
            raise MultiplexError(f"node {node_id!r} already exists")
        self._node_seq += 1
        node = SecondaryNode(node_id, kind, self, self.config)
        node.cpu.parallel_fraction = self.coordinator.cpu.parallel_fraction
        self.nodes[node_id] = node
        self.coordinator.metrics.counter("autoscale_nodes_added").increment()
        return node

    def retire_secondary(self, node_id: str) -> int:
        """Drain-and-retire a secondary (scale-in); returns keys reclaimed.

        The caller must already have stopped routing new work to the
        node and let in-flight operations finish; active transactions
        refuse retirement.  Sequence: flush the node's pending OCM
        write-backs (committed data is already on the store via
        write-through-at-commit, so these are only background uploads),
        reclaim its unconsumed key allocations through the same
        coordinator-side GC a restart uses, then detach.  A crash on
        either side of the flush degrades to ordinary node-crash
        semantics — the explorer's scale episode proves no committed
        data is lost and leaks drain.
        """
        node = self.node(node_id)
        if node.crashed:
            raise MultiplexError(f"cannot retire crashed node {node_id!r}")
        manager = self.coordinator.txn_manager
        for txn in manager.active_transactions():
            if txn.node_id == node_id:
                raise MultiplexError(
                    f"cannot retire {node_id!r} with active transactions"
                )
        crash_point(CP_RETIRE_BEFORE_FLUSH)
        with self.coordinator.tracer.span(
            "retire_secondary", "autoscale", node=node_id
        ):
            if node.ocm is not None:
                node.ocm.drain_all()
            # Unconsumed allocations (the cached range and anything the
            # active set still covers) go back through restart GC: any
            # store object under those keys is by definition uncommitted.
            node.key_cache.drop_cached_range()
            reclaimed = self.restart_gc(node_id)
            del self.nodes[node_id]
            # Stray handles must not route new work to a retired node.
            node.crashed = True
        crash_point(CP_RETIRE_AFTER_DETACH)
        metrics = self.coordinator.metrics
        metrics.counter("autoscale_nodes_retired").increment()
        metrics.counter("autoscale_retire_reclaimed_keys").increment(reclaimed)
        return reclaimed

    # ------------------------------------------------------------------ #
    # coordinator-side services
    # ------------------------------------------------------------------ #

    def restart_gc(self, node_id: str) -> int:
        """GC a restarting node's outstanding key allocations (Table 1).

        Every key in the node's active set is polled against the cloud
        dbspaces: existing objects are deleted (they belonged to aborted
        transactions or unconsumed allocations); missing ones are no-ops —
        including keys already reclaimed by local rollbacks, which the
        coordinator was deliberately never told about.

        The active set is cleared only after the last poll completes.  It
        exists only in coordinator memory (reconstructed from the log on
        coordinator recovery, not on secondary restart), so clearing it
        up front would permanently leak whatever keys remained un-polled
        if the coordinator died mid-loop.  Re-polling already-deleted
        keys after such a crash is an idempotent no-op.
        """
        coordinator = self.coordinator
        active = coordinator.keygen.active_set(node_id)
        user = coordinator.user_dbspace
        reclaimed = 0
        polled = 0
        if active.key_count() and isinstance(user, CloudDbspace):
            # Fence: the dead node's in-flight puts must settle before the
            # blind deletes below, or last-writer-wins resurrects orphans.
            coordinator._fence_in_flight_writes([user])
        crash_point(CP_RESTART_GC_BEFORE_POLL)
        with coordinator.tracer.span("restart_gc", "recovery", node=node_id):
            if isinstance(user, CloudDbspace):
                for lo, hi in active.intervals():
                    for key in range(lo, hi + 1):
                        crash_point(CP_RESTART_GC_MID_POLL)
                        polled += 1
                        if user.poll_and_free(key):
                            reclaimed += 1
            coordinator.keygen.clear_active_set(node_id)
        coordinator.metrics.counter("restart_gc_polled_keys").increment(polled)
        return reclaimed

    def inject_store_outage(self, node_id: str, window) -> OutageWindow:
        """Model a per-node network partition from the shared bucket.

        ``window`` is either ``(start, end)`` in virtual seconds or an
        :class:`~repro.objectstore.faults.OutageWindow` (re-scoped to the
        node).  Only the named node's requests fail during the window —
        the coordinator and other secondaries keep the bucket, which is
        exactly the asymmetric partition the paper's restart-GC protocol
        has to tolerate.
        """
        self.node(node_id)  # validates the node exists
        if isinstance(window, OutageWindow):
            event = OutageWindow(window.start, window.end, ops=window.ops,
                                 prefix=window.prefix, node=node_id)
        else:
            start, end = window
            event = OutageWindow(start, end, node=node_id)
        store = self.coordinator.object_store
        if store is None:
            raise MultiplexError("multiplex requires an S3 user dbspace")
        if store.fault_schedule is None:
            store.fault_schedule = FaultSchedule(name="injected")
        store.fault_schedule.add(event)
        return event

    def _replicated_store(self) -> ReplicatedObjectStore:
        store = self.coordinator.object_store
        if not isinstance(store, ReplicatedObjectStore):
            raise MultiplexError(
                "region operations require a replicated object store "
                "(DatabaseConfig.replication)"
            )
        return store

    def inject_region_outage(self, region: str, window) -> RegionOutage:
        """Take a whole region away for a virtual-time window.

        ``window`` is ``(start, end)`` in virtual seconds.  Every request
        against the region's store fails while active, and the
        replication pump defers queued applies into the region until the
        window ends — the scenario the DR workflow (DESIGN.md §12)
        recovers from.
        """
        store = self._replicated_store()
        if region not in store.regions:
            raise MultiplexError(f"no region named {region!r}")
        start, end = window
        event = RegionOutage(start, end, region=region)
        store.ensure_fault_schedule().add(event)
        return event

    def region_failover(self, to_region: "Optional[str]" = None) -> str:
        """Promote a secondary region to primary (DESIGN.md §12).

        Sequence: pick a live target, fence every accepted-but-unsettled
        write via ``write_horizon()`` (which spans all regions *and* the
        replication queues, so a healed region's in-flight puts cannot
        outrun later tombstones), then drain the target's replication
        queue and flip the primary.  Each step is idempotent, so a crash
        at any of the three failover crash points is survivable by
        re-running the failover with the same target.  Returns the new
        primary region.
        """
        store = self._replicated_store()
        now = self.clock.now()
        if to_region is None:
            schedule = store.fault_schedule
            for region in store.secondary_regions():
                if schedule is not None and schedule.decide(
                    "put", None, None, now, region
                ).outage:
                    continue
                to_region = region
                break
            if to_region is None:
                raise MultiplexError(
                    "no live secondary region to fail over to"
                )
        elif to_region not in store.regions:
            raise MultiplexError(f"no region named {to_region!r}")
        crash_point(CP_FAILOVER_BEFORE_FENCE)
        user = self.coordinator.user_dbspace
        if isinstance(user, CloudDbspace):
            self.coordinator._fence_in_flight_writes([user])
        crash_point(CP_FAILOVER_BEFORE_PROMOTE)
        drained = store.promote(to_region, self.clock.now())
        self.coordinator.metrics.counter("region_failovers").increment()
        self.coordinator.metrics.counter(
            "region_failover_drained_entries"
        ).increment(drained)
        crash_point(CP_FAILOVER_AFTER_PROMOTE)
        return to_region

    def coordinator_crash_and_recover(self) -> None:
        """Crash and recover the coordinator (Table 1, clocks 110-120).

        Secondary nodes keep their cached ranges and in-flight transactions
        and continue after recovery; the active sets are reconstructed from
        the log, and surviving transactions are re-adopted by the recovered
        transaction manager.
        """
        survivors = [
            txn
            for txn in self.coordinator.txn_manager.active_transactions()
            if txn.node_id != self.coordinator.config.node_id
        ]
        self.coordinator.crash()
        self.coordinator.restart()
        for txn in survivors:
            self.coordinator.txn_manager.adopt(txn)
