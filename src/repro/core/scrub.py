"""The background integrity scrubber (DESIGN.md §15).

Checksummed objects and verified reads only catch corruption *when a
reader shows up*; cold data — snapshot-retained pages, rarely scanned
columns — can rot for months before a query trips over it.  The
scrubber closes that window, the way Taurus's background repair does for
its storage fragments: it walks every object the buckets hold (a
superset of the catalog, snapshot and retention reference sets the
auditor tracks), recomputes each copy's CRC-32C against the recorded
checksum, repairs damaged copies from healthy replicas when the store is
replicated, and quarantines what it cannot repair.

Pacing: the scrub reads every byte it verifies, so an unthrottled pass
would flatten foreground traffic.  The walk is therefore charged through
two :class:`~repro.sim.pipes.Pipe` servers — its own bytes/sec budget
pipe (the knob) *and* the node NIC — so scrubbing visibly competes with
foreground load on the virtual clock, and a full pass over ``B`` bytes
takes at least ``B / bytes_per_second`` virtual seconds.

Crash safety: the repair step is bracketed by the
``scrub.before_repair`` / ``scrub.after_repair`` crash points.  Repair
is an in-place overwrite of the damaged version with clean bytes under
the *same* op-time, so replaying a repair after a crash at either point
is idempotent — the crash explorer's scrub episodes prove it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.objectstore.replicated import ReplicatedObjectStore
from repro.sim.crashpoints import crash_point, register_crash_point
from repro.sim.pipes import Pipe

if TYPE_CHECKING:
    from repro.engine import Database

CP_SCRUB_BEFORE_REPAIR = register_crash_point(
    "scrub.before_repair",
    "the scrubber detected a damaged copy but crashed before repairing it",
)
CP_SCRUB_AFTER_REPAIR = register_crash_point(
    "scrub.after_repair",
    "the scrubber repaired a damaged copy but crashed before re-verifying "
    "and reporting it",
)

#: Default scrub budget: 8 MiB of verified reads per virtual second.
DEFAULT_BYTES_PER_SECOND = 8 * 1024 * 1024


@dataclass
class ScrubReport:
    """Machine-readable outcome of one scrubber pass."""

    started_at: float = 0.0
    finished_at: float = 0.0
    objects_scanned: int = 0
    bytes_scanned: int = 0
    # regions (or "primary" for single-region stores) the pass covered.
    regions_scanned: "List[str]" = field(default_factory=list)
    corrupt_found: int = 0
    repaired: int = 0
    # (region, object_name) — damaged copies no healthy replica could
    # repair; they stay on the store, flagged for operator attention.
    quarantined: "List[Tuple[str, str]]" = field(default_factory=list)

    def ok(self) -> bool:
        """Every detected corruption was repaired."""
        return not self.quarantined

    def to_dict(self) -> "Dict[str, object]":
        return {
            "ok": self.ok(),
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "objects_scanned": self.objects_scanned,
            "bytes_scanned": self.bytes_scanned,
            "regions_scanned": list(self.regions_scanned),
            "corrupt_found": self.corrupt_found,
            "repaired": self.repaired,
            "quarantined": [[r, name] for r, name in self.quarantined],
        }


class Scrubber:
    """Budgeted background verify-and-repair over every cloud bucket."""

    def __init__(self, db: "Database",
                 bytes_per_second: float = DEFAULT_BYTES_PER_SECOND) -> None:
        if bytes_per_second <= 0:
            raise ValueError(
                f"scrub budget must be positive, got {bytes_per_second!r}"
            )
        self.db = db
        self.bytes_per_second = bytes_per_second
        # The budget pipe persists across passes: back-to-back passes
        # queue behind each other exactly like any other paced consumer.
        self._pipe = Pipe(bytes_per_second, name="scrub")
        # (region, object_name) pairs quarantined by past passes.
        self.quarantined: "set[Tuple[str, str]]" = set()

    # ------------------------------------------------------------------ #
    # the walk
    # ------------------------------------------------------------------ #

    def _stores(self) -> "List[object]":
        """Distinct backing stores across the cloud dbspaces."""
        seen: "Dict[int, object]" = {}
        for dbspace in self.db.cloud_dbspaces().values():
            store = dbspace.io.client.store
            seen.setdefault(id(store), store)
        return list(seen.values())

    @staticmethod
    def _copies(store) -> "List[Tuple[str, object]]":
        """(region_label, concrete_store) pairs a store resolves to."""
        if isinstance(store, ReplicatedObjectStore):
            return [
                (region, store.store_for(region))
                for region in store.regions
            ]
        return [(getattr(store, "region", None) or "primary", store)]

    def _charge(self, when: float, nbytes: int) -> float:
        """Charge one verified read against the budget pipe and the NIC."""
        __, budget_done = self._pipe.request(when, float(nbytes))
        __, nic_done = self.db.nic.request(when, float(nbytes))
        return max(budget_done, nic_done)

    def _repair(self, store, region: str, name: str, when: float) -> bool:
        """Repair one damaged copy; return whether it verifies clean now.

        Bracketed by the scrub crash points.  The overwrite preserves the
        damaged version's op-time, so re-running the repair after a crash
        at either point (the same pass will find the copy again — clean
        if the first repair landed, damaged if it did not) is idempotent.
        """
        crash_point(CP_SCRUB_BEFORE_REPAIR)
        if isinstance(store, ReplicatedObjectStore):
            store.read_repair(name, when)
        crash_point(CP_SCRUB_AFTER_REPAIR)
        regional = (store.store_for(region)
                    if isinstance(store, ReplicatedObjectStore) else store)
        return regional.verify_at_rest(name) is True

    def run(self, now: "Optional[float]" = None) -> ScrubReport:
        """One full verify-and-repair pass; advances the virtual clock.

        Walks every copy of every object in every cloud bucket (all
        regions of replicated stores), pacing the verified reads through
        the bytes/sec budget.  Damaged copies are repaired from healthy
        replicas where possible; the rest are quarantined and reported.
        """
        db = self.db
        when = db.clock.now() if now is None else now
        report = ScrubReport(started_at=when)
        metrics = db.metrics
        span = db.tracer.begin("scrub", "scrubber", start=when)
        for store in self._stores():
            if isinstance(store, ReplicatedObjectStore):
                store.pump(when)
            for region, regional in self._copies(store):
                if region not in report.regions_scanned:
                    report.regions_scanned.append(region)
                for name in regional.all_keys():
                    data = regional.latest_data(name)
                    if data is None:
                        continue
                    when = self._charge(when, len(data))
                    report.objects_scanned += 1
                    report.bytes_scanned += len(data)
                    metrics.counter("scrub_scanned").increment()
                    if regional.verify_at_rest(name) is not False:
                        continue
                    report.corrupt_found += 1
                    metrics.counter("scrub_corrupt").increment()
                    db.tracer.record("scrub_repair", "scrubber",
                                     when, when, key=name, region=region)
                    if self._repair(store, region, name, when):
                        report.repaired += 1
                        self.quarantined.discard((region, name))
                        metrics.counter("scrub_repairs").increment()
                    else:
                        report.quarantined.append((region, name))
                        self.quarantined.add((region, name))
                        metrics.counter("scrub_quarantined").increment()
        report.finished_at = when
        db.clock.advance_to(when)
        db.tracer.finish(span, end=when,
                         scanned=report.objects_scanned,
                         repaired=report.repaired,
                         quarantined=len(report.quarantined))
        metrics.counter("scrub_passes").increment()
        return report
